// FlightRecorder: bounded ring of completed-request summaries. Covers
// ordering, wraparound accounting, strict-JSON output, the fault-injected
// dump path, and writer/reader races on the slot locks.
#include "obs/request_trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "util/fault_injection.h"
#include "util/json.h"

namespace hotspot::obs {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

RequestTrace make_trace(std::uint64_t id) {
  RequestTrace trace;
  trace.request_id = id;
  trace.client_request_id = static_cast<std::uint32_t>(id * 10);
  trace.tenant = "tenant-" + std::to_string(id % 3);
  trace.clips = 4;
  trace.start_ns = id * 1000;
  trace.decode_seconds = 0.001;
  trace.queue_seconds = 0.002;
  trace.batch_seconds = 0.003;
  trace.infer_seconds = 0.004;
  trace.encode_seconds = 0.005;
  trace.total_seconds = 0.015;
  trace.model_version = 7;
  trace.hotspots = 2;
  trace.outcome = RequestOutcome::kOk;
  return trace;
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder recorder(8);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    recorder.record(make_trace(id));
  }
  const std::vector<RequestTrace> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), 5u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].request_id, i + 1);  // oldest first
  }
  EXPECT_EQ(recorder.recorded(), 5u);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDrops) {
  FlightRecorder recorder(4);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    recorder.record(make_trace(id));
  }
  const std::vector<RequestTrace> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), 4u);
  // Survivors are the newest four, still oldest-first.
  EXPECT_EQ(entries.front().request_id, 7u);
  EXPECT_EQ(entries.back().request_id, 10u);
  EXPECT_EQ(recorder.recorded(), 10u);

  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(recorder.to_json(), parsed, error)) << error;
  EXPECT_EQ(parsed.find("capacity")->as_number(), 4.0);
  EXPECT_EQ(parsed.find("recorded")->as_number(), 10.0);
  EXPECT_EQ(parsed.find("dropped")->as_number(), 6.0);
  EXPECT_EQ(parsed.find("entries")->as_array().size(), 4u);
}

TEST(FlightRecorder, ToJsonIsStrictJsonWithLimit) {
  FlightRecorder recorder(8);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    RequestTrace trace = make_trace(id);
    trace.tenant = "quo\"te\\ten";  // escaping must hold up
    recorder.record(trace);
  }
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(recorder.to_json(2), parsed, error)) << error;
  const auto& entries = parsed.find("entries")->as_array();
  ASSERT_EQ(entries.size(), 2u);  // only the newest two
  EXPECT_EQ(entries[0].find("request_id")->as_number(), 5.0);
  EXPECT_EQ(entries[1].find("request_id")->as_number(), 6.0);
  EXPECT_EQ(entries[1].find("tenant")->as_string(), "quo\"te\\ten");
  EXPECT_EQ(entries[1].find("outcome")->as_string(), "ok");
}

TEST(FlightRecorder, NonFiniteSecondsStillEmitParseableJson) {
  FlightRecorder recorder(2);
  RequestTrace trace = make_trace(1);
  trace.infer_seconds = std::nan("");
  trace.total_seconds = std::numeric_limits<double>::infinity();
  recorder.record(trace);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(recorder.to_json(), parsed, error)) << error;
  const auto& entry = parsed.find("entries")->as_array()[0];
  // format_double clamps non-finite to 0 — garbage in, parseable out.
  EXPECT_EQ(entry.find("infer_seconds")->as_number(), 0.0);
  EXPECT_EQ(entry.find("total_seconds")->as_number(), 0.0);
}

TEST(FlightRecorder, DumpWritesStrictJsonFile) {
  FlightRecorder recorder(4);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    recorder.record(make_trace(id));
  }
  const std::string path = temp_path("flight_dump_ok.json");
  std::string error;
  ASSERT_TRUE(recorder.dump(path, &error)) << error;
  util::JsonValue parsed;
  ASSERT_TRUE(util::parse_json_file(path, parsed, error)) << error;
  EXPECT_EQ(parsed.find("entries")->as_array().size(), 3u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpWriteFaultFailsWithoutPublishing) {
  FlightRecorder recorder(4);
  recorder.record(make_trace(1));
  const std::string path = temp_path("flight_dump_fault.json");
  util::fault_arm(util::FaultPoint::kJournalWrite, 1);
  std::string error;
  EXPECT_FALSE(recorder.dump(path, &error));
  EXPECT_FALSE(error.empty());
  util::fault_clear_all();
  // tmp+rename discipline: a failed dump leaves no destination file.
  std::FILE* file = std::fopen(path.c_str(), "r");
  EXPECT_EQ(file, nullptr);
  if (file != nullptr) {
    std::fclose(file);
  }
}

TEST(FlightRecorder, ConcurrentWritersProduceInternallyConsistentEntries) {
  FlightRecorder recorder(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Every field derives from request_id, so a torn copy is visible.
        const auto id =
            static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        RequestTrace trace = make_trace(id);
        trace.client_request_id = static_cast<std::uint32_t>(id);
        trace.start_ns = id;
        trace.model_version = id;
        recorder.record(trace);
      }
    });
  }
  // A concurrent reader must never observe a half-written slot.
  std::thread reader([&recorder] {
    for (int i = 0; i < 200; ++i) {
      for (const RequestTrace& trace : recorder.snapshot()) {
        ASSERT_EQ(trace.client_request_id,
                  static_cast<std::uint32_t>(trace.request_id));
        ASSERT_EQ(trace.start_ns, trace.request_id);
        ASSERT_EQ(trace.model_version, trace.request_id);
      }
    }
  });
  for (std::thread& writer : writers) {
    writer.join();
  }
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<RequestTrace> entries = recorder.snapshot();
  EXPECT_EQ(entries.size(), 64u);
  for (const RequestTrace& trace : entries) {
    EXPECT_EQ(trace.client_request_id,
              static_cast<std::uint32_t>(trace.request_id));
    EXPECT_EQ(trace.model_version, trace.request_id);
  }
}

}  // namespace
}  // namespace hotspot::obs
