#include "obs/bench_gate.h"

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace hotspot::obs {
namespace {

util::JsonValue parse(const std::string& text) {
  util::JsonValue doc;
  std::string error;
  EXPECT_TRUE(util::parse_json(text, doc, error)) << error;
  return doc;
}

// Minimal valid bench emission with a headline section spliced in.
std::string bench_doc(const std::string& headline_fields) {
  return "{" + headline_fields +
         (headline_fields.empty() ? "" : ", ") +
         "\"manifest\": {\"schema_version\": 1, \"git_sha\": \"abc\", "
         "\"compiler\": \"gcc\", \"build_type\": \"Release\", "
         "\"threads\": 1, \"env\": {}}, "
         "\"metrics\": {\"counters\": {}, \"gauges\": {}, "
         "\"histograms\": {}, \"spans\": {}}}";
}

TEST(BenchSchema, AcceptsWellFormedEmission) {
  std::string error;
  EXPECT_TRUE(check_bench_schema(parse(bench_doc("")), error)) << error;
}

TEST(BenchSchema, RejectsMissingManifest) {
  std::string error;
  EXPECT_FALSE(check_bench_schema(
      parse("{\"metrics\": {}, \"packed_seconds\": 1.0}"), error));
  EXPECT_NE(error.find("manifest"), std::string::npos);
}

TEST(BenchSchema, RejectsMissingMetrics) {
  std::string error;
  EXPECT_FALSE(check_bench_schema(
      parse("{\"manifest\": {\"schema_version\": 1, \"git_sha\": \"a\", "
            "\"compiler\": \"g\", \"build_type\": \"R\"}}"),
      error));
  EXPECT_NE(error.find("metrics"), std::string::npos);
}

TEST(BenchSchema, RejectsManifestWithoutVersion) {
  std::string error;
  EXPECT_FALSE(check_bench_schema(
      parse("{\"manifest\": {\"git_sha\": \"a\"}, \"metrics\": {}}"), error));
}

TEST(BenchGate, IdenticalFilesPass) {
  const util::JsonValue doc = parse(bench_doc(
      "\"packed_seconds\": 0.5, \"windows_per_sec\": 1000, \"threads\": 4"));
  const GateResult result = compare_bench(doc, doc);
  EXPECT_TRUE(result.ok()) << gate_report(result);
  EXPECT_EQ(result.compared, 2);  // "threads" is not a gated key
}

TEST(BenchGate, TimeRegressionFails) {
  const util::JsonValue baseline =
      parse(bench_doc("\"packed_seconds\": 1.0"));
  const util::JsonValue fresh = parse(bench_doc("\"packed_seconds\": 2.0"));
  const GateResult result = compare_bench(baseline, fresh);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].path, "packed_seconds");
  EXPECT_FALSE(result.ok());
}

TEST(BenchGate, TimeFloorAbsorbsMicroNoise) {
  // 2 ms -> 6 ms is a 3x slowdown but far below the 50 ms floor: noise on
  // a micro-measurement, not a regression.
  const util::JsonValue baseline =
      parse(bench_doc("\"raster_seconds\": 0.002"));
  const util::JsonValue fresh = parse(bench_doc("\"raster_seconds\": 0.006"));
  EXPECT_TRUE(compare_bench(baseline, fresh).ok());
}

TEST(BenchGate, ThroughputRegressionFails) {
  const util::JsonValue baseline =
      parse(bench_doc("\"windows_per_sec\": 1000"));
  const util::JsonValue fresh = parse(bench_doc("\"windows_per_sec\": 500"));
  const GateResult result = compare_bench(baseline, fresh);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_NE(result.regressions[0].message.find("throughput"),
            std::string::npos);
}

TEST(BenchGate, ThroughputNotMisreadAsTime) {
  // "windows_per_sec" contains no "seconds" but a name like
  // "speedup_vs_seconds_baseline" contains both; rate classification must
  // win, so a higher value passes.
  const util::JsonValue baseline =
      parse(bench_doc("\"speedup_over_float_seconds\": 2.0"));
  const util::JsonValue fresh =
      parse(bench_doc("\"speedup_over_float_seconds\": 8.0"));
  EXPECT_TRUE(compare_bench(baseline, fresh).ok());
}

TEST(BenchGate, MissingBaselineKeyIsRegression) {
  const util::JsonValue baseline =
      parse(bench_doc("\"packed_seconds\": 1.0"));
  const util::JsonValue fresh = parse(bench_doc(""));
  const GateResult result = compare_bench(baseline, fresh);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_NE(result.regressions[0].message.find("missing"), std::string::npos);
}

TEST(BenchGate, WalksNestedArraysWithIndexedPaths) {
  const std::string base_rows =
      "\"measured\": [{\"method\": \"BRNN\", \"eval_seconds\": 1.0}, "
      "{\"method\": \"DAC17\", \"eval_seconds\": 2.0}]";
  const std::string fresh_rows =
      "\"measured\": [{\"method\": \"BRNN\", \"eval_seconds\": 1.0}, "
      "{\"method\": \"DAC17\", \"eval_seconds\": 9.0}]";
  const GateResult result = compare_bench(parse(bench_doc(base_rows)),
                                          parse(bench_doc(fresh_rows)));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].path, "measured[1].eval_seconds");
}

TEST(BenchGate, MetricsSubtreeIsNeverGated) {
  // Raw instrumentation under "metrics" may move arbitrarily; only the
  // headline numbers gate.
  const std::string base = bench_doc("");
  std::string fresh = base;
  const std::string needle = "\"spans\": {}";
  fresh.replace(fresh.find(needle), needle.size(),
                "\"spans\": {\"x\": {\"total_seconds\": 100.0}}");
  const GateResult result = compare_bench(parse(base), parse(fresh));
  EXPECT_TRUE(result.ok()) << gate_report(result);
  EXPECT_EQ(result.compared, 0);
}

TEST(BenchGate, SchemaFailureBlocksComparison) {
  const util::JsonValue baseline =
      parse(bench_doc("\"packed_seconds\": 1.0"));
  const util::JsonValue fresh = parse("{\"packed_seconds\": 1.0}");
  const GateResult result = compare_bench(baseline, fresh);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.schema_ok);
  EXPECT_NE(result.schema_error.find("fresh"), std::string::npos);
}

TEST(BenchGate, CustomTolerances) {
  GateConfig config;
  config.time_tolerance = 1.0;
  config.time_floor_seconds = 0.0;
  const util::JsonValue baseline =
      parse(bench_doc("\"packed_seconds\": 1.0"));
  const util::JsonValue slightly_slower =
      parse(bench_doc("\"packed_seconds\": 1.01"));
  EXPECT_FALSE(compare_bench(baseline, slightly_slower, config).ok());
  EXPECT_TRUE(compare_bench(baseline, baseline, config).ok());
}

}  // namespace
}  // namespace hotspot::obs
