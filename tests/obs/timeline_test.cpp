#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <thread>

#include "obs/export.h"
#include "obs/trace.h"
#include "util/json.h"

// Counts every global allocation so tests can pin the "disabled spans do
// not allocate" contract. Instrumented at the TU level: the replacement
// operators serve the whole test binary, the counter just tells us how many
// allocations happened between two reads.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hotspot::obs {
namespace {

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(true);
    set_timeline_enabled(true);
    reset_spans();
    reset_timeline();
  }
  void TearDown() override {
    set_timeline_enabled(false);
    set_trace_enabled(false);
    reset_timeline();
    reset_spans();
    set_timeline_capacity(65536);
  }
};

TEST_F(TimelineTest, RecordsEventsWithDurations) {
  {
    HOTSPOT_TRACE_SPAN("outer");
    HOTSPOT_TRACE_SPAN("inner");
  }
  const TimelineReport report = collect_timeline();
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.dropped, 0u);
  // Sorted by start: outer opened first.
  EXPECT_EQ(report.events[0].name, "outer");
  EXPECT_EQ(report.events[1].name, "inner");
  EXPECT_LE(report.events[0].start_ns, report.events[1].start_ns);
  EXPECT_GE(report.events[0].duration_ns, report.events[1].duration_ns);
}

TEST_F(TimelineTest, RingOverflowDropsOldestAndCounts) {
  set_timeline_capacity(8);
  reset_timeline();
  for (int i = 0; i < 20; ++i) {
    TraceSpan span("overflow.span");
  }
  const TimelineReport report = collect_timeline();
  EXPECT_EQ(report.events.size(), 8u);
  EXPECT_EQ(report.dropped, 12u);
  // Surviving events are the most recent and stay start-ordered.
  for (std::size_t i = 1; i < report.events.size(); ++i) {
    EXPECT_LE(report.events[i - 1].start_ns, report.events[i].start_ns);
  }
}

TEST_F(TimelineTest, OverflowedRingStillExportsWellFormedTrace) {
  set_timeline_capacity(4);
  reset_timeline();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("spin");
  }
  const std::string trace = to_chrome_trace(collect_timeline());
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::parse_json(trace, doc, error)) << error;
  const util::JsonValue* dropped =
      doc.find("otherData") != nullptr ? doc.find("otherData")->find(
                                             "dropped_events")
                                       : nullptr;
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->as_number(), 96.0);
}

TEST_F(TimelineTest, ChromeTraceIsValidAndStructured) {
  {
    HOTSPOT_TRACE_SPAN("phase.one");
  }
  std::thread worker([] { HOTSPOT_TRACE_SPAN("phase.two"); });
  worker.join();

  const TimelineReport report = collect_timeline();
  const std::string trace = to_chrome_trace(report);
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::parse_json(trace, doc, error)) << error;
  ASSERT_TRUE(doc.is_object());
  const util::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<double> tids;
  std::size_t complete_events = 0;
  std::size_t metadata_events = 0;
  for (const util::JsonValue& event : events->as_array()) {
    ASSERT_TRUE(event.is_object());
    const std::string& phase = event.find("ph")->as_string();
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    if (phase == "X") {
      ++complete_events;
      ASSERT_NE(event.find("ts"), nullptr);
      ASSERT_NE(event.find("dur"), nullptr);
      EXPECT_GE(event.find("ts")->as_number(), 0.0);
      EXPECT_GE(event.find("dur")->as_number(), 0.0);
      tids.insert(event.find("tid")->as_number());
    } else {
      EXPECT_EQ(phase, "M");
      ++metadata_events;
    }
  }
  EXPECT_EQ(complete_events, report.events.size());
  EXPECT_EQ(metadata_events, report.thread_count);
  EXPECT_EQ(tids.size(), 2u) << "main + worker thread tracks";
}

TEST_F(TimelineTest, WriteChromeTraceRoundTrips) {
  {
    HOTSPOT_TRACE_SPAN("write.me");
  }
  const std::string path =
      std::string(::testing::TempDir()) + "/timeline_trace.json";
  ASSERT_TRUE(write_chrome_trace(path, collect_timeline()));
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::parse_json_file(path, doc, error)) << error;
  EXPECT_GE(doc.find("traceEvents")->size(), 1u);
}

TEST_F(TimelineTest, TimelineOffRecordsAggregatesOnly) {
  set_timeline_enabled(false);
  {
    HOTSPOT_TRACE_SPAN("aggregates.only");
  }
  EXPECT_EQ(collect_timeline().events.size(), 0u);
  const SpanReport spans = collect_span_report();
  ASSERT_NE(spans.find("aggregates.only"), nullptr);
  EXPECT_EQ(spans.find("aggregates.only")->count, 1u);
}

TEST_F(TimelineTest, ResetTimelineClearsEventsAndDrops) {
  set_timeline_capacity(2);
  reset_timeline();
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("reset.me");
  }
  EXPECT_GT(collect_timeline().dropped, 0u);
  reset_timeline();
  const TimelineReport report = collect_timeline();
  EXPECT_EQ(report.events.size(), 0u);
  EXPECT_EQ(report.dropped, 0u);
}

TEST_F(TimelineTest, TimelineStatsMatchCollectedReport) {
  set_timeline_capacity(4);
  reset_timeline();
  std::thread worker([] {
    for (int i = 0; i < 6; ++i) {
      TraceSpan span("stats.worker");
    }
  });
  worker.join();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("stats.main");
  }
  const TimelineReport report = collect_timeline();
  const TimelineStats stats = timeline_stats();
  EXPECT_EQ(stats.buffered, report.events.size());
  EXPECT_EQ(stats.dropped, report.dropped);
  EXPECT_EQ(stats.threads, report.thread_count);
}

TEST_F(TimelineTest, PublishTimelineMetricsSetsGauges) {
  set_timeline_capacity(2);
  reset_timeline();
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("gauge.span");
  }
  publish_timeline_metrics();
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  double events = -1.0;
  double dropped = -1.0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "obs.timeline.events") {
      events = gauge.value;
    } else if (gauge.name == "obs.timeline.dropped") {
      dropped = gauge.value;
    }
  }
  EXPECT_EQ(events, 2.0);
  EXPECT_EQ(dropped, 3.0);
}

TEST(TimelineDisabledTest, DisabledSpanConstructionDoesNotAllocate) {
  set_trace_enabled(false);
  set_timeline_enabled(false);
  // Warm up: any lazily initialized statics on this path allocate now.
  {
    HOTSPOT_TRACE_SPAN("warmup");
  }
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    HOTSPOT_TRACE_SPAN("disabled.span");
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "constructing a disabled TraceSpan must not allocate";
}

}  // namespace
}  // namespace hotspot::obs
