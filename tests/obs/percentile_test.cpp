#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"

namespace hotspot::obs {
namespace {

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  const std::size_t index = static_cast<std::size_t>(
      std::min<double>(std::max(0.0, std::ceil(rank) - 1.0),
                       static_cast<double>(values.size() - 1)));
  return values[index];
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  Histogram histogram(default_latency_buckets());
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesFromZero) {
  // All 4 observations in [0, 1): the median interpolates halfway.
  const std::vector<double> bounds = {1.0};
  const std::vector<std::uint64_t> buckets = {4, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 1.0), 1.0);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastBound) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> buckets = {1, 1, 8};
  // 80% of mass is beyond the last bound; high quantiles clamp to it.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, buckets, 0.99), 2.0);
}

TEST(HistogramQuantile, AlwaysFiniteRegressions) {
  // These four shapes used to leak inf/nan through format_double into
  // strict-JSON exports, which util/json (and therefore bench_compare)
  // rejects. Every result must now be finite.
  // Empty bounds + only an overflow count: no bound to clamp to → 0.
  EXPECT_EQ(histogram_quantile({}, {5}, 0.5), 0.0);
  // Empty sample over empty bounds.
  EXPECT_EQ(histogram_quantile({}, {0}, 0.5), 0.0);
  // Prometheus-style +Inf-terminated bounds: interpolation inside the inf
  // bucket was lo + (inf - lo) * fraction = inf (nan at fraction == 0).
  const std::vector<double> inf_bounds = {1.0, 2.0,
                                          std::numeric_limits<double>::infinity()};
  const std::vector<std::uint64_t> inf_buckets = {1, 1, 8, 0};
  for (const double q : {0.0, 0.3, 0.5, 0.99, 1.0}) {
    const double estimate = histogram_quantile(inf_bounds, inf_buckets, q);
    ASSERT_TRUE(std::isfinite(estimate)) << "q=" << q;
    EXPECT_LE(estimate, 2.0) << "q=" << q;  // clamps to last finite bound
  }
  EXPECT_DOUBLE_EQ(histogram_quantile(inf_bounds, inf_buckets, 0.99), 2.0);
  // All bounds non-finite: nothing finite to clamp to → 0.
  const std::vector<double> only_inf = {
      std::numeric_limits<double>::infinity()};
  EXPECT_EQ(histogram_quantile(only_inf, {3, 0}, 0.5), 0.0);
}

TEST(HistogramQuantile, SingleBucketEdgeCases) {
  const std::vector<double> bounds = {1.0};
  // Everything in the overflow bucket of a one-bound histogram clamps to
  // that bound instead of inventing mass past it.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, {0, 7}, 0.5), 1.0);
  // A single observation: every quantile lands inside [0, 1].
  for (const double q : {0.0, 0.5, 1.0}) {
    const double estimate = histogram_quantile(bounds, {1, 0}, q);
    EXPECT_GE(estimate, 0.0);
    EXPECT_LE(estimate, 1.0);
  }
}

TEST(Histogram, RejectsNonFiniteBounds) {
  EXPECT_DEATH(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               "finite");
  EXPECT_DEATH(Histogram({std::nan("")}), "finite");
}

TEST(Histogram, NonFiniteObservationsStayOutOfSum) {
  // inf/nan observations are visible (count + overflow bucket) but must not
  // poison sum(): one bad stopwatch read would otherwise make every later
  // JSON export unparseable.
  Histogram histogram({1.0, 2.0});
  histogram.observe(0.5);
  histogram.observe(std::numeric_limits<double>::infinity());
  histogram.observe(std::nan(""));
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.bucket(2), 2u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5);
  EXPECT_TRUE(std::isfinite(histogram.quantile(0.99)));
}

TEST(HistogramQuantile, MatchesExactQuantilesWithinBucketResolution) {
  // Log-uniform latencies through the default log-spaced buckets: the
  // estimate must land within one bucket ratio (~1.78x) of the exact
  // quantile, the advertised resolution of the estimator.
  util::Rng rng(20260807);
  const std::vector<double> bounds = default_latency_buckets();
  Histogram histogram(bounds);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double exponent = -5.5 + 4.0 * rng.uniform();
    const double value = std::pow(10.0, exponent);
    values.push_back(value);
    histogram.observe(value);
  }
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double estimate = histogram.quantile(q);
    EXPECT_GT(estimate, 0.0);
    const double ratio = estimate / exact;
    EXPECT_GT(ratio, 1.0 / 1.8) << "q=" << q;
    EXPECT_LT(ratio, 1.8) << "q=" << q;
  }
}

TEST(HistogramQuantile, MonotoneInQ) {
  util::Rng rng(7);
  Histogram histogram(default_latency_buckets());
  for (int i = 0; i < 1000; ++i) {
    histogram.observe(1e-4 * (1.0 + 10.0 * rng.uniform()));
  }
  double previous = 0.0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = histogram.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramQuantile, SampleStructMatchesLiveHistogram) {
  Histogram histogram({0.5, 2.0});
  for (const double v : {0.1, 0.2, 0.3, 1.0, 3.0}) {
    histogram.observe(v);
  }
  HistogramSample sample;
  sample.bounds = histogram.bounds();
  sample.buckets = {histogram.bucket(0), histogram.bucket(1),
                    histogram.bucket(2)};
  sample.count = histogram.count();
  sample.sum = histogram.sum();
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(sample.quantile(q), histogram.quantile(q));
  }
}

TEST(HistogramQuantile, DefaultLatencyBucketsAreLogSpaced) {
  const std::vector<double> bounds = default_latency_buckets();
  ASSERT_EQ(bounds.size(), 31u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 0.25), 1e-9);
  }
}

}  // namespace
}  // namespace hotspot::obs
