#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace hotspot::obs {
namespace {

// Every test starts from a clean slate and leaves tracing off.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(true);
    reset_spans();
  }
  void TearDown() override {
    set_trace_enabled(false);
    reset_spans();
  }
};

void spin_for(std::chrono::microseconds duration) {
  const auto deadline = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

TEST_F(TraceTest, RecordsCountAndElapsedTime) {
  for (int i = 0; i < 3; ++i) {
    HOTSPOT_TRACE_SPAN("unit");
    spin_for(std::chrono::microseconds(200));
  }
  const SpanReport report = collect_span_report();
  const SpanStat* stat = report.find("unit");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 3u);
  EXPECT_GE(stat->total_seconds, 3 * 200e-6);
  // A leaf span has no children, so self time equals total time.
  EXPECT_DOUBLE_EQ(stat->self_seconds, stat->total_seconds);
}

TEST_F(TraceTest, NestedSpansSplitSelfFromTotal) {
  {
    HOTSPOT_TRACE_SPAN("outer");
    spin_for(std::chrono::microseconds(300));
    {
      HOTSPOT_TRACE_SPAN("inner");
      spin_for(std::chrono::microseconds(300));
    }
  }
  const SpanReport report = collect_span_report();
  const SpanStat* outer = report.find("outer");
  const SpanStat* inner = report.find("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Outer time is inclusive of inner; self excludes it.
  EXPECT_GE(outer->total_seconds, inner->total_seconds);
  EXPECT_GE(outer->self_seconds, 0.0);
  EXPECT_LE(outer->self_seconds, outer->total_seconds);
  EXPECT_NEAR(outer->self_seconds,
              outer->total_seconds - inner->total_seconds,
              1e-4);
  // Sum of selves never double-counts nesting.
  EXPECT_LE(report.total_self_seconds(), outer->total_seconds + 1e-4);
}

TEST_F(TraceTest, RecursiveSpansAggregateUnderOneName) {
  // Same name nested in itself (recursive layers): counts add, and the
  // inner occurrence's time is not double-charged to self.
  {
    HOTSPOT_TRACE_SPAN("recurse");
    {
      HOTSPOT_TRACE_SPAN("recurse");
      spin_for(std::chrono::microseconds(200));
    }
  }
  const SpanReport report = collect_span_report();
  const SpanStat* stat = report.find("recurse");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 2u);
  EXPECT_LE(stat->self_seconds, stat->total_seconds);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  {
    HOTSPOT_TRACE_SPAN("ghost");
    spin_for(std::chrono::microseconds(100));
  }
  const SpanReport report = collect_span_report();
  EXPECT_EQ(report.find("ghost"), nullptr);
  EXPECT_TRUE(report.spans.empty());
}

TEST_F(TraceTest, ResetClearsRecordedSpans) {
  {
    HOTSPOT_TRACE_SPAN("before");
  }
  reset_spans();
  {
    HOTSPOT_TRACE_SPAN("after");
  }
  const SpanReport report = collect_span_report();
  EXPECT_EQ(report.find("before"), nullptr);
  ASSERT_NE(report.find("after"), nullptr);
  EXPECT_EQ(report.find("after")->count, 1u);
}

TEST_F(TraceTest, MergesSpansAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        HOTSPOT_TRACE_SPAN("shared.work");
        spin_for(std::chrono::microseconds(10));
      }
      TraceSpan own("thread." + std::to_string(t));
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  // Buffers outlive their threads: collect after every worker has exited.
  const SpanReport report = collect_span_report();
  const SpanStat* shared = report.find("shared.work");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->count,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const SpanStat* own = report.find("thread." + std::to_string(t));
    ASSERT_NE(own, nullptr) << "thread " << t;
    EXPECT_EQ(own->count, 1u);
  }
}

TEST_F(TraceTest, ReportIsSortedByName) {
  {
    HOTSPOT_TRACE_SPAN("zz");
  }
  {
    HOTSPOT_TRACE_SPAN("aa");
  }
  {
    HOTSPOT_TRACE_SPAN("mm");
  }
  const SpanReport report = collect_span_report();
  ASSERT_EQ(report.spans.size(), 3u);
  EXPECT_EQ(report.spans[0].first, "aa");
  EXPECT_EQ(report.spans[1].first, "mm");
  EXPECT_EQ(report.spans[2].first, "zz");
}

}  // namespace
}  // namespace hotspot::obs
