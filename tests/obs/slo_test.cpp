// SloMonitor: rolling error-budget math over 1-second buckets. All tests
// drive the *_at variants with explicit nanosecond timestamps, so window
// expiry and burn rates are exact, not timing-dependent.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace hotspot::obs {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

TEST(SloMonitor, EmptyWindowHasFullBudget) {
  SloMonitor monitor(SloConfig{});
  const SloMonitor::Status status = monitor.status_at(0);
  EXPECT_EQ(status.window_total, 0u);
  EXPECT_EQ(status.window_bad, 0u);
  EXPECT_DOUBLE_EQ(status.availability, 1.0);
  EXPECT_DOUBLE_EQ(status.error_budget_remaining, 1.0);
  EXPECT_DOUBLE_EQ(status.slow_burn_rate, 0.0);
}

TEST(SloMonitor, BurnRateIsBadFractionOverAllowedFraction) {
  SloConfig config;
  config.availability_objective = 0.9;  // 10% error budget
  SloMonitor monitor(config);
  // 100 requests in one second, 5 failures: bad fraction 0.05, so the
  // window burns at half the allowed rate and half the budget remains.
  for (int i = 0; i < 95; ++i) {
    monitor.record_at(0, 0.001, true);
  }
  for (int i = 0; i < 5; ++i) {
    monitor.record_at(0, 0.001, false);
  }
  const SloMonitor::Status status = monitor.status_at(0);
  EXPECT_EQ(status.window_total, 100u);
  EXPECT_EQ(status.window_bad, 5u);
  EXPECT_DOUBLE_EQ(status.availability, 0.95);
  EXPECT_DOUBLE_EQ(status.slow_burn_rate, 0.5);
  EXPECT_DOUBLE_EQ(status.error_budget_remaining, 0.5);
}

TEST(SloMonitor, SlowRequestsCountAgainstLatencyObjective) {
  SloConfig config;
  config.availability_objective = 0.9;
  config.p99_objective_seconds = 0.010;
  SloMonitor monitor(config);
  monitor.record_at(0, 0.005, true);  // fast success: good
  monitor.record_at(0, 0.050, true);  // slow success: bad
  monitor.record_at(0, 0.005, false);  // fast failure: bad
  const SloMonitor::Status status = monitor.status_at(0);
  EXPECT_EQ(status.window_total, 3u);
  EXPECT_EQ(status.window_bad, 2u);
}

TEST(SloMonitor, WithoutLatencyObjectiveOnlySuccessMatters) {
  SloMonitor monitor(SloConfig{});  // p99_objective_seconds = 0 (disabled)
  monitor.record_at(0, 100.0, true);
  const SloMonitor::Status status = monitor.status_at(0);
  EXPECT_EQ(status.window_bad, 0u);
}

TEST(SloMonitor, OldBucketsExpireOutOfTheWindow) {
  SloConfig config;
  config.window_seconds = 10;
  config.fast_window_seconds = 2;
  SloMonitor monitor(config);
  for (int i = 0; i < 4; ++i) {
    monitor.record_at(0, 0.001, false);  // all bad, at t=0
  }
  EXPECT_EQ(monitor.status_at(0).window_bad, 4u);
  // Nine seconds later the t=0 bucket is still inside the 10 s window...
  EXPECT_EQ(monitor.status_at(9 * kSecond).window_bad, 4u);
  // ...and one second after that it has aged out entirely.
  const SloMonitor::Status expired = monitor.status_at(10 * kSecond);
  EXPECT_EQ(expired.window_total, 0u);
  EXPECT_DOUBLE_EQ(expired.error_budget_remaining, 1.0);
}

TEST(SloMonitor, FastWindowReactsBeforeSlowWindow) {
  SloConfig config;
  config.availability_objective = 0.9;
  config.window_seconds = 100;
  config.fast_window_seconds = 1;
  SloMonitor monitor(config);
  // 99 seconds of clean traffic, then one fully-failed second.
  for (int s = 0; s < 99; ++s) {
    monitor.record_at(s * kSecond, 0.001, true);
  }
  monitor.record_at(99 * kSecond, 0.001, false);
  const SloMonitor::Status status = monitor.status_at(99 * kSecond);
  // Fast window sees 100% failure (burn 10x allowed); the slow window has
  // diluted it to 1/100 bad.
  EXPECT_DOUBLE_EQ(status.fast_burn_rate, 10.0);
  EXPECT_NEAR(status.slow_burn_rate, 0.1, 1e-9);
  EXPECT_NEAR(status.error_budget_remaining, 0.9, 1e-9);
}

TEST(SloMonitor, LappedBucketIsResetNotAccumulated) {
  SloConfig config;
  config.window_seconds = 2;
  SloMonitor monitor(config);
  monitor.record_at(0, 0.001, false);  // second 0 -> bucket 0
  // Second 2 maps onto the same bucket index; the stale tally must not leak
  // into the new second.
  monitor.record_at(2 * kSecond, 0.001, true);
  const SloMonitor::Status status = monitor.status_at(2 * kSecond);
  EXPECT_EQ(status.window_total, 1u);
  EXPECT_EQ(status.window_bad, 0u);
}

TEST(SloMonitor, PublishSetsGauges) {
  SloConfig config;
  config.availability_objective = 0.5;
  SloMonitor monitor(config);
  monitor.record_at(0, 0.001, true);
  monitor.record_at(0, 0.001, false);
  monitor.publish_at(0);
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  double budget = -1.0;
  double total = -1.0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "serve.slo.error_budget_remaining") {
      budget = gauge.value;
    } else if (gauge.name == "serve.slo.window_total") {
      total = gauge.value;
    }
  }
  // Half the traffic failed against a 50% objective: budget exactly spent.
  EXPECT_DOUBLE_EQ(budget, 0.0);
  EXPECT_DOUBLE_EQ(total, 2.0);
}

}  // namespace
}  // namespace hotspot::obs
