#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace hotspot::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  // The whole point of the atomic fast path: no lost updates under
  // contention from pool workers.
  MetricsRegistry registry;
  Counter& counter = registry.counter("stress");
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter.increment();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(Gauge, SetAddValue) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Gauge, ConcurrentAddsAreExact) {
  // add() is a CAS loop; with a power-of-two delta every add is exact in
  // double arithmetic, so the total must come out bit-exact.
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        gauge.add(0.25);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kAddsPerThread * 0.25);
}

TEST(Histogram, LeBucketSemantics) {
  // Prometheus "le": an observation equal to a bound lands in that bound's
  // bucket; above the last bound goes to the overflow bucket.
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.observe(0.5);  // <= 1.0
  histogram.observe(1.0);  // <= 1.0 (boundary is inclusive)
  histogram.observe(1.5);  // <= 2.0
  histogram.observe(4.0);  // <= 4.0
  histogram.observe(9.0);  // overflow
  ASSERT_EQ(histogram.bucket_count(), 4u);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(2), 1u);
  EXPECT_EQ(histogram.bucket(3), 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.bucket(0), 0u);
}

TEST(Histogram, ConcurrentObservationsKeepExactCount) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("stress", default_duration_buckets());
  constexpr int kThreads = 4;
  constexpr int kObservationsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        histogram.observe(0.001 * (t + 1));
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kObservationsPerThread);
  std::uint64_t bucketed = 0;
  for (std::size_t b = 0; b < histogram.bucket_count(); ++b) {
    bucketed += histogram.bucket(b);
  }
  EXPECT_EQ(bucketed, histogram.count());
}

TEST(HistogramDeath, RejectsBadBounds) {
  EXPECT_DEATH(Histogram({}), "HOTSPOT_CHECK");
  EXPECT_DEATH(Histogram({1.0, 1.0}), "HOTSPOT_CHECK");
  EXPECT_DEATH(Histogram({2.0, 1.0}), "HOTSPOT_CHECK");
}

TEST(MetricsRegistry, ResolvesSameInstrumentByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  a.increment();
  EXPECT_EQ(b.value(), 1u);
  // Distinct kinds share a namespace-per-kind, not one global namespace.
  registry.gauge("hits").set(3.0);
  EXPECT_EQ(registry.counter("hits").value(), 1u);
}

TEST(MetricsRegistry, ConcurrentResolutionIsSafe) {
  // First-touch registration races: many threads resolving the same names
  // must converge on one instrument each and lose no updates.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kIterations; ++i) {
        registry.counter("shared." + std::to_string(i % 4)).increment();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  std::uint64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    total += registry.counter("shared." + std::to_string(i)).value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last").increment(3);
  registry.counter("a.first").increment(1);
  registry.gauge("loss").set(0.125);
  registry.histogram("latency", {1.0, 2.0}).observe(1.5);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[1].name, "z.last");
  ASSERT_NE(snapshot.find_counter("z.last"), nullptr);
  EXPECT_EQ(snapshot.find_counter("z.last")->value, 3u);
  EXPECT_EQ(snapshot.find_counter("missing"), nullptr);
  ASSERT_NE(snapshot.find_gauge("loss"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.find_gauge("loss")->value, 0.125);
  const HistogramSample* histogram = snapshot.find_histogram("latency");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 1u);
  ASSERT_EQ(histogram->buckets.size(), 3u);
  EXPECT_EQ(histogram->buckets[1], 1u);
}

TEST(MetricsRegistry, DeltaSinceSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("steps");
  Gauge& gauge = registry.gauge("loss");
  Histogram& histogram = registry.histogram("seconds", {1.0});
  counter.increment(10);
  gauge.set(5.0);
  histogram.observe(0.5);
  const MetricsSnapshot before = registry.snapshot();
  counter.increment(7);
  gauge.set(2.0);
  histogram.observe(0.5);
  histogram.observe(3.0);
  registry.counter("new.after").increment(1);
  const MetricsSnapshot delta = registry.snapshot().delta_since(before);
  EXPECT_EQ(delta.find_counter("steps")->value, 7u);
  // Instruments born inside the window diff against zero.
  EXPECT_EQ(delta.find_counter("new.after")->value, 1u);
  // Gauges are level values, not rates: the newer reading wins.
  EXPECT_DOUBLE_EQ(delta.find_gauge("loss")->value, 2.0);
  const HistogramSample* diffed = delta.find_histogram("seconds");
  ASSERT_NE(diffed, nullptr);
  EXPECT_EQ(diffed->count, 2u);
  EXPECT_EQ(diffed->buckets[0], 1u);
  EXPECT_EQ(diffed->buckets[1], 1u);
  EXPECT_DOUBLE_EQ(diffed->sum, 3.5);
}

TEST(MetricsRegistry, ResetZeroesWithoutInvalidatingReferences) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("events");
  counter.increment(9);
  registry.gauge("level").set(4.0);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("level").value(), 0.0);
  counter.increment();  // the old reference still reaches the live metric
  EXPECT_EQ(registry.counter("events").value(), 1u);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace hotspot::obs
