#include "obs/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace hotspot::obs {
namespace {

// A small fixed snapshot covering every section; built by hand so the
// golden strings below are stable regardless of registry state.
MetricsSnapshot make_snapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"cache.hit", 7});
  snapshot.counters.push_back({"cache.miss", 2});
  snapshot.gauges.push_back({"loss", 0.125});
  HistogramSample histogram;
  histogram.name = "seconds";
  histogram.bounds = {0.5, 2.0};
  histogram.buckets = {3, 1, 1};
  histogram.count = 5;
  histogram.sum = 4.25;
  snapshot.histograms.push_back(histogram);
  return snapshot;
}

SpanReport make_spans() {
  SpanReport report;
  SpanStat stat;
  stat.count = 4;
  stat.total_seconds = 1.5;
  stat.self_seconds = 0.5;
  report.spans.emplace_back("brnn.forward", stat);
  return report;
}

TEST(ExportJson, GoldenOutput) {
  const std::string json = to_json(make_snapshot(), make_spans());
  EXPECT_EQ(json,
            "{\"counters\": {\"cache.hit\": 7, \"cache.miss\": 2}, "
            "\"gauges\": {\"loss\": 0.125}, "
            "\"histograms\": {\"seconds\": {\"bounds\": [0.5, 2], "
            "\"buckets\": [3, 1, 1], \"count\": 5, \"sum\": 4.25, "
            "\"p50\": 0.416666667, \"p95\": 2, \"p99\": 2}}, "
            "\"spans\": {\"brnn.forward\": {\"count\": 4, "
            "\"total_seconds\": 1.5, \"self_seconds\": 0.5}}}");
}

TEST(ExportJson, EmptySectionsStayValid) {
  EXPECT_EQ(to_json(MetricsSnapshot{}, SpanReport{}),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, "
            "\"spans\": {}}");
}

TEST(ExportJson, EscapesQuotesAndBackslashes) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"weird\"name\\x", 1});
  EXPECT_EQ(to_json(snapshot, SpanReport{}),
            "{\"counters\": {\"weird\\\"name\\\\x\": 1}, \"gauges\": {}, "
            "\"histograms\": {}, \"spans\": {}}");
}

TEST(ExportPrometheus, GoldenOutput) {
  const std::string text = to_prometheus(make_snapshot(), make_spans());
  EXPECT_EQ(text,
            "# TYPE cache_hit counter\n"
            "cache_hit 7\n"
            "# TYPE cache_miss counter\n"
            "cache_miss 2\n"
            "# TYPE loss gauge\n"
            "loss 0.125\n"
            "# TYPE seconds histogram\n"
            "seconds_bucket{le=\"0.5\"} 3\n"
            "seconds_bucket{le=\"2\"} 4\n"
            "seconds_bucket{le=\"+Inf\"} 5\n"
            "seconds_sum 4.25\n"
            "seconds_count 5\n"
            "# TYPE seconds_p50 gauge\n"
            "seconds_p50 0.416666667\n"
            "# TYPE seconds_p95 gauge\n"
            "seconds_p95 2\n"
            "# TYPE seconds_p99 gauge\n"
            "seconds_p99 2\n"
            "# TYPE hotspot_span_seconds gauge\n"
            "hotspot_span_seconds{span=\"brnn.forward\"} 1.5\n"
            "# TYPE hotspot_span_self_seconds gauge\n"
            "hotspot_span_self_seconds{span=\"brnn.forward\"} 0.5\n"
            "# TYPE hotspot_span_count gauge\n"
            "hotspot_span_count{span=\"brnn.forward\"} 4\n");
}

TEST(ExportPrometheus, CumulatesBuckets) {
  // Non-cumulative storage {3, 1, 1} must export as cumulative 3, 4 and the
  // +Inf bucket must equal the total count, per the exposition format.
  const std::string text = to_prometheus(make_snapshot(), SpanReport{});
  EXPECT_NE(text.find("seconds_bucket{le=\"0.5\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("seconds_bucket{le=\"2\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("seconds_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
}

TEST(ExportPrometheus, SanitizesMetricNames) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"binary-conv.pack cache", 1});
  const std::string text = to_prometheus(snapshot, SpanReport{});
  EXPECT_NE(text.find("binary_conv_pack_cache 1\n"), std::string::npos);
}

TEST(ExportPrometheus, DistinctSourceNamesNeverCollide) {
  // Sanitization maps both of these to "scan_batch_seconds"; the exporter
  // must keep them as distinct families rather than silently merging.
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"scan-batch_seconds", 2});
  snapshot.counters.push_back({"scan.batch_seconds", 1});
  const std::string text = to_prometheus(snapshot, SpanReport{});
  EXPECT_NE(text.find("scan_batch_seconds 2\n"), std::string::npos);
  EXPECT_NE(text.find("scan_batch_seconds_2 1\n"), std::string::npos);
}

TEST(ExportPrometheus, HistogramDerivedNamesAreReserved) {
  // A histogram family also owns its _bucket/_sum/_count/_p* series names;
  // a counter that already claimed one of them forces the family to rename.
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"lat_sum", 9});
  HistogramSample histogram;
  histogram.name = "lat";
  histogram.bounds = {1.0};
  histogram.buckets = {1, 0};
  histogram.count = 1;
  histogram.sum = 0.5;
  snapshot.histograms.push_back(histogram);
  const std::string text = to_prometheus(snapshot, SpanReport{});
  EXPECT_NE(text.find("lat_sum 9\n"), std::string::npos);
  EXPECT_NE(text.find("lat_2_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_2_count 1\n"), std::string::npos);
}

TEST(ExportPrometheus, EscapesSpanLabelValues) {
  SpanReport report;
  SpanStat stat;
  stat.count = 1;
  stat.total_seconds = 1.0;
  stat.self_seconds = 1.0;
  report.spans.emplace_back("weird\"span\\name", stat);
  const std::string text = to_prometheus(MetricsSnapshot{}, report);
  EXPECT_NE(
      text.find("hotspot_span_seconds{span=\"weird\\\"span\\\\name\"} 1\n"),
      std::string::npos);
}

TEST(ExportJson, ManifestSectionLeads) {
  RunManifest manifest;
  manifest.git_sha = "abc123";
  manifest.compiler = "gcc test";
  manifest.build_type = "Release";
  manifest.threads = 2;
  manifest.env.emplace_back("HOTSPOT_NUM_THREADS", "2");
  const std::string json =
      to_json(MetricsSnapshot{}, SpanReport{}, manifest);
  EXPECT_EQ(json.find("{\"manifest\": {\"schema_version\": 1, "
                      "\"git_sha\": \"abc123\""),
            0u);
  EXPECT_NE(json.find("\"HOTSPOT_NUM_THREADS\": \"2\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
}

TEST(WriteMetricsJson, RoundTripsThroughFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "/metrics_export.json";
  ASSERT_TRUE(write_metrics_json(path, make_snapshot(), make_spans()));
  std::ifstream in(path, std::ios::binary);
  const std::string contents(std::istreambuf_iterator<char>(in), {});
  EXPECT_EQ(contents, to_json(make_snapshot(), make_spans()) + "\n");
}

TEST(WriteMetricsJson, BadPathFails) {
  EXPECT_FALSE(write_metrics_json("/nonexistent/dir/metrics.json",
                                  make_snapshot(), make_spans()));
}

}  // namespace
}  // namespace hotspot::obs
