#include "dataset/patterns.h"

#include <gtest/gtest.h>

namespace hotspot::dataset {
namespace {

PatternParams test_params() {
  PatternParams params;
  params.clip_nm = 1024;
  params.min_width = 80;
  params.max_width = 288;
  params.min_space = 96;
  params.max_space = 448;
  return params;
}

class FamilyParamTest : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyParamTest, GeometryStaysInsideClip) {
  const PatternParams params = test_params();
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int trial = 0; trial < 50; ++trial) {
    const layout::Pattern pattern =
        generate_pattern(GetParam(), params, rng);
    for (const auto& rect : pattern.rects()) {
      EXPECT_GE(rect.x0, 0);
      EXPECT_GE(rect.y0, 0);
      EXPECT_LE(rect.x1, params.clip_nm);
      EXPECT_LE(rect.y1, params.clip_nm);
      EXPECT_FALSE(rect.empty());
    }
  }
}

TEST_P(FamilyParamTest, CoordinatesOnManufacturingGrid) {
  const PatternParams params = test_params();
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  for (int trial = 0; trial < 20; ++trial) {
    const layout::Pattern pattern =
        generate_pattern(GetParam(), params, rng);
    for (const auto& rect : pattern.rects()) {
      // Clamping to the clip boundary keeps grid alignment because the clip
      // size is itself a grid multiple.
      EXPECT_EQ(rect.x0 % params.grid_nm, 0);
      EXPECT_EQ(rect.y0 % params.grid_nm, 0);
    }
  }
}

TEST_P(FamilyParamTest, UsuallyNonEmpty) {
  const PatternParams params = test_params();
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  int non_empty = 0;
  for (int trial = 0; trial < 30; ++trial) {
    non_empty +=
        generate_pattern(GetParam(), params, rng).empty() ? 0 : 1;
  }
  EXPECT_GE(non_empty, 25);
}

TEST_P(FamilyParamTest, Deterministic) {
  const PatternParams params = test_params();
  util::Rng a(42);
  util::Rng b(42);
  const auto pa = generate_pattern(GetParam(), params, a);
  const auto pb = generate_pattern(GetParam(), params, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.rects()[i], pb.rects()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyParamTest,
    ::testing::Values(Family::kDenseLines, Family::kTipToTip, Family::kJog,
                      Family::kContacts, Family::kComb, Family::kTJunction),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (auto& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

TEST(Patterns, DenseLinesCoverSubstantialArea) {
  const PatternParams params = test_params();
  util::Rng rng(9);
  double total_ratio = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const layout::Pattern pattern = dense_lines(params, rng);
    std::int64_t area = 0;
    for (const auto& rect : pattern.rects()) {
      area += rect.area();
    }
    total_ratio += static_cast<double>(area) /
                   static_cast<double>(params.clip_nm * params.clip_nm);
  }
  // Line gratings should fill a meaningful fraction of the clip on average.
  EXPECT_GT(total_ratio / trials, 0.1);
  EXPECT_LT(total_ratio / trials, 0.9);
}

TEST(Patterns, TJunctionHasBarAndStem) {
  const PatternParams params = test_params();
  util::Rng rng(10);
  const layout::Pattern pattern = t_junction(params, rng);
  // Always a bar plus at least one stem; the runner can fall outside the
  // clip and be clamped away.
  EXPECT_GE(pattern.size(), 2u);
}

}  // namespace
}  // namespace hotspot::dataset
