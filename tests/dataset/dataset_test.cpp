#include "dataset/dataset.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "tensor/tensor_ops.h"

namespace hotspot::dataset {
namespace {

using tensor::Tensor;

ClipSample make_sample(int label, Family family, float fill = 1.0f) {
  Tensor image({4, 4}, fill);
  return ClipSample::from_image(image, label, family);
}

TEST(Dataset, StatsCountClasses) {
  HotspotDataset data;
  data.add(make_sample(1, Family::kDenseLines));
  data.add(make_sample(0, Family::kDenseLines));
  data.add(make_sample(0, Family::kComb));
  const DatasetStats stats = data.stats();
  EXPECT_EQ(stats.hotspots, 1);
  EXPECT_EQ(stats.non_hotspots, 2);
  EXPECT_NEAR(stats.hotspot_ratio(), 1.0 / 3.0, 1e-9);
}

TEST(Dataset, StatsByFamily) {
  HotspotDataset data;
  data.add(make_sample(1, Family::kComb));
  data.add(make_sample(1, Family::kComb));
  data.add(make_sample(0, Family::kJog));
  const auto by_family = data.stats_by_family();
  EXPECT_EQ(by_family[static_cast<int>(Family::kComb)].hotspots, 2);
  EXPECT_EQ(by_family[static_cast<int>(Family::kJog)].non_hotspots, 1);
}

TEST(Dataset, RejectsMixedImageSizes) {
  HotspotDataset data;
  data.add(make_sample(0, Family::kJog));
  ClipSample other = ClipSample::from_image(Tensor({8, 8}), 0, Family::kJog);
  EXPECT_DEATH(data.add(std::move(other)), "HOTSPOT_CHECK");
}

TEST(Dataset, BatchImagesShapeAndValues) {
  HotspotDataset data;
  data.add(make_sample(0, Family::kJog, 0.0f));
  data.add(make_sample(1, Family::kJog, 1.0f));
  const Tensor batch = data.batch_images({1, 0});
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 1, 4, 4}));
  EXPECT_EQ(batch.at4(0, 0, 0, 0), 1.0f);  // first index = sample 1
  EXPECT_EQ(batch.at4(1, 0, 0, 0), 0.0f);
}

TEST(Dataset, BatchLabelsFollowIndices) {
  HotspotDataset data;
  data.add(make_sample(0, Family::kJog));
  data.add(make_sample(1, Family::kJog));
  const auto labels = data.batch_labels({1, 1, 0});
  EXPECT_EQ(labels, (std::vector<int>{1, 1, 0}));
}

TEST(Dataset, AugmentationPreservesContentMass) {
  // Flips permute pixels; the number of set pixels is invariant.
  HotspotDataset data;
  Tensor image({4, 4});
  image.at2(0, 1) = image.at2(2, 3) = 1.0f;
  data.add(ClipSample::from_image(image, 0, Family::kJog));
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Tensor batch = data.batch_images({0}, &rng);
    EXPECT_DOUBLE_EQ(batch.sum(), 2.0);
  }
}

TEST(Dataset, AllIndicesShuffledIsPermutation) {
  HotspotDataset data;
  for (int i = 0; i < 20; ++i) {
    data.add(make_sample(0, Family::kJog));
  }
  util::Rng rng(3);
  const auto indices = data.all_indices(&rng);
  std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Dataset, SaveLoadRoundTrip) {
  HotspotDataset data;
  data.add(make_sample(1, Family::kTipToTip));
  data.add(make_sample(0, Family::kComb, 0.0f));
  const std::string path =
      std::string(::testing::TempDir()) + "/dataset_roundtrip.bin";
  ASSERT_TRUE(data.save(path));
  const auto loaded = HotspotDataset::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->sample(0).label, 1);
  EXPECT_EQ(loaded->sample(0).family, Family::kTipToTip);
  EXPECT_EQ(loaded->sample(1).pixels, data.sample(1).pixels);
}

TEST(Dataset, LoadMissingFileFails) {
  EXPECT_FALSE(HotspotDataset::load("/nonexistent/nope.bin").has_value());
}

TEST(Dataset, EmptyDatasetProperties) {
  HotspotDataset data;
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.image_size(), 0);
  EXPECT_EQ(data.stats().total(), 0);
}

}  // namespace
}  // namespace hotspot::dataset
