#include "dataset/sample.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::dataset {
namespace {

using tensor::Tensor;

TEST(ClipSample, ImageRoundTrip) {
  Tensor image({4, 4});
  image.at2(1, 2) = 1.0f;
  const ClipSample sample =
      ClipSample::from_image(image, 1, Family::kTipToTip);
  EXPECT_EQ(sample.size, 4);
  EXPECT_EQ(sample.label, 1);
  EXPECT_EQ(sample.family, Family::kTipToTip);
  EXPECT_TRUE(tensor::allclose(sample.to_image(), image, 0.0));
}

TEST(ClipSample, FromImageThresholds) {
  Tensor image({2, 2}, {0.4f, 0.6f, 0.5f, 0.0f});
  const ClipSample sample =
      ClipSample::from_image(image, 0, Family::kDenseLines);
  EXPECT_EQ(sample.pixels[0], 0);
  EXPECT_EQ(sample.pixels[1], 1);
  EXPECT_EQ(sample.pixels[2], 1);  // 0.5 rounds up
}

TEST(ClipSample, RejectsNonSquare) {
  EXPECT_DEATH(
      ClipSample::from_image(Tensor({2, 3}), 0, Family::kJog),
      "HOTSPOT_CHECK");
}

TEST(ClipSample, FlipsAreInvolutions) {
  util::Rng rng(1);
  Tensor image({6, 6});
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    image[i] = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  }
  ClipSample sample = ClipSample::from_image(image, 0, Family::kComb);
  const auto original = sample.pixels;
  sample.flip_horizontal();
  sample.flip_horizontal();
  EXPECT_EQ(sample.pixels, original);
  sample.flip_vertical();
  sample.flip_vertical();
  EXPECT_EQ(sample.pixels, original);
}

TEST(ClipSample, FlipMovesCorner) {
  Tensor image({3, 3});
  image.at2(0, 0) = 1.0f;
  ClipSample sample = ClipSample::from_image(image, 0, Family::kContacts);
  sample.flip_horizontal();
  EXPECT_EQ(sample.to_image().at2(0, 2), 1.0f);
  sample.flip_vertical();
  EXPECT_EQ(sample.to_image().at2(2, 2), 1.0f);
}

TEST(Family, Names) {
  EXPECT_STREQ(to_string(Family::kDenseLines), "dense-lines");
  EXPECT_STREQ(to_string(Family::kTJunction), "t-junction");
}

}  // namespace
}  // namespace hotspot::dataset
