#include "dataset/generator.h"

#include <gtest/gtest.h>

namespace hotspot::dataset {
namespace {

BenchmarkConfig tiny_config() {
  BenchmarkConfig config = iccad2012_config(1.0, 16);
  config.train.hotspots = 8;
  config.train.non_hotspots = 20;
  config.test.hotspots = 6;
  config.test.non_hotspots = 10;
  config.seed = 99;
  return config;
}

TEST(Generator, FillsExactQuotas) {
  const Benchmark bench = generate_benchmark(tiny_config());
  EXPECT_EQ(bench.train.stats().hotspots, 8);
  EXPECT_EQ(bench.train.stats().non_hotspots, 20);
  EXPECT_EQ(bench.test.stats().hotspots, 6);
  EXPECT_EQ(bench.test.stats().non_hotspots, 10);
}

TEST(Generator, ImagesHaveConfiguredResolution) {
  const Benchmark bench = generate_benchmark(tiny_config());
  EXPECT_EQ(bench.train.image_size(), 16);
  EXPECT_EQ(bench.test.image_size(), 16);
}

TEST(Generator, DeterministicAtFixedSeed) {
  const Benchmark a = generate_benchmark(tiny_config());
  const Benchmark b = generate_benchmark(tiny_config());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.sample(i).pixels, b.train.sample(i).pixels);
    EXPECT_EQ(a.train.sample(i).label, b.train.sample(i).label);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  BenchmarkConfig other = tiny_config();
  other.seed = 100;
  const Benchmark a = generate_benchmark(tiny_config());
  const Benchmark b = generate_benchmark(other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.train.size() && !any_difference; ++i) {
    any_difference = a.train.sample(i).pixels != b.train.sample(i).pixels;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, TJunctionOnlyInTestSplit) {
  // The unseen-pattern structure of the contest benchmark: training never
  // contains the held-out family.
  BenchmarkConfig config = tiny_config();
  config.test.hotspots = 20;
  config.test.non_hotspots = 40;
  const Benchmark bench = generate_benchmark(config);
  const auto train_stats = bench.train.stats_by_family();
  EXPECT_EQ(
      train_stats[static_cast<int>(Family::kTJunction)].total(), 0);
  const auto test_stats = bench.test.stats_by_family();
  EXPECT_GT(test_stats[static_cast<int>(Family::kTJunction)].total(), 0);
}

TEST(Generator, Table2ConfigMatchesPaperAtFullScale) {
  const BenchmarkConfig config = iccad2012_config(1.0, 128);
  EXPECT_EQ(config.train.hotspots, 1204);
  EXPECT_EQ(config.train.non_hotspots, 17096);
  EXPECT_EQ(config.test.hotspots, 2524);
  EXPECT_EQ(config.test.non_hotspots, 13503);
  EXPECT_EQ(config.image_size, 128);
}

TEST(Generator, ScaledConfigKeepsClassRatio) {
  const BenchmarkConfig config = iccad2012_config(0.1, 32);
  const double full_ratio = 1204.0 / 17096.0;
  const double scaled_ratio =
      static_cast<double>(config.train.hotspots) /
      static_cast<double>(config.train.non_hotspots);
  EXPECT_NEAR(scaled_ratio, full_ratio, 0.02);
}

TEST(Generator, LabelsComeFromLithoOracle) {
  // Re-simulate stored clips' hotspot rate: the generator's label stream
  // must not be constant.
  const Benchmark bench = generate_benchmark(tiny_config());
  int hotspots = 0;
  for (std::size_t i = 0; i < bench.train.size(); ++i) {
    hotspots += bench.train.sample(i).label;
  }
  EXPECT_EQ(hotspots, 8);
}

TEST(GeneratorDeath, ZeroFamilyWeightsRejected) {
  BenchmarkConfig config = tiny_config();
  config.train.family_weights.assign(kFamilyCount, 0.0);
  EXPECT_DEATH(generate_benchmark(config), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::dataset
