#include "eval/evaluation.h"

#include <gtest/gtest.h>

#include "dataset/sample.h"
#include "tensor/tensor.h"

namespace hotspot::eval {
namespace {

using tensor::Tensor;

// A detector that predicts "hotspot iff more than half the pixels are set";
// deterministic so the harness numbers are exactly checkable.
class CoverageDetector : public Detector {
 public:
  std::string name() const override { return "coverage"; }
  void fit(const dataset::HotspotDataset&, util::Rng&) override {
    fitted_ = true;
  }
  std::vector<int> predict(const dataset::HotspotDataset& data) override {
    std::vector<int> out;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto& sample = data.sample(i);
      std::int64_t set = 0;
      for (const auto pixel : sample.pixels) {
        set += pixel;
      }
      out.push_back(set * 2 >
                            static_cast<std::int64_t>(sample.pixels.size())
                        ? 1
                        : 0);
    }
    return out;
  }
  bool fitted_ = false;
};

dataset::HotspotDataset make_data() {
  dataset::HotspotDataset data;
  // 2 true hotspots (one dense = detected, one sparse = missed), 2
  // non-hotspots (one dense = false alarm, one sparse = correct).
  data.add(dataset::ClipSample::from_image(Tensor({4, 4}, 1.0f), 1,
                                           dataset::Family::kComb));
  data.add(dataset::ClipSample::from_image(Tensor({4, 4}), 1,
                                           dataset::Family::kComb));
  data.add(dataset::ClipSample::from_image(Tensor({4, 4}, 1.0f), 0,
                                           dataset::Family::kComb));
  data.add(dataset::ClipSample::from_image(Tensor({4, 4}), 0,
                                           dataset::Family::kComb));
  return data;
}

TEST(EvaluateDetector, FillsRowCorrectly) {
  CoverageDetector detector;
  const auto data = make_data();
  util::Rng rng(1);
  const EvaluationRow row = evaluate_detector(detector, data, data, rng);
  EXPECT_TRUE(detector.fitted_);
  EXPECT_EQ(row.method, "coverage");
  EXPECT_EQ(row.matrix.true_positive, 1);
  EXPECT_EQ(row.matrix.false_negative, 1);
  EXPECT_EQ(row.matrix.false_positive, 1);
  EXPECT_EQ(row.matrix.true_negative, 1);
  EXPECT_DOUBLE_EQ(row.matrix.accuracy(), 0.5);
  EXPECT_GE(row.eval_seconds, 0.0);
}

TEST(EvaluateDetector, OdstUsesMeasuredEvalTime) {
  CoverageDetector detector;
  const auto data = make_data();
  util::Rng rng(2);
  const EvaluationRow row = evaluate_detector(detector, data, data, rng);
  // (FP + TP) * t_ls + total * t_ev with TP=FP=1, total=4.
  const double expected =
      2.0 * 10.0 + 4.0 * row.eval_seconds_per_instance();
  EXPECT_NEAR(row.odst(10.0), expected, 1e-9);
}

TEST(ComparisonTable, PaperColumnLayout) {
  EvaluationRow row;
  row.method = "Ours";
  row.matrix.true_positive = 10;
  row.matrix.false_negative = 0;
  row.matrix.false_positive = 3;
  row.matrix.true_negative = 100;
  row.eval_seconds = 1.0;
  const util::Table table = comparison_table({row});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("FA#"), std::string::npos);
  EXPECT_NE(text.find("Runtime (s)"), std::string::npos);
  EXPECT_NE(text.find("ODST (s)"), std::string::npos);
  EXPECT_NE(text.find("Accu (%)"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);  // perfect recall
}

}  // namespace
}  // namespace hotspot::eval
