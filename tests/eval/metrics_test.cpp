#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace hotspot::eval {
namespace {

TEST(ConfusionMatrix, RecordsAllQuadrants) {
  ConfusionMatrix matrix;
  matrix.record(1, 1);  // TP
  matrix.record(1, 0);  // FN
  matrix.record(0, 1);  // FP
  matrix.record(0, 0);  // TN
  EXPECT_EQ(matrix.true_positive, 1);
  EXPECT_EQ(matrix.false_negative, 1);
  EXPECT_EQ(matrix.false_positive, 1);
  EXPECT_EQ(matrix.true_negative, 1);
  EXPECT_EQ(matrix.total(), 4);
}

TEST(ConfusionMatrix, AccuracyIsHotspotRecall) {
  // Eq. 1: accuracy = TP / (TP + FN) — not overall correctness.
  ConfusionMatrix matrix;
  matrix.true_positive = 9;
  matrix.false_negative = 1;
  matrix.true_negative = 0;  // irrelevant to the metric
  matrix.false_positive = 100;
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.9);
}

TEST(ConfusionMatrix, AccuracyZeroWhenNoHotspots) {
  ConfusionMatrix matrix;
  matrix.true_negative = 10;
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.0);
}

TEST(ConfusionMatrix, FalseAlarmIsFpCount) {
  ConfusionMatrix matrix;
  matrix.false_positive = 2787;  // the paper's headline FA
  EXPECT_EQ(matrix.false_alarm(), 2787);
}

TEST(ConfusionMatrix, OdstMatchesPaperRow) {
  // Reproduce the paper's "Ours" ODST row: FA 2787, accuracy 99.2% of 2524
  // hotspots, 60 s total runtime over 16027 instances, t_ls = 10 s.
  ConfusionMatrix matrix;
  matrix.true_positive = 2504;  // ~99.2% of 2524
  matrix.false_negative = 20;
  matrix.false_positive = 2787;
  matrix.true_negative = 13503 - 2787;
  const double t_ev = 60.0 / 16027.0;
  const double odst = matrix.odst(10.0, t_ev);
  EXPECT_NEAR(odst, 52970.0, 100.0);
}

TEST(ConfusionMatrix, OdstZeroOnEmptyMatrix) {
  // No instances at all: no litho simulation, no scan time.
  const ConfusionMatrix matrix;
  EXPECT_DOUBLE_EQ(matrix.odst(10.0, 0.5), 0.0);
}

TEST(ConfusionMatrix, OdstWithZeroHotspotsIsScanTimeOnly) {
  // All-clear layout with nothing flagged: ODST reduces to total * t_ev.
  ConfusionMatrix matrix;
  matrix.true_negative = 1000;
  EXPECT_DOUBLE_EQ(matrix.odst(10.0, 0.01), 1000 * 0.01);
}

TEST(ConfusionMatrix, OdstCountsFlaggedInstancesOnly) {
  // Eq. 3 charges t_ls for every flagged clip (TP + FP), not for misses.
  ConfusionMatrix matrix;
  matrix.true_positive = 3;
  matrix.false_positive = 2;
  matrix.false_negative = 4;
  matrix.true_negative = 1;
  EXPECT_DOUBLE_EQ(matrix.odst(10.0, 0.0), 50.0);
}

TEST(ConfusionMatrix, AccuracyZeroOnEmptyMatrix) {
  const ConfusionMatrix matrix;
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.0);
  EXPECT_EQ(matrix.total(), 0);
}

TEST(ConfusionMatrix, RejectsBadLabels) {
  ConfusionMatrix matrix;
  EXPECT_DEATH(matrix.record(2, 0), "HOTSPOT_CHECK");
  EXPECT_DEATH(matrix.record(0, -1), "HOTSPOT_CHECK");
}

TEST(Confusion, FromVectors) {
  const ConfusionMatrix matrix =
      confusion({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(matrix.true_positive, 2);
  EXPECT_EQ(matrix.false_negative, 1);
  EXPECT_EQ(matrix.false_positive, 1);
  EXPECT_EQ(matrix.true_negative, 1);
}

TEST(Confusion, SizeMismatchDies) {
  EXPECT_DEATH(confusion({1}, {1, 0}), "HOTSPOT_CHECK");
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix matrix;
  matrix.true_positive = 42;
  EXPECT_NE(matrix.to_string().find("TP=42"), std::string::npos);
}

}  // namespace
}  // namespace hotspot::eval
