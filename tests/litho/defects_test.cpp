#include "litho/defects.h"

#include <gtest/gtest.h>

namespace hotspot::litho {
namespace {

using tensor::Tensor;

// Draws a filled rect on a [h,w] image.
void draw(Tensor& image, std::int64_t y0, std::int64_t x0, std::int64_t y1,
          std::int64_t x1) {
  for (std::int64_t y = y0; y < y1; ++y) {
    for (std::int64_t x = x0; x < x1; ++x) {
      image.at2(y, x) = 1.0f;
    }
  }
}

TEST(Defects, CleanPrintHasNoDefects) {
  Tensor drawn({16, 16});
  draw(drawn, 2, 2, 14, 8);
  const DefectReport report = detect_defects(drawn, drawn, 2);
  EXPECT_FALSE(report.any());
  EXPECT_EQ(report.primary(), DefectType::kNone);
}

TEST(Defects, BridgeWhenTwoShapesPrintMerged) {
  Tensor drawn({16, 16});
  draw(drawn, 2, 2, 14, 6);
  draw(drawn, 2, 10, 14, 14);
  Tensor printed({16, 16});
  draw(printed, 2, 2, 14, 14);  // merged
  const DefectReport report = detect_defects(drawn, printed, 0);
  EXPECT_TRUE(report.bridge);
  EXPECT_EQ(report.primary(), DefectType::kBridge);
}

TEST(Defects, OpenWhenShapeVanishes) {
  Tensor drawn({16, 16});
  draw(drawn, 2, 2, 14, 6);
  const Tensor printed({16, 16});
  const DefectReport report = detect_defects(drawn, printed, 0);
  EXPECT_TRUE(report.open);
}

TEST(Defects, SubPixelSliverIgnoredForOpen) {
  Tensor drawn({16, 16});
  draw(drawn, 0, 0, 1, 2);  // 2 pixels < min_feature_px
  const Tensor printed({16, 16});
  const DefectReport report =
      detect_defects(drawn, printed, 0, /*min_feature_px=*/4);
  EXPECT_FALSE(report.open);
}

TEST(Defects, PinchWhenShapePrintsBroken) {
  Tensor drawn({16, 16});
  draw(drawn, 2, 2, 14, 5);
  Tensor printed({16, 16});
  draw(printed, 2, 2, 6, 5);
  draw(printed, 10, 2, 14, 5);  // split in two
  const DefectReport report = detect_defects(drawn, printed, 0);
  EXPECT_TRUE(report.pinch);
}

TEST(Defects, NeckingWhenCrossSectionBelowCd) {
  // A wire that prints with a 1px-wide waist: fine before erosion, broken
  // after eroding by min_width/2.
  Tensor drawn({16, 16});
  draw(drawn, 2, 4, 14, 10);
  Tensor printed({16, 16});
  draw(printed, 2, 4, 7, 10);
  draw(printed, 9, 4, 14, 10);
  draw(printed, 7, 6, 9, 7);  // 1px-wide waist joining the halves
  const DefectReport report = detect_defects(drawn, printed, /*min_width=*/4);
  EXPECT_FALSE(report.pinch);
  EXPECT_TRUE(report.necking);
}

TEST(Defects, RoundedLineTipDoesNotTriggerNecking) {
  // A printed line with a tapered end only shortens under erosion.
  Tensor drawn({20, 20});
  draw(drawn, 2, 6, 18, 12);
  Tensor printed({20, 20});
  draw(printed, 4, 6, 18, 12);   // prints slightly short
  draw(printed, 3, 7, 4, 11);    // tapered tip rows
  draw(printed, 2, 8, 3, 10);
  const DefectReport report = detect_defects(drawn, printed, /*min_width=*/4);
  EXPECT_FALSE(report.necking) << "tip rounding is not a CD violation";
}

TEST(Erode, ShrinksByRadius) {
  Tensor image({10, 10});
  draw(image, 2, 2, 8, 8);  // 6x6 block
  const Tensor eroded = erode(image, 1);
  EXPECT_EQ(eroded.at2(3, 3), 1.0f);
  EXPECT_EQ(eroded.at2(2, 2), 0.0f);
  EXPECT_NEAR(eroded.sum(), 16.0, 1e-6);  // 4x4 core remains
}

TEST(Erode, BorderTreatedAsSet) {
  // A shape touching the image border must not erode from that side.
  Tensor image({6, 6});
  draw(image, 0, 0, 6, 3);
  const Tensor eroded = erode(image, 1);
  EXPECT_EQ(eroded.at2(0, 0), 1.0f);
  EXPECT_EQ(eroded.at2(5, 0), 1.0f);
  EXPECT_EQ(eroded.at2(0, 2), 0.0f);  // interior edge erodes
}

TEST(Erode, RadiusZeroIsIdentity) {
  Tensor image({5, 5});
  draw(image, 1, 1, 3, 3);
  const Tensor eroded = erode(image, 0);
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    EXPECT_EQ(eroded[i], image[i]);
  }
}

TEST(MinLinewidth, MeasuresWireWidth) {
  Tensor image({12, 12});
  draw(image, 1, 4, 11, 7);  // 3-wide vertical wire
  EXPECT_EQ(min_linewidth(image, nullptr), 3);
}

TEST(MinLinewidth, FindsTheNarrowestFeature) {
  Tensor image({12, 12});
  draw(image, 1, 1, 11, 6);   // 5-wide block
  draw(image, 1, 8, 11, 10);  // 2-wide wire elsewhere
  EXPECT_EQ(min_linewidth(image, nullptr), 2);
}

TEST(MinLinewidth, RestrictionFiltersPixels) {
  Tensor image({12, 12});
  draw(image, 1, 1, 11, 6);
  draw(image, 1, 8, 11, 10);
  Tensor only_block({12, 12});
  draw(only_block, 1, 1, 11, 6);
  EXPECT_EQ(min_linewidth(image, &only_block), 5);
}

TEST(MinLinewidth, EmptyImageReturnsSentinel) {
  EXPECT_GT(min_linewidth(Tensor({8, 8}), nullptr), 1000000);
}

TEST(Defects, PrimaryOrdering) {
  DefectReport report;
  report.necking = true;
  report.bridge = true;
  EXPECT_EQ(report.primary(), DefectType::kBridge);
}

TEST(Defects, TypeNames) {
  EXPECT_STREQ(to_string(DefectType::kBridge), "bridge");
  EXPECT_STREQ(to_string(DefectType::kNecking), "necking");
}

}  // namespace
}  // namespace hotspot::litho
