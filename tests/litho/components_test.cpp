#include "litho/components.h"

#include <gtest/gtest.h>

namespace hotspot::litho {
namespace {

using tensor::Tensor;

TEST(Components, EmptyImageHasNone) {
  const auto labels = label_components(Tensor({4, 4}));
  EXPECT_EQ(labels.count, 0);
}

TEST(Components, SingleBlob) {
  Tensor image({4, 4});
  image.at2(1, 1) = image.at2(1, 2) = image.at2(2, 1) = 1.0f;
  const auto labels = label_components(image);
  EXPECT_EQ(labels.count, 1);
  EXPECT_EQ(labels.at(1, 1), labels.at(2, 1));
  EXPECT_EQ(labels.at(0, 0), -1);
}

TEST(Components, DiagonalIsNotConnected) {
  // 4-connectivity: diagonal neighbours are separate shapes.
  Tensor image({3, 3});
  image.at2(0, 0) = 1.0f;
  image.at2(1, 1) = 1.0f;
  const auto labels = label_components(image);
  EXPECT_EQ(labels.count, 2);
}

TEST(Components, MultipleShapesAndSizes) {
  Tensor image({5, 5});
  image.at2(0, 0) = 1.0f;
  for (std::int64_t x = 0; x < 5; ++x) {
    image.at2(4, x) = 1.0f;
  }
  const auto labels = label_components(image);
  EXPECT_EQ(labels.count, 2);
  const auto sizes = component_sizes(labels);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 6);
}

TEST(Components, FullImageOneComponent) {
  const auto labels = label_components(Tensor({8, 8}, 1.0f));
  EXPECT_EQ(labels.count, 1);
  const auto sizes = component_sizes(labels);
  EXPECT_EQ(sizes[0], 64);
}

TEST(Components, SnakePattern) {
  // An S-shaped path stays one component even when it doubles back.
  Tensor image({5, 5});
  for (std::int64_t x = 0; x < 5; ++x) {
    image.at2(0, x) = 1.0f;
    image.at2(2, x) = 1.0f;
    image.at2(4, x) = 1.0f;
  }
  image.at2(1, 4) = 1.0f;
  image.at2(3, 0) = 1.0f;
  EXPECT_EQ(label_components(image).count, 1);
}

}  // namespace
}  // namespace hotspot::litho
