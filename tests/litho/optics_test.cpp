#include "litho/optics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/tensor_ops.h"

namespace hotspot::litho {
namespace {

using tensor::Tensor;

TEST(GaussianTaps, NormalizedAndSymmetric) {
  const auto taps = gaussian_taps(1.5);
  const double total = std::accumulate(taps.begin(), taps.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (std::size_t i = 0; i < taps.size() / 2; ++i) {
    EXPECT_FLOAT_EQ(taps[i], taps[taps.size() - 1 - i]);
  }
  // Peak at the centre.
  EXPECT_EQ(std::max_element(taps.begin(), taps.end()) - taps.begin(),
            static_cast<std::ptrdiff_t>(taps.size() / 2));
}

TEST(GaussianBlur, PreservesConstantInterior) {
  Tensor image({21, 21}, 1.0f);
  const Tensor blurred = gaussian_blur(image, 1.0);
  EXPECT_NEAR(blurred.at2(10, 10), 1.0f, 1e-4);
  // Border decays because the outside field is empty.
  EXPECT_LT(blurred.at2(0, 0), 0.5f);
}

TEST(GaussianBlur, MassConservedAwayFromBorders) {
  Tensor image({31, 31});
  image.at2(15, 15) = 1.0f;
  const Tensor blurred = gaussian_blur(image, 2.0);
  EXPECT_NEAR(blurred.sum(), 1.0, 1e-4);
  EXPECT_GT(blurred.at2(15, 15), blurred.at2(15, 10));
}

TEST(GaussianBlur, WiderSigmaSpreadsMore) {
  Tensor image({31, 31});
  image.at2(15, 15) = 1.0f;
  const Tensor narrow = gaussian_blur(image, 1.0);
  const Tensor wide = gaussian_blur(image, 3.0);
  EXPECT_GT(narrow.at2(15, 15), wide.at2(15, 15));
}

TEST(Develop, ThresholdSemantics) {
  Tensor intensity({3}, {0.2f, 0.45f, 0.9f});
  const Tensor printed = develop(intensity, 0.45f);
  EXPECT_EQ(printed[0], 0.0f);
  EXPECT_EQ(printed[1], 1.0f);  // >= threshold prints
  EXPECT_EQ(printed[2], 1.0f);
}

TEST(AerialImage, NarrowLinePeakBelowWideLine) {
  // The printability mechanism behind pinch/open labels: a narrow line's
  // peak aerial intensity is lower than a wide line's.
  Tensor narrow({21, 21});
  Tensor wide({21, 21});
  for (std::int64_t y = 0; y < 21; ++y) {
    narrow.at2(y, 10) = 1.0f;
    for (std::int64_t x = 8; x <= 12; ++x) {
      wide.at2(y, x) = 1.0f;
    }
  }
  const double sigma = 2.0;
  EXPECT_LT(aerial_image(narrow, sigma).at2(10, 10),
            aerial_image(wide, sigma).at2(10, 10));
}

TEST(AerialImage, GapIntensityRisesAsGapShrinks) {
  // The bridging mechanism: mid-gap intensity between two lines grows as
  // the gap narrows.
  auto gap_intensity = [](std::int64_t half_gap) {
    Tensor image({21, 41});
    for (std::int64_t y = 0; y < 21; ++y) {
      for (std::int64_t x = 0; x < 41; ++x) {
        if (x < 20 - half_gap || x > 20 + half_gap) {
          image.at2(y, x) = 1.0f;
        }
      }
    }
    return aerial_image(image, 2.0).at2(10, 20);
  };
  EXPECT_GT(gap_intensity(1), gap_intensity(3));
  EXPECT_GT(gap_intensity(3), gap_intensity(6));
}

}  // namespace
}  // namespace hotspot::litho
