#include "litho/simulator.h"

#include <gtest/gtest.h>

namespace hotspot::litho {
namespace {

using layout::Clip;
using layout::Pattern;
using layout::Rect;

SimulatorConfig test_config() {
  SimulatorConfig config;
  config.grid = 64;
  config.sigma_nm = 80.0;
  config.resist_threshold = 0.45f;
  config.min_width_nm = 64;
  return config;
}

Clip line_pair(std::int64_t width, std::int64_t gap) {
  // Two vertical lines spanning the clip, separated by `gap`.
  Pattern pattern;
  const std::int64_t x0 = 400;
  pattern.add(Rect{x0, 0, x0 + width, 1024});
  pattern.add(Rect{x0 + width + gap, 0, x0 + 2 * width + gap, 1024});
  return Clip{std::move(pattern), 1024};
}

TEST(Simulator, SigmaPixelConversion) {
  const Simulator sim(test_config());
  EXPECT_NEAR(sim.sigma_px(1024), 80.0 / 16.0, 1e-9);
}

TEST(Simulator, WideWellSeparatedLinesAreClean) {
  const Simulator sim(test_config());
  const auto result = sim.simulate(line_pair(200, 400));
  EXPECT_FALSE(result.is_hotspot())
      << "bridge=" << result.defects.bridge << " open=" << result.defects.open
      << " pinch=" << result.defects.pinch
      << " neck=" << result.defects.necking;
}

TEST(Simulator, TightGapBridges) {
  const Simulator sim(test_config());
  const auto result = sim.simulate(line_pair(200, 48));
  EXPECT_TRUE(result.defects.bridge);
}

TEST(Simulator, NarrowLineFailsToPrint) {
  const Simulator sim(test_config());
  Pattern pattern;
  pattern.add(Rect{480, 0, 520, 1024});  // 40nm << print limit
  const auto result = sim.simulate(Clip{std::move(pattern), 1024});
  EXPECT_TRUE(result.defects.open || result.defects.necking ||
              result.defects.pinch);
}

TEST(Simulator, MonotonicGapSeverity) {
  // Property: if a gap bridges, every smaller gap also bridges.
  const Simulator sim(test_config());
  bool bridged_before = false;
  for (const std::int64_t gap : {400, 280, 160, 96, 48}) {
    const bool bridged = sim.simulate(line_pair(200, gap)).defects.bridge;
    EXPECT_TRUE(bridged || !bridged_before)
        << "gap " << gap << " clean after a larger gap bridged";
    bridged_before = bridged_before || bridged;
  }
  EXPECT_TRUE(bridged_before) << "no gap bridged at all";
}

TEST(Simulator, MonotonicWidthSeverity) {
  // Property: if an isolated line of some width fails, every narrower line
  // fails too.
  const Simulator sim(test_config());
  bool failed_before = false;
  for (const std::int64_t width : {240, 160, 112, 72, 40}) {
    Pattern pattern;
    pattern.add(Rect{512 - width / 2, 0, 512 + width / 2, 1024});
    const bool failed = sim.is_hotspot(Clip{std::move(pattern), 1024});
    EXPECT_TRUE(failed || !failed_before)
        << "width " << width << " clean after a wider line failed";
    failed_before = failed_before || failed;
  }
  EXPECT_TRUE(failed_before) << "even a 40nm line printed against an 80nm PSF";
}

TEST(Simulator, ResultRastersHaveConfiguredGrid) {
  const Simulator sim(test_config());
  const auto result = sim.simulate(line_pair(200, 400));
  EXPECT_EQ(result.drawn.shape(), (tensor::Shape{64, 64}));
  EXPECT_EQ(result.aerial.shape(), (tensor::Shape{64, 64}));
  EXPECT_EQ(result.printed.shape(), (tensor::Shape{64, 64}));
}

TEST(Simulator, GuardBandBounded) {
  const Simulator sim(test_config());
  EXPECT_LE(sim.margin_px(1024), test_config().grid / 4);
  SimulatorConfig explicit_margin = test_config();
  explicit_margin.analysis_margin_px = 3;
  EXPECT_EQ(Simulator(explicit_margin).margin_px(1024), 3);
}

TEST(Simulator, EmptyClipIsClean) {
  const Simulator sim(test_config());
  EXPECT_FALSE(sim.is_hotspot(Clip{Pattern(), 1024}));
}

TEST(Simulator, DeterministicAcrossCalls) {
  const Simulator sim(test_config());
  const Clip clip = line_pair(120, 120);
  EXPECT_EQ(sim.is_hotspot(clip), sim.is_hotspot(clip));
}

}  // namespace
}  // namespace hotspot::litho
