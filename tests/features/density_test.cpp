#include "features/density.h"

#include <gtest/gtest.h>

namespace hotspot::features {
namespace {

using tensor::Tensor;

TEST(Density, UniformImageUniformDensity) {
  const Tensor image({8, 8}, 1.0f);
  const auto features = density_features(image, 4);
  ASSERT_EQ(features.size(), 16u);
  for (const float value : features) {
    EXPECT_FLOAT_EQ(value, 1.0f);
  }
}

TEST(Density, LocalizedContentLocalizedCell) {
  Tensor image({8, 8});
  // Fill only the top-left 4x4 quadrant.
  for (std::int64_t y = 0; y < 4; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) {
      image.at2(y, x) = 1.0f;
    }
  }
  const auto features = density_features(image, 2);
  EXPECT_FLOAT_EQ(features[0], 1.0f);
  EXPECT_FLOAT_EQ(features[1], 0.0f);
  EXPECT_FLOAT_EQ(features[2], 0.0f);
  EXPECT_FLOAT_EQ(features[3], 0.0f);
}

TEST(Density, FractionalCoverage) {
  Tensor image({4, 4});
  image.at2(0, 0) = 1.0f;  // 1 of 4 pixels in the top-left 2x2 cell
  const auto features = density_features(image, 2);
  EXPECT_FLOAT_EQ(features[0], 0.25f);
}

TEST(Density, MatrixShapeAndContent) {
  dataset::HotspotDataset data;
  data.add(dataset::ClipSample::from_image(Tensor({8, 8}, 1.0f), 1,
                                           dataset::Family::kComb));
  data.add(dataset::ClipSample::from_image(Tensor({8, 8}), 0,
                                           dataset::Family::kComb));
  const Tensor matrix = density_matrix(data, 4);
  EXPECT_EQ(matrix.shape(), (tensor::Shape{2, 16}));
  EXPECT_FLOAT_EQ(matrix.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(matrix.at2(1, 0), 0.0f);
}

TEST(Density, RequiresDivisibleGrid) {
  EXPECT_DEATH(density_features(Tensor({6, 6}), 4), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::features
