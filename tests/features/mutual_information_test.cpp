#include "features/mutual_information.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hotspot::features {
namespace {

using tensor::Tensor;

TEST(MutualInformation, PerfectPredictorHasHighMi) {
  // Feature equals the label: MI = H(label) = ln 2 for balanced classes.
  const std::int64_t n = 100;
  Tensor features({n, 1});
  std::vector<int> labels(n);
  for (std::int64_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % 2;
    features.at2(i, 0) = static_cast<float>(i % 2);
  }
  EXPECT_NEAR(mutual_information(features, 0, labels), std::log(2.0), 0.01);
}

TEST(MutualInformation, ConstantFeatureIsZero) {
  Tensor features({50, 1}, 3.0f);
  std::vector<int> labels(50, 0);
  for (std::size_t i = 0; i < 25; ++i) {
    labels[i] = 1;
  }
  EXPECT_DOUBLE_EQ(mutual_information(features, 0, labels), 0.0);
}

TEST(MutualInformation, IndependentFeatureNearZero) {
  util::Rng rng(1);
  const std::int64_t n = 2000;
  Tensor features({n, 1});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    features.at2(i, 0) = static_cast<float>(rng.uniform());
    labels[static_cast<std::size_t>(i)] = rng.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_LT(mutual_information(features, 0, labels), 0.02);
}

TEST(MutualInformation, NonNegative) {
  util::Rng rng(2);
  const std::int64_t n = 200;
  Tensor features({n, 3});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < 3; ++c) {
      features.at2(i, c) = static_cast<float>(rng.normal());
    }
    labels[static_cast<std::size_t>(i)] = rng.bernoulli(0.3) ? 1 : 0;
  }
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_GE(mutual_information(features, c, labels), 0.0);
  }
}

TEST(SelectTopFeatures, RanksInformativeFirst) {
  util::Rng rng(3);
  const std::int64_t n = 500;
  Tensor features({n, 3});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    labels[static_cast<std::size_t>(i)] = label;
    features.at2(i, 0) = static_cast<float>(rng.uniform());  // noise
    features.at2(i, 1) = static_cast<float>(label) +
                         static_cast<float>(rng.normal(0.0, 0.1));  // strong
    features.at2(i, 2) = static_cast<float>(rng.uniform());  // noise
  }
  const auto top = select_top_features(features, labels, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 1);
}

TEST(SelectTopFeatures, KeepAllReturnsPermutation) {
  util::Rng rng(4);
  Tensor features = Tensor::normal({50, 4}, rng, 0.0f, 1.0f);
  std::vector<int> labels(50);
  for (std::size_t i = 0; i < 50; ++i) {
    labels[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  const auto all = select_top_features(features, labels, 4);
  std::set<std::int64_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(ProjectColumns, SelectsAndOrders) {
  Tensor features({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor projected = project_columns(features, {2, 0});
  EXPECT_EQ(projected.shape(), (tensor::Shape{2, 2}));
  EXPECT_FLOAT_EQ(projected.at2(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(projected.at2(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(projected.at2(1, 0), 6.0f);
}

}  // namespace
}  // namespace hotspot::features
