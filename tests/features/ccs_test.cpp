#include "features/ccs.h"

#include <gtest/gtest.h>

namespace hotspot::features {
namespace {

using tensor::Tensor;

TEST(Ccs, FeatureCountMatchesSpec) {
  const CcsSpec spec{6, 4, 8};
  const auto features = ccs_features(Tensor({32, 32}), spec);
  EXPECT_EQ(features.size(), 24u);
}

TEST(Ccs, EmptyImageAllZero) {
  const auto features = ccs_features(Tensor({32, 32}), CcsSpec{});
  for (const float value : features) {
    EXPECT_FLOAT_EQ(value, 0.0f);
  }
}

TEST(Ccs, FullImageAllOne) {
  const auto features = ccs_features(Tensor({32, 32}, 1.0f), CcsSpec{});
  for (const float value : features) {
    EXPECT_FLOAT_EQ(value, 1.0f);
  }
}

TEST(Ccs, ValuesAreCoverageFractions) {
  util::Rng rng(1);
  Tensor image({32, 32});
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    image[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  for (const float value : ccs_features(image, CcsSpec{})) {
    EXPECT_GE(value, 0.0f);
    EXPECT_LE(value, 1.0f);
  }
}

TEST(Ccs, AngularLocalization) {
  // Content only on the right half: segments sampling the left half of each
  // circle stay zero while some right-half segment fires.
  Tensor image({33, 33});
  for (std::int64_t y = 0; y < 33; ++y) {
    for (std::int64_t x = 25; x < 33; ++x) {
      image.at2(y, x) = 1.0f;
    }
  }
  const CcsSpec spec{4, 8, 8};
  const auto features = ccs_features(image, spec);
  float right_mass = 0.0f;
  float total = 0.0f;
  for (std::size_t c = 0; c < 4; ++c) {
    // Segment 0 starts at angle 0 (pointing right).
    right_mass += features[c * 8 + 0];
    for (std::size_t s = 0; s < 8; ++s) {
      total += features[c * 8 + s];
    }
  }
  EXPECT_GT(right_mass, 0.0f);
  EXPECT_LT(total, 4.0f * 8.0f * 0.5f);
}

TEST(Ccs, MatrixOverDataset) {
  dataset::HotspotDataset data;
  data.add(dataset::ClipSample::from_image(Tensor({16, 16}, 1.0f), 1,
                                           dataset::Family::kJog));
  const CcsSpec spec{3, 4, 4};
  const Tensor matrix = ccs_matrix(data, spec);
  EXPECT_EQ(matrix.shape(), (tensor::Shape{1, 12}));
  EXPECT_FLOAT_EQ(matrix.at2(0, 0), 1.0f);
}

}  // namespace
}  // namespace hotspot::features
