#include "features/dct_tensor.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::features {
namespace {

using tensor::Tensor;

TEST(DctTensor, ShapeFollowsSpec) {
  const DctTensorSpec spec{4, 8};
  const Tensor features = dct_feature_tensor(Tensor({32, 32}), spec);
  EXPECT_EQ(features.shape(), (tensor::Shape{8, 8, 8}));
}

TEST(DctTensor, DcChannelEncodesTileDensity) {
  const DctTensorSpec spec{4, 4};
  Tensor image({8, 8});
  for (std::int64_t y = 0; y < 4; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) {
      image.at2(y, x) = 1.0f;  // only the top-left tile is full
    }
  }
  const Tensor features = dct_feature_tensor(image, spec);
  EXPECT_GT(features.at({0, 0, 0}), 1.0f);
  EXPECT_NEAR(features.at({0, 0, 1}), 0.0f, 1e-5);
  EXPECT_NEAR(features.at({0, 1, 0}), 0.0f, 1e-5);
}

TEST(DctTensor, BatchStacksSamples) {
  dataset::HotspotDataset data;
  data.add(dataset::ClipSample::from_image(Tensor({8, 8}, 1.0f), 1,
                                           dataset::Family::kComb));
  data.add(dataset::ClipSample::from_image(Tensor({8, 8}), 0,
                                           dataset::Family::kComb));
  const DctTensorSpec spec{4, 4};
  const Tensor batch = dct_feature_batch(data, {0, 1}, spec);
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 4, 2, 2}));
  EXPECT_GT(batch.at4(0, 0, 0, 0), 1.0f);
  EXPECT_NEAR(batch.at4(1, 0, 0, 0), 0.0f, 1e-6);
}

TEST(DctTensor, TranslationChangesFeatures) {
  // Unlike global pooling, block DCT keeps spatial information (the paper's
  // critique of [16] concerns the DCT truncation, not location): content in
  // different tiles yields different feature tensors.
  const DctTensorSpec spec{4, 4};
  Tensor left({8, 8});
  Tensor right({8, 8});
  left.at2(0, 0) = 1.0f;
  right.at2(0, 7) = 1.0f;
  const Tensor fl = dct_feature_tensor(left, spec);
  const Tensor fr = dct_feature_tensor(right, spec);
  EXPECT_GT(tensor::max_abs_diff(fl, fr), 0.01);
}

}  // namespace
}  // namespace hotspot::features
