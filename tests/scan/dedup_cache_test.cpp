#include "scan/dedup_cache.h"

#include <gtest/gtest.h>

namespace hotspot::scan {
namespace {

RasterKey make_key(std::initializer_list<int> bits) {
  RasterKey key;
  for (const int bit : bits) {
    key.push_back(static_cast<std::uint8_t>(bit));
  }
  return key;
}

TEST(RasterDedupCache, FindAfterInsert) {
  RasterDedupCache cache;
  const RasterKey a = make_key({1, 0, 1, 1});
  const RasterKey b = make_key({0, 0, 1, 1});
  EXPECT_EQ(cache.find(hash_raster(a), a), -1);
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 7));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 9));
  EXPECT_EQ(cache.find(hash_raster(a), a), 7);
  EXPECT_EQ(cache.find(hash_raster(b), b), 9);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RasterDedupCache, CollisionResolvedByFullComparison) {
  // Two different keys forced into the same bucket must still resolve to
  // their own entries — the verdict replay can never trust the hash alone.
  RasterDedupCache cache;
  const RasterKey a = make_key({1, 1, 0, 0});
  const RasterKey b = make_key({0, 0, 1, 1});
  const std::uint64_t shared_hash = 42;
  EXPECT_TRUE(cache.insert(shared_hash, a, 1));
  EXPECT_TRUE(cache.insert(shared_hash, b, 2));
  EXPECT_EQ(cache.find(shared_hash, a), 1);
  EXPECT_EQ(cache.find(shared_hash, b), 2);
  EXPECT_EQ(cache.find(shared_hash, make_key({1, 0, 1, 0})), -1);
}

TEST(RasterDedupCache, CapacityBoundsInsertion) {
  RasterDedupCache cache(/*max_entries=*/2);
  const RasterKey a = make_key({1});
  const RasterKey b = make_key({0});
  const RasterKey c = make_key({1, 1});
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  EXPECT_FALSE(cache.insert(hash_raster(c), c, 2));  // full: dropped
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(hash_raster(c), c), -1);
  // Existing entries survive the rejected insert.
  EXPECT_EQ(cache.find(hash_raster(a), a), 0);
}

TEST(HashRaster, LengthDisambiguatesZeroRuns) {
  // All-zero rasters of different sizes hash differently: the byte stream
  // alone would collide (FNV over 0x00 bytes), the mixed-in length must not.
  const RasterKey four(4, 0);
  const RasterKey eight(8, 0);
  EXPECT_NE(hash_raster(four), hash_raster(eight));
}

TEST(HashRaster, SensitiveToEveryPixel) {
  RasterKey base(64, 0);
  const std::uint64_t reference = hash_raster(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    RasterKey flipped = base;
    flipped[i] = 1;
    EXPECT_NE(hash_raster(flipped), reference) << "pixel " << i;
  }
}

}  // namespace
}  // namespace hotspot::scan
