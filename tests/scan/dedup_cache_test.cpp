#include "scan/dedup_cache.h"

#include <gtest/gtest.h>

namespace hotspot::scan {
namespace {

RasterKey make_key(std::initializer_list<int> bits) {
  RasterKey key;
  for (const int bit : bits) {
    key.push_back(static_cast<std::uint8_t>(bit));
  }
  return key;
}

TEST(RasterDedupCache, FindAfterInsert) {
  RasterDedupCache cache;
  const RasterKey a = make_key({1, 0, 1, 1});
  const RasterKey b = make_key({0, 0, 1, 1});
  EXPECT_EQ(cache.find(hash_raster(a), a), -1);
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 7));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 9));
  EXPECT_EQ(cache.find(hash_raster(a), a), 7);
  EXPECT_EQ(cache.find(hash_raster(b), b), 9);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RasterDedupCache, CollisionResolvedByFullComparison) {
  // Two different keys forced into the same bucket must still resolve to
  // their own entries — the verdict replay can never trust the hash alone.
  RasterDedupCache cache;
  const RasterKey a = make_key({1, 1, 0, 0});
  const RasterKey b = make_key({0, 0, 1, 1});
  const std::uint64_t shared_hash = 42;
  EXPECT_TRUE(cache.insert(shared_hash, a, 1));
  EXPECT_TRUE(cache.insert(shared_hash, b, 2));
  EXPECT_EQ(cache.find(shared_hash, a), 1);
  EXPECT_EQ(cache.find(shared_hash, b), 2);
  EXPECT_EQ(cache.find(shared_hash, make_key({1, 0, 1, 0})), -1);
}

TEST(RasterDedupCache, EntryCapEvictsLeastRecentlyUsed) {
  RasterDedupCache cache(/*max_entries=*/2);
  const RasterKey a = make_key({1});
  const RasterKey b = make_key({0});
  const RasterKey c = make_key({1, 1});
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  // Full: the third insert evicts `a` (the least recently used) instead of
  // dropping the new raster.
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(hash_raster(a), a), -1);
  EXPECT_EQ(cache.find(hash_raster(b), b), 1);
  EXPECT_EQ(cache.find(hash_raster(c), c), 2);
}

TEST(RasterDedupCache, FindRefreshesRecency) {
  RasterDedupCache cache(/*max_entries=*/2);
  const RasterKey a = make_key({1});
  const RasterKey b = make_key({0});
  const RasterKey c = make_key({1, 1});
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  // Touch `a`: now `b` is the LRU victim.
  EXPECT_EQ(cache.find(hash_raster(a), a), 0);
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.find(hash_raster(a), a), 0);
  EXPECT_EQ(cache.find(hash_raster(b), b), -1);
}

TEST(RasterDedupCache, ByteCapEvictsUntilPayloadFits) {
  RasterDedupCache cache(/*max_entries=*/0, /*max_bytes=*/8);
  const RasterKey a(4, 1);
  const RasterKey b(4, 0);
  RasterKey c(6, 1);
  c[0] = 0;  // distinct from a
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  EXPECT_EQ(cache.bytes(), 8u);
  // 6 more bytes need both 4-byte residents evicted.
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 6u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.find(hash_raster(c), c), 2);
}

TEST(RasterDedupCache, OversizedRasterIsRejectedWithoutEvicting) {
  RasterDedupCache cache(/*max_entries=*/0, /*max_bytes=*/4);
  const RasterKey small = make_key({1, 0});
  const RasterKey huge(8, 1);
  EXPECT_TRUE(cache.insert(hash_raster(small), small, 0));
  // Larger than the whole cap: dropped, and the resident entry survives.
  EXPECT_FALSE(cache.insert(hash_raster(huge), huge, 1));
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.find(hash_raster(small), small), 0);
  EXPECT_EQ(cache.find(hash_raster(huge), huge), -1);
}

TEST(RasterDedupCache, UnboundedByDefault) {
  RasterDedupCache cache;
  for (int i = 0; i < 256; ++i) {
    RasterKey key = make_key({i & 1, (i >> 1) & 1});
    key.push_back(static_cast<std::uint8_t>(i));
    EXPECT_TRUE(cache.insert(hash_raster(key), key, i));
  }
  EXPECT_EQ(cache.size(), 256u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(HashRaster, LengthDisambiguatesZeroRuns) {
  // All-zero rasters of different sizes hash differently: the byte stream
  // alone would collide (FNV over 0x00 bytes), the mixed-in length must not.
  const RasterKey four(4, 0);
  const RasterKey eight(8, 0);
  EXPECT_NE(hash_raster(four), hash_raster(eight));
}

TEST(HashRaster, SensitiveToEveryPixel) {
  RasterKey base(64, 0);
  const std::uint64_t reference = hash_raster(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    RasterKey flipped = base;
    flipped[i] = 1;
    EXPECT_NE(hash_raster(flipped), reference) << "pixel " << i;
  }
}

}  // namespace
}  // namespace hotspot::scan
