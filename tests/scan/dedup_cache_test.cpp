#include "scan/dedup_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "obs/metrics.h"

namespace hotspot::scan {
namespace {

RasterKey make_key(std::initializer_list<int> bits) {
  RasterKey key;
  for (const int bit : bits) {
    key.push_back(static_cast<std::uint8_t>(bit));
  }
  return key;
}

TEST(RasterDedupCache, FindAfterInsert) {
  RasterDedupCache cache;
  const RasterKey a = make_key({1, 0, 1, 1});
  const RasterKey b = make_key({0, 0, 1, 1});
  EXPECT_EQ(cache.find(hash_raster(a), a), -1);
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 7));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 9));
  EXPECT_EQ(cache.find(hash_raster(a), a), 7);
  EXPECT_EQ(cache.find(hash_raster(b), b), 9);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RasterDedupCache, CollisionResolvedByFullComparison) {
  // Two different keys forced into the same bucket must still resolve to
  // their own entries — the verdict replay can never trust the hash alone.
  RasterDedupCache cache;
  const RasterKey a = make_key({1, 1, 0, 0});
  const RasterKey b = make_key({0, 0, 1, 1});
  const std::uint64_t shared_hash = 42;
  EXPECT_TRUE(cache.insert(shared_hash, a, 1));
  EXPECT_TRUE(cache.insert(shared_hash, b, 2));
  EXPECT_EQ(cache.find(shared_hash, a), 1);
  EXPECT_EQ(cache.find(shared_hash, b), 2);
  EXPECT_EQ(cache.find(shared_hash, make_key({1, 0, 1, 0})), -1);
}

TEST(RasterDedupCache, EntryCapEvictsLeastRecentlyUsed) {
  RasterDedupCache cache(/*max_entries=*/2);
  const RasterKey a = make_key({1});
  const RasterKey b = make_key({0});
  const RasterKey c = make_key({1, 1});
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  // Full: the third insert evicts `a` (the least recently used) instead of
  // dropping the new raster.
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(hash_raster(a), a), -1);
  EXPECT_EQ(cache.find(hash_raster(b), b), 1);
  EXPECT_EQ(cache.find(hash_raster(c), c), 2);
}

TEST(RasterDedupCache, FindRefreshesRecency) {
  RasterDedupCache cache(/*max_entries=*/2);
  const RasterKey a = make_key({1});
  const RasterKey b = make_key({0});
  const RasterKey c = make_key({1, 1});
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  // Touch `a`: now `b` is the LRU victim.
  EXPECT_EQ(cache.find(hash_raster(a), a), 0);
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.find(hash_raster(a), a), 0);
  EXPECT_EQ(cache.find(hash_raster(b), b), -1);
}

TEST(RasterDedupCache, ByteCapEvictsUntilPayloadFits) {
  RasterDedupCache cache(/*max_entries=*/0, /*max_bytes=*/8);
  const RasterKey a(4, 1);
  const RasterKey b(4, 0);
  RasterKey c(6, 1);
  c[0] = 0;  // distinct from a
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  EXPECT_EQ(cache.bytes(), 8u);
  // 6 more bytes need both 4-byte residents evicted.
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 6u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.find(hash_raster(c), c), 2);
}

TEST(RasterDedupCache, OversizedRasterIsRejectedWithoutEvicting) {
  RasterDedupCache cache(/*max_entries=*/0, /*max_bytes=*/4);
  const RasterKey small = make_key({1, 0});
  const RasterKey huge(8, 1);
  EXPECT_TRUE(cache.insert(hash_raster(small), small, 0));
  // Larger than the whole cap: dropped, and the resident entry survives.
  EXPECT_FALSE(cache.insert(hash_raster(huge), huge, 1));
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.find(hash_raster(small), small), 0);
  EXPECT_EQ(cache.find(hash_raster(huge), huge), -1);
}

TEST(RasterDedupCache, UnboundedByDefault) {
  RasterDedupCache cache;
  for (int i = 0; i < 256; ++i) {
    RasterKey key = make_key({i & 1, (i >> 1) & 1});
    key.push_back(static_cast<std::uint8_t>(i));
    EXPECT_TRUE(cache.insert(hash_raster(key), key, i));
  }
  EXPECT_EQ(cache.size(), 256u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(RasterDedupCache, ReinsertDoesNotDoubleCount) {
  // Re-inserting a raster that is already resident used to push a duplicate
  // LRU node and count its bytes twice, shrinking the effective byte cap
  // and eventually corrupting bytes() on eviction of the twin.
  RasterDedupCache cache(/*max_entries=*/0, /*max_bytes=*/16);
  const RasterKey a(8, 1);
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 5));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 8u);
  EXPECT_EQ(cache.evictions(), 0u);
  // The overwrite updated the entry id in place.
  EXPECT_EQ(cache.find(hash_raster(a), a), 5);
  // 8 residual + 8 incoming fits the 16-byte cap exactly: no eviction, which
  // the double-counted 16-resident bytes would have forced.
  const RasterKey b(8, 0);
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 16u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(RasterDedupCache, ReinsertRefreshesRecency) {
  RasterDedupCache cache(/*max_entries=*/2);
  const RasterKey a = make_key({1});
  const RasterKey b = make_key({0});
  const RasterKey c = make_key({1, 1});
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 0));
  EXPECT_TRUE(cache.insert(hash_raster(b), b, 1));
  // Overwrite `a`: like a hit, it must become most-recent so `b` is evicted.
  EXPECT_TRUE(cache.insert(hash_raster(a), a, 3));
  EXPECT_TRUE(cache.insert(hash_raster(c), c, 2));
  EXPECT_EQ(cache.find(hash_raster(a), a), 3);
  EXPECT_EQ(cache.find(hash_raster(b), b), -1);
  EXPECT_EQ(cache.find(hash_raster(c), c), 2);
}

TEST(RasterDedupCache, ByteAccountingSurvivesInsertOverwriteEvictReplay) {
  // Replay a mixed insert/overwrite/evict sequence and assert after every
  // step that bytes() — and the scan.dedup.bytes gauge mirroring it —
  // equals the sum of the live entries' payloads.
  RasterDedupCache cache(/*max_entries=*/3, /*max_bytes=*/32);
  const obs::Gauge& bytes_gauge =
      obs::MetricsRegistry::global().gauge("scan.dedup.bytes");
  std::vector<RasterKey> keys;
  for (int i = 0; i < 6; ++i) {
    RasterKey key(static_cast<std::size_t>(4 + i * 2), 1);
    key[0] = static_cast<std::uint8_t>(i);  // distinct payloads
    keys.push_back(key);
  }
  // insert 0,1,2 / overwrite 1 / insert 3 (evicts) / overwrite 3 /
  // insert 4,5 (byte-cap evictions) / overwrite 5.
  const int replay[] = {0, 1, 2, 1, 3, 3, 4, 5, 5};
  for (const int step : replay) {
    ASSERT_TRUE(cache.insert(hash_raster(keys[static_cast<std::size_t>(step)]),
                             keys[static_cast<std::size_t>(step)], step));
    std::size_t live_bytes = 0;
    std::size_t live_entries = 0;
    for (const RasterKey& key : keys) {
      if (cache.find(hash_raster(key), key) != -1) {
        live_bytes += key.size();
        ++live_entries;
      }
    }
    ASSERT_EQ(cache.bytes(), live_bytes) << "after step " << step;
    ASSERT_EQ(cache.size(), live_entries) << "after step " << step;
    ASSERT_LE(cache.bytes(), cache.max_bytes());
    ASSERT_LE(cache.size(), cache.max_entries());
    ASSERT_EQ(bytes_gauge.value(), static_cast<double>(live_bytes));
  }
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(HashRaster, LengthDisambiguatesZeroRuns) {
  // All-zero rasters of different sizes hash differently: the byte stream
  // alone would collide (FNV over 0x00 bytes), the mixed-in length must not.
  const RasterKey four(4, 0);
  const RasterKey eight(8, 0);
  EXPECT_NE(hash_raster(four), hash_raster(eight));
}

TEST(HashRaster, SensitiveToEveryPixel) {
  RasterKey base(64, 0);
  const std::uint64_t reference = hash_raster(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    RasterKey flipped = base;
    flipped[i] = 1;
    EXPECT_NE(hash_raster(flipped), reference) << "pixel " << i;
  }
}

}  // namespace
}  // namespace hotspot::scan
