// Scan journal unit tests: round-trip, identity pinning, torn-tail and
// bit-rot recovery, snapshot compaction. The kill-and-resume property over
// a whole scan lives in chaos_test.cpp; this file exercises the journal in
// isolation.
#include "scan/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/fault_injection.h"

namespace hotspot::scan {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove(ScanJournal::snapshot_path(path).c_str());
}

// A 2x2-pixel scan over a 3x2 window grid: small enough to hand-check.
JournalMeta test_meta() {
  JournalMeta meta;
  meta.chip_fingerprint = 0xfeedbeef;
  meta.window_nm = 100;
  meta.step_nm = 100;
  meta.grid = 2;
  meta.cols = 3;
  meta.rows = 2;
  meta.origin_x = 0;
  meta.origin_y = 0;
  meta.batch_size = 2;
  meta.dedup = 1;
  return meta;
}

RasterKey raster(std::initializer_list<int> bits) {
  RasterKey key;
  for (const int bit : bits) {
    key.push_back(static_cast<std::uint8_t>(bit));
  }
  return key;
}

// Appends two batches covering windows [0,2) and [2,4): entries 0,1 then
// entry 2 plus a dedup hit back onto entry 0.
void append_two_batches(ScanJournal& journal) {
  ASSERT_TRUE(journal.append_batch(
      0, 2, 0, {0, 1}, {1, 0},
      {raster({1, 0, 1, 0}), raster({0, 0, 1, 1})}));
  ASSERT_TRUE(journal.append_batch(2, 4, 2, {2, 0}, {1},
                                   {raster({1, 1, 1, 1})}));
}

void expect_two_batches(const JournalState& state) {
  EXPECT_EQ(state.windows_done, 4);
  EXPECT_EQ(state.batches, 2);
  ASSERT_EQ(state.window_entry.size(), 4u);
  EXPECT_EQ(state.window_entry[0], 0);
  EXPECT_EQ(state.window_entry[1], 1);
  EXPECT_EQ(state.window_entry[2], 2);
  EXPECT_EQ(state.window_entry[3], 0);
  ASSERT_EQ(state.entry_verdicts.size(), 3u);
  EXPECT_EQ(state.entry_verdicts[0], 1);
  EXPECT_EQ(state.entry_verdicts[1], 0);
  EXPECT_EQ(state.entry_verdicts[2], 1);
  ASSERT_EQ(state.entry_pixels.size(), 3u);
  EXPECT_EQ(state.entry_pixels[0], raster({1, 0, 1, 0}));
  EXPECT_EQ(state.entry_pixels[1], raster({0, 0, 1, 1}));
  EXPECT_EQ(state.entry_pixels[2], raster({1, 1, 1, 1}));
}

TEST(ScanJournal, AppendThenRecoverRoundTrips) {
  const std::string path = temp_path("journal_roundtrip.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    EXPECT_EQ(fresh.windows_done, 0);
    append_two_batches(journal);
  }
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  expect_two_batches(state);
}

TEST(ScanJournal, AppendPublishesDurabilityMetrics) {
  const auto find_counter = [](const std::string& name) -> std::uint64_t {
    for (const auto& counter :
         obs::MetricsRegistry::global().snapshot().counters) {
      if (counter.name == name) {
        return counter.value;
      }
    }
    return 0;
  };
  const auto histogram_count = [](const std::string& name) -> std::uint64_t {
    for (const auto& histogram :
         obs::MetricsRegistry::global().snapshot().histograms) {
      if (histogram.name == name) {
        return histogram.count;
      }
    }
    return 0;
  };
  const std::uint64_t bytes_before =
      find_counter("scan.journal.bytes_written");
  const std::uint64_t appends_before =
      histogram_count("scan.journal.append_seconds");
  const std::string path = temp_path("journal_metrics.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
  }
  // Two successful appends: two histogram observations, and the byte
  // counter grew by at least the two frames' framing overhead.
  EXPECT_EQ(histogram_count("scan.journal.append_seconds"),
            appends_before + 2);
  EXPECT_GT(find_counter("scan.journal.bytes_written"), bytes_before);
  remove_journal(path);
}

TEST(ScanJournal, ResumeRecoversAndAppendsChain) {
  const std::string path = temp_path("journal_resume.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
  }
  {
    ScanJournal journal;
    JournalState recovered;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/true, &recovered));
    expect_two_batches(recovered);
    ASSERT_TRUE(journal.append_batch(4, 6, 3, {1, 3}, {0},
                                     {raster({0, 1, 0, 1})}));
  }
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  EXPECT_EQ(state.windows_done, 6);
  EXPECT_EQ(state.entry_count(), 4);
  EXPECT_EQ(state.window_entry[5], 3);
}

TEST(ScanJournal, ResumeWithNothingToRecoverIsMissing) {
  const std::string path = temp_path("journal_missing.bin");
  remove_journal(path);
  ScanJournal journal;
  JournalState state;
  const JournalResult result =
      journal.open(path, test_meta(), /*resume=*/true, &state);
  EXPECT_EQ(result.status, JournalStatus::kMissing);
  JournalState recovered;
  EXPECT_EQ(ScanJournal::recover(path, test_meta(), &recovered).status,
            JournalStatus::kMissing);
}

TEST(ScanJournal, MetaMismatchIsRejected) {
  const std::string path = temp_path("journal_mismatch.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
  }
  JournalMeta other = test_meta();
  other.chip_fingerprint ^= 1;  // a different chip
  ScanJournal journal;
  JournalState state;
  EXPECT_EQ(journal.open(path, other, /*resume=*/true, &state).status,
            JournalStatus::kMismatch);
  other = test_meta();
  other.grid = 4;  // same chip, different raster resolution
  EXPECT_EQ(ScanJournal::recover(path, other, &state).status,
            JournalStatus::kMismatch);
}

TEST(ScanJournal, FreshOpenDiscardsPriorStateAndSnapshot) {
  const std::string path = temp_path("journal_fresh.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
    JournalState state;
    ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
    ASSERT_TRUE(journal.write_snapshot(state));
  }
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    EXPECT_EQ(fresh.windows_done, 0);
  }
  // The old snapshot must not resurrect the discarded state.
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  EXPECT_EQ(state.windows_done, 0);
}

TEST(ScanJournal, TornTailRecoversLongestValidPrefix) {
  const std::string path = temp_path("journal_torn.bin");
  const std::int64_t full_size = [&] {
    remove_journal(path);
    ScanJournal journal;
    JournalState fresh;
    EXPECT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
    return util::file_size_of(path);
  }();
  // Chop bytes off the tail one at a time: recovery must always yield a
  // valid prefix of the append history, never garbage, never an error.
  for (std::int64_t size = full_size - 1; size >= 0; --size) {
    remove_journal(path);
    {
      ScanJournal journal;
      JournalState fresh;
      ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
      append_two_batches(journal);
    }
    ASSERT_TRUE(util::corrupt_truncate(path, size));
    JournalState state;
    const JournalResult result = ScanJournal::recover(path, test_meta(), &state);
    if (result.ok()) {
      EXPECT_TRUE(state.windows_done == 0 || state.windows_done == 2 ||
                  state.windows_done == 4)
          << "size " << size << " recovered " << state.windows_done;
      if (state.windows_done == 4) {
        expect_two_batches(state);
      }
    } else {
      // Only a header cut short may refuse recovery outright.
      EXPECT_EQ(result.status, JournalStatus::kTruncated) << "size " << size;
    }
  }
}

TEST(ScanJournal, TornTailIsTruncatedOnResumeThenChains) {
  const std::string path = temp_path("journal_torn_resume.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
  }
  // Tear the second record's tail off.
  ASSERT_TRUE(util::corrupt_truncate(path, util::file_size_of(path) - 3));
  {
    ScanJournal journal;
    JournalState recovered;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/true, &recovered));
    EXPECT_EQ(recovered.windows_done, 2);
    EXPECT_EQ(recovered.entry_count(), 2);
    // Re-append the batch the tear destroyed; it must chain cleanly onto
    // the truncated file.
    ASSERT_TRUE(journal.append_batch(2, 4, 2, {2, 0}, {1},
                                     {raster({1, 1, 1, 1})}));
  }
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  expect_two_batches(state);
}

TEST(ScanJournal, BitFlipsNeverRecoverGarbage) {
  const std::string path = temp_path("journal_bitflip.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
  }
  const std::int64_t size = util::file_size_of(path);
  ASSERT_GT(size, 0);
  for (std::int64_t offset = 0; offset < size; offset += 3) {
    ASSERT_TRUE(util::corrupt_flip_bit(path, offset, offset % 8));
    JournalState state;
    const JournalResult result =
        ScanJournal::recover(path, test_meta(), &state);
    if (result.ok()) {
      // Whatever survived must be a valid prefix in window count AND in
      // content (a flipped verdict/pixel byte is caught by the record CRC,
      // so surviving records are bit-exact).
      EXPECT_TRUE(state.windows_done == 0 || state.windows_done == 2 ||
                  state.windows_done == 4)
          << "offset " << offset;
      if (state.windows_done >= 2) {
        EXPECT_EQ(state.window_entry[0], 0);
        EXPECT_EQ(state.window_entry[1], 1);
        EXPECT_EQ(state.entry_pixels[0], raster({1, 0, 1, 0}));
      }
    }
    ASSERT_TRUE(util::corrupt_flip_bit(path, offset, offset % 8));  // undo
  }
}

TEST(ScanJournal, ReplayAppliesOnlyRecordsPastTheSnapshot) {
  const std::string path = temp_path("journal_snapshot.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
    JournalState state;
    ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
    ASSERT_TRUE(journal.write_snapshot(state));
    // A third batch lands after the snapshot: recovery must start from the
    // snapshot (skipping the two covered records) and replay just this one.
    ASSERT_TRUE(journal.append_batch(4, 6, 3, {1, 3}, {0},
                                     {raster({0, 1, 0, 1})}));
  }
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  EXPECT_EQ(state.windows_done, 6);
  EXPECT_EQ(state.batches, 3);
  EXPECT_EQ(state.entry_count(), 4);
  EXPECT_EQ(state.window_entry[4], 1);
  EXPECT_EQ(state.window_entry[5], 3);
  EXPECT_EQ(state.entry_verdicts[3], 0);
  EXPECT_EQ(state.entry_pixels[3], raster({0, 1, 0, 1}));
}

TEST(ScanJournal, SnapshotAloneRecoversWhenJournalBodyIsGone) {
  const std::string path = temp_path("journal_snap_only.bin");
  remove_journal(path);
  std::int64_t header_size = 0;
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    header_size = util::file_size_of(path);
    append_two_batches(journal);
    JournalState state;
    ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
    ASSERT_TRUE(journal.write_snapshot(state));
  }
  // Truncate the journal back to just its header: every record is lost,
  // only the snapshot remains.
  ASSERT_TRUE(util::corrupt_truncate(path, header_size));
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  expect_two_batches(state);
}

TEST(ScanJournal, CorruptSnapshotFallsBackToJournalReplay) {
  const std::string path = temp_path("journal_bad_snap.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
    append_two_batches(journal);
    JournalState state;
    ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
    ASSERT_TRUE(journal.write_snapshot(state));
  }
  const std::string snap = ScanJournal::snapshot_path(path);
  ASSERT_TRUE(util::corrupt_flip_bit(snap, util::file_size_of(snap) / 2, 4));
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  expect_two_batches(state);  // journal replay covers for the bad snapshot
}

TEST(ScanJournal, InjectedAppendFaultLeavesRecoverableTornTail) {
  util::ScopedFaultInjection guard;
  const std::string path = temp_path("journal_fault.bin");
  remove_journal(path);
  ScanJournal journal;
  JournalState fresh;
  ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
  ASSERT_TRUE(journal.append_batch(
      0, 2, 0, {0, 1}, {1, 0},
      {raster({1, 0, 1, 0}), raster({0, 0, 1, 1})}));
  util::fault_arm(util::FaultPoint::kJournalWrite, 1);
  const JournalResult failed = journal.append_batch(
      2, 4, 2, {2, 0}, {1}, {raster({1, 1, 1, 1})});
  EXPECT_EQ(failed.status, JournalStatus::kWriteFailed);
  EXPECT_FALSE(journal.is_open());  // a torn file must not take appends
  JournalState state;
  ASSERT_TRUE(ScanJournal::recover(path, test_meta(), &state));
  EXPECT_EQ(state.windows_done, 2);  // the half-written record is dropped
  EXPECT_EQ(state.entry_count(), 2);
}

TEST(ScanJournal, BadMagicIsBadFormat) {
  const std::string path = temp_path("journal_bad_magic.bin");
  remove_journal(path);
  {
    ScanJournal journal;
    JournalState fresh;
    ASSERT_TRUE(journal.open(path, test_meta(), /*resume=*/false, &fresh));
  }
  ASSERT_TRUE(util::corrupt_flip_bit(path, 0, 0));
  JournalState state;
  EXPECT_EQ(ScanJournal::recover(path, test_meta(), &state).status,
            JournalStatus::kBadFormat);
}

TEST(ChipFingerprint, SensitiveToGeometryAndOrder) {
  layout::Pattern a;
  a.add(layout::Rect{0, 0, 10, 10});
  a.add(layout::Rect{20, 0, 30, 10});
  layout::Pattern b;  // same rects, swapped order
  b.add(layout::Rect{20, 0, 30, 10});
  b.add(layout::Rect{0, 0, 10, 10});
  layout::Pattern c;  // one coordinate nudged
  c.add(layout::Rect{0, 0, 10, 10});
  c.add(layout::Rect{20, 0, 30, 11});
  EXPECT_EQ(chip_fingerprint(a), chip_fingerprint(a));
  EXPECT_NE(chip_fingerprint(a), chip_fingerprint(b));
  EXPECT_NE(chip_fingerprint(a), chip_fingerprint(c));
  EXPECT_NE(chip_fingerprint(a), chip_fingerprint(layout::Pattern{}));
}

}  // namespace
}  // namespace hotspot::scan
