#include "scan/window_stream.h"

#include <gtest/gtest.h>

#include "layout/clip.h"

namespace hotspot::scan {
namespace {

using layout::Pattern;
using layout::Rect;

// The stream must walk exactly the grid extract_clips materializes, and
// each materialized window must hold bit-identical geometry (same rects,
// same order) — the scan subsystem's equivalence contract.
TEST(ClipWindowStream, MatchesExtractClips) {
  Pattern chip({Rect{0, 0, 700, 300}, Rect{1200, 100, 2600, 900},
                Rect{400, 1400, 500, 2100}, Rect{2500, 2000, 2600, 2100}});
  const std::int64_t size = 1000;
  const std::int64_t step = 500;  // overlapping scan
  const auto eager = layout::extract_clips(chip, size, step);

  ClipWindowStream stream(chip, size, step);
  ASSERT_EQ(static_cast<std::size_t>(stream.window_count()), eager.size());
  WindowRef ref;
  std::int64_t count = 0;
  while (stream.next(ref)) {
    const layout::Clip streamed = stream.materialize(ref);
    ASSERT_LT(static_cast<std::size_t>(ref.index), eager.size());
    EXPECT_EQ(streamed.pattern.rects(),
              eager[static_cast<std::size_t>(ref.index)].pattern.rects())
        << "window " << ref.index;
    EXPECT_EQ(streamed.size_nm, size);
    ++count;
  }
  EXPECT_EQ(count, stream.window_count());
}

TEST(ClipWindowStream, ScanOrderIsRowMajor) {
  Pattern chip({Rect{0, 0, 2000, 1000}});
  ClipWindowStream stream(chip, 1000, 1000);
  EXPECT_EQ(stream.cols(), 2);
  EXPECT_EQ(stream.rows(), 1);
  WindowRef first;
  WindowRef second;
  ASSERT_TRUE(stream.next(first));
  ASSERT_TRUE(stream.next(second));
  EXPECT_EQ(first.index, 0);
  EXPECT_EQ(first.window, (Rect{0, 0, 1000, 1000}));
  EXPECT_EQ(second.index, 1);
  EXPECT_EQ(second.window, (Rect{1000, 0, 2000, 1000}));
  WindowRef none;
  EXPECT_FALSE(stream.next(none));
  stream.reset();
  ASSERT_TRUE(stream.next(none));
  EXPECT_EQ(none.index, 0);
}

TEST(ClipWindowStream, OriginFollowsBoundingBox) {
  Pattern chip({Rect{1200, 200, 1400, 400}});
  ClipWindowStream stream(chip, 1000, 1000);
  EXPECT_EQ(stream.origin_x(), 1200);
  EXPECT_EQ(stream.origin_y(), 200);
  EXPECT_EQ(stream.window_count(), 1);
  WindowRef ref;
  ASSERT_TRUE(stream.next(ref));
  const layout::Clip clip = stream.materialize(ref);
  EXPECT_EQ(clip.pattern.rects()[0], (Rect{0, 0, 200, 200}));
}

TEST(ClipWindowStream, EmptyPatternYieldsNoWindows) {
  Pattern empty;
  ClipWindowStream stream(empty, 1000, 1000);
  EXPECT_EQ(stream.window_count(), 0);
  WindowRef ref;
  EXPECT_FALSE(stream.next(ref));
}

TEST(ClipWindowStream, StepLargerThanSizeRejected) {
  Pattern chip({Rect{0, 0, 3000, 1000}});
  EXPECT_DEATH(ClipWindowStream(chip, 1000, 1500), "HOTSPOT_CHECK");
}

TEST(ClipWindowStream, WindowAtRandomAccessAgreesWithScanOrder) {
  Pattern chip({Rect{0, 0, 2500, 1500}});
  ClipWindowStream stream(chip, 1000, 500);
  WindowRef ref;
  while (stream.next(ref)) {
    const WindowRef direct = stream.window_at(ref.index);
    EXPECT_EQ(direct.window, ref.window);
    EXPECT_EQ(direct.ix, ref.ix);
    EXPECT_EQ(direct.iy, ref.iy);
  }
}

}  // namespace
}  // namespace hotspot::scan
