#include "scan/pipeline.h"

#include <gtest/gtest.h>

#include "core/brnn.h"
#include "core/trainer.h"
#include "dataset/dataset.h"
#include "dataset/patterns.h"
#include "layout/clip.h"
#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace hotspot::scan {
namespace {

using layout::Pattern;
using layout::Rect;

// Deterministic, per-sample-independent stand-in for the detector: flags a
// window when more than 10% of its pixels are drawn.
ScanPipeline::BatchClassifier density_classifier() {
  return [](const tensor::Tensor& images) {
    const std::int64_t n = images.dim(0);
    const std::int64_t pixels = images.dim(2) * images.dim(3);
    std::vector<int> labels(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      double sum = 0.0;
      const float* data = images.data() + i * pixels;
      for (std::int64_t p = 0; p < pixels; ++p) {
        sum += static_cast<double>(data[p]);
      }
      labels[static_cast<std::size_t>(i)] =
          sum > 0.1 * static_cast<double>(pixels) ? 1 : 0;
    }
    return labels;
  };
}

// The eager reference: extract_clips + per-clip rasterize + the same rule.
std::vector<int> eager_density_labels(const Pattern& chip,
                                      const ScanConfig& config) {
  const auto clips = layout::extract_clips(
      chip, config.window_nm,
      config.step_nm > 0 ? config.step_nm : config.window_nm);
  std::vector<int> labels;
  const std::int64_t pixels = config.grid * config.grid;
  for (const auto& clip : clips) {
    const tensor::Tensor raster = clip.binary(config.grid);
    double sum = 0.0;
    for (std::int64_t p = 0; p < pixels; ++p) {
      sum += static_cast<double>(raster.data()[p]);
    }
    labels.push_back(sum > 0.1 * static_cast<double>(pixels) ? 1 : 0);
  }
  return labels;
}

// A chip of repeated + unique tiles: repeats exercise the dedup cache,
// uniques make sure cold rasters still classify.
Pattern build_chip(int tiles_per_side, bool repeat_one_tile) {
  dataset::PatternParams params;
  util::Rng rng(77);
  const Pattern base = dataset::dense_lines(params, rng);
  Pattern chip;
  for (int ty = 0; ty < tiles_per_side; ++ty) {
    for (int tx = 0; tx < tiles_per_side; ++tx) {
      Pattern tile = repeat_one_tile ? base
                                     : dataset::dense_lines(params, rng);
      tile.translate(tx * params.clip_nm, ty * params.clip_nm);
      for (const auto& rect : tile.rects()) {
        chip.add(rect);
      }
    }
  }
  return chip;
}

ScanConfig small_config() {
  ScanConfig config;
  config.window_nm = 1024;  // PatternParams default clip_nm
  config.grid = 16;
  config.batch_size = 8;
  return config;
}

TEST(ScanPipeline, MatchesEagerExtractAndPredict) {
  const Pattern chip = build_chip(3, /*repeat_one_tile=*/false);
  const ScanConfig config = small_config();
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult result = pipeline.scan(chip);
  EXPECT_EQ(result.labels, eager_density_labels(chip, config));
  EXPECT_EQ(result.stats.windows,
            static_cast<std::int64_t>(result.labels.size()));
  EXPECT_EQ(result.stats.unique_windows + result.stats.dedup_hits,
            result.stats.windows);
}

TEST(ScanPipeline, OverlappingStrideMatchesEager) {
  const Pattern chip = build_chip(2, /*repeat_one_tile=*/false);
  ScanConfig config = small_config();
  config.step_nm = 512;  // overlapping scan
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult result = pipeline.scan(chip);
  EXPECT_EQ(result.labels, eager_density_labels(chip, config));
}

TEST(ScanPipeline, DedupDoesNotChangeVerdicts) {
  const Pattern chip = build_chip(3, /*repeat_one_tile=*/true);
  ScanConfig config = small_config();
  config.dedup = true;
  ScanPipeline with_dedup(config, density_classifier());
  const ScanResult deduped = with_dedup.scan(chip);
  config.dedup = false;
  ScanPipeline without_dedup(config, density_classifier());
  const ScanResult raw = without_dedup.scan(chip);
  EXPECT_EQ(deduped.labels, raw.labels);
  EXPECT_GT(deduped.stats.dedup_hits, 0);
  EXPECT_EQ(raw.stats.dedup_hits, 0);
}

TEST(ScanPipeline, RepeatedTileChipHitsCacheHard) {
  // The acceptance shape: a 4x4 chip of one repeated tile must serve at
  // least half its windows from the dedup cache.
  const Pattern chip = build_chip(4, /*repeat_one_tile=*/true);
  ScanPipeline pipeline(small_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);
  EXPECT_EQ(result.stats.windows, 16);
  EXPECT_GE(result.stats.dedup_hit_rate(), 0.5);
}

TEST(ScanPipeline, PipelinedAndSequentialAgree) {
  const Pattern chip = build_chip(3, /*repeat_one_tile=*/false);
  ScanConfig config = small_config();
  config.pipelined = true;
  ScanPipeline pipelined(config, density_classifier());
  const ScanResult a = pipelined.scan(chip);
  config.pipelined = false;
  ScanPipeline sequential(config, density_classifier());
  const ScanResult b = sequential.scan(chip);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.stats.dedup_hits, b.stats.dedup_hits);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
}

TEST(ScanPipeline, DeterministicAtAnyThreadCount) {
  const Pattern chip = build_chip(3, /*repeat_one_tile=*/false);
  const ScanConfig config = small_config();
  const int saved = util::parallel_threads();
  util::set_parallel_threads(1);
  ScanPipeline single(config, density_classifier());
  const ScanResult one = single.scan(chip);
  util::set_parallel_threads(4);
  ScanPipeline pooled(config, density_classifier());
  const ScanResult four = pooled.scan(chip);
  util::set_parallel_threads(saved);
  EXPECT_EQ(one.labels, four.labels);
  EXPECT_EQ(one.stats.dedup_hits, four.stats.dedup_hits);
}

TEST(ScanPipeline, BitIdenticalToEagerBrnnPredict) {
  // The full acceptance criterion, against the real detector: an untrained
  // compact BRNN on the packed backend classifies streamed + deduped
  // batches bit-identically to the eager dataset path.
  constexpr std::int64_t kImageSize = 32;
  util::Rng rng(5);
  core::BrnnModel model(core::BrnnConfig::compact(kImageSize), rng);
  model.set_training(false);
  model.set_backend(core::Backend::kPacked);

  const Pattern chip = build_chip(3, /*repeat_one_tile=*/false);
  ScanConfig config = small_config();
  config.grid = kImageSize;
  config.batch_size = 5;  // force several batches + a partial tail

  const auto clips = layout::extract_clips(chip, config.window_nm,
                                           config.window_nm);
  dataset::HotspotDataset eager_windows;
  for (const auto& clip : clips) {
    eager_windows.add(dataset::ClipSample::from_image(
        clip.binary(kImageSize), 0, dataset::Family::kDenseLines));
  }
  const std::vector<int> eager =
      core::predict_labels(model, eager_windows, 64);

  ScanPipeline pipeline(config, [&](const tensor::Tensor& images) {
    return model.predict(images);
  });
  const ScanResult streamed = pipeline.scan(chip);
  EXPECT_EQ(streamed.labels, eager);
}

TEST(ScanPipeline, EmptyChipYieldsEmptyResult) {
  ScanPipeline pipeline(small_config(), density_classifier());
  const ScanResult result = pipeline.scan(Pattern());
  EXPECT_TRUE(result.labels.empty());
  EXPECT_TRUE(result.regions.empty());
  EXPECT_EQ(result.stats.windows, 0);
  EXPECT_EQ(result.stats.batches, 0);
  EXPECT_EQ(result.flagged_count(), 0);
}

TEST(ScanPipeline, PublishesDedupCounters) {
  const Pattern chip = build_chip(2, /*repeat_one_tile=*/true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = registry.snapshot();
  ScanPipeline pipeline(small_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);
  const obs::MetricsSnapshot delta =
      registry.snapshot().delta_since(before);
  const obs::CounterSample* windows = delta.find_counter("scan.windows");
  const obs::CounterSample* hits = delta.find_counter("scan.dedup.hits");
  const obs::CounterSample* misses = delta.find_counter("scan.dedup.misses");
  ASSERT_NE(windows, nullptr);
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(windows->value,
            static_cast<std::uint64_t>(result.stats.windows));
  EXPECT_EQ(hits->value,
            static_cast<std::uint64_t>(result.stats.dedup_hits));
  EXPECT_EQ(hits->value + misses->value, windows->value);
}

TEST(MergeFlaggedWindows, SingleWindowRegion) {
  const std::vector<int> labels{0, 1, 0, 0};
  const auto regions =
      merge_flagged_windows(labels, 2, 2, 0, 0, 100, 100);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].bounds, (Rect{100, 0, 200, 100}));
  EXPECT_EQ(regions[0].window_count, 1);
}

TEST(MergeFlaggedWindows, DiagonalNeighborsMerge) {
  // 2x2 grid flagged on the diagonal: 8-connectivity merges both into one
  // region spanning the grid.
  const std::vector<int> labels{1, 0, 0, 1};
  const auto regions =
      merge_flagged_windows(labels, 2, 2, 0, 0, 100, 100);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].bounds, (Rect{0, 0, 200, 200}));
  EXPECT_EQ(regions[0].window_count, 2);
}

TEST(MergeFlaggedWindows, SeparatedClustersStayDistinct) {
  // 4x1 grid: windows 0 and 3 flagged, 1-2 clean — two regions.
  const std::vector<int> labels{1, 0, 0, 1};
  const auto regions =
      merge_flagged_windows(labels, 4, 1, 0, 0, 100, 100);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].bounds, (Rect{0, 0, 100, 100}));
  EXPECT_EQ(regions[1].bounds, (Rect{300, 0, 400, 100}));
}

TEST(MergeFlaggedWindows, OverlappingStrideBoundsUseWindowSize) {
  // Stride < size: adjacent flagged windows overlap; the region bounds
  // cover the union of full windows, not just the strides.
  const std::vector<int> labels{1, 1};
  const auto regions =
      merge_flagged_windows(labels, 2, 1, 1000, 2000, 100, 50);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].bounds, (Rect{1000, 2000, 1150, 2100}));
  EXPECT_EQ(regions[0].window_count, 2);
}

TEST(MergeFlaggedWindows, OdstAccounting) {
  const std::vector<int> labels{1, 1, 0, 0};
  const auto regions =
      merge_flagged_windows(labels, 4, 1, 0, 0, 100, 100);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_DOUBLE_EQ(regions[0].odst(10.0, 0.5), 2 * 10.5);
}

TEST(ScanResult, OdstCountsFlaggedLithoPlusAllEval) {
  ScanResult result;
  result.labels = {1, 0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(result.odst(10.0, 1.0), 2 * 10.0 + 5 * 1.0);
}

}  // namespace
}  // namespace hotspot::scan
