// Chaos harness for the fault-tolerant scan (DESIGN.md §13).
//
// The central property: a scan killed at ANY point and resumed from its
// journal produces bit-identical labels, regions, and ODST to an
// uninterrupted run. The kill is the kScanAbort fault point (three probe
// sites per batch: before classification, before the journal append, after
// it), swept exhaustively and hammered randomly. Around that, the
// per-window fault points (compute faults, allocation failure, stalls past
// the deadline) drive the retry and quarantine paths: a transient fault
// must cost only a retry, a persistent one must quarantine the window —
// never hang, never silently drop it, never corrupt its neighbours.
//
// Journal files land in $HOTSPOT_CHAOS_DIR when set (CI uploads that
// directory on failure) and the gtest temp dir otherwise.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dataset/patterns.h"
#include "layout/geometry.h"
#include "obs/metrics.h"
#include "scan/journal.h"
#include "scan/pipeline.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace hotspot::scan {
namespace {

using layout::Pattern;

std::string chaos_dir() {
  const char* dir = std::getenv("HOTSPOT_CHAOS_DIR");
  return dir != nullptr && *dir != '\0' ? std::string(dir)
                                        : std::string(::testing::TempDir());
}

std::string journal_path(const char* name) {
  return chaos_dir() + "/" + name;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove(ScanJournal::snapshot_path(path).c_str());
}

// Deterministic per-sample-independent classifier that probes the same
// fault points BnnHotspotDetector::predict_batch does, so predict-side
// faults are testable without training a model.
ScanPipeline::BatchClassifier density_classifier() {
  return [](const tensor::Tensor& images) {
    util::fault_maybe_stall(util::FaultPoint::kScanPredictStall);
    if (util::fault_should_fail(util::FaultPoint::kScanPredictCompute)) {
      throw std::runtime_error("injected predict compute fault");
    }
    const std::int64_t n = images.dim(0);
    const std::int64_t pixels = images.dim(2) * images.dim(3);
    std::vector<int> labels(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      double sum = 0.0;
      const float* data = images.data() + i * pixels;
      for (std::int64_t p = 0; p < pixels; ++p) {
        sum += static_cast<double>(data[p]);
      }
      labels[static_cast<std::size_t>(i)] =
          sum > 0.1 * static_cast<double>(pixels) ? 1 : 0;
    }
    return labels;
  };
}

// A chip of repeated + unique tiles: repeats exercise the dedup cache (and
// with the tight entry cap below, LRU eviction), uniques keep batches full.
Pattern build_chip(int tiles_per_side) {
  dataset::PatternParams params;
  util::Rng rng(77);
  const Pattern base = dataset::dense_lines(params, rng);
  Pattern chip;
  for (int ty = 0; ty < tiles_per_side; ++ty) {
    for (int tx = 0; tx < tiles_per_side; ++tx) {
      Pattern tile = ((tx + ty) % 2 == 0) ? base
                                          : dataset::dense_lines(params, rng);
      tile.translate(tx * params.clip_nm, ty * params.clip_nm);
      for (const auto& rect : tile.rects()) {
        chip.add(rect);
      }
    }
  }
  return chip;
}

// Small batches (more kill sites), a tight dedup cap (evictions must replay
// deterministically through resume), frequent snapshots, no retry backoff
// (keep the sweep fast).
ScanConfig chaos_config() {
  ScanConfig config;
  config.window_nm = 1024;  // PatternParams default clip_nm
  config.grid = 16;
  config.batch_size = 2;
  config.dedup_max_entries = 3;
  config.snapshot_every_batches = 2;
  config.retry_backoff_ms = 0;
  return config;
}

// The JournalMeta the pipeline derives for (chip, config) — lets tests call
// ScanJournal::recover directly and compare against resume_skipped.
JournalMeta make_meta(const Pattern& chip, const ScanConfig& config) {
  const ClipWindowStream stream(
      chip, config.window_nm,
      config.step_nm > 0 ? config.step_nm : config.window_nm);
  JournalMeta meta;
  meta.chip_fingerprint = chip_fingerprint(chip);
  meta.window_nm = stream.size_nm();
  meta.step_nm = stream.step_nm();
  meta.grid = config.grid;
  meta.cols = stream.cols();
  meta.rows = stream.rows();
  meta.origin_x = stream.origin_x();
  meta.origin_y = stream.origin_y();
  meta.batch_size = config.batch_size;
  meta.dedup = config.dedup ? 1 : 0;
  meta.dedup_max_entries = config.dedup_max_entries;
  meta.dedup_max_bytes = config.dedup_max_bytes;
  return meta;
}

void expect_same_result(const ScanResult& actual,
                        const ScanResult& reference, const char* context) {
  EXPECT_EQ(actual.labels, reference.labels) << context;
  ASSERT_EQ(actual.regions.size(), reference.regions.size()) << context;
  for (std::size_t i = 0; i < actual.regions.size(); ++i) {
    EXPECT_EQ(actual.regions[i].bounds, reference.regions[i].bounds)
        << context << " region " << i;
    EXPECT_EQ(actual.regions[i].window_count,
              reference.regions[i].window_count)
        << context << " region " << i;
  }
  EXPECT_DOUBLE_EQ(actual.odst(10.0, 0.5), reference.odst(10.0, 0.5))
      << context;
}

ScanResult reference_result(const Pattern& chip, const ScanConfig& base) {
  ScanConfig config = base;
  config.journal_path.clear();
  config.resume = false;
  ScanPipeline pipeline(config, density_classifier());
  return pipeline.scan(chip);
}

TEST(ScanChaos, JournalingItselfDoesNotChangeResults) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanResult reference = reference_result(chip, chaos_config());
  const std::string path = journal_path("chaos_plain.journal");
  remove_journal(path);
  ScanConfig config = chaos_config();
  config.journal_path = path;
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult journaled = pipeline.scan(chip);
  expect_same_result(journaled, reference, "journaled");
  EXPECT_EQ(journaled.stats.quarantined, 0);
  remove_journal(path);
}

// The acceptance sweep: kill at every abort site (k = 1, 2, ... until a
// scan runs to completion), resume, and demand bit-identical output plus
// resume_skipped exactly matching what the journal recovered.
TEST(ScanChaos, KillAndResumeSweepIsBitIdentical) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanConfig base = chaos_config();
  const ScanResult reference = reference_result(chip, base);
  const JournalMeta meta = make_meta(chip, base);
  const std::string path = journal_path("chaos_sweep.journal");

  bool sweep_exhausted = false;
  for (int kill_at = 1; kill_at <= 64 && !sweep_exhausted; ++kill_at) {
    remove_journal(path);
    ScanConfig config = base;
    config.journal_path = path;

    util::fault_arm(util::FaultPoint::kScanAbort, kill_at);
    bool aborted = false;
    try {
      ScanPipeline pipeline(config, density_classifier());
      const ScanResult uninterrupted = pipeline.scan(chip);
      // kill_at exceeded the scan's probe count: the scan completed and
      // the sweep has covered every kill site.
      expect_same_result(uninterrupted, reference, "post-sweep");
      sweep_exhausted = true;
    } catch (const ScanAborted&) {
      aborted = true;
    }
    util::fault_clear_all();
    if (!aborted) {
      continue;
    }

    // What did the journal durably capture before the kill?
    JournalState recovered;
    ASSERT_TRUE(ScanJournal::recover(path, meta, &recovered).ok())
        << "kill_at " << kill_at;

    ScanConfig resume_config = config;
    resume_config.resume = true;
    ScanPipeline pipeline(resume_config, density_classifier());
    const ScanResult resumed = pipeline.scan(chip);
    const std::string context = "kill_at " + std::to_string(kill_at);
    expect_same_result(resumed, reference, context.c_str());
    EXPECT_EQ(resumed.stats.resume_skipped, recovered.windows_done)
        << context;
    EXPECT_EQ(resumed.stats.windows + resumed.stats.resume_skipped,
              static_cast<std::int64_t>(reference.labels.size()))
        << context;
  }
  EXPECT_TRUE(sweep_exhausted)
      << "64 kill sites was not enough to reach a completed scan";
  remove_journal(path);
}

// Randomized crash storms: kill at a random site, resume, kill again —
// until a run finally completes. However many times it dies, the final
// output must be the uninterrupted one.
TEST(ScanChaos, RandomizedCrashStormConverges) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(4);
  const ScanConfig base = chaos_config();
  const ScanResult reference = reference_result(chip, base);
  util::Rng rng(0xC4A05);

  for (int storm = 0; storm < 3; ++storm) {
    const std::string path = journal_path("chaos_storm.journal");
    remove_journal(path);
    int kills = 0;
    bool done = false;
    for (int attempt = 0; attempt < 200 && !done; ++attempt) {
      ScanConfig config = base;
      config.journal_path = path;
      config.resume = attempt > 0;
      util::fault_arm(util::FaultPoint::kScanAbort,
                      static_cast<int>(rng.uniform_int(1, 12)));
      try {
        ScanPipeline pipeline(config, density_classifier());
        const ScanResult result = pipeline.scan(chip);
        util::fault_clear_all();
        const std::string context =
            "storm " + std::to_string(storm) + " after " +
            std::to_string(kills) + " kills";
        expect_same_result(result, reference, context.c_str());
        done = true;
      } catch (const ScanAborted&) {
        util::fault_clear_all();
        ++kills;
      }
    }
    EXPECT_TRUE(done) << "storm " << storm << " never completed";
    remove_journal(path);
  }
}

// A crash *inside* the journal append (torn record) is the nastiest kill:
// the tail frame is half-written. Resume must drop it and re-scan that
// batch, still converging to identical output.
TEST(ScanChaos, TornAppendResumesBitIdentical) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanConfig base = chaos_config();
  const ScanResult reference = reference_result(chip, base);
  const std::string path = journal_path("chaos_torn.journal");
  remove_journal(path);

  ScanConfig config = base;
  config.journal_path = path;
  util::fault_arm(util::FaultPoint::kJournalWrite, 3);
  bool threw = false;
  try {
    ScanPipeline pipeline(config, density_classifier());
    pipeline.scan(chip);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  util::fault_clear_all();
  ASSERT_TRUE(threw);

  config.resume = true;
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult resumed = pipeline.scan(chip);
  expect_same_result(resumed, reference, "torn append");
  remove_journal(path);
}

TEST(ScanChaos, TransientRasterFaultCostsOnlyARetry) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanResult reference = reference_result(chip, chaos_config());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = registry.snapshot();

  util::fault_arm(util::FaultPoint::kScanRasterCompute, 4);
  ScanPipeline pipeline(chaos_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);

  expect_same_result(result, reference, "transient raster fault");
  EXPECT_GE(result.stats.retries, 1);
  EXPECT_EQ(result.stats.quarantined, 0);
  EXPECT_TRUE(result.quarantined_windows.empty());
  const obs::MetricsSnapshot delta = registry.snapshot().delta_since(before);
  const obs::CounterSample* retries = delta.find_counter("scan.retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->value,
            static_cast<std::uint64_t>(result.stats.retries));
}

TEST(ScanChaos, PersistentRasterFaultQuarantinesInsteadOfHanging) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanResult reference = reference_result(chip, chaos_config());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = registry.snapshot();

  // Every raster probe from the 4th onward fails: windows 1-3 scan clean
  // (one probe each), every later window exhausts its 3 attempts.
  util::fault_arm_sticky(util::FaultPoint::kScanRasterCompute, 4);
  ScanPipeline pipeline(chaos_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);

  const auto total = static_cast<std::int64_t>(reference.labels.size());
  EXPECT_EQ(result.stats.quarantined, total - 3);
  EXPECT_EQ(static_cast<std::int64_t>(result.quarantined_windows.size()),
            result.stats.quarantined);
  for (std::int64_t w = 0; w < total; ++w) {
    const auto index = static_cast<std::size_t>(w);
    if (w < 3) {
      EXPECT_EQ(result.labels[index], reference.labels[index]) << w;
    } else {
      EXPECT_EQ(result.labels[index], 0) << "quarantined window " << w;
    }
  }
  // 2 retries per quarantined window before giving up.
  EXPECT_EQ(result.stats.retries, 2 * result.stats.quarantined);
  const obs::MetricsSnapshot delta = registry.snapshot().delta_since(before);
  const obs::CounterSample* quarantined =
      delta.find_counter("scan.quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value,
            static_cast<std::uint64_t>(result.stats.quarantined));
}

TEST(ScanChaos, AllocationFailureQuarantinesWithoutCrashing) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanResult reference = reference_result(chip, chaos_config());

  // kScanAlloc probes in RasterDedupCache::insert (std::bad_alloc before
  // any mutation); sticky = the allocator never recovers.
  util::fault_arm_sticky(util::FaultPoint::kScanAlloc, 2);
  ScanPipeline pipeline(chaos_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);

  EXPECT_GT(result.stats.quarantined, 0);
  EXPECT_LT(result.stats.quarantined,
            static_cast<std::int64_t>(reference.labels.size()));
  for (const std::int64_t w : result.quarantined_windows) {
    EXPECT_EQ(result.labels[static_cast<std::size_t>(w)], 0);
  }
}

TEST(ScanChaos, TransientStallWithinDeadlineRetriesClean) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(2);
  ScanConfig config = chaos_config();
  config.window_deadline_ms = 20;
  config.max_retries = 2;
  const ScanResult reference = reference_result(chip, config);

  // One stall of 60ms on the 2nd raster attempt: that attempt blows the
  // 20ms deadline, the retry runs stall-free and succeeds.
  util::fault_set_stall_ms(60);
  util::fault_arm(util::FaultPoint::kScanRasterStall, 2);
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult result = pipeline.scan(chip);

  expect_same_result(result, reference, "transient stall");
  EXPECT_GE(result.stats.retries, 1);
  EXPECT_EQ(result.stats.quarantined, 0);
}

TEST(ScanChaos, StallPastDeadlineEveryAttemptQuarantines) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(2);
  ScanConfig config = chaos_config();
  config.window_deadline_ms = 5;
  config.max_retries = 1;

  // The 3rd window onward stalls 40ms on every attempt — persistently
  // wedged. The deadline quarantines them; the scan still terminates.
  util::fault_set_stall_ms(40);
  util::fault_arm_sticky(util::FaultPoint::kScanRasterStall, 3);
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult result = pipeline.scan(chip);

  const auto total = static_cast<std::int64_t>(result.labels.size());
  EXPECT_EQ(result.stats.quarantined, total - 2);
  for (const std::int64_t w : result.quarantined_windows) {
    EXPECT_GE(w, 2);
  }
}

TEST(ScanChaos, TransientPredictFaultRetriesClean) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanResult reference = reference_result(chip, chaos_config());

  util::fault_arm(util::FaultPoint::kScanPredictCompute, 2);
  ScanPipeline pipeline(chaos_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);

  expect_same_result(result, reference, "transient predict fault");
  EXPECT_GE(result.stats.retries, 1);
  EXPECT_EQ(result.stats.quarantined, 0);
}

TEST(ScanChaos, PersistentPredictFaultQuarantinesBatches) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const ScanResult reference = reference_result(chip, chaos_config());

  // Classification fails from the 2nd batch attempt onward: batch 1 is
  // clean, every later batch's entries are quarantined.
  util::fault_arm_sticky(util::FaultPoint::kScanPredictCompute, 2);
  ScanPipeline pipeline(chaos_config(), density_classifier());
  const ScanResult result = pipeline.scan(chip);

  EXPECT_GT(result.stats.quarantined, 0);
  for (const std::int64_t w : result.quarantined_windows) {
    EXPECT_EQ(result.labels[static_cast<std::size_t>(w)], 0);
  }
  // Windows NOT quarantined kept their true verdicts.
  std::size_t q = 0;
  for (std::int64_t w = 0;
       w < static_cast<std::int64_t>(result.labels.size()); ++w) {
    if (q < result.quarantined_windows.size() &&
        result.quarantined_windows[q] == w) {
      ++q;
      continue;
    }
    EXPECT_EQ(result.labels[static_cast<std::size_t>(w)],
              reference.labels[static_cast<std::size_t>(w)])
        << w;
  }
}

// Quarantine state must survive the journal: a window quarantined before a
// crash stays quarantined (and reported) after resume — resumed runs never
// pretend a failed window was scanned clean.
TEST(ScanChaos, QuarantinePersistsThroughResume) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const std::string path = journal_path("chaos_quarantine.journal");
  remove_journal(path);
  ScanConfig config = chaos_config();
  config.journal_path = path;

  // Windows beyond the 2nd quarantine (sticky raster fault). Quarantined
  // windows never fill a batch slot, so the scan collapses to two batches:
  // [0,2) with entries {0,1}, then one entry-less batch spanning every
  // quarantined window. The kill lands on the 6th abort probe — directly
  // after that second batch's journal append — so the journal holds the
  // quarantined windows when the scan dies.
  util::fault_arm_sticky(util::FaultPoint::kScanRasterCompute, 3);
  util::fault_arm(util::FaultPoint::kScanAbort, 6);
  bool aborted = false;
  try {
    ScanPipeline pipeline(config, density_classifier());
    pipeline.scan(chip);
  } catch (const ScanAborted&) {
    aborted = true;
  }
  util::fault_clear_all();
  ASSERT_TRUE(aborted);

  const JournalMeta meta = make_meta(chip, config);
  JournalState recovered;
  ASSERT_TRUE(ScanJournal::recover(path, meta, &recovered).ok());
  std::int64_t journaled_quarantined = 0;
  for (const std::int64_t entry : recovered.window_entry) {
    journaled_quarantined += entry < 0 ? 1 : 0;
  }
  ASSERT_GT(journaled_quarantined, 0)
      << "kill landed before any quarantined window was journaled";

  // Resume with faults cleared: recovered quarantined windows must still be
  // reported even though this run's windows all scan clean.
  config.resume = true;
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult resumed = pipeline.scan(chip);
  EXPECT_GE(resumed.stats.quarantined, journaled_quarantined);
  for (std::int64_t w = 0; w < recovered.windows_done; ++w) {
    if (recovered.window_entry[static_cast<std::size_t>(w)] < 0) {
      EXPECT_EQ(resumed.labels[static_cast<std::size_t>(w)], 0) << w;
    }
  }
  remove_journal(path);
}

TEST(ScanChaos, ResumeSkippedCounterIsPublished) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  const std::string path = journal_path("chaos_counter.journal");
  remove_journal(path);
  ScanConfig config = chaos_config();
  config.journal_path = path;

  util::fault_arm(util::FaultPoint::kScanAbort, 5);
  try {
    ScanPipeline pipeline(config, density_classifier());
    pipeline.scan(chip);
    FAIL() << "abort fault did not fire";
  } catch (const ScanAborted&) {
  }
  util::fault_clear_all();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = registry.snapshot();
  config.resume = true;
  ScanPipeline pipeline(config, density_classifier());
  const ScanResult resumed = pipeline.scan(chip);
  ASSERT_GT(resumed.stats.resume_skipped, 0);
  const obs::MetricsSnapshot delta = registry.snapshot().delta_since(before);
  const obs::CounterSample* skipped =
      delta.find_counter("scan.resume.skipped");
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(skipped->value,
            static_cast<std::uint64_t>(resumed.stats.resume_skipped));
  remove_journal(path);
}

// Sequential (non-pipelined) mode shares the fault paths; one sweep makes
// sure the kill-and-resume property holds without the producer thread.
TEST(ScanChaos, SequentialModeKillAndResumeAgrees) {
  util::ScopedFaultInjection guard;
  const Pattern chip = build_chip(3);
  ScanConfig base = chaos_config();
  base.pipelined = false;
  const ScanResult reference = reference_result(chip, base);
  const std::string path = journal_path("chaos_sequential.journal");

  for (int kill_at = 2; kill_at <= 8; kill_at += 3) {
    remove_journal(path);
    ScanConfig config = base;
    config.journal_path = path;
    util::fault_arm(util::FaultPoint::kScanAbort, kill_at);
    bool aborted = false;
    try {
      ScanPipeline pipeline(config, density_classifier());
      pipeline.scan(chip);
    } catch (const ScanAborted&) {
      aborted = true;
    }
    util::fault_clear_all();
    ASSERT_TRUE(aborted) << "kill_at " << kill_at;
    config.resume = true;
    ScanPipeline pipeline(config, density_classifier());
    const ScanResult resumed = pipeline.scan(chip);
    const std::string context = "sequential kill_at " + std::to_string(kill_at);
    expect_same_result(resumed, reference, context.c_str());
  }
  remove_journal(path);
}

}  // namespace
}  // namespace hotspot::scan
