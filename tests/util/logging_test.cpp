#include "util/logging.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace hotspot::util {
namespace {

// Restores the global level so test ordering cannot leak verbosity.
class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = log_level();
};

TEST_F(LoggingTest, DropsMessagesBelowLevel) {
  set_log_level(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  HOTSPOT_LOG(kInfo) << "should be dropped";
  HOTSPOT_LOG(kWarning) << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("[W] should appear"), std::string::npos);
}

TEST_F(LoggingTest, FormatsTagAndNewline) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  HOTSPOT_LOG(kDebug) << "d";
  HOTSPOT_LOG(kInfo) << "i";
  HOTSPOT_LOG(kError) << "e";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured, "[D] d\n[I] i\n[E] e\n");
}

TEST_F(LoggingTest, ConcurrentWritersNeverInterleaveLines) {
  // log_line used to stream tag and message as separate << calls, so two
  // pool workers could interleave mid-line. Hammer it from several threads
  // and require every captured line to be exactly one writer's line.
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        HOTSPOT_LOG(kInfo) << "worker=" << t << " line=" << i
                           << " padding-to-make-tearing-visible";
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const std::string captured = ::testing::internal::GetCapturedStderr();

  std::set<std::string> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kLinesPerThread; ++i) {
      std::ostringstream line;
      line << "[I] worker=" << t << " line=" << i
           << " padding-to-make-tearing-visible";
      expected.insert(line.str());
    }
  }

  std::istringstream stream(captured);
  std::string line;
  int count = 0;
  while (std::getline(stream, line)) {
    ASSERT_EQ(expected.count(line), 1u) << "torn or duplicated line: " << line;
    expected.erase(line);
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLinesPerThread);
  EXPECT_TRUE(expected.empty()) << expected.size() << " lines never appeared";
}

}  // namespace
}  // namespace hotspot::util
