#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace hotspot::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.uniform();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    total += rng.uniform();
  }
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto value = rng.uniform_int(3, 7);
    EXPECT_GE(value, 3);
    EXPECT_LE(value, 7);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto value = rng.uniform_int(-10, -1);
    EXPECT_GE(value, -10);
    EXPECT_LE(value, -1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = rng.normal();
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkDecorrelated) {
  Rng parent(21);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(33);
  Rng p2(33);
  Rng c1 = p1.fork(9);
  Rng c2 = p2.fork(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> values{1, 2, 3, 4, 5, 6};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  // xoshiro must not collapse to the all-zero state.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) {
    any_nonzero |= rng.next_u64() != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace hotspot::util
