#include "util/json.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace hotspot::util {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, error)) << error;
  return doc;
}

void expect_parse_fails(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(parse_json(text, doc, error)) << "accepted: " << text;
  EXPECT_FALSE(error.empty());
}

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_ok("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_ok("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse_ok("\"hello\"").as_string(), "hello");
}

TEST(JsonParser, RoundTripsSeventeenDigitDoubles) {
  // The precision our %.17g writers emit must survive.
  const double value = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(parse_ok("0.12345678901234568").as_number(), value);
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(parse_ok("\"a\\\"b\\\\c\"").as_string(), "a\"b\\c");
  EXPECT_EQ(parse_ok("\"line\\nbreak\\ttab\"").as_string(),
            "line\nbreak\ttab");
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xC3\xA9");  // é in UTF-8
}

TEST(JsonParser, ArraysAndObjects) {
  const JsonValue doc =
      parse_ok("{\"a\": [1, 2, 3], \"b\": {\"nested\": true}, \"c\": []}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 3u);
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(doc.find("b")->find("nested")->as_bool());
  EXPECT_EQ(doc.find("c")->size(), 0u);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, ObjectOrderPreservedAndDuplicatesKeepLast) {
  const JsonValue doc = parse_ok("{\"k\": 1, \"j\": 2, \"k\": 3}");
  ASSERT_EQ(doc.as_object().size(), 3u);
  EXPECT_EQ(doc.as_object()[0].first, "k");
  EXPECT_EQ(doc.as_object()[1].first, "j");
  EXPECT_DOUBLE_EQ(doc.find("k")->as_number(), 3.0);
}

TEST(JsonParser, WhitespaceTolerated) {
  EXPECT_TRUE(parse_ok(" \n\t{ \"a\" :\r[ 1 , 2 ] }\n").is_object());
}

TEST(JsonParser, RejectsMalformedInput) {
  expect_parse_fails("");
  expect_parse_fails("{");
  expect_parse_fails("[1, 2");
  expect_parse_fails("{\"a\": }");
  expect_parse_fails("{\"a\" 1}");
  expect_parse_fails("{a: 1}");
  expect_parse_fails("[1,]");
  expect_parse_fails("{} trailing");
  expect_parse_fails("\"unterminated");
  expect_parse_fails("\"bad\\escape\"");
  expect_parse_fails("01");     // leading zero then trailing digit
  expect_parse_fails("nul");
  expect_parse_fails("+1");
  expect_parse_fails("1.");
  expect_parse_fails("1e");
}

TEST(JsonParser, RejectsUnescapedControlCharacters) {
  expect_parse_fails("\"a\nb\"");
}

TEST(JsonParser, DeepNestingIsBounded) {
  std::string deep;
  for (int i = 0; i < 500; ++i) {
    deep += "[";
  }
  deep += "1";
  for (int i = 0; i < 500; ++i) {
    deep += "]";
  }
  expect_parse_fails(deep);
}

TEST(JsonParser, ParsesOwnExportFormat) {
  // The shape write_metrics_json emits.
  const JsonValue doc = parse_ok(
      "{\"manifest\": {\"schema_version\": 1, \"git_sha\": \"abc\"}, "
      "\"counters\": {\"scan.windows\": 128}, \"gauges\": {}, "
      "\"histograms\": {\"lat\": {\"bounds\": [0.5], \"buckets\": [1, 0], "
      "\"count\": 1, \"sum\": 0.25, \"p50\": 0.125, \"p95\": 0.45, "
      "\"p99\": 0.49}}, \"spans\": {}}");
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("scan.windows")->as_number(),
                   128.0);
  EXPECT_DOUBLE_EQ(doc.find("histograms")->find("lat")->find("p50")
                       ->as_number(),
                   0.125);
}

TEST(JsonParserFile, ReadsFromDisk) {
  const std::string path = std::string(::testing::TempDir()) + "/doc.json";
  {
    std::ofstream out(path);
    out << "{\"ok\": true}\n";
  }
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json_file(path, doc, error)) << error;
  EXPECT_TRUE(doc.find("ok")->as_bool());
}

TEST(JsonParserFile, MissingFileFailsWithError) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(parse_json_file("/nonexistent/doc.json", doc, error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace hotspot::util
