#include "util/table.h"

#include <gtest/gtest.h>

namespace hotspot::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"Method", "Accu"});
  table.add_row({"Ours", "99.2"});
  table.add_row({"DAC'17", "98.2"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| Method "), std::string::npos);
  EXPECT_NE(text.find("| Ours   "), std::string::npos);
  EXPECT_NE(text.find("99.2"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableDeath, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::util
