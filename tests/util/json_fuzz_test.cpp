// Corpus-driven fuzzing of the JSON parser: truncations, bit flips, random
// garbage, and adversarially deep nesting. The parser reads machine-written
// but disk-resident documents (metrics exports, BENCH_*.json), so a torn or
// corrupted file is a realistic input — the contract under fuzz is "clean
// false + error message, never a crash, hang, or unbounded recursion".
#include "util/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace hotspot::util {
namespace {

// A representative metrics-export-shaped document exercising every value
// type, escapes, exponents, and nesting. No trailing whitespace: with the
// document ending exactly at the root's closing brace, NO strict prefix is
// itself a complete JSON document, so every truncation must fail to parse.
const char kDocument[] =
    "{\"schema\":1,\"run\":{\"id\":\"bench-042\",\"ok\":true,"
    "\"started\":null,\"scale\":2.5e-2,\"odst\":1234.5678901234567},"
    "\"counters\":[{\"name\":\"scan.windows\",\"value\":4096},"
    "{\"name\":\"scan.dedup.hits\",\"value\":1024}],"
    "\"labels\":[0,1,1,0,-1],\"note\":\"tab\\tquote\\\"slash\\\\u\\u00e9\","
    "\"nested\":{\"a\":{\"b\":{\"c\":[[[]]]}}}}";

// Walks the whole value tree through the typed accessors. Any parse that
// reports success must yield a structurally sane tree — no dangling types,
// no accessor CHECK failures.
void walk(const JsonValue& value) {
  switch (value.type()) {
    case JsonType::kNull:
      break;
    case JsonType::kBool:
      (void)value.as_bool();
      break;
    case JsonType::kNumber:
      (void)value.as_number();
      break;
    case JsonType::kString:
      (void)value.as_string().size();
      break;
    case JsonType::kArray:
      for (const JsonValue& item : value.as_array()) {
        walk(item);
      }
      break;
    case JsonType::kObject:
      for (const auto& [key, member] : value.as_object()) {
        (void)key.size();
        walk(member);
      }
      break;
  }
}

std::string nested_arrays(int levels) {
  std::string text;
  text.reserve(static_cast<std::size_t>(levels) * 2 + 1);
  text.append(static_cast<std::size_t>(levels), '[');
  text.push_back('0');
  text.append(static_cast<std::size_t>(levels), ']');
  return text;
}

TEST(JsonFuzz, CorpusDocumentParsesClean) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(kDocument, doc, error)) << error;
  walk(doc);
  ASSERT_NE(doc.find("counters"), nullptr);
  EXPECT_EQ(doc.find("counters")->size(), 2u);
}

TEST(JsonFuzz, EveryTruncationFailsWithoutCrashing) {
  const std::string document(kDocument);
  for (std::size_t cut = 0; cut < document.size(); ++cut) {
    const std::string prefix = document.substr(0, cut);
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parse_json(prefix, doc, error))
        << "accepted truncation at byte " << cut;
    EXPECT_FALSE(error.empty()) << "no error for truncation at byte " << cut;
  }
}

TEST(JsonFuzz, EverySingleBitFlipIsHandled) {
  const std::string document(kDocument);
  for (std::size_t byte = 0; byte < document.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = document;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      JsonValue doc;
      std::string error;
      // A flip may still be valid JSON (digit -> digit, letter inside a
      // string); the contract is only that success yields a sane tree and
      // failure yields an error message.
      if (parse_json(mutated, doc, error)) {
        walk(doc);
      } else {
        EXPECT_FALSE(error.empty())
            << "silent failure at byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(JsonFuzz, RandomGarbageNeverCrashes) {
  Rng rng(0xF022);
  for (int round = 0; round < 500; ++round) {
    const auto length =
        static_cast<std::size_t>(rng.uniform_int(0, 256));
    std::string garbage(length, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    JsonValue doc;
    std::string error;
    if (parse_json(garbage, doc, error)) {
      walk(doc);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(JsonFuzz, StructuralGarbageFromJsonAlphabetNeverCrashes) {
  // Garbage drawn from JSON's own alphabet hits far more parser states than
  // uniform bytes (which usually die on the first character).
  const std::string alphabet = "{}[]\",:.0123456789-+eE \\ntrufalsx";
  Rng rng(0xBADF00D);
  for (int round = 0; round < 500; ++round) {
    const auto length =
        static_cast<std::size_t>(rng.uniform_int(1, 128));
    std::string garbage(length, '\0');
    for (char& c : garbage) {
      c = alphabet[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    JsonValue doc;
    std::string error;
    if (parse_json(garbage, doc, error)) {
      walk(doc);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(JsonFuzz, DepthLimitAcceptsBoundaryRejectsBeyond) {
  // kMaxDepth = 128 in the parser: the scalar inside N nested arrays sits
  // at depth N, so 128 levels is the deepest accepted document.
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(nested_arrays(128), doc, error)) << error;
  walk(doc);

  EXPECT_FALSE(parse_json(nested_arrays(129), doc, error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonFuzz, PathologicalDepthFailsFastInsteadOfOverflowing) {
  // 100k unclosed brackets: without the depth limit this would be a stack
  // overflow, not a parse error.
  JsonValue doc;
  std::string error;
  const std::string bomb(100000, '[');
  EXPECT_FALSE(parse_json(bomb, doc, error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;

  EXPECT_FALSE(parse_json(nested_arrays(5000), doc, error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonFuzz, ErrorsReportAnOffset) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(parse_json("{\"key\": }", doc, error));
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;
}

}  // namespace
}  // namespace hotspot::util
