#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/fault_injection.h"

namespace hotspot::util {
namespace {

TEST(Crc32, MatchesKnownAnswerVector) {
  // The IEEE 802.3 / zlib check value for "123456789".
  EXPECT_EQ(crc32_of("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  Crc32 crc;
  EXPECT_EQ(crc.value(), 0u);
  EXPECT_EQ(crc32_of(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const char data[] = "binarized residual neural network";
  const std::size_t size = sizeof(data) - 1;
  Crc32 crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc.update(data + i, 1);
  }
  EXPECT_EQ(crc.value(), crc32_of(data, size));
}

TEST(Crc32, ResetStartsOver) {
  Crc32 crc;
  crc.update("garbage", 7);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, SingleBitFlipChangesValue) {
  char data[64];
  std::memset(data, 0x42, sizeof(data));
  const std::uint32_t clean = crc32_of(data, sizeof(data));
  for (std::size_t byte = 0; byte < sizeof(data); byte += 7) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(crc32_of(data, sizeof(data)), clean)
          << "bit " << bit << " of byte " << byte;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
}

TEST(FaultInjection, UnarmedProbesNeverFail) {
  ScopedFaultInjection guard;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointWrite));
  }
  EXPECT_EQ(fault_trip_count(FaultPoint::kCheckpointWrite), 0);
  EXPECT_EQ(fault_probe_count(FaultPoint::kCheckpointWrite), 100);
}

TEST(FaultInjection, CountdownFiresExactlyOnceAtTheNthProbe) {
  ScopedFaultInjection guard;
  fault_arm(FaultPoint::kCheckpointFlush, 3);
  EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointFlush));
  EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointFlush));
  EXPECT_TRUE(fault_should_fail(FaultPoint::kCheckpointFlush));
  // Self-disarms after firing.
  EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointFlush));
  EXPECT_EQ(fault_trip_count(FaultPoint::kCheckpointFlush), 1);
}

TEST(FaultInjection, PointsAreIndependent) {
  ScopedFaultInjection guard;
  fault_arm(FaultPoint::kCheckpointRename, 1);
  EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointWrite));
  EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointFlush));
  EXPECT_TRUE(fault_should_fail(FaultPoint::kCheckpointRename));
}

TEST(FaultInjection, ClearDisarms) {
  ScopedFaultInjection guard;
  fault_arm(FaultPoint::kCheckpointWrite, 1);
  fault_clear(FaultPoint::kCheckpointWrite);
  EXPECT_FALSE(fault_should_fail(FaultPoint::kCheckpointWrite));
  EXPECT_EQ(fault_trip_count(FaultPoint::kCheckpointWrite), 0);
}

TEST(FaultInjection, StickyArmingFiresOnEveryProbeFromThreshold) {
  ScopedFaultInjection guard;
  fault_arm_sticky(FaultPoint::kScanRasterCompute, 3);
  EXPECT_FALSE(fault_should_fail(FaultPoint::kScanRasterCompute));
  EXPECT_FALSE(fault_should_fail(FaultPoint::kScanRasterCompute));
  // From the third probe on, a persistent fault: it never self-disarms,
  // which is what drives a window past its whole retry budget.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fault_should_fail(FaultPoint::kScanRasterCompute)) << i;
  }
  EXPECT_EQ(fault_trip_count(FaultPoint::kScanRasterCompute), 5);
  fault_clear(FaultPoint::kScanRasterCompute);
  EXPECT_FALSE(fault_should_fail(FaultPoint::kScanRasterCompute));
}

TEST(FaultInjection, StickyDefaultFiresImmediately) {
  ScopedFaultInjection guard;
  fault_arm_sticky(FaultPoint::kScanPredictCompute);
  EXPECT_TRUE(fault_should_fail(FaultPoint::kScanPredictCompute));
  EXPECT_TRUE(fault_should_fail(FaultPoint::kScanPredictCompute));
}

TEST(FaultInjection, StallProbeSleepsOnlyWhenArmed) {
  ScopedFaultInjection guard;
  // Unarmed: no stall, no trip.
  EXPECT_FALSE(fault_maybe_stall(FaultPoint::kScanRasterStall));
  fault_set_stall_ms(1);
  fault_arm(FaultPoint::kScanRasterStall, 1);
  EXPECT_EQ(fault_stall_ms(), 1);
  EXPECT_TRUE(fault_maybe_stall(FaultPoint::kScanRasterStall));
  // One-shot arming self-disarms after the stall fires.
  EXPECT_FALSE(fault_maybe_stall(FaultPoint::kScanRasterStall));
  EXPECT_EQ(fault_trip_count(FaultPoint::kScanRasterStall), 1);
}

TEST(FaultInjection, ClearAllResetsStickyAndStall) {
  ScopedFaultInjection guard;
  fault_arm_sticky(FaultPoint::kScanAbort);
  fault_set_stall_ms(25);
  fault_clear_all();
  EXPECT_FALSE(fault_should_fail(FaultPoint::kScanAbort));
  EXPECT_EQ(fault_stall_ms(), 0);
}

TEST(FaultInjection, PointNamesAreStable) {
  EXPECT_STREQ(fault_point_name(FaultPoint::kCheckpointWrite),
               "checkpoint-write");
  EXPECT_STREQ(fault_point_name(FaultPoint::kCheckpointFlush),
               "checkpoint-flush");
  EXPECT_STREQ(fault_point_name(FaultPoint::kCheckpointRename),
               "checkpoint-rename");
}

TEST(CorruptionHelpers, TruncateAndFlipBit) {
  const std::string path =
      std::string(::testing::TempDir()) + "/corruption_helpers.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::vector<char> data(100, '\x10');
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  EXPECT_EQ(file_size_of(path), 100);
  EXPECT_TRUE(corrupt_truncate(path, 40));
  EXPECT_EQ(file_size_of(path), 40);

  EXPECT_TRUE(corrupt_flip_bit(path, 5, 3));
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  ASSERT_EQ(bytes.size(), 40u);
  EXPECT_EQ(bytes[5], '\x18');
  EXPECT_EQ(bytes[4], '\x10');

  EXPECT_FALSE(corrupt_flip_bit(path, 40, 0));   // out of range
  EXPECT_FALSE(corrupt_flip_bit(path, 0, 8));    // bad bit index
  EXPECT_FALSE(corrupt_truncate(path, 41));      // cannot extend
  EXPECT_EQ(file_size_of(path + ".nope"), -1);
}

}  // namespace
}  // namespace hotspot::util
