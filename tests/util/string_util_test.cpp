#include "util/string_util.h"

#include <gtest/gtest.h>

namespace hotspot::util {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.5, 3), "2.500");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(17096), "17,096");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-2524), "-2,524");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("hotspot", "hot"));
  EXPECT_TRUE(starts_with("hotspot", ""));
  EXPECT_FALSE(starts_with("hot", "hotspot"));
  EXPECT_FALSE(starts_with("hotspot", "spot"));
}

}  // namespace
}  // namespace hotspot::util
