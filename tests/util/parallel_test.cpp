#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hotspot::util {
namespace {

// Restores the pool width after each test so ordering cannot leak state.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(previous_); }
  int previous_ = parallel_threads();
};

TEST_F(ParallelTest, CoversAllIndicesExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    set_parallel_threads(threads);
    for (const std::int64_t n : {0LL, 1LL, 7LL, 64LL, 1000LL, 4097LL}) {
      std::vector<std::atomic<int>> visits(static_cast<std::size_t>(n));
      parallel_for(0, n, /*grain=*/8, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          visits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " index=" << i;
      }
    }
  }
}

TEST_F(ParallelTest, HonorsNonZeroBegin) {
  set_parallel_threads(4);
  std::vector<int> visits(100, 0);
  parallel_for(10, 90, /*grain=*/4, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      visits[static_cast<std::size_t>(i)] += 1;
    }
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(visits[static_cast<std::size_t>(i)], i >= 10 && i < 90 ? 1 : 0);
  }
}

TEST_F(ParallelTest, ChunksRespectGrainAndOrderWithinChunk) {
  set_parallel_threads(4);
  const std::int64_t n = 200;
  const std::int64_t grain = 16;
  std::mutex mutex;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::int64_t covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    // Every chunk but the ragged last one holds at least `grain` indices.
    if (hi != n) {
      EXPECT_GE(hi - lo, grain);
    }
    covered += hi - lo;
  }
  EXPECT_EQ(covered, n);
}

TEST_F(ParallelTest, EmptyAndReversedRangesAreNoOps) {
  set_parallel_threads(4);
  int calls = 0;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for(9, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  set_parallel_threads(4);
  std::vector<std::atomic<int>> visits(64 * 16);
  parallel_for(0, 64, /*grain=*/1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      parallel_for(0, 16, 1, [&](std::int64_t jlo, std::int64_t jhi) {
        for (std::int64_t j = jlo; j < jhi; ++j) {
          visits[static_cast<std::size_t>(i * 16 + j)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& visit : visits) {
    ASSERT_EQ(visit.load(), 1);
  }
}

TEST_F(ParallelTest, DeterministicSumAcrossThreadCounts) {
  // Per-index work reduced within one chunk element: identical results at
  // any pool width because chunk boundaries are thread-count-independent.
  const std::int64_t n = 10000;
  auto run = [&] {
    std::vector<double> partial(static_cast<std::size_t>(n));
    parallel_for(0, n, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        partial[static_cast<std::size_t>(i)] =
            static_cast<double>(i) * 0.25 + 1.0;
      }
    });
    return std::accumulate(partial.begin(), partial.end(), 0.0);
  };
  set_parallel_threads(1);
  const double serial = run();
  for (const int threads : {2, 3, 4}) {
    set_parallel_threads(threads);
    EXPECT_EQ(serial, run()) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, PropagatesException) {
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 1,
                   [&](std::int64_t lo, std::int64_t) {
                     if (lo >= 500) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
}

TEST_F(ParallelTest, SetParallelThreadsClampsToOne) {
  set_parallel_threads(0);
  EXPECT_EQ(parallel_threads(), 1);
  set_parallel_threads(-3);
  EXPECT_EQ(parallel_threads(), 1);
  set_parallel_threads(2);
  EXPECT_EQ(parallel_threads(), 2);
}

int parsed_or(const char* text, int fallback) {
  int out = fallback;
  return parse_thread_count_strict(text, &out) ? out : fallback;
}

TEST(ParseThreadCount, AcceptsPositiveIntegers) {
  EXPECT_EQ(parsed_or("1", 7), 1);
  EXPECT_EQ(parsed_or("4", 7), 4);
  EXPECT_EQ(parsed_or("128", 7), 128);
  EXPECT_EQ(parsed_or("1024", 7), kMaxThreadCount);
}

TEST(ParseThreadCount, RejectsUnset) {
  EXPECT_FALSE(parse_thread_count_strict(nullptr, nullptr));
  EXPECT_FALSE(parse_thread_count_strict("", nullptr));
}

TEST(ParseThreadCount, RejectsNonPositiveValues) {
  // HOTSPOT_NUM_THREADS=0 used to seed a zero-width pool.
  EXPECT_EQ(parsed_or("0", 7), 7);
  EXPECT_EQ(parsed_or("-3", 7), 7);
}

TEST(ParseThreadCount, RejectsGarbage) {
  EXPECT_EQ(parsed_or("abc", 7), 7);
  EXPECT_EQ(parsed_or("4x", 7), 7);
  EXPECT_EQ(parsed_or("x4", 7), 7);
  EXPECT_EQ(parsed_or("4.5", 7), 7);
  EXPECT_EQ(parsed_or(" ", 7), 7);
}

TEST(ParseThreadCount, RejectsOverflowAndInsaneCounts) {
  // strtol would saturate these to LONG_MAX / truncate to int; the strict
  // parse must refuse instead of running a pool at a mangled width.
  EXPECT_EQ(parsed_or("99999999999999999999", 7), 7);
  EXPECT_EQ(parsed_or("99999999999", 7), 7);
  EXPECT_EQ(parsed_or("2147483648", 7), 7);  // INT_MAX + 1
  EXPECT_EQ(parsed_or("1025", 7), 7);        // over kMaxThreadCount
}

TEST(ParseThreadCountDeathTest, EnvGarbageExitsTwoWithOffendingValue) {
  // The env path is strict like HOTSPOT_SIMD: print the offending value
  // and exit 2, never a silent fallback or truncation.
  ASSERT_EQ(setenv("HOTSPOT_NUM_THREADS", "99999999999", 1), 0);
  EXPECT_EXIT(resolve_threads_from_env(), ::testing::ExitedWithCode(2),
              "HOTSPOT_NUM_THREADS='99999999999'");
  ASSERT_EQ(setenv("HOTSPOT_NUM_THREADS", "two", 1), 0);
  EXPECT_EXIT(resolve_threads_from_env(), ::testing::ExitedWithCode(2),
              "HOTSPOT_NUM_THREADS='two'");
  ASSERT_EQ(unsetenv("HOTSPOT_NUM_THREADS"), 0);
  EXPECT_GE(resolve_threads_from_env(), 1);
}

}  // namespace
}  // namespace hotspot::util
