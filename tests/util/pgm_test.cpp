#include "util/pgm.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace hotspot::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(Pgm, HeaderAndPayload) {
  tensor::Tensor image({2, 3});
  image.at2(0, 0) = 1.0f;
  image.at2(1, 2) = 0.5f;
  const std::string path = std::string(::testing::TempDir()) + "/img.pgm";
  ASSERT_TRUE(write_pgm(path, image));
  const std::string contents = read_file(path);
  EXPECT_EQ(contents.substr(0, 3), "P5\n");
  EXPECT_NE(contents.find("3 2\n255\n"), std::string::npos);
  // 6 payload bytes after the header.
  const auto header_end = contents.find("255\n") + 4;
  ASSERT_EQ(contents.size() - header_end, 6u);
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end]), 255);
  // 0.5 * 255 = 127.5 rounds to nearest, not down.
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end + 5]), 128);
}

TEST(Pgm, RoundsToNearestNotTruncates) {
  // 254.9/255 used to truncate to 254; rounding must yield 255. Likewise
  // 0.4/255 stays 0 while 0.6/255 becomes 1.
  tensor::Tensor image({1, 3});
  image.at2(0, 0) = 254.9f / 255.0f;
  image.at2(0, 1) = 0.4f / 255.0f;
  image.at2(0, 2) = 0.6f / 255.0f;
  const std::string path = std::string(::testing::TempDir()) + "/round.pgm";
  ASSERT_TRUE(write_pgm(path, image));
  const std::string contents = read_file(path);
  const auto header_end = contents.find("255\n") + 4;
  ASSERT_EQ(contents.size() - header_end, 3u);
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end]), 255);
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end + 1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end + 2]), 1);
}

TEST(Pgm, ClampsOutOfRange) {
  tensor::Tensor image({1, 2}, {-5.0f, 9.0f});
  const std::string path = std::string(::testing::TempDir()) + "/clamp.pgm";
  ASSERT_TRUE(write_pgm(path, image));
  const std::string contents = read_file(path);
  const auto header_end = contents.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end]), 0);
  EXPECT_EQ(static_cast<unsigned char>(contents[header_end + 1]), 255);
}

TEST(Pgm, BadPathFails) {
  EXPECT_FALSE(write_pgm("/nonexistent/dir/x.pgm", tensor::Tensor({2, 2})));
}

}  // namespace
}  // namespace hotspot::util
