#include "baselines/adaboost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace hotspot::baselines {
namespace {

using tensor::Tensor;

// Concentric-rings data: inner ring positive, outer negative — not linearly
// separable, so boosting must combine several trees.
void make_rings(util::Rng& rng, std::int64_t n, Tensor& features,
                std::vector<int>& labels) {
  features = Tensor({n, 2});
  labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const double radius = i % 2 == 0 ? rng.uniform(0.0, 0.5)
                                     : rng.uniform(0.8, 1.2);
    const double angle = rng.uniform(0.0, 6.283);
    features.at2(i, 0) = static_cast<float>(radius * std::cos(angle));
    features.at2(i, 1) = static_cast<float>(radius * std::sin(angle));
    labels[static_cast<std::size_t>(i)] = i % 2 == 0 ? 1 : -1;
  }
}

TEST(AdaBoost, LearnsNonlinearBoundary) {
  util::Rng rng(1);
  Tensor features;
  std::vector<int> labels;
  make_rings(rng, 200, features, labels);
  AdaBoost model(AdaBoostConfig{30, 2, 16, 0.0});
  model.fit(features, labels);
  int correct = 0;
  for (std::int64_t i = 0; i < features.dim(0); ++i) {
    correct += model.predict_row(features, i) ==
                       labels[static_cast<std::size_t>(i)]
                   ? 1
                   : 0;
  }
  EXPECT_GT(correct, 190);
}

TEST(AdaBoost, MoreRoundsNotWorseOnTrain) {
  util::Rng rng(2);
  Tensor features;
  std::vector<int> labels;
  make_rings(rng, 150, features, labels);
  auto train_error = [&](int rounds) {
    AdaBoost model(AdaBoostConfig{rounds, 1, 16, 0.0});
    model.fit(features, labels);
    int wrong = 0;
    for (std::int64_t i = 0; i < features.dim(0); ++i) {
      wrong += model.predict_row(features, i) !=
                       labels[static_cast<std::size_t>(i)]
                   ? 1
                   : 0;
    }
    return wrong;
  };
  EXPECT_LE(train_error(25), train_error(2));
}

TEST(AdaBoost, DecisionBiasShiftsOperatingPoint) {
  util::Rng rng(3);
  Tensor features;
  std::vector<int> labels;
  make_rings(rng, 100, features, labels);
  AdaBoost neutral(AdaBoostConfig{10, 1, 8, 0.0});
  neutral.fit(features, labels);
  AdaBoost biased(AdaBoostConfig{10, 1, 8, 10.0});  // huge positive bias
  biased.fit(features, labels);
  int positives = 0;
  for (std::int64_t i = 0; i < features.dim(0); ++i) {
    positives += biased.predict_row(features, i) == 1 ? 1 : 0;
  }
  EXPECT_EQ(positives, 100);  // bias overwhelms every margin
}

TEST(AdaBoost, PerfectWeakLearnerStopsEarly) {
  Tensor features({4, 1}, {0.0f, 0.1f, 0.9f, 1.0f});
  const std::vector<int> labels{-1, -1, 1, 1};
  AdaBoost model(AdaBoostConfig{50, 1, 8, 0.0});
  model.fit(features, labels);
  EXPECT_EQ(model.round_count(), 1u);  // first stump is perfect
}

TEST(AdaBoost, DecisionValueMagnitudeReflectsConfidence) {
  Tensor features({4, 1}, {0.0f, 0.1f, 0.9f, 1.0f});
  const std::vector<int> labels{-1, -1, 1, 1};
  AdaBoost model(AdaBoostConfig{10, 1, 8, 0.0});
  model.fit(features, labels);
  EXPECT_LT(model.decision_value(features, 0), 0.0);
  EXPECT_GT(model.decision_value(features, 3), 0.0);
}

}  // namespace
}  // namespace hotspot::baselines
