#include "baselines/online_learner.h"

#include <gtest/gtest.h>

#include "dataset/generator.h"

namespace hotspot::baselines {
namespace {

using tensor::Tensor;

dataset::Benchmark small_benchmark() {
  dataset::BenchmarkConfig config = dataset::iccad2012_config(1.0, 32);
  config.train.hotspots = 40;
  config.train.non_hotspots = 120;
  config.test.hotspots = 20;
  config.test.non_hotspots = 60;
  config.seed = 7;
  return dataset::generate_benchmark(config);
}

TEST(OnlineLearner, FitsAndPredictsValidLabels) {
  const auto bench = small_benchmark();
  OnlineLearnerDetector detector{OnlineLearnerConfig{}};
  util::Rng rng(1);
  detector.fit(bench.train, rng);
  const auto predictions = detector.predict(bench.test);
  ASSERT_EQ(predictions.size(), bench.test.size());
  for (const int p : predictions) {
    EXPECT_TRUE(p == 0 || p == 1);
  }
}

TEST(OnlineLearner, SelectsRequestedFeatureCount) {
  const auto bench = small_benchmark();
  OnlineLearnerConfig config;
  config.selected_features = 16;
  OnlineLearnerDetector detector(config);
  util::Rng rng(2);
  detector.fit(bench.train, rng);
  EXPECT_EQ(detector.selected_columns().size(), 16u);
}

TEST(OnlineLearner, BetterThanAlwaysNegativeOnTrain) {
  const auto bench = small_benchmark();
  OnlineLearnerDetector detector{OnlineLearnerConfig{}};
  util::Rng rng(3);
  detector.fit(bench.train, rng);
  const auto predictions = detector.predict(bench.train);
  const auto labels = bench.train.batch_labels(bench.train.all_indices());
  int true_positive = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    true_positive += labels[i] == 1 && predictions[i] == 1 ? 1 : 0;
  }
  // An always-negative detector catches 0 hotspots; online learning must do
  // meaningfully better on its own training set.
  EXPECT_GT(true_positive, 10);
}

TEST(OnlineLearner, StreamingUpdateMovesDecision) {
  OnlineLearnerConfig config;
  config.selected_features = 2;
  OnlineLearnerDetector detector(config);
  // Hand-drive the streaming protocol on a fixed 2-feature problem.
  dataset::HotspotDataset tiny;
  Tensor on({32, 32}, 1.0f);
  Tensor off({32, 32});
  tiny.add(dataset::ClipSample::from_image(on, 1, dataset::Family::kComb));
  tiny.add(dataset::ClipSample::from_image(off, 0, dataset::Family::kComb));
  util::Rng rng(4);
  detector.fit(tiny, rng);
  const auto predictions = detector.predict(tiny);
  EXPECT_EQ(predictions[0], 1);
  EXPECT_EQ(predictions[1], 0);
}

TEST(OnlineLearner, PredictBeforeFitDies) {
  OnlineLearnerDetector detector{OnlineLearnerConfig{}};
  dataset::HotspotDataset empty_data;
  empty_data.add(dataset::ClipSample::from_image(Tensor({8, 8}), 0,
                                                 dataset::Family::kJog));
  EXPECT_DEATH(detector.predict(empty_data), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::baselines
