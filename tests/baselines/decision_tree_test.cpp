#include "baselines/decision_tree.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hotspot::baselines {
namespace {

using tensor::Tensor;

TEST(DecisionTree, StumpSeparatesThresholdedData) {
  // Label = sign(x - 0.5): one split suffices.
  const std::int64_t n = 40;
  Tensor features({n, 1});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    features.at2(i, 0) = static_cast<float>(i) / static_cast<float>(n);
    labels[static_cast<std::size_t>(i)] = features.at2(i, 0) > 0.5f ? 1 : -1;
  }
  const std::vector<double> weights(static_cast<std::size_t>(n),
                                    1.0 / static_cast<double>(n));
  DecisionTree tree;
  tree.fit(features, labels, weights, /*max_depth=*/1);
  EXPECT_LT(tree.weighted_error(features, labels, weights), 0.05);
}

TEST(DecisionTree, DepthTwoSolvesXorLikeData) {
  // 2-D XOR needs two levels.
  Tensor features({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<int> labels{-1, 1, 1, -1};
  const std::vector<double> weights(4, 0.25);
  DecisionTree stump;
  stump.fit(features, labels, weights, 1);
  DecisionTree deep;
  deep.fit(features, labels, weights, 2);
  EXPECT_LE(deep.weighted_error(features, labels, weights),
            stump.weighted_error(features, labels, weights));
  EXPECT_LT(deep.weighted_error(features, labels, weights), 1e-9);
}

TEST(DecisionTree, RespectsWeights) {
  // Two conflicting points; the heavier one wins the leaf label.
  Tensor features({2, 1}, {0.5f, 0.5f});
  const std::vector<int> labels{1, -1};
  DecisionTree tree;
  tree.fit(features, labels, {0.9, 0.1}, 2);
  EXPECT_EQ(tree.predict_row(features, 0), 1);
  tree.fit(features, labels, {0.1, 0.9}, 2);
  EXPECT_EQ(tree.predict_row(features, 0), -1);
}

TEST(DecisionTree, ConstantFeaturesYieldMajorityLeaf) {
  Tensor features({5, 2}, 1.0f);
  const std::vector<int> labels{1, 1, 1, -1, -1};
  const std::vector<double> weights(5, 0.2);
  DecisionTree tree;
  tree.fit(features, labels, weights, 3);
  EXPECT_EQ(tree.predict_row(features, 0), 1);
}

TEST(DecisionTree, PredictBeforeFitDies) {
  DecisionTree tree;
  Tensor features({1, 1});
  EXPECT_DEATH(tree.predict_row(features, 0), "HOTSPOT_CHECK");
}

TEST(DecisionTree, RejectsBadLabels) {
  Tensor features({2, 1});
  DecisionTree tree;
  EXPECT_DEATH(tree.fit(features, {0, 1}, {0.5, 0.5}, 1), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::baselines
