#include "baselines/dct_cnn.h"

#include <gtest/gtest.h>

#include "dataset/generator.h"
#include "eval/metrics.h"

namespace hotspot::baselines {
namespace {

dataset::Benchmark small_benchmark() {
  dataset::BenchmarkConfig config = dataset::iccad2012_config(1.0, 32);
  config.train.hotspots = 30;
  config.train.non_hotspots = 90;
  config.test.hotspots = 15;
  config.test.non_hotspots = 45;
  config.seed = 11;
  return dataset::generate_benchmark(config);
}

DctCnnConfig fast_config() {
  DctCnnConfig config = DctCnnConfig::compact(32);
  config.stage1_channels = 8;
  config.stage2_channels = 8;
  config.fc_hidden = 16;
  config.trainer.epochs = 3;
  config.trainer.finetune_epochs = 1;
  return config;
}

TEST(DctCnn, TrainsAndPredicts) {
  const auto bench = small_benchmark();
  DctCnnDetector detector(fast_config());
  util::Rng rng(1);
  detector.fit(bench.train, rng);
  const auto predictions = detector.predict(bench.test);
  ASSERT_EQ(predictions.size(), bench.test.size());
  for (const int p : predictions) {
    EXPECT_TRUE(p == 0 || p == 1);
  }
}

TEST(DctCnn, LearnsTrainingSetAboveChance) {
  const auto bench = small_benchmark();
  DctCnnConfig config = fast_config();
  config.trainer.epochs = 6;
  DctCnnDetector detector(config);
  util::Rng rng(2);
  detector.fit(bench.train, rng);
  const auto cm = eval::confusion(
      bench.train.batch_labels(bench.train.all_indices()),
      detector.predict(bench.train));
  // TPR + TNR must beat coin flipping on its own training data.
  const double tnr =
      static_cast<double>(cm.true_negative) /
      static_cast<double>(cm.true_negative + cm.false_positive);
  EXPECT_GT(cm.accuracy() + tnr, 1.05);
}

TEST(DctCnn, NetworkExposedAfterFit) {
  const auto bench = small_benchmark();
  DctCnnDetector detector(fast_config());
  util::Rng rng(3);
  detector.fit(bench.train, rng);
  EXPECT_GT(detector.network().parameter_count(), 0);
}

TEST(DctCnn, PredictBeforeFitDies) {
  DctCnnDetector detector(fast_config());
  dataset::HotspotDataset data;
  data.add(dataset::ClipSample::from_image(tensor::Tensor({32, 32}), 0,
                                           dataset::Family::kJog));
  EXPECT_DEATH(detector.predict(data), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::baselines
