#include "layout/clip.h"

#include <gtest/gtest.h>

namespace hotspot::layout {
namespace {

TEST(Clip, RasterizesOwnWindow) {
  Clip clip{Pattern({Rect{0, 0, 512, 1024}}), 1024};
  const auto binary = clip.binary(8);
  // Left half covered.
  EXPECT_EQ(binary.at2(0, 0), 1.0f);
  EXPECT_EQ(binary.at2(0, 3), 1.0f);
  EXPECT_EQ(binary.at2(0, 4), 0.0f);
}

TEST(ExtractClips, CoversBoundingBox) {
  Pattern full({Rect{0, 0, 2000, 1000}});
  const auto clips = extract_clips(full, 1000, 1000);
  EXPECT_EQ(clips.size(), 2u);  // 2 x 1 tiling of the bounding box
  for (const auto& clip : clips) {
    EXPECT_FALSE(clip.pattern.empty());
  }
}

TEST(ExtractClips, OverlappingStride) {
  Pattern full({Rect{0, 0, 1500, 500}});
  const auto clips = extract_clips(full, 1000, 500);
  EXPECT_EQ(clips.size(), 3u);  // x = 0, 500, 1000
}

TEST(ExtractClips, EmptyLayoutYieldsNothing) {
  EXPECT_TRUE(extract_clips(Pattern(), 1000, 1000).empty());
}

TEST(ExtractClips, StepLargerThanSizeRejected) {
  // A step beyond the window edge would leave uncovered stripes between
  // windows — geometry the scan silently never sees.
  Pattern full({Rect{0, 0, 3000, 1000}});
  EXPECT_DEATH(extract_clips(full, 1000, 1500), "HOTSPOT_CHECK");
}

TEST(ExtractClips, ExtentsNotDivisibleByStep) {
  // 2500 nm wide with 1000 nm windows: the last window starts at 2000 and
  // overhangs the bounding box; the overhang must not drop the tail.
  Pattern full({Rect{0, 0, 2500, 800}});
  const auto clips = extract_clips(full, 1000, 1000);
  ASSERT_EQ(clips.size(), 3u);
  // The tail window still holds the final 500 nm of geometry.
  EXPECT_EQ(clips[2].pattern.rects()[0], (Rect{0, 0, 500, 800}));
}

TEST(ExtractClips, GeometryTouchingBoundingBoxEdge) {
  // Rects ending exactly on the bounding-box edge land in the last window,
  // not in a phantom window past the edge.
  Pattern full({Rect{0, 0, 100, 100}, Rect{1900, 1900, 2000, 2000}});
  const auto clips = extract_clips(full, 1000, 1000);
  ASSERT_EQ(clips.size(), 4u);  // 2 x 2 grid
  EXPECT_EQ(clips[3].pattern.rects()[0], (Rect{900, 900, 1000, 1000}));
  EXPECT_TRUE(clips[1].pattern.empty());
  EXPECT_TRUE(clips[2].pattern.empty());
}

TEST(ExtractClips, ClipGeometryInLocalFrame) {
  Pattern full({Rect{1200, 200, 1400, 400}});
  const auto clips = extract_clips(full, 1000, 1000);
  ASSERT_EQ(clips.size(), 1u);
  // Window starts at the bounding box origin (1200, 200).
  EXPECT_EQ(clips[0].pattern.rects()[0], (Rect{0, 0, 200, 200}));
}

}  // namespace
}  // namespace hotspot::layout
