#include "layout/raster.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::layout {
namespace {

using tensor::Tensor;

TEST(RasterizeCoverage, FullRectFullCoverage) {
  Pattern pattern({Rect{0, 0, 100, 100}});
  const Tensor raster =
      rasterize_coverage(pattern, Rect{0, 0, 100, 100}, 4);
  for (std::int64_t i = 0; i < raster.numel(); ++i) {
    EXPECT_NEAR(raster[i], 1.0f, 1e-6);
  }
}

TEST(RasterizeCoverage, HalfCoveredPixel) {
  // Rect covers the left half of a 1-pixel window.
  Pattern pattern({Rect{0, 0, 50, 100}});
  const Tensor raster =
      rasterize_coverage(pattern, Rect{0, 0, 100, 100}, 1);
  EXPECT_NEAR(raster[0], 0.5f, 1e-6);
}

TEST(RasterizeCoverage, ExactAreaFractions) {
  // 25x25 rect in a 100x100 window at grid 2: only the top-left pixel (50nm
  // cells) sees it, covering a quarter.
  Pattern pattern({Rect{0, 0, 25, 25}});
  const Tensor raster =
      rasterize_coverage(pattern, Rect{0, 0, 100, 100}, 2);
  EXPECT_NEAR(raster.at2(0, 0), 0.25f, 1e-6);
  EXPECT_NEAR(raster.at2(0, 1), 0.0f, 1e-6);
}

TEST(RasterizeCoverage, OverlappingRectsSaturate) {
  Pattern pattern({Rect{0, 0, 100, 100}, Rect{0, 0, 100, 100}});
  const Tensor raster =
      rasterize_coverage(pattern, Rect{0, 0, 100, 100}, 2);
  EXPECT_LE(raster.max(), 1.0f);
}

TEST(RasterizeCoverage, GeometryOutsideWindowIgnored) {
  Pattern pattern({Rect{200, 200, 300, 300}});
  const Tensor raster =
      rasterize_coverage(pattern, Rect{0, 0, 100, 100}, 4);
  EXPECT_EQ(raster.max(), 0.0f);
}

TEST(RasterizeBinary, ThresholdAtHalf) {
  Pattern pattern({Rect{0, 0, 60, 100}});  // 60% of the single pixel
  const Tensor binary = rasterize_binary(pattern, Rect{0, 0, 100, 100}, 1);
  EXPECT_EQ(binary[0], 1.0f);
  Pattern thin({Rect{0, 0, 40, 100}});  // 40%
  EXPECT_EQ(rasterize_binary(thin, Rect{0, 0, 100, 100}, 1)[0], 0.0f);
}

TEST(Downsample, MajorityVotePerBlock) {
  Tensor image({4, 4});
  // Fill the top-left 2x2 block fully and one pixel of the top-right.
  image.at2(0, 0) = image.at2(0, 1) = image.at2(1, 0) = image.at2(1, 1) = 1.0f;
  image.at2(0, 2) = 1.0f;
  const Tensor small = downsample_binary(image, 2);
  EXPECT_EQ(small.at2(0, 0), 1.0f);
  EXPECT_EQ(small.at2(0, 1), 0.0f);  // 1 of 4 < 0.5
}

TEST(Downsample, RequiresDivisibleSize) {
  EXPECT_DEATH(downsample_binary(Tensor({5, 5}), 2), "HOTSPOT_CHECK");
}

TEST(Flips, InvolutionsAndMirroring) {
  Tensor image({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor h = flip_horizontal(image);
  EXPECT_EQ(h.at2(0, 0), 3.0f);
  EXPECT_EQ(h.at2(1, 2), 4.0f);
  EXPECT_TRUE(tensor::allclose(flip_horizontal(h), image, 0.0));
  const Tensor v = flip_vertical(image);
  EXPECT_EQ(v.at2(0, 0), 4.0f);
  EXPECT_TRUE(tensor::allclose(flip_vertical(v), image, 0.0));
}

}  // namespace
}  // namespace hotspot::layout
