#include "layout/geometry.h"

#include <gtest/gtest.h>

namespace hotspot::layout {
namespace {

TEST(Rect, BasicProperties) {
  const Rect r{0, 0, 10, 20};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((Rect{5, 5, 5, 10}).empty());
}

TEST(Rect, ContainsHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(0, 0));
  EXPECT_TRUE(r.contains(9, 9));
  EXPECT_FALSE(r.contains(10, 5));
  EXPECT_FALSE(r.contains(5, 10));
}

TEST(Intersect, OverlapAndDisjoint) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 15, 15};
  const Rect both = intersect(a, b);
  EXPECT_EQ(both, (Rect{5, 5, 10, 10}));
  EXPECT_TRUE(intersect(a, Rect{20, 20, 30, 30}).empty());
}

TEST(Overlaps, AbuttingIsNotOverlap) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(overlaps(a, Rect{9, 9, 20, 20}));
  EXPECT_FALSE(overlaps(a, Rect{10, 0, 20, 10}));  // shares edge only
  EXPECT_TRUE(touches(a, Rect{10, 0, 20, 10}));    // but touches
}

TEST(BoundingBox, MergesAndHandlesEmpty) {
  const Rect a{0, 0, 5, 5};
  const Rect b{10, 10, 20, 20};
  EXPECT_EQ(bounding_box(a, b), (Rect{0, 0, 20, 20}));
  EXPECT_EQ(bounding_box(Rect{}, a), a);
}

TEST(Pattern, CoversUnionOfRects) {
  Pattern pattern;
  pattern.add(Rect{0, 0, 10, 10});
  pattern.add(Rect{5, 5, 15, 15});
  EXPECT_TRUE(pattern.covers(12, 12));
  EXPECT_TRUE(pattern.covers(2, 2));
  EXPECT_FALSE(pattern.covers(12, 2));
}

TEST(Pattern, TranslateShiftsEverything) {
  Pattern pattern({Rect{0, 0, 10, 10}});
  pattern.translate(100, 200);
  EXPECT_EQ(pattern.rects()[0], (Rect{100, 200, 110, 210}));
}

TEST(Pattern, ClippedToWindowLocalFrame) {
  Pattern pattern({Rect{-5, -5, 5, 5}, Rect{100, 100, 110, 110}});
  const Pattern clipped = pattern.clipped_to(Rect{0, 0, 50, 50});
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped.rects()[0], (Rect{0, 0, 5, 5}));
}

TEST(Pattern, ConnectedComponentsCountsShapes) {
  Pattern pattern;
  pattern.add(Rect{0, 0, 10, 10});
  pattern.add(Rect{10, 0, 20, 10});  // touches the first -> same shape
  pattern.add(Rect{50, 50, 60, 60});  // isolated
  EXPECT_EQ(pattern.connected_component_count(), 2);
}

TEST(Pattern, OverlappingChainIsOneComponent) {
  Pattern pattern;
  for (int i = 0; i < 5; ++i) {
    pattern.add(Rect{i * 8, 0, i * 8 + 10, 10});  // each overlaps the next
  }
  EXPECT_EQ(pattern.connected_component_count(), 1);
}

TEST(Pattern, EmptyRectRejected) {
  Pattern pattern;
  EXPECT_DEATH(pattern.add(Rect{0, 0, 0, 10}), "HOTSPOT_CHECK");
}

TEST(Pattern, BoundingBoxOfEmptyPatternIsEmpty) {
  EXPECT_TRUE(Pattern().bounding_box().empty());
}

}  // namespace
}  // namespace hotspot::layout
