#include "tensor/dct.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "tensor/tensor_ops.h"

namespace hotspot::tensor {
namespace {

TEST(Dct, ConstantImageHasOnlyDcTerm) {
  Tensor image({4, 4}, 2.0f);
  const Tensor spectrum = dct2(image);
  // Orthonormal DCT: DC = mean * sqrt(H*W) = 2 * 4 = 8.
  EXPECT_NEAR(spectrum.at2(0, 0), 8.0f, 1e-5);
  for (std::int64_t i = 1; i < spectrum.numel(); ++i) {
    EXPECT_NEAR(spectrum[i], 0.0f, 1e-5);
  }
}

TEST(Dct, RoundTrip) {
  util::Rng rng(5);
  const Tensor image = Tensor::normal({8, 6}, rng, 0.0f, 1.0f);
  const Tensor back = idct2(dct2(image));
  EXPECT_TRUE(allclose(back, image, 1e-4));
}

TEST(Dct, ParsevalEnergyPreserved) {
  util::Rng rng(6);
  const Tensor image = Tensor::normal({8, 8}, rng, 0.0f, 1.0f);
  const Tensor spectrum = dct2(image);
  EXPECT_NEAR(l2_norm(image), l2_norm(spectrum), 1e-3);
}

TEST(Dct, RowTransformMatchesCosine) {
  // Single row [1, 0, 0, 0]: DCT coefficients are the basis column.
  Tensor row({1, 4}, {1, 0, 0, 0});
  const Tensor spectrum = dct2_rows(row);
  EXPECT_NEAR(spectrum.at2(0, 0), std::sqrt(1.0 / 4.0), 1e-6);
  EXPECT_NEAR(spectrum.at2(0, 1),
              std::sqrt(2.0 / 4.0) * std::cos(std::numbers::pi * 0.5 / 4.0),
              1e-6);
}

TEST(Zigzag, OrderForBlock3) {
  const auto order = zigzag_order(3);
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(order[1], (std::pair<std::int64_t, std::int64_t>{0, 1}));
  EXPECT_EQ(order[2], (std::pair<std::int64_t, std::int64_t>{1, 0}));
  EXPECT_EQ(order[3], (std::pair<std::int64_t, std::int64_t>{2, 0}));
  EXPECT_EQ(order.back(), (std::pair<std::int64_t, std::int64_t>{2, 2}));
}

TEST(Zigzag, VisitsEveryCellOnce) {
  const auto order = zigzag_order(5);
  std::set<std::pair<std::int64_t, std::int64_t>> seen(order.begin(),
                                                       order.end());
  EXPECT_EQ(seen.size(), 25u);
}

TEST(BlockDct, ShapeAndDcChannel) {
  Tensor image({8, 8}, 1.0f);
  const Tensor features = block_dct_features(image, 4, 6);
  EXPECT_EQ(features.shape(), (Shape{6, 2, 2}));
  // DC of each constant 4x4 tile = 1 * 4 = 4.
  EXPECT_NEAR(features.at({0, 0, 0}), 4.0f, 1e-5);
  EXPECT_NEAR(features.at({1, 1, 1}), 0.0f, 1e-5);
}

TEST(BlockDct, RejectsNonDivisibleImage) {
  Tensor image({6, 6});
  EXPECT_DEATH(block_dct_features(image, 4, 4), "HOTSPOT_CHECK");
}

TEST(BlockDct, DistinguishesTileContent) {
  Tensor image({8, 8});
  for (std::int64_t x = 0; x < 4; ++x) {
    image.at2(0, x) = 1.0f;  // content only in the top-left tile
  }
  const Tensor features = block_dct_features(image, 4, 4);
  EXPECT_GT(std::fabs(features.at({0, 0, 0})), 0.1f);
  EXPECT_NEAR(features.at({0, 1, 1}), 0.0f, 1e-6);
}

}  // namespace
}  // namespace hotspot::tensor
