#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hotspot::tensor {
namespace {

TEST(Elementwise, AddSubMul) {
  const Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {4, 5, 6});
  EXPECT_EQ(add(a, b)[1], 7.0f);
  EXPECT_EQ(sub(a, b)[2], -3.0f);
  EXPECT_EQ(mul(a, b)[0], 4.0f);
  EXPECT_EQ(scale(a, 2.0f)[2], 6.0f);
}

TEST(Elementwise, ShapeMismatchDies) {
  const Tensor a({3});
  const Tensor b({4});
  EXPECT_DEATH(add(a, b), "HOTSPOT_CHECK");
}

TEST(Elementwise, InplaceVariants) {
  Tensor a({2}, {1, 2});
  const Tensor b({2}, {10, 20});
  add_inplace(a, b);
  EXPECT_EQ(a[1], 22.0f);
  axpy_inplace(a, b, 0.5f);
  EXPECT_EQ(a[0], 16.0f);
  scale_inplace(a, 2.0f);
  EXPECT_EQ(a[0], 32.0f);
}

TEST(Elementwise, SignConvention) {
  const Tensor a({4}, {-1.5f, 0.0f, 0.5f, -0.0f});
  const Tensor s = sign(a);
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 1.0f);  // sign(0) = +1 (XNOR-Net convention)
  EXPECT_EQ(s[2], 1.0f);
  EXPECT_EQ(s[3], 1.0f);  // -0.0f >= 0 in IEEE comparison
}

TEST(Elementwise, AbsAndMap) {
  const Tensor a({2}, {-3.0f, 4.0f});
  EXPECT_EQ(abs(a)[0], 3.0f);
  const Tensor m = map(a, [](float v) { return v * v; });
  EXPECT_EQ(m[0], 9.0f);
}

TEST(Norms, L1L2) {
  const Tensor a({3}, {3.0f, -4.0f, 0.0f});
  EXPECT_DOUBLE_EQ(l1_norm(a), 7.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
}

TEST(Norms, MaxAbsDiffAndAllclose) {
  const Tensor a({2}, {1.0f, 2.0f});
  const Tensor b({2}, {1.1f, 2.0f});
  EXPECT_NEAR(max_abs_diff(a, b), 0.1, 1e-6);
  EXPECT_TRUE(allclose(a, b, 0.2));
  EXPECT_FALSE(allclose(a, b, 0.05));
}

TEST(Matmul, KnownProduct) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, InnerDimMismatchDies) {
  EXPECT_DEATH(matmul(Tensor({2, 3}), Tensor({2, 3})), "HOTSPOT_CHECK");
}

TEST(Matmul, IdentityRoundTrip) {
  util::Rng rng(1);
  const Tensor a = Tensor::normal({4, 4}, rng, 0.0f, 1.0f);
  Tensor eye({4, 4});
  for (int i = 0; i < 4; ++i) {
    eye.at2(i, i) = 1.0f;
  }
  EXPECT_TRUE(allclose(matmul(a, eye), a, 1e-6));
}

TEST(Transpose, Involution) {
  util::Rng rng(2);
  const Tensor a = Tensor::normal({3, 5}, rng, 0.0f, 1.0f);
  EXPECT_TRUE(allclose(transpose2d(transpose2d(a)), a, 0.0));
  EXPECT_EQ(transpose2d(a).dim(0), 5);
}

TEST(ChannelStats, MeanAndVariance) {
  // Two channels: constant 2 and alternating 0/4.
  Tensor x({1, 2, 1, 4});
  for (int i = 0; i < 4; ++i) {
    x.at4(0, 0, 0, i) = 2.0f;
    x.at4(0, 1, 0, i) = i % 2 == 0 ? 0.0f : 4.0f;
  }
  const Tensor mean = channel_mean(x);
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 2.0f);
  const Tensor var = channel_variance(x, mean);
  EXPECT_FLOAT_EQ(var[0], 0.0f);
  EXPECT_FLOAT_EQ(var[1], 4.0f);
}

TEST(Softmax, RowsSumToOne) {
  const Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor probs = softmax_rows(logits);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int c = 0; c < 3; ++c) {
      total += probs.at2(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  EXPECT_GT(probs.at2(0, 2), probs.at2(0, 0));
}

TEST(Softmax, NumericallyStableWithLargeLogits) {
  const Tensor logits({1, 2}, {1000.0f, 999.0f});
  const Tensor probs = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(probs.at2(0, 0)));
  EXPECT_NEAR(probs.at2(0, 0), 1.0 / (1.0 + std::exp(-1.0)), 1e-4);
}

TEST(CrossEntropy, MatchesHandComputation) {
  const Tensor logits({1, 2}, {0.0f, 0.0f});
  const Tensor targets({1, 2}, {0.0f, 1.0f});
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, targets, &grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(grad.at2(0, 0), 0.5, 1e-6);
  EXPECT_NEAR(grad.at2(0, 1), -0.5, 1e-6);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(4);
  const Tensor logits = Tensor::normal({3, 2}, rng, 0.0f, 1.0f);
  Tensor targets({3, 2});
  for (int r = 0; r < 3; ++r) {
    targets.at2(r, r % 2) = 1.0f;
  }
  Tensor grad;
  softmax_cross_entropy(logits, targets, &grad);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    Tensor lm = logits;
    lp[i] += h;
    lm[i] -= h;
    const double numeric = (softmax_cross_entropy(lp, targets, nullptr) -
                            softmax_cross_entropy(lm, targets, nullptr)) /
                           (2.0 * h);
    EXPECT_NEAR(grad[i], numeric, 1e-3);
  }
}

TEST(Argmax, PicksLargestColumn) {
  const Tensor logits({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto rows = argmax_rows(logits);
  EXPECT_EQ(rows[0], 1);
  EXPECT_EQ(rows[1], 0);
}

}  // namespace
}  // namespace hotspot::tensor
