#include "tensor/conv.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::tensor {
namespace {

// Direct reference convolution for validation.
Tensor reference_conv(const Tensor& input, const Tensor& weight,
                      const ConvSpec& spec) {
  const std::int64_t n = input.dim(0);
  const std::int64_t cin = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t oh = conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t ow = conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  Tensor out({n, cout, oh, ow});
  for (std::int64_t ni = 0; ni < n; ++ni)
    for (std::int64_t co = 0; co < cout; ++co)
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ci = 0; ci < cin; ++ci)
            for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky)
              for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
                const std::int64_t iy = oy * spec.stride - spec.pad + ky;
                const std::int64_t ix = ox * spec.stride - spec.pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(input.at4(ni, ci, iy, ix)) *
                       static_cast<double>(weight.at4(co, ci, ky, kx));
              }
          out.at4(ni, co, oy, ox) = static_cast<float>(acc);
        }
  return out;
}

TEST(ConvOutExtent, Formula) {
  EXPECT_EQ(conv_out_extent(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_extent(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_extent(32, 1, 1, 0), 32);
  EXPECT_EQ(conv_out_extent(5, 3, 1, 0), 3);
}

TEST(Im2col, IdentityKernelIsCopy) {
  util::Rng rng(1);
  const Tensor x = Tensor::normal({1, 2, 3, 3}, rng, 0.0f, 1.0f);
  const ConvSpec spec{1, 1, 1, 0};
  const Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.dim(0), 9);
  EXPECT_EQ(cols.dim(1), 2);
  EXPECT_FLOAT_EQ(cols.at2(4, 1), x.at4(0, 1, 1, 1));
}

TEST(Im2col, PadValueUsedOutside) {
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const ConvSpec spec{3, 3, 1, 1};
  const Tensor cols = im2col(x, spec, -1.0f);
  // First patch centered at (0,0): top-left neighbourhood is padding.
  EXPECT_FLOAT_EQ(cols.at2(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(cols.at2(0, 4), 1.0f);  // centre = pixel (0,0)
}

TEST(Col2im, AdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for zero padding: the defining adjoint
  // identity that makes the conv backward correct.
  util::Rng rng(2);
  const Tensor x = Tensor::normal({2, 3, 5, 5}, rng, 0.0f, 1.0f);
  const ConvSpec spec{3, 3, 2, 1};
  const Tensor cols = im2col(x, spec);
  const Tensor y = Tensor::normal(cols.shape(), rng, 0.0f, 1.0f);
  const Tensor back = col2im(y, x.shape(), spec);
  const double lhs = mul(cols, y).sum();
  const double rhs = mul(x, back).sum();
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

struct ConvCase {
  std::int64_t n, cin, cout, hw, kernel, stride, pad;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, MatchesReference) {
  const ConvCase c = GetParam();
  util::Rng rng(42);
  const Tensor x = Tensor::normal({c.n, c.cin, c.hw, c.hw}, rng, 0.0f, 1.0f);
  const Tensor w =
      Tensor::normal({c.cout, c.cin, c.kernel, c.kernel}, rng, 0.0f, 0.5f);
  const ConvSpec spec{c.kernel, c.kernel, c.stride, c.pad};
  const Tensor got = conv2d(x, w, nullptr, spec);
  const Tensor want = reference_conv(x, w, spec);
  EXPECT_TRUE(allclose(got, want, 1e-3))
      << "max diff " << max_abs_diff(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParamTest,
    ::testing::Values(ConvCase{1, 1, 1, 4, 3, 1, 1},
                      ConvCase{2, 3, 4, 6, 3, 1, 1},
                      ConvCase{1, 2, 5, 8, 3, 2, 1},
                      ConvCase{2, 4, 2, 5, 1, 1, 0},
                      ConvCase{1, 3, 3, 7, 1, 2, 0},
                      ConvCase{1, 2, 2, 9, 5, 1, 2}));

TEST(Conv2d, BiasAdded) {
  Tensor x({1, 1, 2, 2}, {1, 1, 1, 1});
  Tensor w({1, 1, 1, 1}, {2.0f});
  Tensor bias({1}, {0.5f});
  const Tensor out = conv2d(x, w, &bias, ConvSpec{1, 1, 1, 0});
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 2.5f);
}

TEST(Conv2dBackward, MatchesFiniteDifference) {
  util::Rng rng(7);
  const Tensor x = Tensor::normal({1, 2, 4, 4}, rng, 0.0f, 1.0f);
  const Tensor w = Tensor::normal({3, 2, 3, 3}, rng, 0.0f, 0.5f);
  const ConvSpec spec{3, 3, 1, 1};
  const Tensor g = Tensor::normal({1, 3, 4, 4}, rng, 0.0f, 1.0f);

  Tensor gx, gw, gb;
  conv2d_backward(x, w, g, spec, &gx, &gw, &gb);

  auto loss = [&](const Tensor& xi, const Tensor& wi) {
    return mul(conv2d(xi, wi, nullptr, spec), g).sum();
  };
  const float h = 1e-2f;
  for (std::int64_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    EXPECT_NEAR(gx[i], (loss(xp, w) - loss(xm, w)) / (2 * h), 2e-2);
  }
  for (std::int64_t i = 0; i < w.numel(); i += 7) {
    Tensor wp = w, wm = w;
    wp[i] += h;
    wm[i] -= h;
    EXPECT_NEAR(gw[i], (loss(x, wp) - loss(x, wm)) / (2 * h), 2e-2);
  }
}

TEST(DepthwiseShared, BoxFilterAverages) {
  Tensor x({1, 1, 3, 3}, {0, 0, 0, 0, 9, 0, 0, 0, 0});
  Tensor kernel({3, 3});
  kernel.fill(1.0f / 9.0f);
  const Tensor out =
      depthwise_conv2d_shared(x, kernel, ConvSpec{3, 3, 1, 1});
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);  // centre value seen once
}

}  // namespace
}  // namespace hotspot::tensor
