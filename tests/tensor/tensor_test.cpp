#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace hotspot::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t[i], 2.5f);
  }
}

TEST(Tensor, ValueConstructorChecksCount) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at2(1, 1), 4.0f);
  EXPECT_DEATH(Tensor({2, 2}, std::vector<float>{1.0f}), "HOTSPOT_CHECK");
}

TEST(Tensor, ShapeQueries) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_EQ(t.numel(), 120);
  EXPECT_DEATH(t.dim(4), "HOTSPOT_CHECK");
}

TEST(Tensor, MultiDimAccessRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);  // row-major: 1*3 + 2
  EXPECT_EQ(t.at2(1, 2), 7.0f);
}

TEST(Tensor, At4MatchesFlatLayout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, OutOfRangeIndexDies) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.at({2, 0}), "HOTSPOT_CHECK");
  EXPECT_DEATH((void)t[4], "HOTSPOT_CHECK");
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_DEATH(t.reshaped({4, 2}), "HOTSPOT_CHECK");
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(t.sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.mean(), -0.5);
  EXPECT_EQ(t.min(), -4.0f);
  EXPECT_EQ(t.max(), 3.0f);
}

TEST(Tensor, RandomConstructorsRespectBounds) {
  util::Rng rng(3);
  const Tensor u = Tensor::uniform({1000}, rng, -2.0f, 2.0f);
  EXPECT_GE(u.min(), -2.0f);
  EXPECT_LT(u.max(), 2.0f);
  const Tensor n = Tensor::normal({5000}, rng, 1.0f, 0.5f);
  EXPECT_NEAR(n.mean(), 1.0, 0.05);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, ShapeNumel) {
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0}), 0);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
}

TEST(Tensor, ToStringTruncates) {
  Tensor t({100});
  const std::string text = t.to_string(4);
  EXPECT_NE(text.find("96 more"), std::string::npos);
}

}  // namespace
}  // namespace hotspot::tensor
