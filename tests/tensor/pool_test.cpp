#include "tensor/pool.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::tensor {
namespace {

TEST(AvgPool, KnownValues) {
  Tensor x({1, 1, 2, 2}, {1, 3, 5, 7});
  const Tensor out = avg_pool2d(x, PoolSpec{2, 2});
  EXPECT_EQ(out.dim(2), 1);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
}

TEST(AvgPool, PartialWindowAveragesActualExtent) {
  Tensor x({1, 1, 3, 3}, {1, 1, 4, 1, 1, 4, 7, 7, 10});
  const Tensor out = avg_pool2d(x, PoolSpec{2, 2});
  // 3x3 with window 2 stride 2 -> out 1x1? (3-2)/2+1 = 1. Single window.
  EXPECT_EQ(out.dim(2), 1);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);
}

TEST(AvgPoolBackward, DistributesEvenly) {
  Tensor g({1, 1, 1, 1}, {4.0f});
  const Tensor gx = avg_pool2d_backward(g, {1, 1, 2, 2}, PoolSpec{2, 2});
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(gx[i], 1.0f);
  }
}

TEST(MaxPool, SelectsMaximumAndArgmax) {
  Tensor x({1, 1, 2, 2}, {1, 9, 5, 7});
  Tensor argmax;
  const Tensor out = max_pool2d(x, PoolSpec{2, 2}, &argmax);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 9.0f);
  EXPECT_FLOAT_EQ(argmax.at4(0, 0, 0, 0), 1.0f);  // flat index 0*2+1
}

TEST(MaxPoolBackward, RoutesToArgmax) {
  Tensor x({1, 1, 2, 2}, {1, 9, 5, 7});
  Tensor argmax;
  max_pool2d(x, PoolSpec{2, 2}, &argmax);
  Tensor g({1, 1, 1, 1}, {3.0f});
  const Tensor gx =
      max_pool2d_backward(g, argmax, {1, 1, 2, 2}, PoolSpec{2, 2});
  EXPECT_FLOAT_EQ(gx[1], 3.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool, TiesPickFirst) {
  Tensor x({1, 1, 2, 2}, {5, 5, 5, 5});
  Tensor argmax;
  max_pool2d(x, PoolSpec{2, 2}, &argmax);
  EXPECT_FLOAT_EQ(argmax.at4(0, 0, 0, 0), 0.0f);
}

TEST(GlobalAvgPool, AveragesPlane) {
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor out = global_avg_pool(x);
  EXPECT_EQ(out.rank(), 2);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 10.0f);
}

TEST(GlobalAvgPoolBackward, UniformShare) {
  Tensor g({1, 1}, {8.0f});
  const Tensor gx = global_avg_pool_backward(g, {1, 1, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(gx[i], 2.0f);
  }
}

TEST(Pools, StrideSmallerThanWindow) {
  util::Rng rng(1);
  const Tensor x = Tensor::normal({1, 1, 5, 5}, rng, 0.0f, 1.0f);
  const Tensor out = avg_pool2d(x, PoolSpec{3, 2});
  EXPECT_EQ(out.dim(2), 2);
  EXPECT_EQ(out.dim(3), 2);
}

}  // namespace
}  // namespace hotspot::tensor
