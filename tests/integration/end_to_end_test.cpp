// End-to-end pipeline tests: synthetic benchmark generation -> training ->
// packed inference -> paper metrics. Sized for CI (a ~1% scale benchmark and
// few epochs), so thresholds are deliberately loose; the bench harnesses run
// the real comparison at larger scale.
#include <gtest/gtest.h>

#include "baselines/adaboost_detector.h"
#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace hotspot {
namespace {

dataset::Benchmark ci_benchmark() {
  dataset::BenchmarkConfig config = dataset::iccad2012_config(1.0, 32);
  config.train.hotspots = 40;
  config.train.non_hotspots = 160;
  config.test.hotspots = 30;
  config.test.non_hotspots = 120;
  config.seed = 2024;
  return dataset::generate_benchmark(config);
}

core::BnnDetectorConfig ci_config() {
  core::BnnDetectorConfig config = core::BnnDetectorConfig::compact(32);
  // Pinned (not tracking compact()'s defaults): at this 200-sample scale
  // the lower rate keeps the operating point off the flag-everything
  // degenerate corner.
  config.trainer.epochs = 8;
  config.trainer.finetune_epochs = 1;
  config.trainer.learning_rate = 0.02f;
  return config;
}

TEST(EndToEnd, BnnDetectorBeatsAlwaysNegativeAndRandom) {
  const auto bench = ci_benchmark();
  core::BnnHotspotDetector detector(ci_config());
  util::Rng rng(1);
  const eval::EvaluationRow row =
      eval::evaluate_detector(detector, bench.train, bench.test, rng);

  // Must catch a meaningful fraction of hotspots...
  EXPECT_GT(row.matrix.accuracy(), 0.3)
      << row.matrix.to_string();
  // ...without firing on everything.
  EXPECT_LT(row.matrix.false_alarm(), 90) << row.matrix.to_string();
  // Better than random guessing overall: TPR + TNR > 1.
  const double tnr =
      static_cast<double>(row.matrix.true_negative) /
      static_cast<double>(row.matrix.true_negative +
                          row.matrix.false_positive);
  EXPECT_GT(row.matrix.accuracy() + tnr, 1.1) << row.matrix.to_string();
}

TEST(EndToEnd, TrainedModelSurvivesCheckpointAndPackedDeployment) {
  const auto bench = ci_benchmark();
  core::BnnDetectorConfig config = ci_config();
  config.trainer.epochs = 2;  // weights just need to be non-trivial
  core::BnnHotspotDetector detector(config);
  util::Rng rng(2);
  detector.fit(bench.train, rng);

  const std::string path =
      std::string(::testing::TempDir()) + "/e2e_model.bin";
  ASSERT_TRUE(nn::save_checkpoint(path, detector.model()));

  util::Rng fresh_rng(77);
  core::BrnnModel restored(config.model, fresh_rng);
  ASSERT_TRUE(nn::load_checkpoint(path, restored));
  restored.set_training(false);
  restored.set_backend(core::Backend::kPacked);

  const auto indices = bench.test.all_indices();
  const std::vector<std::size_t> head(indices.begin(), indices.begin() + 20);
  const tensor::Tensor images = bench.test.batch_images(head);
  const auto original = detector.model().predict(images);
  const auto roundtrip = restored.predict(images);
  EXPECT_EQ(original, roundtrip);
}

TEST(EndToEnd, TrainingHistoryShowsLearning) {
  const auto bench = ci_benchmark();
  core::BnnHotspotDetector detector(ci_config());
  util::Rng rng(3);
  detector.fit(bench.train, rng);
  const auto& history = detector.history();
  ASSERT_GE(history.size(), 4u);
  // Loss after the main phase is below the first epoch's.
  const auto& last_main = history[history.size() - 2];
  EXPECT_LT(last_main.train_loss, history.front().train_loss);
}

TEST(EndToEnd, UnseenFamilyStillDetectedSometimes) {
  // The test split contains T-junctions the model never trained on; the
  // generalization claim of ML detectors is that some of these are still
  // caught. Weight the test split heavily toward the unseen family so the
  // check is statistically stable at CI scale.
  dataset::BenchmarkConfig config = dataset::iccad2012_config(1.0, 32);
  config.train.hotspots = 40;
  config.train.non_hotspots = 160;
  config.test.hotspots = 40;
  config.test.non_hotspots = 80;
  config.test.family_weights = {0.1, 0.1, 0.1, 0.1, 0.1, 0.5};
  config.seed = 2024;
  const auto bench = dataset::generate_benchmark(config);
  core::BnnHotspotDetector detector(ci_config());
  util::Rng rng(4);
  detector.fit(bench.train, rng);
  const auto predictions = detector.predict(bench.test);
  int unseen_total = 0;
  int unseen_caught = 0;
  for (std::size_t i = 0; i < bench.test.size(); ++i) {
    const auto& sample = bench.test.sample(i);
    if (sample.family == dataset::Family::kTJunction && sample.label == 1) {
      ++unseen_total;
      unseen_caught += predictions[i];
    }
  }
  ASSERT_GT(unseen_total, 0) << "test split lost its unseen family";
  EXPECT_GT(unseen_caught, 0)
      << "no generalization to unseen patterns at all";
}

TEST(EndToEnd, AdaBoostBaselineRunsOnSameBenchmark) {
  const auto bench = ci_benchmark();
  baselines::AdaBoostDetector detector{baselines::AdaBoostDetectorConfig{}};
  util::Rng rng(5);
  const eval::EvaluationRow row =
      eval::evaluate_detector(detector, bench.train, bench.test, rng);
  EXPECT_EQ(row.matrix.total(), static_cast<std::int64_t>(bench.test.size()));
}

}  // namespace
}  // namespace hotspot
