// End-to-end server tests: an in-process Server on an ephemeral port driven
// through ServeClient. Covers the §15 contract — predict answers are
// bit-identical to direct model inference, typed rejects for every refusal
// path, hot-swap over the wire, deterministic load-shedding via the stall
// fault point, and clean shutdown.
#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/brnn.h"
#include "nn/serialize.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "tensor/tensor.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace hotspot::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kGrid = 16;

std::string temp_path(const std::string& name) {
  // ctest -j runs each TEST as its own process against a shared TempDir;
  // the pid keeps concurrent fixtures from clobbering each other's files.
  return std::string(::testing::TempDir()) + "/" + std::to_string(::getpid()) +
         "_" + name;
}

std::string save_model(const std::string& name, std::uint64_t seed) {
  util::Rng rng(seed);
  core::BrnnModel model(core::BrnnConfig::compact(kGrid), rng);
  const std::string path = temp_path(name);
  EXPECT_TRUE(nn::save_checkpoint(path, model).ok());
  return path;
}

Tensor probe_batch(unsigned seed, std::int64_t count = 4) {
  Tensor images(Shape{count, 1, kGrid, kGrid});
  unsigned state = seed * 2654435761u + 7;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

// Server + loaded registry + connected client, torn down in order.
class ServerFixture {
 public:
  explicit ServerFixture(ServerConfig config = ServerConfig(),
                         bool load_model = true) {
    if (load_model) {
      model_path_ = save_model("server_model.bin", 77);
      EXPECT_TRUE(registry_.load(model_path_, kGrid).ok());
    }
    server_ = std::make_unique<Server>(config, &registry_);
    std::string error;
    EXPECT_TRUE(server_->start(&error)) << error;
    EXPECT_GT(server_->bound_port(), 0);
    EXPECT_TRUE(client_.connect("127.0.0.1", server_->bound_port(), &error))
        << error;
  }

  ~ServerFixture() {
    client_.close();
    server_->stop();
  }

  ModelRegistry& registry() { return registry_; }
  Server& server() { return *server_; }
  ServeClient& client() { return client_; }
  const std::string& model_path() const { return model_path_; }

 private:
  ModelRegistry registry_;
  std::string model_path_;
  std::unique_ptr<Server> server_;
  ServeClient client_;
};

TEST(ServeServer, PredictMatchesDirectModelBitExactly) {
  ServerFixture fixture;
  const Tensor images = probe_batch(1, 5);
  const std::vector<int> reference =
      fixture.registry().active()->predict(images);
  PredictOutcome outcome;
  std::string error;
  ASSERT_TRUE(fixture.client().predict("tenant-a", images, &outcome, &error))
      << error;
  ASSERT_TRUE(outcome.ok) << outcome.detail;
  EXPECT_EQ(outcome.labels, reference);
  // Replay: the wire round-trip (bit-pack, frame, unpack) is lossless.
  PredictOutcome replay;
  ASSERT_TRUE(fixture.client().predict("tenant-a", images, &replay, &error));
  EXPECT_EQ(replay.labels, reference);
}

TEST(ServeServer, PingRoundTrips) {
  ServerFixture fixture;
  std::string error;
  EXPECT_TRUE(fixture.client().ping(0xfeedc0de, &error)) << error;
}

TEST(ServeServer, MalformedFrameGetsTypedRejectAndConnectionDrop) {
  ServerFixture fixture;
  // Garbage that cannot be a frame header: the server must answer with
  // Reject(kBadFrame) and then drop the connection.
  std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4,
                                       5,    6,    7,    8};
  Frame response;
  std::string error;
  ASSERT_TRUE(fixture.client().send_raw(garbage, &response, &error)) << error;
  ASSERT_EQ(response.type, MessageType::kReject);
  Reject reject;
  ASSERT_TRUE(decode_reject(response.payload, &reject));
  EXPECT_EQ(reject.reason, RejectReason::kBadFrame);
  // The stream is untrusted after a framing error: subsequent requests on
  // this connection fail at the transport level.
  PredictOutcome outcome;
  EXPECT_FALSE(fixture.client().predict("tenant-a", probe_batch(2),
                                        &outcome, &error));
  // A fresh connection works fine — the server itself is healthy.
  ServeClient fresh;
  ASSERT_TRUE(fresh.connect("127.0.0.1", fixture.server().bound_port(),
                            &error))
      << error;
  EXPECT_TRUE(fresh.ping(7, &error)) << error;
}

TEST(ServeServer, CorruptFrameAlsoRejected) {
  ServerFixture fixture;
  // A well-formed frame with one payload bit flipped: CRC catches it.
  std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPing, encode_token(42));
  frame[13] ^= 0x01;  // payload byte
  Frame response;
  std::string error;
  ASSERT_TRUE(fixture.client().send_raw(frame, &response, &error)) << error;
  ASSERT_EQ(response.type, MessageType::kReject);
  Reject reject;
  ASSERT_TRUE(decode_reject(response.payload, &reject));
  EXPECT_EQ(reject.reason, RejectReason::kBadFrame);
}

TEST(ServeServer, GridMismatchAndOversizedRequestsGetTypedRejects) {
  ServerConfig config;
  config.max_clips_per_request = 4;
  config.batcher.max_batch_clips = 4;
  ServerFixture fixture(config);
  std::string error;
  // Wrong grid: model serves kGrid=16, send 8.
  Tensor wrong_grid(Shape{1, 1, 8, 8});
  PredictOutcome outcome;
  ASSERT_TRUE(fixture.client().predict("t", wrong_grid, &outcome, &error))
      << error;
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.reason, RejectReason::kBadRequest);
  // Too many clips for one request.
  PredictOutcome oversized;
  ASSERT_TRUE(fixture.client().predict("t", probe_batch(3, 5), &oversized,
                                       &error))
      << error;
  EXPECT_FALSE(oversized.ok);
  EXPECT_EQ(oversized.reason, RejectReason::kTooLarge);
  // Connection still serves correct requests afterwards.
  PredictOutcome good;
  ASSERT_TRUE(fixture.client().predict("t", probe_batch(4, 2), &good,
                                       &error))
      << error;
  EXPECT_TRUE(good.ok) << good.detail;
}

TEST(ServeServer, NoModelRegisteredIsTypedReject) {
  ServerFixture fixture(ServerConfig(), /*load_model=*/false);
  PredictOutcome outcome;
  std::string error;
  ASSERT_TRUE(fixture.client().predict("t", probe_batch(5), &outcome,
                                       &error))
      << error;
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.reason, RejectReason::kModelUnavailable);
}

TEST(ServeServer, HotSwapOverTheWire) {
  ServerFixture fixture;
  const std::string other = save_model("server_swap_b.bin", 88);
  const Tensor probe = probe_batch(6);
  PredictOutcome before;
  std::string error;
  ASSERT_TRUE(fixture.client().predict("t", probe, &before, &error));
  ASSERT_TRUE(before.ok);

  std::uint64_t version = 0;
  std::optional<Reject> reject;
  ASSERT_TRUE(fixture.client().swap_model(other, kGrid, &version, &reject,
                                          &error))
      << error;
  EXPECT_FALSE(reject.has_value());
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(fixture.registry().version(), 2u);

  // Served answers now come from the new archive, and match it bit-exactly.
  PredictOutcome after;
  ASSERT_TRUE(fixture.client().predict("t", probe, &after, &error));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.labels, fixture.registry().active()->predict(probe));
}

TEST(ServeServer, SwapToCorruptArchiveRefusedOldModelServesOn) {
  ServerFixture fixture;
  const std::string corrupt = save_model("server_swap_corrupt.bin", 89);
  ASSERT_TRUE(util::corrupt_flip_bit(corrupt, 300, 2));
  const Tensor probe = probe_batch(7);
  PredictOutcome before;
  std::string error;
  ASSERT_TRUE(fixture.client().predict("t", probe, &before, &error));
  ASSERT_TRUE(before.ok);

  std::uint64_t version = 0;
  std::optional<Reject> reject;
  ASSERT_TRUE(fixture.client().swap_model(corrupt, kGrid, &version, &reject,
                                          &error))
      << error;
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(reject->reason, RejectReason::kSwapFailed);
  EXPECT_EQ(fixture.registry().version(), 1u);
  // Old model still answers, identically.
  PredictOutcome after;
  ASSERT_TRUE(fixture.client().predict("t", probe, &after, &error));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.labels, before.labels);
}

TEST(ServeServer, FullAdmissionQueueShedsWithTypedReject) {
  util::ScopedFaultInjection guard;
  ServerConfig config;
  config.max_clips_per_request = 4;
  config.batcher.max_batch_clips = 4;
  config.batcher.max_queue_clips = 4;
  ServerFixture fixture(config);
  // Wedge the batch worker inside predict: the first (and every) model
  // call stalls long enough for us to fill the queue behind it.
  util::fault_set_stall_ms(700);
  util::fault_arm_sticky(util::FaultPoint::kScanPredictStall);

  std::string error;
  // Request 1 on its own connection: popped by the worker, now stalled.
  ServeClient first;
  ASSERT_TRUE(first.connect("127.0.0.1", fixture.server().bound_port(),
                            &error));
  std::atomic<bool> first_ok{false};
  std::thread first_thread([&] {
    PredictOutcome outcome;
    std::string thread_error;
    if (first.predict("t", probe_batch(8, 2), &outcome, &thread_error) &&
        outcome.ok) {
      first_ok.store(true);
    }
  });
  // Give the worker time to pop request 1 and enter the stalled predict.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Request 2 fills the 4-clip queue.
  ServeClient second;
  ASSERT_TRUE(second.connect("127.0.0.1", fixture.server().bound_port(),
                             &error));
  std::atomic<bool> second_ok{false};
  std::thread second_thread([&] {
    PredictOutcome outcome;
    std::string thread_error;
    if (second.predict("t", probe_batch(9, 4), &outcome, &thread_error) &&
        outcome.ok) {
      second_ok.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Request 3 cannot fit: shed, with a typed reject, without blocking.
  PredictOutcome shed;
  ASSERT_TRUE(fixture.client().predict("t", probe_batch(10, 1), &shed,
                                       &error))
      << error;
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.reason, RejectReason::kQueueFull);

  first_thread.join();
  second_thread.join();
  // The wedged requests still completed once the stall elapsed.
  EXPECT_TRUE(first_ok.load());
  EXPECT_TRUE(second_ok.load());
}

TEST(ServeServer, CrossClientRequestsFuseWithBitIdenticalAnswers) {
  ServerConfig config;
  config.batcher.batch_deadline = std::chrono::microseconds(3000);
  ServerFixture fixture(config);
  const int kClients = 4;
  const int kRequests = 10;
  // References computed directly against the served model.
  std::vector<std::vector<std::vector<int>>> expected(kClients);
  const std::shared_ptr<ServableModel> model = fixture.registry().active();
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequests; ++r) {
      const unsigned seed = static_cast<unsigned>(c * 1000 + r + 11);
      expected[static_cast<std::size_t>(c)].push_back(
          model->predict(probe_batch(seed, 1 + r % 3)));
    }
  }
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServeClient client;
      std::string error;
      if (!client.connect("127.0.0.1", fixture.server().bound_port(),
                          &error)) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        const unsigned seed = static_cast<unsigned>(c * 1000 + r + 11);
        PredictOutcome outcome;
        if (!client.predict("tenant-" + std::to_string(c),
                            probe_batch(seed, 1 + r % 3), &outcome, &error) ||
            !outcome.ok) {
          ++failures;
          continue;
        }
        if (outcome.labels != expected[static_cast<std::size_t>(c)]
                                      [static_cast<std::size_t>(r)]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServeServer, StatsReportServeMetrics) {
  ServerFixture fixture;
  PredictOutcome outcome;
  std::string error;
  ASSERT_TRUE(fixture.client().predict("stats-tenant", probe_batch(12),
                                       &outcome, &error));
  ASSERT_TRUE(outcome.ok);
  std::string json;
  ASSERT_TRUE(fixture.client().stats(&json, &error)) << error;
  EXPECT_NE(json.find("serve.requests"), std::string::npos);
  EXPECT_NE(json.find("serve.request_seconds"), std::string::npos);
  EXPECT_NE(json.find("serve.tenant.stats-tenant.requests"),
            std::string::npos);
}

TEST(ServeServer, ShutdownFrameStopsTheServer) {
  ServerFixture fixture;
  std::string error;
  ASSERT_TRUE(fixture.client().shutdown_server(&error)) << error;
  // wait() must return promptly once the Shutdown frame is processed.
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    fixture.server().wait();
    returned.store(true);
  });
  waiter.join();
  EXPECT_TRUE(returned.load());
  fixture.server().stop();
  EXPECT_FALSE(fixture.server().running());
}

TEST(ServeServer, StateFileLetsARestartedServerResume) {
  // The acceptance path: register a model with persistence on, tear the
  // whole server down (the "crash"), and bring up a fresh registry+server
  // from the state file. The restarted server serves identical answers.
  const std::string state = temp_path("server_state.json");
  std::remove(state.c_str());
  const std::string model_path = save_model("server_resume.bin", 91);
  const Tensor probe = probe_batch(13);
  std::vector<int> reference;
  {
    ModelRegistry registry(state);
    ASSERT_TRUE(registry.load(model_path, kGrid).ok());
    Server server((ServerConfig()), &registry);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.bound_port(), &error));
    PredictOutcome outcome;
    ASSERT_TRUE(client.predict("t", probe, &outcome, &error));
    ASSERT_TRUE(outcome.ok);
    reference = outcome.labels;
    client.close();
    server.stop();
  }
  {
    ModelRegistry registry(state);
    ASSERT_TRUE(registry.restore().ok());
    Server server((ServerConfig()), &registry);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.bound_port(), &error));
    PredictOutcome outcome;
    ASSERT_TRUE(client.predict("t", probe, &outcome, &error));
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.labels, reference);
    client.close();
    server.stop();
  }
}

TEST(ServeServer, ResponsesCarryMonotonicTraceIds) {
  ServerFixture fixture;
  PredictOutcome outcome;
  std::string error;
  std::uint64_t previous = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fixture.client().predict(
        "trace-tenant", probe_batch(static_cast<unsigned>(i)), &outcome,
        &error))
        << error;
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(fixture.client().last_frame_version(), kProtocolVersion);
    EXPECT_GT(fixture.client().last_trace_id(), previous)
        << "trace ids must be echoed and increase per request";
    previous = fixture.client().last_trace_id();
  }
  // Rejects carry the trace id too: the failed request is findable in
  // /tracez by the id the client saw.
  ASSERT_TRUE(fixture.client().predict(
      "trace-tenant", probe_batch(9, /*count=*/128), &outcome, &error));
  EXPECT_FALSE(outcome.ok);
  EXPECT_GT(fixture.client().last_trace_id(), previous);
}

TEST(ServeServer, V1ClientIsServedWithV1Responses) {
  ServerFixture fixture;
  // Hand-roll a v1 predict request (the old wire format) and expect a
  // well-formed v1 response with bit-identical labels.
  const Tensor images = probe_batch(21, 3);
  const std::vector<int> reference =
      fixture.registry().active()->predict(images);
  PredictRequest request;
  request.request_id = 77;
  request.grid = static_cast<std::uint16_t>(kGrid);
  request.count = 3;
  request.tenant = "legacy";
  request.packed_clips = pack_rasters(images.data(), 3, request.grid);
  Frame response;
  std::string error;
  ASSERT_TRUE(fixture.client().send_raw(
      encode_frame(MessageType::kPredictRequest,
                   encode_predict_request(request), /*flags=*/0,
                   /*trace_id=*/0, /*version=*/1),
      &response, &error))
      << error;
  EXPECT_EQ(response.version, 1);
  EXPECT_EQ(response.trace_id, 0u);  // v1 frames cannot carry one
  ASSERT_EQ(response.type, MessageType::kPredictResponse);
  PredictResponse decoded;
  ASSERT_TRUE(decode_predict_response(response.payload, &decoded));
  ASSERT_EQ(decoded.labels.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(static_cast<int>(decoded.labels[i]), reference[i]);
  }
}

TEST(ServeServer, FlightRecorderCapturesRequestBreakdown) {
  ServerFixture fixture;
  PredictOutcome outcome;
  std::string error;
  ASSERT_TRUE(fixture.client().predict("flight-tenant", probe_batch(5, 6),
                                       &outcome, &error))
      << error;
  ASSERT_TRUE(outcome.ok);
  const std::vector<obs::RequestTrace> traces =
      fixture.server().flight_recorder().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const obs::RequestTrace& trace = traces.front();
  EXPECT_EQ(trace.request_id, fixture.client().last_trace_id());
  EXPECT_EQ(trace.tenant, "flight-tenant");
  EXPECT_EQ(trace.clips, 6u);
  EXPECT_EQ(trace.model_version, 1u);
  EXPECT_EQ(trace.outcome, obs::RequestOutcome::kOk);
  // The phase breakdown is internally consistent: every phase non-negative
  // and no phase longer than the whole request.
  EXPECT_GT(trace.total_seconds, 0.0);
  for (const double phase :
       {trace.decode_seconds, trace.queue_seconds, trace.batch_seconds,
        trace.infer_seconds, trace.encode_seconds}) {
    EXPECT_GE(phase, 0.0);
    EXPECT_LE(phase, trace.total_seconds);
  }
  EXPECT_GT(trace.infer_seconds, 0.0);  // the classifier really ran
  // SLO window saw the request as good.
  const obs::SloMonitor::Status slo = fixture.server().slo_monitor().status();
  EXPECT_EQ(slo.window_total, 1u);
  EXPECT_EQ(slo.window_bad, 0u);
}

TEST(ServeServer, ShedAndRejectedRequestsBurnSloBudget) {
  ServerConfig config;
  config.max_clips_per_request = 4;
  ServerFixture fixture(config);
  PredictOutcome outcome;
  std::string error;
  // Oversized: typed reject, recorded as bad.
  ASSERT_TRUE(fixture.client().predict("slo-tenant", probe_batch(1, 8),
                                       &outcome, &error));
  EXPECT_FALSE(outcome.ok);
  // In budget: good.
  ASSERT_TRUE(fixture.client().predict("slo-tenant", probe_batch(2, 2),
                                       &outcome, &error));
  EXPECT_TRUE(outcome.ok);
  const obs::SloMonitor::Status slo = fixture.server().slo_monitor().status();
  EXPECT_EQ(slo.window_total, 2u);
  EXPECT_EQ(slo.window_bad, 1u);
  const std::vector<obs::RequestTrace> traces =
      fixture.server().flight_recorder().snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].outcome, obs::RequestOutcome::kRejected);
  EXPECT_EQ(traces[1].outcome, obs::RequestOutcome::kOk);
}

}  // namespace
}  // namespace hotspot::serve
