// MicroBatcher invariants: requests fuse across submitters without changing
// any request's labels (bit-identity), the deadline ships partial batches,
// a full queue sheds instead of blocking, and stop() drains cleanly.
#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Deterministic per-sample classifier: label = parity of set pixels. Like
// the real detector, each sample's output depends only on its own pixels,
// so any batch composition must yield identical labels.
std::vector<int> parity_classifier(const Tensor& images) {
  const std::int64_t n = images.dim(0);
  const std::int64_t per = images.numel() / std::max<std::int64_t>(n, 1);
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    int bits = 0;
    for (std::int64_t p = 0; p < per; ++p) {
      bits += images[i * per + p] >= 0.5f ? 1 : 0;
    }
    labels[static_cast<std::size_t>(i)] = bits % 2;
  }
  return labels;
}

Tensor make_clips(std::int64_t count, std::int64_t grid, unsigned seed) {
  Tensor images(Shape{count, 1, grid, grid});
  unsigned state = seed * 2654435761u + 1;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

// A classifier whose first call blocks until released; later calls run
// through. Lets tests wedge the worker to fill the queue deterministically.
class Gate {
 public:
  BatchFn wrap(BatchFn inner) {
    return [this, inner](const Tensor& images) {
      const int call = calls_.fetch_add(1);
      if (call == 0) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return open_; });
      }
      return inner(images);
    };
  }

  void open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

  // Blocks until the first classifier call has started (worker is wedged).
  void await_first_call() {
    while (calls_.load() == 0) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<int> calls_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(MicroBatcher, SingleRequestRoundTrip) {
  BatcherConfig config;
  config.max_batch_clips = 8;
  config.max_queue_clips = 32;
  MicroBatcher batcher(config, parity_classifier);
  const Tensor images = make_clips(3, 4, 1);
  std::future<std::vector<int>> result;
  ASSERT_EQ(batcher.submit(Tensor(images), &result), AdmitStatus::kOk);
  EXPECT_EQ(result.get(), parity_classifier(images));
  batcher.stop();
  EXPECT_GE(batcher.batches(), 1u);
  EXPECT_EQ(batcher.clips(), 3u);
}

TEST(MicroBatcher, OversizedRequestRejectedUpFront) {
  BatcherConfig config;
  config.max_batch_clips = 4;
  config.max_queue_clips = 16;
  MicroBatcher batcher(config, parity_classifier);
  std::future<std::vector<int>> result;
  EXPECT_EQ(batcher.submit(make_clips(5, 4, 2), &result),
            AdmitStatus::kTooLarge);
  batcher.stop();
  EXPECT_EQ(batcher.clips(), 0u);
}

TEST(MicroBatcher, FullQueueShedsInsteadOfBlocking) {
  Gate gate;
  BatcherConfig config;
  config.max_batch_clips = 4;
  config.max_queue_clips = 4;
  config.batch_deadline = std::chrono::microseconds(0);
  MicroBatcher batcher(config, gate.wrap(parity_classifier));
  // First request: popped by the worker, which wedges in the classifier.
  std::future<std::vector<int>> first;
  ASSERT_EQ(batcher.submit(make_clips(2, 4, 3), &first), AdmitStatus::kOk);
  gate.await_first_call();
  // Second request fills the queue to its 4-clip capacity.
  std::future<std::vector<int>> second;
  ASSERT_EQ(batcher.submit(make_clips(4, 4, 4), &second), AdmitStatus::kOk);
  // Third cannot fit: shed immediately, never blocked.
  const auto before = std::chrono::steady_clock::now();
  std::future<std::vector<int>> third;
  EXPECT_EQ(batcher.submit(make_clips(1, 4, 5), &third), AdmitStatus::kShed);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100);
  gate.open();
  EXPECT_EQ(first.get().size(), 2u);
  EXPECT_EQ(second.get().size(), 4u);
  batcher.stop();
}

TEST(MicroBatcher, FusesQueuedRequestsIntoOneBatch) {
  Gate gate;
  BatcherConfig config;
  config.max_batch_clips = 16;
  config.max_queue_clips = 64;
  config.batch_deadline = std::chrono::microseconds(0);
  MicroBatcher batcher(config, gate.wrap(parity_classifier));
  // Wedge the worker on a sacrificial request, then queue three more; once
  // released, the three must fuse (deadline 0 still fuses already-queued
  // work — pop_until returns immediately with whatever is there).
  std::future<std::vector<int>> wedge;
  ASSERT_EQ(batcher.submit(make_clips(1, 4, 6), &wedge), AdmitStatus::kOk);
  gate.await_first_call();
  std::vector<Tensor> inputs;
  std::vector<std::future<std::vector<int>>> results(3);
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(make_clips(2, 4, 10 + static_cast<unsigned>(i)));
    ASSERT_EQ(batcher.submit(Tensor(inputs.back()), &results[i]),
              AdmitStatus::kOk);
  }
  gate.open();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(),
              parity_classifier(inputs[static_cast<std::size_t>(i)]))
        << "request " << i;
  }
  batcher.stop();
  // Wedge batch + one fused batch for the three queued requests.
  EXPECT_EQ(batcher.batches(), 2u);
  EXPECT_EQ(batcher.clips(), 7u);
}

TEST(MicroBatcher, NeverSplitsARequestAcrossBatches) {
  Gate gate;
  BatcherConfig config;
  config.max_batch_clips = 4;
  config.max_queue_clips = 12;
  config.batch_deadline = std::chrono::microseconds(0);
  MicroBatcher batcher(config, gate.wrap(parity_classifier));
  std::future<std::vector<int>> wedge;
  ASSERT_EQ(batcher.submit(make_clips(1, 4, 20), &wedge), AdmitStatus::kOk);
  gate.await_first_call();
  // 3 + 3 clips: a 4-cap batch takes the first request alone (3 clips),
  // the second must ride the next batch whole, never 1+2.
  std::vector<std::future<std::vector<int>>> results(2);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 2; ++i) {
    inputs.push_back(make_clips(3, 4, 30 + static_cast<unsigned>(i)));
    ASSERT_EQ(batcher.submit(Tensor(inputs.back()), &results[i]),
              AdmitStatus::kOk);
  }
  gate.open();
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(),
              parity_classifier(inputs[static_cast<std::size_t>(i)]));
  }
  batcher.stop();
  EXPECT_EQ(batcher.batches(), 3u);  // wedge, then one per 3-clip request
}

TEST(MicroBatcher, DeadlineShipsPartialBatch) {
  BatcherConfig config;
  config.max_batch_clips = 64;
  config.max_queue_clips = 256;
  config.batch_deadline = std::chrono::microseconds(2000);
  MicroBatcher batcher(config, parity_classifier);
  // A lone request far below max_batch must not wait for a full batch.
  const Tensor images = make_clips(2, 4, 40);
  std::future<std::vector<int>> result;
  ASSERT_EQ(batcher.submit(Tensor(images), &result), AdmitStatus::kOk);
  ASSERT_EQ(result.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(result.get(), parity_classifier(images));
  batcher.stop();
}

TEST(MicroBatcher, ClassifierFailureRejectsEveryFusedRequest) {
  BatcherConfig config;
  config.max_batch_clips = 8;
  config.max_queue_clips = 32;
  MicroBatcher batcher(config, [](const Tensor&) -> std::vector<int> {
    throw std::runtime_error("backend down");
  });
  std::future<std::vector<int>> result;
  ASSERT_EQ(batcher.submit(make_clips(2, 4, 50), &result), AdmitStatus::kOk);
  EXPECT_THROW(result.get(), std::runtime_error);
  batcher.stop();
}

TEST(MicroBatcher, SubmitAfterStopIsStopped) {
  BatcherConfig config;
  MicroBatcher batcher(config, parity_classifier);
  batcher.stop();
  std::future<std::vector<int>> result;
  EXPECT_EQ(batcher.submit(make_clips(1, 4, 60), &result),
            AdmitStatus::kStopped);
}

TEST(MicroBatcher, StopDrainsQueuedRequests) {
  Gate gate;
  BatcherConfig config;
  config.max_batch_clips = 2;
  config.max_queue_clips = 16;
  config.batch_deadline = std::chrono::microseconds(0);
  MicroBatcher batcher(config, gate.wrap(parity_classifier));
  std::future<std::vector<int>> wedge;
  ASSERT_EQ(batcher.submit(make_clips(1, 4, 70), &wedge), AdmitStatus::kOk);
  gate.await_first_call();
  std::vector<std::future<std::vector<int>>> results(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(batcher.submit(make_clips(2, 4, 80 + static_cast<unsigned>(i)),
                             &results[i]),
              AdmitStatus::kOk);
  }
  gate.open();
  batcher.stop();  // must block until every queued request is answered
  for (auto& result : results) {
    EXPECT_EQ(result.get().size(), 2u);
  }
  EXPECT_EQ(batcher.clips(), 9u);
}

TEST(MicroBatcher, ConcurrentSubmittersGetBitIdenticalLabels) {
  // N threads hammer the batcher with distinct requests; every response
  // must equal the single-threaded reference for that exact input, no
  // matter how requests fused across threads.
  BatcherConfig config;
  config.max_batch_clips = 16;
  config.max_queue_clips = 64;
  config.batch_deadline = std::chrono::microseconds(500);
  MicroBatcher batcher(config, parity_classifier);
  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRequests; ++r) {
        const unsigned seed =
            static_cast<unsigned>(t * 1000 + r) * 2u + 1u;
        const Tensor images = make_clips(1 + (r % 3), 4, seed);
        const std::vector<int> expected = parity_classifier(images);
        std::future<std::vector<int>> result;
        const AdmitStatus status = batcher.submit(Tensor(images), &result);
        if (status == AdmitStatus::kShed) {
          ++shed;  // legal under pressure; retry next iteration's request
          continue;
        }
        ASSERT_EQ(status, AdmitStatus::kOk);
        if (result.get() != expected) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  batcher.stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(batcher.clips(), 0u);
}

}  // namespace
}  // namespace hotspot::serve
