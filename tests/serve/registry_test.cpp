// ModelRegistry guarantees: CRC-checked loads, atomic hot-swap (a failed
// load leaves the previous model serving; a successful one is never
// observed torn), monotone versions, and restart recovery from the
// persisted state file.
#include "serve/model_registry.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/brnn.h"
#include "nn/serialize.h"
#include "tensor/tensor.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace hotspot::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kGrid = 16;

std::string temp_path(const std::string& name) {
  // ctest -j runs each TEST as its own process against a shared TempDir;
  // the pid keeps concurrent fixtures from clobbering each other's files.
  return std::string(::testing::TempDir()) + "/" + std::to_string(::getpid()) +
         "_" + name;
}

// Saves a compact(kGrid) model with seed-dependent random weights. Distinct
// seeds give models with (generically) distinct logits — enough to tell
// which archive a prediction came from without training anything.
std::string save_model(const std::string& name, std::uint64_t seed) {
  util::Rng rng(seed);
  core::BrnnModel model(core::BrnnConfig::compact(kGrid), rng);
  const std::string path = temp_path(name);
  EXPECT_TRUE(nn::save_checkpoint(path, model).ok());
  return path;
}

Tensor probe_batch(unsigned seed, std::int64_t count = 4) {
  Tensor images(Shape{count, 1, kGrid, kGrid});
  unsigned state = seed * 2654435761u + 7;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

TEST(ModelRegistry, LoadPublishesAndPredicts) {
  const std::string path = save_model("registry_a.bin", 11);
  ModelRegistry registry;
  EXPECT_EQ(registry.active(), nullptr);
  EXPECT_EQ(registry.version(), 0u);
  ASSERT_TRUE(registry.load(path, kGrid).ok());
  const std::shared_ptr<ServableModel> model = registry.active();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(registry.version(), 1u);
  EXPECT_EQ(model->image_size(), kGrid);
  const std::vector<int> labels = model->predict(probe_batch(1));
  EXPECT_EQ(labels.size(), 4u);
  // Deterministic: the same batch replays to the same labels.
  EXPECT_EQ(model->predict(probe_batch(1)), labels);
}

TEST(ModelRegistry, FailedLoadLeavesActiveModelServing) {
  const std::string good = save_model("registry_good.bin", 12);
  const std::string corrupt = save_model("registry_corrupt.bin", 13);
  ModelRegistry registry;
  ASSERT_TRUE(registry.load(good, kGrid).ok());
  const std::shared_ptr<ServableModel> before = registry.active();
  const std::vector<int> reference = before->predict(probe_batch(2));
  // Flip one payload bit: the CRC-checked loader must refuse the archive.
  ASSERT_TRUE(util::corrupt_flip_bit(corrupt, 200, 3));
  const nn::LoadResult result = registry.load(corrupt, kGrid);
  // Depending on where the flip lands the loader types it kCorrupt or
  // kShapeMismatch; either way the load must fail without publishing.
  EXPECT_FALSE(result.ok());
  // Same shared_ptr, same version, same answers: nothing was torn down.
  EXPECT_EQ(registry.active(), before);
  EXPECT_EQ(registry.version(), 1u);
  EXPECT_EQ(registry.active()->predict(probe_batch(2)), reference);
  // Missing file likewise.
  EXPECT_FALSE(registry.load(temp_path("nonexistent.bin"), kGrid).ok());
  EXPECT_EQ(registry.active(), before);
}

TEST(ModelRegistry, SwapBumpsVersionAndChangesAnswers) {
  const std::string a = save_model("registry_swap_a.bin", 21);
  const std::string b = save_model("registry_swap_b.bin", 22);
  ModelRegistry registry;
  ASSERT_TRUE(registry.load(a, kGrid).ok());
  const std::shared_ptr<ServableModel> model_a = registry.active();
  ASSERT_TRUE(registry.load(b, kGrid).ok());
  const std::shared_ptr<ServableModel> model_b = registry.active();
  EXPECT_NE(model_a, model_b);
  EXPECT_EQ(model_a->version(), 1u);
  EXPECT_EQ(model_b->version(), 2u);
  EXPECT_EQ(registry.version(), 2u);
  // The old handle keeps answering with the old weights — an in-flight
  // batch that resolved before the swap is unaffected by it.
  EXPECT_EQ(model_a->predict(probe_batch(3)),
            model_a->predict(probe_batch(3)));
}

TEST(ModelRegistry, StateFileRestoresAfterRestart) {
  const std::string model_path = save_model("registry_persist.bin", 31);
  const std::string state_path = temp_path("registry_state.json");
  std::remove(state_path.c_str());
  std::vector<int> reference;
  {
    ModelRegistry registry(state_path);
    ASSERT_TRUE(registry.load(model_path, kGrid).ok());
    reference = registry.active()->predict(probe_batch(4));
    EXPECT_EQ(registry.version(), 1u);
  }
  // "Restart": a fresh registry pointed at the same state file resumes
  // serving the same model at a version that keeps ascending.
  {
    ModelRegistry registry(state_path);
    ASSERT_TRUE(registry.restore().ok());
    ASSERT_NE(registry.active(), nullptr);
    EXPECT_EQ(registry.active()->path(), model_path);
    EXPECT_GE(registry.version(), 1u);
    EXPECT_EQ(registry.active()->predict(probe_batch(4)), reference);
  }
}

TEST(ModelRegistry, RestoreWithoutStateIsMissing) {
  ModelRegistry no_persistence;
  EXPECT_EQ(no_persistence.restore().status, nn::IoStatus::kMissing);
  ModelRegistry registry(temp_path("registry_never_written.json"));
  EXPECT_EQ(registry.restore().status, nn::IoStatus::kMissing);
}

TEST(ModelRegistry, HotSwapUnderConcurrentPredictIsNeverTorn) {
  // The acceptance test for swap atomicity: reader threads hammer
  // active()->predict while the main thread swaps between two archives.
  // Every single result must equal one of the two reference outputs —
  // a torn model would (generically) produce a third answer or crash.
  const std::string a = save_model("registry_hammer_a.bin", 41);
  const std::string b = save_model("registry_hammer_b.bin", 42);
  ModelRegistry registry;
  ASSERT_TRUE(registry.load(a, kGrid).ok());
  const Tensor probe = probe_batch(5, 2);
  const std::vector<int> ref_a = registry.active()->predict(probe);
  ASSERT_TRUE(registry.load(b, kGrid).ok());
  const std::vector<int> ref_b = registry.active()->predict(probe);
  ASSERT_TRUE(registry.load(a, kGrid).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<std::uint64_t> predictions{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<ServableModel> model = registry.active();
        const std::vector<int> labels = model->predict(probe);
        if (labels != ref_a && labels != ref_b) {
          ++torn;
        }
        ++predictions;
      }
    });
  }
  // At least six swaps, and keep hammering until a reader has actually
  // raced a predict against one — on a loaded machine the readers may not
  // be scheduled until well after a fixed swap count would have finished.
  for (int swap = 0; swap < 6 || predictions.load() == 0; ++swap) {
    ASSERT_TRUE(registry.load(swap % 2 == 0 ? b : a, kGrid).ok());
  }
  ASSERT_TRUE(registry.load(a, kGrid).ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(predictions.load(), 0u);
  // The hammer ends on archive `a`: the published model answers ref_a.
  EXPECT_EQ(registry.active()->predict(probe), ref_a);
}

}  // namespace
}  // namespace hotspot::serve
