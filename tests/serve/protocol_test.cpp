// Wire-format guarantees: exact round-trips, strict decoding (no trailing
// bytes, capped lengths), and corruption detection — a frame truncated at
// any byte or flipped in any payload bit must never decode as valid.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace hotspot::serve {
namespace {

// ReadFn over an in-memory buffer, optionally clipped to `limit` bytes.
ReadFn buffer_reader(const std::vector<std::uint8_t>& bytes,
                     std::size_t* cursor,
                     std::size_t limit = static_cast<std::size_t>(-1)) {
  const std::size_t end = std::min(bytes.size(), limit);
  return [&bytes, cursor, end](std::uint8_t* out,
                               std::size_t size) -> std::size_t {
    const std::size_t available = end - std::min(*cursor, end);
    const std::size_t take = std::min(size, available);
    std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(*cursor),
              bytes.begin() + static_cast<std::ptrdiff_t>(*cursor + take),
              out);
    *cursor += take;
    return take;
  };
}

FrameStatus decode(const std::vector<std::uint8_t>& bytes, Frame* out,
                   std::size_t limit = static_cast<std::size_t>(-1)) {
  std::size_t cursor = 0;
  return read_frame(buffer_reader(bytes, &cursor, limit), out);
}

PredictRequest sample_request() {
  PredictRequest request;
  request.request_id = 0xdeadbeef;
  request.grid = 16;
  request.count = 3;
  request.tenant = "tenant-a.1";
  request.packed_clips.assign(3 * packed_clip_bytes(16), 0);
  for (std::size_t i = 0; i < request.packed_clips.size(); ++i) {
    request.packed_clips[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  return request;
}

TEST(ServeProtocol, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPredictRequest, payload, /*flags=*/7);
  Frame decoded;
  ASSERT_EQ(decode(frame, &decoded), FrameStatus::kOk);
  EXPECT_EQ(decoded.type, MessageType::kPredictRequest);
  EXPECT_EQ(decoded.flags, 7);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(ServeProtocol, EmptyPayloadRoundTrip) {
  const std::vector<std::uint8_t> frame = encode_frame(MessageType::kPing, {});
  Frame decoded;
  ASSERT_EQ(decode(frame, &decoded), FrameStatus::kOk);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(ServeProtocol, CleanEofVersusTruncation) {
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPing, {1, 2, 3});
  Frame decoded;
  // Zero bytes available before the header: a clean end of stream.
  EXPECT_EQ(decode(frame, &decoded, 0), FrameStatus::kEof);
  // Ending at any other byte is a truncated frame, never kOk and never EOF.
  for (std::size_t limit = 1; limit < frame.size(); ++limit) {
    EXPECT_EQ(decode(frame, &decoded, limit), FrameStatus::kTruncated)
        << "limit=" << limit;
  }
  EXPECT_EQ(decode(frame, &decoded, frame.size()), FrameStatus::kOk);
}

TEST(ServeProtocol, EveryPayloadBitFlipIsDetected) {
  // Flips in the payload or CRC footer must yield kCorrupt: the CRC bound
  // is one detected error per frame, the same contract as the journal.
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPredictRequest, {0x55, 0xaa, 0x00, 0xff});
  const std::size_t payload_start = 12;
  for (std::size_t byte = payload_start; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> damaged = frame;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      Frame decoded;
      EXPECT_EQ(decode(damaged, &decoded), FrameStatus::kCorrupt)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(ServeProtocol, TraceIdRoundTripsInV2Frames) {
  const std::vector<std::uint8_t> payload = {4, 5, 6};
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPredictResponse, payload, /*flags=*/0,
                   /*trace_id=*/0x1122334455667788ull);
  Frame decoded;
  ASSERT_EQ(decode(frame, &decoded), FrameStatus::kOk);
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.trace_id, 0x1122334455667788ull);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(ServeProtocol, V1FramesStillDecodeWithZeroTraceId) {
  // Old clients speak v1: 12-byte header, CRC over the payload only. The
  // server must keep accepting them byte-for-byte.
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPing, {1, 2, 3}, /*flags=*/0,
                   /*trace_id=*/0, /*version=*/1);
  Frame decoded;
  ASSERT_EQ(decode(frame, &decoded), FrameStatus::kOk);
  EXPECT_EQ(decoded.version, 1);
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_EQ(decoded.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  // A v1 frame is 8 bytes shorter than the same v2 frame (no trace id).
  const std::vector<std::uint8_t> v2 =
      encode_frame(MessageType::kPing, {1, 2, 3});
  EXPECT_EQ(frame.size() + 8, v2.size());
}

TEST(ServeProtocol, EveryTraceIdBitFlipIsDetected) {
  // The v2 CRC covers the trace id too: no un-checksummed bytes on the
  // wire. Flip every bit of the 8-byte id and expect kCorrupt.
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPing, {0x42}, /*flags=*/0,
                   /*trace_id=*/0xa5a5a5a5a5a5a5a5ull);
  for (std::size_t byte = 12; byte < 20; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> damaged = frame;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      Frame decoded;
      EXPECT_EQ(decode(damaged, &decoded), FrameStatus::kCorrupt)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(ServeProtocol, FutureVersionIsRefused) {
  std::vector<std::uint8_t> frame = encode_frame(MessageType::kPing, {9});
  frame[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  frame[5] = 0;
  Frame decoded;
  EXPECT_EQ(decode(frame, &decoded), FrameStatus::kBadVersion);
}

TEST(ServeProtocol, HeaderDamageIsTyped) {
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPing, {9});
  Frame decoded;
  std::vector<std::uint8_t> bad_magic = frame;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(decode(bad_magic, &decoded), FrameStatus::kBadMagic);
  std::vector<std::uint8_t> bad_version = frame;
  bad_version[4] = 0x7f;
  EXPECT_EQ(decode(bad_version, &decoded), FrameStatus::kBadVersion);
  // A declared payload over the cap is refused before any allocation.
  std::vector<std::uint8_t> huge = frame;
  huge[8] = 0xff;
  huge[9] = 0xff;
  huge[10] = 0xff;
  huge[11] = 0xff;
  EXPECT_EQ(decode(huge, &decoded), FrameStatus::kTooLarge);
}

TEST(ServeProtocol, PredictRequestRoundTrip) {
  const PredictRequest request = sample_request();
  PredictRequest decoded;
  ASSERT_TRUE(decode_predict_request(encode_predict_request(request),
                                     &decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.grid, request.grid);
  EXPECT_EQ(decoded.count, request.count);
  EXPECT_EQ(decoded.tenant, request.tenant);
  EXPECT_EQ(decoded.packed_clips, request.packed_clips);
}

TEST(ServeProtocol, PredictRequestRejectsStructuralDamage) {
  const std::vector<std::uint8_t> good =
      encode_predict_request(sample_request());
  PredictRequest decoded;
  // Truncation at every prefix length must fail, not decode a short batch.
  for (std::size_t limit = 0; limit < good.size(); ++limit) {
    const std::vector<std::uint8_t> prefix(good.begin(),
                                           good.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   limit));
    EXPECT_FALSE(decode_predict_request(prefix, &decoded)) << limit;
  }
  // Trailing garbage is refused too (strict decoding).
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(decode_predict_request(trailing, &decoded));
  // Invalid tenant characters are refused — the name lands in metric names.
  PredictRequest bad_tenant = sample_request();
  bad_tenant.tenant = "a b";
  EXPECT_FALSE(decode_predict_request(encode_predict_request(bad_tenant),
                                      &decoded));
  PredictRequest empty_tenant = sample_request();
  empty_tenant.tenant = "";
  EXPECT_FALSE(decode_predict_request(encode_predict_request(empty_tenant),
                                      &decoded));
  // grid 0 would make the clip size zero and the count unconstrained.
  PredictRequest zero_grid = sample_request();
  zero_grid.grid = 0;
  zero_grid.packed_clips.clear();
  EXPECT_FALSE(decode_predict_request(encode_predict_request(zero_grid),
                                      &decoded));
}

TEST(ServeProtocol, ResponseRejectSwapRoundTrips) {
  PredictResponse response;
  response.request_id = 41;
  response.labels = {0, 1, 1, 0};
  PredictResponse response_out;
  ASSERT_TRUE(decode_predict_response(encode_predict_response(response),
                                      &response_out));
  EXPECT_EQ(response_out.request_id, 41u);
  EXPECT_EQ(response_out.labels, response.labels);
  // A label outside {0,1} is refused.
  std::vector<std::uint8_t> bad = encode_predict_response(response);
  bad.back() = 2;
  EXPECT_FALSE(decode_predict_response(bad, &response_out));

  Reject reject;
  reject.request_id = 9;
  reject.reason = RejectReason::kQueueFull;
  reject.detail = "admission queue full";
  Reject reject_out;
  ASSERT_TRUE(decode_reject(encode_reject(reject), &reject_out));
  EXPECT_EQ(reject_out.reason, RejectReason::kQueueFull);
  EXPECT_EQ(reject_out.detail, reject.detail);

  SwapModel swap;
  swap.request_id = 3;
  swap.image_size = 32;
  swap.path = "/tmp/model.bin";
  SwapModel swap_out;
  ASSERT_TRUE(decode_swap_model(encode_swap_model(swap), &swap_out));
  EXPECT_EQ(swap_out.path, swap.path);
  EXPECT_EQ(swap_out.image_size, 32);

  SwapOk ok;
  ok.request_id = 3;
  ok.version = 7;
  SwapOk ok_out;
  ASSERT_TRUE(decode_swap_ok(encode_swap_ok(ok), &ok_out));
  EXPECT_EQ(ok_out.version, 7u);

  std::uint32_t token = 0;
  ASSERT_TRUE(decode_token(encode_token(0xabcd1234), &token));
  EXPECT_EQ(token, 0xabcd1234u);
}

TEST(ServeProtocol, PackUnpackRoundTripsEveryBitPosition) {
  // Non-multiple-of-8 pixel count exercises the ragged last byte; each clip
  // starts on a byte boundary.
  const std::uint16_t grid = 5;  // 25 pixels, 4 bytes per clip
  ASSERT_EQ(packed_clip_bytes(grid), 4u);
  const std::size_t pixels_per_clip = 25;
  for (std::size_t hot = 0; hot < pixels_per_clip; ++hot) {
    std::vector<float> pixels(2 * pixels_per_clip, 0.0f);
    pixels[hot] = 1.0f;                          // clip 0
    pixels[pixels_per_clip + hot] = 1.0f;        // clip 1, same position
    const std::vector<std::uint8_t> packed =
        pack_rasters(pixels.data(), 2, grid);
    ASSERT_EQ(packed.size(), 8u);
    const std::vector<float> unpacked = unpack_rasters(packed, 2, grid);
    ASSERT_EQ(unpacked.size(), pixels.size());
    for (std::size_t i = 0; i < pixels.size(); ++i) {
      ASSERT_EQ(unpacked[i], pixels[i]) << "hot=" << hot << " i=" << i;
    }
  }
}

TEST(ServeProtocol, TenantValidation) {
  EXPECT_TRUE(valid_tenant("a"));
  EXPECT_TRUE(valid_tenant("Team_7.prod-eu"));
  EXPECT_FALSE(valid_tenant(""));
  EXPECT_FALSE(valid_tenant("has space"));
  EXPECT_FALSE(valid_tenant("semi;colon"));
  EXPECT_FALSE(valid_tenant(std::string(kMaxTenantBytes + 1, 'a')));
  EXPECT_TRUE(valid_tenant(std::string(kMaxTenantBytes, 'a')));
}

}  // namespace
}  // namespace hotspot::serve
