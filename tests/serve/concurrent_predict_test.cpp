// Thread-safety of the detector's inference entry points: N concurrent
// callers of BnnHotspotDetector::predict_batch / classifier() must get
// labels bit-identical to the single-threaded reference — the module
// chain's shared activation caches are serialized internally, so
// concurrency can reorder work but never change a logit.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace hotspot::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kGrid = 32;

Tensor random_batch(unsigned seed, std::int64_t count) {
  Tensor images(Shape{count, 1, kGrid, kGrid});
  unsigned state = seed * 2654435761u + 3;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

// One quickly-trained detector shared by every test case (training
// dominates the suite's cost; the assertions only need fixed weights).
BnnHotspotDetector& shared_detector() {
  static BnnHotspotDetector* detector = [] {
    BnnDetectorConfig config = BnnDetectorConfig::compact(kGrid);
    config.trainer.epochs = 1;
    config.trainer.finetune_epochs = 1;
    auto* built = new BnnHotspotDetector(config);
    dataset::BenchmarkConfig bench = dataset::iccad2012_config(1.0, kGrid);
    bench.train.hotspots = 12;
    bench.train.non_hotspots = 36;
    bench.seed = 2025;
    util::Rng data_rng(123);
    const dataset::HotspotDataset train =
        dataset::generate_split(bench, bench.train, data_rng);
    util::Rng fit_rng(7);
    built->fit(train, fit_rng);
    return built;
  }();
  return *detector;
}

TEST(ConcurrentPredict, ManyThreadsMatchSingleThreadedReference) {
  BnnHotspotDetector& detector = shared_detector();
  constexpr int kThreads = 8;
  constexpr int kIterations = 6;
  // Reference labels computed single-threaded, per (thread, iteration)
  // input, before any concurrency starts.
  std::vector<std::vector<std::vector<int>>> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIterations; ++i) {
      const unsigned seed = static_cast<unsigned>(t * 100 + i);
      expected[static_cast<std::size_t>(t)].push_back(
          detector.predict_batch(random_batch(seed, 3 + i % 4)));
    }
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Even threads call predict_batch directly, odd ones through the
      // classifier() callable — both entry points share the serialization.
      auto classify = detector.classifier();
      for (int i = 0; i < kIterations; ++i) {
        const unsigned seed = static_cast<unsigned>(t * 100 + i);
        const Tensor images = random_batch(seed, 3 + i % 4);
        const std::vector<int> labels =
            t % 2 == 0 ? detector.predict_batch(images) : classify(images);
        if (labels != expected[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(i)]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentPredict, HammerOnSharedProbeStaysBitIdentical) {
  // All threads replay the exact same probe batch: any cross-thread
  // contamination of the module chain's activation caches would show up as
  // a label differing from the single-threaded reference. (Concurrent
  // model replacement is exercised at the ModelRegistry level, where swaps
  // publish immutable models — set_backend is not part of the concurrent
  // contract here.)
  BnnHotspotDetector& detector = shared_detector();
  const Tensor probe = random_batch(999, 4);
  detector.model().set_backend(Backend::kFloatSim);
  const std::vector<int> ref_float = detector.predict_batch(probe);
  detector.model().set_backend(Backend::kPacked);
  const std::vector<int> ref_packed = detector.predict_batch(probe);
  // Packed-equivalence sanity: both backends label the probe identically.
  ASSERT_EQ(ref_float, ref_packed);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (detector.predict_batch(probe) != ref_packed) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace hotspot::core
