// Admin endpoint: routing and payload shape via AdminServer::handle(), and
// full HTTP round trips — including scrapes hammering the socket while
// predict traffic is in flight — via a real listener.
#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brnn.h"
#include "nn/serialize.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "util/json.h"
#include "util/rng.h"

namespace hotspot::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kGrid = 16;

std::string temp_path(const std::string& name) {
  // ctest -j runs each TEST as its own process against a shared TempDir;
  // the pid keeps concurrent fixtures from clobbering each other's files.
  return std::string(::testing::TempDir()) + "/" + std::to_string(::getpid()) +
         "_" + name;
}

std::string save_model(const std::string& name, std::uint64_t seed) {
  util::Rng rng(seed);
  core::BrnnModel model(core::BrnnConfig::compact(kGrid), rng);
  const std::string path = temp_path(name);
  EXPECT_TRUE(nn::save_checkpoint(path, model).ok());
  return path;
}

Tensor probe_batch(unsigned seed, std::int64_t count = 4) {
  Tensor images(Shape{count, 1, kGrid, kGrid});
  unsigned state = seed * 2654435761u + 7;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

// Server + loaded registry + admin endpoint, torn down in order.
class AdminFixture {
 public:
  explicit AdminFixture(bool load_model = true,
                        const std::string& dump_path = "") {
    if (load_model) {
      EXPECT_TRUE(
          registry_.load(save_model("admin_model.bin", 99), kGrid).ok());
    }
    server_ = std::make_unique<Server>(ServerConfig(), &registry_);
    std::string error;
    EXPECT_TRUE(server_->start(&error)) << error;
    AdminConfig admin_config;
    admin_config.flight_dump_path = dump_path;
    admin_ = std::make_unique<AdminServer>(admin_config, server_.get());
    EXPECT_TRUE(admin_->start(&error)) << error;
    EXPECT_GT(admin_->bound_port(), 0);
  }

  ~AdminFixture() {
    admin_->stop();
    server_->stop();
  }

  ModelRegistry& registry() { return registry_; }
  Server& server() { return *server_; }
  AdminServer& admin() { return *admin_; }

 private:
  ModelRegistry registry_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<AdminServer> admin_;
};

// Blocking HTTP/1.0 GET against the fixture's admin port.
bool http_get(int port, const std::string& path, int* status,
              std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t space = response.find(' ');
  const std::size_t header_end = response.find("\r\n\r\n");
  if (space == std::string::npos || header_end == std::string::npos) {
    return false;
  }
  *status = std::atoi(response.c_str() + space + 1);
  *body = response.substr(header_end + 4);
  return true;
}

// Every Prometheus sample line must carry a finite value and a name in the
// exporter's charset; returns the count of samples checked.
int check_prometheus_payload(const std::string& body) {
  int samples = 0;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) {
      end = body.size();
    }
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "no value in: " << line;
    if (space == std::string::npos) {
      continue;
    }
    const std::string name = line.substr(0, line.find('{'));
    for (const char c : name.substr(0, std::min(name.size(), space))) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "bad name char in: " << line;
    }
    char* parse_end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_TRUE(parse_end != line.c_str() + space + 1 && *parse_end == '\0')
        << "unparseable value in: " << line;
    EXPECT_TRUE(std::isfinite(value)) << "non-finite value in: " << line;
    ++samples;
  }
  return samples;
}

TEST(ServeAdmin, HealthzHealthyWithModel) {
  AdminFixture fixture;
  const AdminServer::Response response =
      fixture.admin().handle("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(response.body, parsed, error)) << error;
  EXPECT_TRUE(parsed.find("healthy")->as_bool());
  EXPECT_TRUE(parsed.find("model_registered")->as_bool());
  EXPECT_EQ(parsed.find("model_version")->as_number(), 1.0);
  EXPECT_EQ(parsed.find("queue_capacity_clips")->as_number(),
            static_cast<double>(ServerConfig().batcher.max_queue_clips));
}

TEST(ServeAdmin, HealthzUnhealthyWithoutModelIs503) {
  AdminFixture fixture(/*load_model=*/false);
  const AdminServer::Response response =
      fixture.admin().handle("GET", "/healthz");
  EXPECT_EQ(response.status, 503);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(response.body, parsed, error)) << error;
  EXPECT_FALSE(parsed.find("healthy")->as_bool());
  EXPECT_FALSE(parsed.find("model_registered")->as_bool());
}

TEST(ServeAdmin, HealthzReportsFailedSwap) {
  AdminFixture fixture;
  // A bogus swap must flip last_swap_ok without unregistering the model.
  EXPECT_FALSE(
      fixture.registry().load(temp_path("no_such_model.bin"), kGrid).ok());
  const AdminServer::Response response =
      fixture.admin().handle("GET", "/healthz");
  EXPECT_EQ(response.status, 503);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(response.body, parsed, error)) << error;
  EXPECT_TRUE(parsed.find("model_registered")->as_bool());
  EXPECT_FALSE(parsed.find("last_swap_ok")->as_bool());
  EXPECT_EQ(parsed.find("swap_failures")->as_number(), 1.0);
  EXPECT_FALSE(parsed.find("last_swap_error")->as_string().empty());
}

TEST(ServeAdmin, MetricsScrapeIsValidPrometheusWithSloGauges) {
  AdminFixture fixture;
  ServeClient client;
  std::string error;
  ASSERT_TRUE(
      client.connect("127.0.0.1", fixture.server().bound_port(), &error));
  PredictOutcome outcome;
  ASSERT_TRUE(client.predict("scrape-tenant", probe_batch(3), &outcome,
                             &error));
  ASSERT_TRUE(outcome.ok);
  const AdminServer::Response response =
      fixture.admin().handle("GET", "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_GT(check_prometheus_payload(response.body), 0);
  // The scrape publishes the SLO gauges before rendering.
  EXPECT_NE(response.body.find("serve_slo_error_budget_remaining"),
            std::string::npos);
  EXPECT_NE(response.body.find("serve_slo_burn_rate_fast"),
            std::string::npos);
  // Request-phase histograms from the traced predict.
  EXPECT_NE(response.body.find("serve_request_infer_seconds"),
            std::string::npos);
}

TEST(ServeAdmin, VarzIsStrictJsonWithManifest) {
  AdminFixture fixture;
  const AdminServer::Response response =
      fixture.admin().handle("GET", "/varz");
  EXPECT_EQ(response.status, 200);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::parse_json(response.body, parsed, error)) << error;
  ASSERT_NE(parsed.find("manifest"), nullptr);
  EXPECT_NE(parsed.find("manifest")->find("git_sha"), nullptr);
  EXPECT_NE(parsed.find("counters"), nullptr);
  EXPECT_NE(parsed.find("gauges"), nullptr);
}

TEST(ServeAdmin, TracezListsRecentRequestsAndHonorsLimit) {
  AdminFixture fixture;
  ServeClient client;
  std::string error;
  ASSERT_TRUE(
      client.connect("127.0.0.1", fixture.server().bound_port(), &error));
  for (int i = 0; i < 5; ++i) {
    PredictOutcome outcome;
    ASSERT_TRUE(client.predict("tracez-tenant",
                               probe_batch(static_cast<unsigned>(i)),
                               &outcome, &error));
    ASSERT_TRUE(outcome.ok);
  }
  const AdminServer::Response all = fixture.admin().handle("GET", "/tracez");
  util::JsonValue parsed;
  ASSERT_TRUE(util::parse_json(all.body, parsed, error)) << error;
  EXPECT_EQ(parsed.find("recorded")->as_number(), 5.0);
  EXPECT_EQ(parsed.find("entries")->as_array().size(), 5u);
  const auto& last = parsed.find("entries")->as_array().back();
  EXPECT_EQ(last.find("tenant")->as_string(), "tracez-tenant");
  EXPECT_EQ(last.find("clips")->as_number(), 4.0);
  EXPECT_EQ(last.find("outcome")->as_string(), "ok");
  EXPECT_EQ(last.find("model_version")->as_number(), 1.0);

  const AdminServer::Response limited =
      fixture.admin().handle("GET", "/tracez?limit=2");
  ASSERT_TRUE(util::parse_json(limited.body, parsed, error)) << error;
  EXPECT_EQ(parsed.find("entries")->as_array().size(), 2u);
}

TEST(ServeAdmin, TracezDumpWritesConfiguredFile) {
  const std::string dump_path = temp_path("tracez_dump.json");
  AdminFixture fixture(/*load_model=*/true, dump_path);
  ServeClient client;
  std::string error;
  ASSERT_TRUE(
      client.connect("127.0.0.1", fixture.server().bound_port(), &error));
  PredictOutcome outcome;
  ASSERT_TRUE(client.predict("dump-tenant", probe_batch(1), &outcome,
                             &error));
  const AdminServer::Response response =
      fixture.admin().handle("GET", "/tracez?dump=1");
  EXPECT_EQ(response.status, 200);
  util::JsonValue parsed;
  ASSERT_TRUE(util::parse_json(response.body, parsed, error)) << error;
  EXPECT_TRUE(parsed.find("dump_ok")->as_bool());
  util::JsonValue dumped;
  ASSERT_TRUE(util::parse_json_file(dump_path, dumped, error)) << error;
  EXPECT_EQ(dumped.find("entries")->as_array().size(), 1u);
  std::remove(dump_path.c_str());
}

TEST(ServeAdmin, TracezDumpWithoutPathIsBadRequest) {
  AdminFixture fixture;
  EXPECT_EQ(fixture.admin().handle("GET", "/tracez?dump=1").status, 400);
}

TEST(ServeAdmin, UnknownPathIs404AndNonGetIs405) {
  AdminFixture fixture;
  EXPECT_EQ(fixture.admin().handle("GET", "/nope").status, 404);
  EXPECT_EQ(fixture.admin().handle("POST", "/metrics").status, 405);
}

TEST(ServeAdmin, ConcurrentScrapeUnderLoad) {
  AdminFixture fixture;
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::atomic<int> predicted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&fixture, &predicted, c] {
      ServeClient client;
      std::string error;
      ASSERT_TRUE(client.connect("127.0.0.1", fixture.server().bound_port(),
                                 &error))
          << error;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        PredictOutcome outcome;
        ASSERT_TRUE(client.predict(
            "load-" + std::to_string(c),
            probe_batch(static_cast<unsigned>(c * 100 + r)), &outcome,
            &error))
            << error;
        ASSERT_TRUE(outcome.ok) << outcome.detail;
        ++predicted;
      }
    });
  }
  // Scrapers hammer /metrics and /tracez over real sockets while the
  // predict traffic flows. Every payload must parse cleanly — torn reads
  // or non-finite quantiles fail the assertions inside.
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&fixture] {
      for (int i = 0; i < 20; ++i) {
        int status = 0;
        std::string body;
        ASSERT_TRUE(http_get(fixture.admin().bound_port(), "/metrics",
                             &status, &body));
        ASSERT_EQ(status, 200);
        EXPECT_GT(check_prometheus_payload(body), 0);

        ASSERT_TRUE(http_get(fixture.admin().bound_port(), "/tracez",
                             &status, &body));
        ASSERT_EQ(status, 200);
        util::JsonValue parsed;
        std::string error;
        ASSERT_TRUE(util::parse_json(body, parsed, error))
            << error << "\n" << body;
      }
    });
  }
  for (std::thread& thread : clients) {
    thread.join();
  }
  for (std::thread& thread : scrapers) {
    thread.join();
  }
  EXPECT_EQ(predicted.load(), kClients * kRequestsPerClient);
  // After the load drains, the flight recorder saw every request.
  EXPECT_EQ(fixture.server().flight_recorder().recorded(),
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
}

}  // namespace
}  // namespace hotspot::serve
