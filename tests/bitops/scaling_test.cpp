#include "bitops/scaling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.h"

namespace hotspot::bitops {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

TEST(WeightScales, L1OverN) {
  // Eq. 8: alpha_W = ||W||_1 / n per filter.
  Tensor w({2, 1, 2, 2}, {1.0f, -1.0f, 2.0f, -2.0f,  // filter 0: |sum| = 6
                          0.5f, 0.5f, 0.5f, 0.5f});  // filter 1: 2
  const Tensor scales = weight_scales(w);
  EXPECT_FLOAT_EQ(scales[0], 1.5f);
  EXPECT_FLOAT_EQ(scales[1], 0.5f);
}

TEST(WeightScales, EstimateMinimizesBinarizationLoss) {
  // Property (Eq. 5-9): alpha* = ||W||_1/n minimizes ||W - alpha sign(W)||^2
  // over alpha, so any perturbed alpha must do no better.
  util::Rng rng(1);
  const Tensor w = Tensor::normal({1, 2, 3, 3}, rng, 0.0f, 1.0f);
  const Tensor s = tensor::sign(w);
  const float alpha = weight_scales(w)[0];
  auto loss = [&](float a) {
    double total = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double d = static_cast<double>(w[i]) - a * s[i];
      total += d * d;
    }
    return total;
  };
  EXPECT_LE(loss(alpha), loss(alpha * 1.05) + 1e-9);
  EXPECT_LE(loss(alpha), loss(alpha * 0.95) + 1e-9);
  EXPECT_LE(loss(alpha), loss(alpha + 0.1) + 1e-9);
}

TEST(InputScalesPerChannel, MatchesReferenceBoxConv) {
  // The integral-image fast path must agree with the direct depthwise
  // convolution of |input| with the box kernel (Eq. 14).
  util::Rng rng(2);
  for (const ConvSpec spec : {ConvSpec{3, 3, 1, 1}, ConvSpec{3, 3, 2, 1},
                              ConvSpec{1, 1, 1, 0}, ConvSpec{1, 1, 2, 0},
                              ConvSpec{5, 5, 1, 2}}) {
    const Tensor x = Tensor::normal({2, 3, 8, 8}, rng, 0.0f, 1.0f);
    Tensor box({spec.kernel_h, spec.kernel_w});
    box.fill(1.0f / static_cast<float>(spec.kernel_h * spec.kernel_w));
    const Tensor reference =
        tensor::depthwise_conv2d_shared(tensor::abs(x), box, spec);
    const Tensor fast = input_scales_per_channel(x, spec);
    EXPECT_TRUE(tensor::allclose(fast, reference, 1e-4))
        << "kernel " << spec.kernel_h << " stride " << spec.stride
        << " max diff " << tensor::max_abs_diff(fast, reference);
  }
}

TEST(InputScalesPerChannel, ShapeFollowsConvOutput) {
  util::Rng rng(3);
  const Tensor x = Tensor::normal({1, 4, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor scales = input_scales_per_channel(x, ConvSpec{3, 3, 2, 1});
  EXPECT_EQ(scales.shape(), (tensor::Shape{1, 4, 8, 8}));
}

TEST(InputScalesScalar, AveragesOverChannels) {
  // Two channels with |values| 1 and 3 everywhere: channel mean 2, box
  // filter of a constant interior stays 2.
  Tensor x({1, 2, 5, 5});
  for (std::int64_t i = 0; i < 25; ++i) {
    x[i] = -1.0f;
    x[25 + i] = 3.0f;
  }
  const Tensor scales = input_scales_scalar(x, ConvSpec{3, 3, 1, 1});
  EXPECT_EQ(scales.shape(), (tensor::Shape{1, 1, 5, 5}));
  EXPECT_NEAR(scales.at4(0, 0, 2, 2), 2.0f, 1e-5);
  // Corners see zero padding: 4 of 9 taps inside.
  EXPECT_NEAR(scales.at4(0, 0, 0, 0), 2.0f * 4.0f / 9.0f, 1e-5);
}

TEST(InputScales, NonNegative) {
  util::Rng rng(4);
  const Tensor x = Tensor::normal({1, 2, 6, 6}, rng, -5.0f, 2.0f);
  const Tensor scales = input_scales_per_channel(x, ConvSpec{3, 3, 1, 1});
  EXPECT_GE(scales.min(), 0.0f);
}

TEST(ScalingMode, Names) {
  EXPECT_STREQ(to_string(InputScaling::kPerChannel), "per-channel");
  EXPECT_STREQ(to_string(InputScaling::kScalar), "scalar");
  EXPECT_STREQ(to_string(InputScaling::kNone), "none");
}

}  // namespace
}  // namespace hotspot::bitops
