// Runtime dispatch rules (kernels/dispatch.cpp): strict HOTSPOT_SIMD
// validation (garbage exits 2, never a silent fallback), auto selection,
// and end-to-end equality between forced-scalar and the auto kernel on a
// real packed-inference model.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "bitops/kernels/xnor_kernel.h"
#include "core/brnn.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace hotspot::bitops {
namespace {

class ActiveKernelGuard {
 public:
  ActiveKernelGuard() : previous_(&active_xnor_kernel()) {}
  ~ActiveKernelGuard() { set_active_xnor_kernel(*previous_); }

 private:
  const XnorKernel* previous_;
};

// Scoped HOTSPOT_SIMD value; restores the prior state on exit.
class SimdEnvGuard {
 public:
  explicit SimdEnvGuard(const char* value) {
    const char* current = std::getenv("HOTSPOT_SIMD");
    had_previous_ = current != nullptr;
    if (had_previous_) {
      previous_ = current;
    }
    if (value != nullptr) {
      setenv("HOTSPOT_SIMD", value, 1);
    } else {
      unsetenv("HOTSPOT_SIMD");
    }
  }
  ~SimdEnvGuard() {
    if (had_previous_) {
      setenv("HOTSPOT_SIMD", previous_.c_str(), 1);
    } else {
      unsetenv("HOTSPOT_SIMD");
    }
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(KernelDispatch, CompiledListStartsWithScalar) {
  const auto& kernels = compiled_xnor_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front()->name, "scalar");
  // Ordered narrow to wide so "auto" can pick the last supported entry.
  for (std::size_t i = 1; i < kernels.size(); ++i) {
    EXPECT_GT(kernels[i]->simd_bits, kernels[i - 1]->simd_bits);
  }
  EXPECT_TRUE(xnor_kernel_cpu_supported(*kernels.front()));
}

TEST(KernelDispatch, ResolveAutoPicksWidestSupported) {
  std::string error;
  const XnorKernel* resolved = resolve_xnor_kernel("auto", error);
  ASSERT_NE(resolved, nullptr) << error;
  ASSERT_TRUE(xnor_kernel_cpu_supported(*resolved));
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    if (xnor_kernel_cpu_supported(*kernel)) {
      EXPECT_LE(kernel->simd_bits, resolved->simd_bits) << kernel->name;
    }
  }
  // nullptr and "" mean auto as well.
  EXPECT_EQ(resolve_xnor_kernel(nullptr, error), resolved);
  EXPECT_EQ(resolve_xnor_kernel("", error), resolved);
}

TEST(KernelDispatch, ResolveRejectsGarbageWithMessage) {
  std::string error;
  EXPECT_EQ(resolve_xnor_kernel("sse9", error), nullptr);
  EXPECT_NE(error.find("unknown value 'sse9'"), std::string::npos) << error;
  // Case-sensitive on purpose: "AVX2" is garbage, not a fallback.
  error.clear();
  EXPECT_EQ(resolve_xnor_kernel("AVX2", error), nullptr);
  EXPECT_NE(error.find("unknown value"), std::string::npos) << error;
}

TEST(KernelDispatch, ResolveScalarAlwaysWorks) {
  std::string error;
  const XnorKernel* resolved = resolve_xnor_kernel("scalar", error);
  ASSERT_NE(resolved, nullptr) << error;
  EXPECT_STREQ(resolved->name, "scalar");
  EXPECT_EQ(resolved, &xnor_kernel_scalar());
}

TEST(KernelDispatch, FindIsExactMatchOnly) {
  EXPECT_EQ(find_xnor_kernel("scalar"), &xnor_kernel_scalar());
  EXPECT_EQ(find_xnor_kernel("scala"), nullptr);
  EXPECT_EQ(find_xnor_kernel(nullptr), nullptr);
}

using KernelDispatchDeathTest = ::testing::Test;

TEST(KernelDispatchDeathTest, GarbageEnvExitsWithCode2) {
  SimdEnvGuard env("avx9000");
  EXPECT_EXIT(detail::resolve_active_from_env_for_test(),
              ::testing::ExitedWithCode(2), "HOTSPOT_SIMD=avx9000");
}

TEST(KernelDispatchDeathTest, EmptyEnvIsAutoNotAnError) {
  SimdEnvGuard env("");
  const XnorKernel& resolved = detail::resolve_active_from_env_for_test();
  EXPECT_TRUE(xnor_kernel_cpu_supported(resolved));
}

TEST(KernelDispatch, ForcedScalarEqualsAutoOnPackedModel) {
  ActiveKernelGuard guard;
  std::string error;
  const XnorKernel* auto_kernel = resolve_xnor_kernel("auto", error);
  ASSERT_NE(auto_kernel, nullptr) << error;

  const core::BrnnConfig config = core::BrnnConfig::compact(32);
  util::Rng rng(17);
  core::BrnnModel model(config, rng);
  model.set_training(false);
  model.set_backend(core::Backend::kPacked);

  util::Rng data_rng(18);
  tensor::Tensor batch({4, 1, config.image_size, config.image_size});
  for (std::int64_t i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
  }

  set_active_xnor_kernel(xnor_kernel_scalar());
  const tensor::Tensor scalar_logits = model.forward(batch);
  set_active_xnor_kernel(*auto_kernel);
  const tensor::Tensor auto_logits = model.forward(batch);

  ASSERT_EQ(scalar_logits.numel(), auto_logits.numel());
  for (std::int64_t i = 0; i < scalar_logits.numel(); ++i) {
    // Bit-identical logits: the whole packed path is exact across kernels.
    ASSERT_EQ(scalar_logits[i], auto_logits[i])
        << "auto kernel " << auto_kernel->name << " logit " << i;
  }
}

}  // namespace
}  // namespace hotspot::bitops
