// Bit-identity sweep for the XNOR kernel family (kernels/xnor_kernel.h):
// every kernel compiled into this binary must return exactly what the
// scalar reference returns — integer primitives by construction, and
// weighted_sum bit-for-bit because every kernel implements the canonical
// 8-lane accumulation order. Kernels the running CPU cannot execute are
// skipped at runtime (the suite still passes on a non-AVX host).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bitops/bit_matrix.h"
#include "bitops/kernels/xnor_kernel.h"
#include "bitops/xnor_gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace hotspot::bitops {
namespace {

using tensor::Tensor;

std::vector<const XnorKernel*> runnable_simd_kernels() {
  std::vector<const XnorKernel*> kernels;
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    if (std::string(kernel->name) != "scalar" &&
        xnor_kernel_cpu_supported(*kernel)) {
      kernels.push_back(kernel);
    }
  }
  return kernels;
}

// Random words with the top `tail_zero_bits` bits of the last word cleared,
// mimicking a packed row whose column count is not a word multiple.
std::vector<std::uint64_t> random_words(util::Rng& rng, std::int64_t count,
                                        int tail_zero_bits) {
  std::vector<std::uint64_t> words(static_cast<std::size_t>(count));
  for (auto& word : words) {
    word = rng.next_u64();
  }
  if (count > 0 && tail_zero_bits > 0) {
    words.back() &= ~std::uint64_t{0} >> tail_zero_bits;
  }
  return words;
}

// Restores the process-wide active kernel on scope exit; tests that call
// set_active_xnor_kernel must not leak their choice into other tests.
class ActiveKernelGuard {
 public:
  ActiveKernelGuard() : previous_(&active_xnor_kernel()) {}
  ~ActiveKernelGuard() { set_active_xnor_kernel(*previous_); }

 private:
  const XnorKernel* previous_;
};

TEST(KernelIdentity, XorPopcountMatchesScalarAcrossTailCounts) {
  const XnorKernel& scalar = xnor_kernel_scalar();
  util::Rng rng(71);
  for (const XnorKernel* kernel : runnable_simd_kernels()) {
    // Word counts sweep 0..3*word_multiple+7 so every vector-block/tail
    // split (tail 0-7 words) is exercised for every kernel.
    for (std::int64_t words = 0;
         words <= 3 * kernel->word_multiple + 7; ++words) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto a = random_words(rng, words, rep % 5);
        const auto b = random_words(rng, words, rep % 5);
        EXPECT_EQ(kernel->xor_popcount(a.data(), b.data(), words),
                  scalar.xor_popcount(a.data(), b.data(), words))
            << kernel->name << " words=" << words;
      }
    }
  }
}

TEST(KernelIdentity, XorPopcount2x4MatchesScalar) {
  const XnorKernel& scalar = xnor_kernel_scalar();
  util::Rng rng(72);
  for (const XnorKernel* kernel : runnable_simd_kernels()) {
    for (std::int64_t words = 0;
         words <= 2 * kernel->word_multiple + 7; ++words) {
      const auto a0 = random_words(rng, words, 3);
      const auto a1 = random_words(rng, words, 3);
      const auto b0 = random_words(rng, words, 3);
      const auto b1 = random_words(rng, words, 3);
      const auto b2 = random_words(rng, words, 3);
      const auto b3 = random_words(rng, words, 3);
      // Non-zero seeds verify the += contract (accumulate, not overwrite).
      std::int64_t got[8] = {5, 5, 5, 5, 5, 5, 5, 5};
      std::int64_t want[8] = {5, 5, 5, 5, 5, 5, 5, 5};
      kernel->xor_popcount_2x4(a0.data(), a1.data(), b0.data(), b1.data(),
                               b2.data(), b3.data(), words, got);
      scalar.xor_popcount_2x4(a0.data(), a1.data(), b0.data(), b1.data(),
                              b2.data(), b3.data(), words, want);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(got[i], want[i])
            << kernel->name << " words=" << words << " acc=" << i;
      }
    }
  }
}

TEST(KernelIdentity, WeightedSumBitIdenticalToScalar) {
  const XnorKernel& scalar = xnor_kernel_scalar();
  util::Rng rng(73);
  for (const XnorKernel* kernel : runnable_simd_kernels()) {
    for (std::int64_t channels = 0; channels <= 37; ++channels) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto a = random_words(rng, channels, 0);
        const auto b = random_words(rng, channels, 0);
        std::vector<float> alpha(static_cast<std::size_t>(channels));
        for (auto& value : alpha) {
          value = static_cast<float>(rng.uniform(0.0, 2.0));
        }
        const float dot_bits = 9.0f;  // paper-config 3x3 patch
        const float got = kernel->weighted_sum(a.data(), b.data(),
                                               alpha.data(), channels,
                                               dot_bits);
        const float want = scalar.weighted_sum(a.data(), b.data(),
                                               alpha.data(), channels,
                                               dot_bits);
        // Bit-identical, not merely close: the canonical order pins the
        // exact float result.
        EXPECT_EQ(got, want) << kernel->name << " channels=" << channels;
      }
    }
  }
}

TEST(KernelIdentity, WeightedSumX4MatchesFourSingleCalls) {
  util::Rng rng(76);
  // Contract: out[f] == weighted_sum(a, b_f, ...) bit-for-bit, for every
  // kernel including scalar, across tail channel counts.
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    if (!xnor_kernel_cpu_supported(*kernel)) {
      continue;
    }
    for (std::int64_t channels = 0; channels <= 37; ++channels) {
      const auto a = random_words(rng, channels, 0);
      const auto b0 = random_words(rng, channels, 0);
      const auto b1 = random_words(rng, channels, 0);
      const auto b2 = random_words(rng, channels, 0);
      const auto b3 = random_words(rng, channels, 0);
      std::vector<float> alpha(static_cast<std::size_t>(channels));
      for (auto& value : alpha) {
        value = static_cast<float>(rng.uniform(0.0, 2.0));
      }
      float got[4] = {-1.0f, -1.0f, -1.0f, -1.0f};
      kernel->weighted_sum_x4(a.data(), b0.data(), b1.data(), b2.data(),
                              b3.data(), alpha.data(), channels, 9.0f, got);
      const std::uint64_t* const filters[4] = {b0.data(), b1.data(),
                                               b2.data(), b3.data()};
      for (int f = 0; f < 4; ++f) {
        const float want = kernel->weighted_sum(a.data(), filters[f],
                                                alpha.data(), channels, 9.0f);
        EXPECT_EQ(got[f], want)
            << kernel->name << " channels=" << channels << " filter=" << f;
      }
    }
  }
}

TEST(KernelIdentity, WeightedSumZeroAlphaPaddingIsExactNoop) {
  util::Rng rng(74);
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    if (!xnor_kernel_cpu_supported(*kernel)) {
      continue;
    }
    const std::int64_t channels = 11;
    const std::int64_t padded = 16;
    auto a = random_words(rng, padded, 0);
    auto b = random_words(rng, padded, 0);
    std::vector<float> alpha(static_cast<std::size_t>(padded), 0.0f);
    for (std::int64_t c = 0; c < channels; ++c) {
      alpha[static_cast<std::size_t>(c)] =
          static_cast<float>(rng.uniform(0.1, 1.5));
    }
    // Padding channels: zero words AND zero alpha, as BitMatrix + the
    // binary-conv path produce them.
    for (std::int64_t c = channels; c < padded; ++c) {
      a[static_cast<std::size_t>(c)] = 0;
      b[static_cast<std::size_t>(c)] = 0;
    }
    const float unpadded = kernel->weighted_sum(a.data(), b.data(),
                                                alpha.data(), channels, 9.0f);
    const float with_padding = kernel->weighted_sum(
        a.data(), b.data(), alpha.data(), padded, 9.0f);
    EXPECT_EQ(unpadded, with_padding) << kernel->name;
  }
}

TEST(KernelIdentity, GemmMatchesScalarOnOddShapes) {
  ActiveKernelGuard guard;
  util::Rng rng(75);
  // Odd rows/cols: every tail path (row remainder of the 2-row tile, column
  // remainder of the 4-column tile, word tail of the packed row) is hit.
  const struct {
    std::int64_t m, n, k;
  } shapes[] = {{1, 1, 1},   {3, 5, 63},  {7, 9, 64},   {5, 3, 65},
                {17, 13, 127}, {2, 4, 576}, {11, 21, 200}};
  for (const auto& shape : shapes) {
    Tensor a({shape.m, shape.k});
    Tensor b({shape.n, shape.k});
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      a[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    }
    for (std::int64_t i = 0; i < b.numel(); ++i) {
      b[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    }
    set_active_xnor_kernel(xnor_kernel_scalar());
    const BitMatrix pa_scalar = BitMatrix::pack_rows(a);
    const BitMatrix pb_scalar = BitMatrix::pack_rows(b);
    const Tensor want = xnor_gemm(pa_scalar, pb_scalar);
    for (const XnorKernel* kernel : runnable_simd_kernels()) {
      set_active_xnor_kernel(*kernel);
      // Pack under the kernel (padded rows)...
      const BitMatrix pa = BitMatrix::pack_rows(a);
      const BitMatrix pb = BitMatrix::pack_rows(b);
      const Tensor got = xnor_gemm(pa, pb);
      ASSERT_EQ(got.numel(), want.numel());
      for (std::int64_t i = 0; i < got.numel(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << kernel->name << " m=" << shape.m << " n=" << shape.n
            << " k=" << shape.k << " flat=" << i;
      }
      // ...and on the scalar-padded (unpadded) matrices: kernels accept any
      // word count, so padded and unpadded packing must agree.
      const Tensor got_unpadded = xnor_gemm(pa_scalar, pb_scalar);
      for (std::int64_t i = 0; i < got_unpadded.numel(); ++i) {
        ASSERT_EQ(got_unpadded[i], want[i])
            << kernel->name << " (unpadded) m=" << shape.m << " n=" << shape.n
            << " k=" << shape.k << " flat=" << i;
      }
    }
  }
}

TEST(KernelIdentity, PaddedMatrixKeepsLogicalGeometry) {
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    const BitMatrix padded(3, 130, kernel->word_multiple);
    EXPECT_EQ(padded.words_per_row(), 3) << kernel->name;
    EXPECT_EQ(padded.word_stride() % kernel->word_multiple, 0)
        << kernel->name;
    EXPECT_GE(padded.word_stride(), padded.words_per_row()) << kernel->name;
    // Fig.-1 model size counts logical words only.
    EXPECT_EQ(padded.storage_bytes(), 3 * 3 * 8) << kernel->name;
  }
}

}  // namespace
}  // namespace hotspot::bitops
