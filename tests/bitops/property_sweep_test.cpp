// Randomized property sweeps over the binarization pipeline: for many
// random shapes, the packed kernels must agree exactly with their float
// sign-arithmetic definitions. These are the invariants the whole speedup
// story rests on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>

#include "bitops/scaling.h"
#include "bitops/xnor_gemm.h"
#include "tensor/tensor_ops.h"

namespace hotspot::bitops {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

class RandomShapeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomShapeSweep, XnorGemmEqualsSignMatmul) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const std::int64_t m = rng.uniform_int(1, 12);
  const std::int64_t n = rng.uniform_int(1, 12);
  const std::int64_t k = rng.uniform_int(1, 300);  // crosses word boundaries
  const Tensor a = Tensor::normal({m, k}, rng, 0.0f, 1.0f);
  const Tensor b = Tensor::normal({n, k}, rng, 0.0f, 1.0f);
  const Tensor counts =
      xnor_gemm(BitMatrix::pack_rows(a), BitMatrix::pack_rows(b));
  const Tensor expected =
      tensor::matmul(tensor::sign(a), tensor::transpose2d(tensor::sign(b)));
  ASSERT_TRUE(tensor::allclose(counts, expected, 1e-4))
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(RandomShapeSweep, BinaryConvCountsParity) {
  // Every +/-1 dot over p bits has the same parity as p: counts and patch
  // size are congruent mod 2. A cheap oracle-free invariant catching any
  // dropped or double-counted bit.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  const std::int64_t cin = rng.uniform_int(1, 4);
  const std::int64_t cout = rng.uniform_int(1, 4);
  const std::int64_t hw = rng.uniform_int(3, 9);
  const std::int64_t kernel = rng.bernoulli(0.5) ? 3 : 1;
  const ConvSpec spec{kernel, kernel, rng.bernoulli(0.5) ? 1L : 2L,
                      kernel == 3 ? 1L : 0L};
  const Tensor x = Tensor::normal({1, cin, hw, hw}, rng, 0.0f, 1.0f);
  const Tensor w = Tensor::normal({cout, cin, kernel, kernel}, rng, 0.0f, 1.0f);
  const Tensor counts = binary_conv_counts(x, w, spec);
  const std::int64_t patch = cin * kernel * kernel;
  for (std::int64_t i = 0; i < counts.numel(); ++i) {
    const auto value = static_cast<std::int64_t>(counts[i]);
    ASSERT_EQ(((value % 2) + 2) % 2, patch % 2)
        << "count " << value << " has wrong parity for patch " << patch;
    ASSERT_LE(std::abs(value), patch);
  }
}

TEST_P(RandomShapeSweep, ChannelBlockedAgreesWithDenseSum) {
  // Summing the per-channel blocked dots over channels must equal the
  // dense-lane count for the same (position, filter) pair.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709 + 3);
  const std::int64_t cin = rng.uniform_int(1, 6);
  const std::int64_t hw = rng.uniform_int(4, 8);
  const ConvSpec spec{3, 3, 1, 1};
  const Tensor x = Tensor::normal({1, cin, hw, hw}, rng, 0.0f, 1.0f);
  const Tensor w = Tensor::normal({2, cin, 3, 3}, rng, 0.0f, 1.0f);

  const BitMatrix blocked_p = pack_patches_channel_blocked(x, spec);
  const BitMatrix blocked_f = pack_filters_channel_blocked(w);
  const Tensor dense = binary_conv_counts(x, w, spec);

  const std::int64_t positions = hw * hw;
  for (std::int64_t p = 0; p < positions; ++p) {
    for (std::int64_t co = 0; co < 2; ++co) {
      std::int64_t total = 0;
      for (std::int64_t ci = 0; ci < cin; ++ci) {
        total += 9 - 2 * std::popcount(blocked_p.row(p)[ci] ^
                                       blocked_f.row(co)[ci]);
      }
      ASSERT_EQ(total,
                static_cast<std::int64_t>(dense.at4(0, co, p / hw, p % hw)))
          << "p=" << p << " co=" << co << " cin=" << cin;
    }
  }
}

TEST_P(RandomShapeSweep, BoxFilterMatchesReferenceAtRandomSpecs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 1);
  const std::int64_t c = rng.uniform_int(1, 4);
  const std::int64_t hw = rng.uniform_int(4, 12);
  const std::int64_t kernel = 1 + 2 * rng.uniform_int(0, 2);  // 1, 3, 5
  const ConvSpec spec{kernel, kernel, rng.uniform_int(1, 2),
                      rng.uniform_int(0, kernel / 2)};
  if (hw + 2 * spec.pad < kernel) {
    GTEST_SKIP() << "kernel larger than padded input";
  }
  const Tensor x = Tensor::normal({1, c, hw, hw}, rng, 0.0f, 2.0f);
  Tensor box({kernel, kernel});
  box.fill(1.0f / static_cast<float>(kernel * kernel));
  const Tensor reference =
      tensor::depthwise_conv2d_shared(tensor::abs(x), box, spec);
  const Tensor fast = box_filter_abs_mean(x, spec);
  ASSERT_TRUE(tensor::allclose(fast, reference, 1e-4))
      << "c=" << c << " hw=" << hw << " k=" << kernel << " s=" << spec.stride
      << " p=" << spec.pad;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapeSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace hotspot::bitops
