#include "bitops/bit_matrix.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::bitops {
namespace {

using tensor::Tensor;

TEST(BitMatrix, SetGetRoundTrip) {
  BitMatrix bits(3, 70);  // spans two words per row
  bits.set(1, 0, true);
  bits.set(1, 69, true);
  EXPECT_TRUE(bits.get(1, 0));
  EXPECT_TRUE(bits.get(1, 69));
  EXPECT_FALSE(bits.get(1, 1));
  bits.set(1, 0, false);
  EXPECT_FALSE(bits.get(1, 0));
}

TEST(BitMatrix, WordsPerRowPadding) {
  EXPECT_EQ(BitMatrix(1, 1).words_per_row(), 1);
  EXPECT_EQ(BitMatrix(1, 64).words_per_row(), 1);
  EXPECT_EQ(BitMatrix(1, 65).words_per_row(), 2);
}

TEST(BitMatrix, PackUnpackRoundTrip) {
  util::Rng rng(1);
  const Tensor source = Tensor::normal({4, 100}, rng, 0.0f, 1.0f);
  const BitMatrix packed = BitMatrix::pack_rows(source);
  const Tensor unpacked = packed.unpack();
  for (std::int64_t i = 0; i < source.numel(); ++i) {
    EXPECT_EQ(unpacked[i], source[i] >= 0.0f ? 1.0f : -1.0f);
  }
}

TEST(BitMatrix, PackSignZeroIsPlusOne) {
  const Tensor source({1, 2}, {0.0f, -0.0f});
  const BitMatrix packed = BitMatrix::pack_rows(source);
  EXPECT_TRUE(packed.get(0, 0));
  EXPECT_TRUE(packed.get(0, 1));  // -0.0f >= 0
}

TEST(BitMatrix, TailBitsAreZero) {
  const Tensor source({1, 5}, {1, 1, 1, 1, 1});
  const BitMatrix packed = BitMatrix::pack_rows(source);
  // Bits 5..63 must be zero so xnor_dot needs no tail mask.
  EXPECT_EQ(packed.row(0)[0], 0b11111u);
}

TEST(XnorDot, MatchesFloatInnerProduct) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.uniform_int(1, 200));
    const Tensor a = Tensor::normal({1, n}, rng, 0.0f, 1.0f);
    const Tensor b = Tensor::normal({1, n}, rng, 0.0f, 1.0f);
    const BitMatrix pa = BitMatrix::pack_rows(a);
    const BitMatrix pb = BitMatrix::pack_rows(b);
    const double expected =
        tensor::mul(tensor::sign(a), tensor::sign(b)).sum();
    EXPECT_EQ(xnor_dot(pa.row(0), pb.row(0), pa.words_per_row(), n),
              static_cast<std::int64_t>(expected));
  }
}

TEST(XnorDot, ExtremeCases) {
  const Tensor ones({1, 64}, 1.0f);
  const Tensor minus = tensor::scale(ones, -1.0f);
  const BitMatrix p = BitMatrix::pack_rows(ones);
  const BitMatrix m = BitMatrix::pack_rows(minus);
  EXPECT_EQ(xnor_dot(p.row(0), p.row(0), 1, 64), 64);
  EXPECT_EQ(xnor_dot(p.row(0), m.row(0), 1, 64), -64);
}

TEST(BitMatrix, StorageIs32xSmallerThanFloat) {
  // The Fig. 1 story: 1-bit weights vs 32-bit floats.
  const std::int64_t rows = 64;
  const std::int64_t cols = 576;
  const BitMatrix bits(rows, cols);
  const auto float_bytes = rows * cols * static_cast<std::int64_t>(sizeof(float));
  EXPECT_LE(bits.storage_bytes() * 30, float_bytes);
}

TEST(BitMatrixDeath, OutOfRangeAccess) {
  BitMatrix bits(2, 10);
  EXPECT_DEATH(bits.get(2, 0), "HOTSPOT_CHECK");
  EXPECT_DEATH(bits.set(0, 10, true), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::bitops
