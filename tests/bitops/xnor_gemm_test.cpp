#include "bitops/xnor_gemm.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace hotspot::bitops {
namespace {

using tensor::ConvSpec;
using tensor::Tensor;

TEST(XnorGemm, MatchesSignMatmul) {
  util::Rng rng(1);
  const Tensor a = Tensor::normal({5, 130}, rng, 0.0f, 1.0f);
  const Tensor b = Tensor::normal({7, 130}, rng, 0.0f, 1.0f);
  const Tensor counts =
      xnor_gemm(BitMatrix::pack_rows(a), BitMatrix::pack_rows(b));
  const Tensor expected = tensor::matmul(
      tensor::sign(a), tensor::transpose2d(tensor::sign(b)));
  EXPECT_TRUE(tensor::allclose(counts, expected, 1e-4));
}

TEST(PackPatches, MatchesFloatIm2colSigns) {
  util::Rng rng(2);
  const Tensor x = Tensor::normal({2, 3, 6, 6}, rng, 0.0f, 1.0f);
  for (const ConvSpec spec : {ConvSpec{3, 3, 1, 1}, ConvSpec{3, 3, 2, 1},
                              ConvSpec{1, 1, 2, 0}, ConvSpec{5, 5, 1, 2}}) {
    const BitMatrix packed = pack_patches(x, spec);
    const Tensor reference =
        tensor::im2col(tensor::sign(x), spec, -1.0f);
    EXPECT_TRUE(tensor::allclose(packed.unpack(), reference, 0.0))
        << "kernel " << spec.kernel_h << " stride " << spec.stride;
  }
}

TEST(BinaryConvCounts, MatchesFloatSignConv) {
  util::Rng rng(3);
  const Tensor x = Tensor::normal({1, 4, 8, 8}, rng, 0.0f, 1.0f);
  const Tensor w = Tensor::normal({6, 4, 3, 3}, rng, 0.0f, 1.0f);
  const ConvSpec spec{3, 3, 1, 1};
  const Tensor counts = binary_conv_counts(x, w, spec);
  // Reference: float conv of signs with -1 padding via im2col + matmul.
  const Tensor cols = tensor::im2col(tensor::sign(x), spec, -1.0f);
  const Tensor wmat = tensor::sign(w).reshaped({6, 4 * 9});
  const Tensor rows = tensor::matmul(cols, tensor::transpose2d(wmat));
  for (std::int64_t co = 0; co < 6; ++co) {
    for (std::int64_t p = 0; p < 64; ++p) {
      EXPECT_FLOAT_EQ(counts.at4(0, co, p / 8, p % 8), rows.at2(p, co));
    }
  }
}

TEST(ChannelBlockedPacking, OneWordPerChannel) {
  util::Rng rng(4);
  const Tensor x = Tensor::normal({1, 3, 4, 4}, rng, 0.0f, 1.0f);
  const ConvSpec spec{3, 3, 1, 1};
  const BitMatrix packed = pack_patches_channel_blocked(x, spec);
  EXPECT_EQ(packed.words_per_row(), 3);
  EXPECT_EQ(packed.rows(), 16);
}

TEST(ChannelBlockedPacking, DotsMatchDensePerChannel) {
  util::Rng rng(5);
  const Tensor x = Tensor::normal({1, 2, 5, 5}, rng, 0.0f, 1.0f);
  const Tensor w = Tensor::normal({3, 2, 3, 3}, rng, 0.0f, 1.0f);
  const ConvSpec spec{3, 3, 1, 1};
  const BitMatrix patches = pack_patches_channel_blocked(x, spec);
  const BitMatrix filters = pack_filters_channel_blocked(w);

  // Per-channel dot via bits must equal the float sign conv restricted to
  // that channel.
  const Tensor sx = tensor::sign(x);
  for (std::int64_t p = 0; p < 25; ++p) {
    for (std::int64_t co = 0; co < 3; ++co) {
      for (std::int64_t ci = 0; ci < 2; ++ci) {
        double expected = 0.0;
        const std::int64_t oy = p / 5;
        const std::int64_t ox = p % 5;
        for (std::int64_t ky = 0; ky < 3; ++ky) {
          for (std::int64_t kx = 0; kx < 3; ++kx) {
            const std::int64_t iy = oy - 1 + ky;
            const std::int64_t ix = ox - 1 + kx;
            const double sv = (iy < 0 || iy >= 5 || ix < 0 || ix >= 5)
                                  ? -1.0
                                  : sx.at4(0, ci, iy, ix);
            expected +=
                sv * (w.at4(co, ci, ky, kx) >= 0.0f ? 1.0 : -1.0);
          }
        }
        const std::uint64_t pw = patches.row(p)[ci];
        const std::uint64_t fw = filters.row(co)[ci];
        const std::int64_t dot = 9 - 2 * std::popcount(pw ^ fw);
        EXPECT_EQ(dot, static_cast<std::int64_t>(expected))
            << "p=" << p << " co=" << co << " ci=" << ci;
      }
    }
  }
}

TEST(ChannelBlockedPackingDeath, RejectsLargeKernels) {
  util::Rng rng(6);
  const Tensor x = Tensor::normal({1, 1, 20, 20}, rng, 0.0f, 1.0f);
  EXPECT_DEATH(pack_patches_channel_blocked(x, ConvSpec{9, 9, 1, 4}),
               "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::bitops
