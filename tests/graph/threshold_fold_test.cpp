// Exact threshold folding (DESIGN.md §14.2): the folded comparison must
// reproduce sign(BN(x)) bit-for-bit, including negative-gamma channels,
// zero/negative variance, and values straddling the bisected bound.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/threshold.h"
#include "util/rng.h"

namespace hotspot::graph {
namespace {

bool unfused_bit(float x, float gamma, float beta, float mean, float inv_std) {
  return bn_eval(x, mean, inv_std, gamma, beta) >= 0.0f;
}

// Probe values that stress a threshold: boundary neighbors, signed zeros,
// denormals, extremes, and a dense sweep.
std::vector<float> probes(float bound) {
  std::vector<float> xs = {
      0.0f,
      -0.0f,
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      FLT_MIN,
      -FLT_MIN,
      FLT_MAX,
      -FLT_MAX,
      1.0f,
      -1.0f,
      3.25f,
      -17.5f,
  };
  for (float step = -2.0f; step <= 2.0f; step += 0.125f) {
    xs.push_back(step);
  }
  if (std::isfinite(bound)) {
    xs.push_back(bound);
    xs.push_back(std::nextafter(bound, -std::numeric_limits<float>::infinity()));
    xs.push_back(std::nextafter(bound, std::numeric_limits<float>::infinity()));
  }
  return xs;
}

void expect_fold_matches(float gamma, float beta, float mean, float inv_std) {
  const auto folded = fold_bn_sign_threshold(gamma, beta, mean, inv_std);
  ASSERT_TRUE(folded.has_value())
      << "gamma=" << gamma << " beta=" << beta << " mean=" << mean
      << " inv_std=" << inv_std;
  for (const float x : probes(folded->bound)) {
    EXPECT_EQ(bitops::apply(*folded, x),
              unfused_bit(x, gamma, beta, mean, inv_std))
        << "x=" << x << " gamma=" << gamma << " beta=" << beta
        << " mean=" << mean << " inv_std=" << inv_std
        << " bound=" << folded->bound << " flip=" << folded->flip;
  }
}

TEST(ThresholdFold, MatchesUnfusedAcrossParameterSweep) {
  const float gammas[] = {1.0f, -1.0f, 0.5f, -0.25f, 3.0f, 1e-3f, -1e-3f};
  const float betas[] = {0.0f, 0.7f, -0.7f, 5.0f, -5.0f};
  const float means[] = {0.0f, 0.3f, -2.0f, 13.0f};
  const float inv_stds[] = {1.0f, 0.01f, 7.0f, 1e4f};
  for (const float gamma : gammas) {
    for (const float beta : betas) {
      for (const float mean : means) {
        for (const float inv_std : inv_stds) {
          expect_fold_matches(gamma, beta, mean, inv_std);
        }
      }
    }
  }
}

TEST(ThresholdFold, MatchesUnfusedOnRandomParameters) {
  util::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const float gamma = static_cast<float>(rng.uniform(-4.0, 4.0));
    const float beta = static_cast<float>(rng.uniform(-4.0, 4.0));
    const float mean = static_cast<float>(rng.uniform(-8.0, 8.0));
    const float inv_std = static_cast<float>(rng.uniform(1e-4, 20.0));
    expect_fold_matches(gamma, beta, mean, inv_std);
  }
}

TEST(ThresholdFold, NegativeGammaFlipsComparisonDirection) {
  const auto folded = fold_bn_sign_threshold(-1.0f, 0.5f, 0.0f, 1.0f);
  ASSERT_TRUE(folded.has_value());
  EXPECT_TRUE(folded->flip);  // y decreasing in x: large x -> bit 0
  EXPECT_FALSE(bitops::apply(*folded, 100.0f));
  EXPECT_TRUE(bitops::apply(*folded, -100.0f));
}

TEST(ThresholdFold, ZeroGammaIsConstantBetaSign) {
  // gamma == 0: y = beta everywhere, bit is constant.
  const auto positive = fold_bn_sign_threshold(0.0f, 0.25f, 1.0f, 2.0f);
  ASSERT_TRUE(positive.has_value());
  for (const float x : probes(positive->bound)) {
    EXPECT_TRUE(bitops::apply(*positive, x)) << "x=" << x;
  }

  const auto zero_beta = fold_bn_sign_threshold(0.0f, 0.0f, -3.0f, 0.5f);
  ASSERT_TRUE(zero_beta.has_value());
  for (const float x : probes(zero_beta->bound)) {
    EXPECT_TRUE(bitops::apply(*zero_beta, x)) << "x=" << x;  // 0 >= 0
  }

  const auto negative = fold_bn_sign_threshold(0.0f, -0.25f, 0.0f, 1.0f);
  ASSERT_TRUE(negative.has_value());
  for (const float x : probes(negative->bound)) {
    EXPECT_FALSE(bitops::apply(*negative, x)) << "x=" << x;
  }
}

TEST(ThresholdFold, ZeroVarianceChannelStaysFiniteAndExact) {
  // A zero running variance clamps to inv_std = 1/sqrt(eps): huge but
  // finite, so the channel still folds and still matches the layer.
  const float inv_std = 1.0f / std::sqrt(1e-5f);
  expect_fold_matches(1.0f, -0.1f, 0.5f, inv_std);
  expect_fold_matches(-2.0f, 0.3f, -0.5f, inv_std);
}

TEST(ThresholdFold, NonFiniteParametersAreUnfoldable) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(fold_bn_sign_threshold(nan, 0.0f, 0.0f, 1.0f).has_value());
  EXPECT_FALSE(fold_bn_sign_threshold(1.0f, inf, 0.0f, 1.0f).has_value());
  EXPECT_FALSE(fold_bn_sign_threshold(1.0f, 0.0f, -inf, 1.0f).has_value());
  EXPECT_FALSE(fold_bn_sign_threshold(1.0f, 0.0f, 0.0f, nan).has_value());
  EXPECT_FALSE(fold_bn_sign_threshold(1.0f, 0.0f, 0.0f, 0.0f).has_value());
  EXPECT_FALSE(fold_bn_sign_threshold(1.0f, 0.0f, 0.0f, -1.0f).has_value());
}

TEST(CountThresholdFold, MatchesFloatThresholdForEveryCount) {
  // Exhaustive: for each float threshold and alpha, the integer bound must
  // reproduce apply(t, float(c) * alpha) at every realizable count.
  const float alphas[] = {1.0f, 0.5f, 0.013671875f, 2.75f, 0.0f};
  const float bounds[] = {0.0f,  0.4f,   -0.4f, 3.0f, -3.0f,
                          17.3f, -17.3f, 1e10f, -1e10f};
  const std::int64_t max_count = 72;  // 8 channels * 3x3 patch
  for (const float alpha : alphas) {
    for (const float bound : bounds) {
      for (const bool flip : {false, true}) {
        const bitops::BinarizeThreshold t{bound, flip};
        const CountThreshold folded = fold_count_threshold(t, alpha, max_count);
        for (std::int64_t c = -max_count; c <= max_count; ++c) {
          EXPECT_EQ((c >= folded.bound) != folded.flip,
                    bitops::apply(t, static_cast<float>(c) * alpha))
              << "c=" << c << " alpha=" << alpha << " bound=" << bound
              << " flip=" << flip;
        }
      }
    }
  }
}

TEST(CountThresholdFold, InfiniteBoundsFoldToConstants) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::int64_t max_count = 9;
  {
    const CountThreshold folded =
        fold_count_threshold({-inf, false}, 1.0f, max_count);
    for (std::int64_t c = -max_count; c <= max_count; ++c) {
      EXPECT_TRUE((c >= folded.bound) != folded.flip);
    }
  }
  {
    const CountThreshold folded =
        fold_count_threshold({inf, false}, 1.0f, max_count);
    for (std::int64_t c = -max_count; c <= max_count; ++c) {
      EXPECT_FALSE((c >= folded.bound) != folded.flip);
    }
  }
}

}  // namespace
}  // namespace hotspot::graph
