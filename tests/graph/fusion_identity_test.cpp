// The fused graph executor's contract (DESIGN.md §14.3): logits are
// bit-identical to the unfused packed module chain — exact float equality,
// not allclose — for every scaling mode and every XNOR kernel this machine
// can run, and the fusion passes are idempotent.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bitops/kernels/xnor_kernel.h"
#include "core/brnn.h"
#include "graph/builder.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "graph/roofline.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace hotspot::graph {
namespace {

using tensor::Tensor;

// Restores the dispatched kernel when a sweep ends.
class KernelGuard {
 public:
  KernelGuard() : saved_(&bitops::active_xnor_kernel()) {}
  ~KernelGuard() { bitops::set_active_xnor_kernel(*saved_); }

 private:
  const bitops::XnorKernel* saved_;
};

std::vector<const bitops::XnorKernel*> runnable_kernels() {
  std::vector<const bitops::XnorKernel*> out;
  for (const bitops::XnorKernel* kernel : bitops::compiled_xnor_kernels()) {
    if (bitops::xnor_kernel_cpu_supported(*kernel)) {
      out.push_back(kernel);
    }
  }
  return out;
}

core::BrnnModel make_model(core::BrnnConfig config, unsigned seed) {
  util::Rng rng(seed);
  core::BrnnModel model(config, rng);
  model.set_training(true);
  for (int i = 0; i < 3; ++i) {
    model.forward(Tensor::uniform(
        {6, config.input_channels, config.image_size, config.image_size}, rng,
        0.0f, 1.0f));
  }
  model.set_training(false);
  model.set_backend(core::Backend::kPacked);
  return model;
}

void expect_bit_identical(const Tensor& got, const Tensor& want,
                          const std::string& context) {
  ASSERT_EQ(got.shape(), want.shape()) << context;
  const float* g = got.data();
  const float* w = want.data();
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(g[i], w[i]) << context << " diverges at flat index " << i;
  }
}

class FusionIdentityTest
    : public ::testing::TestWithParam<bitops::InputScaling> {};

TEST_P(FusionIdentityTest, FusedLogitsBitIdenticalAcrossKernels) {
  core::BrnnConfig config = core::BrnnConfig::compact(32);
  config.scaling = GetParam();
  core::BrnnModel model = make_model(config, 11);

  util::Rng data_rng(99);
  const Tensor x = Tensor::uniform({5, 1, 32, 32}, data_rng, 0.0f, 1.0f);

  KernelGuard guard;
  for (const bitops::XnorKernel* kernel : runnable_kernels()) {
    bitops::set_active_xnor_kernel(*kernel);
    const Tensor unfused = model.forward(x);

    GraphExecutor executor(model, FusionMode::kFused);
    const Tensor fused = executor.run(x);
    expect_bit_identical(
        fused, unfused,
        std::string("kernel=") + kernel->name + " scaling=" +
            bitops::to_string(config.scaling));

    // Re-running must not drift (pack plans are cached, not recomputed).
    expect_bit_identical(executor.run(x), unfused,
                         std::string("second run, kernel=") + kernel->name);
  }
}

TEST_P(FusionIdentityTest, GraphModeDelegationIsExact) {
  core::BrnnConfig config = core::BrnnConfig::compact(32);
  config.scaling = GetParam();
  core::BrnnModel model = make_model(config, 5);

  util::Rng data_rng(17);
  const Tensor x = Tensor::uniform({4, 1, 32, 32}, data_rng, 0.0f, 1.0f);
  const Tensor unfused = model.forward(x);

  GraphExecutor executor(model, FusionMode::kGraph);
  EXPECT_TRUE(executor.pass_results().empty());
  expect_bit_identical(executor.run(x), unfused, "kGraph delegation");
}

TEST_P(FusionIdentityTest, InstalledOverrideRoutesModelForward) {
  core::BrnnConfig config = core::BrnnConfig::compact(32);
  config.scaling = GetParam();
  core::BrnnModel model = make_model(config, 23);

  util::Rng data_rng(3);
  const Tensor x = Tensor::uniform({3, 1, 32, 32}, data_rng, 0.0f, 1.0f);
  const Tensor unfused = model.forward(x);

  auto executor = install_executor(model, FusionMode::kFused);
  ASSERT_NE(executor, nullptr);
  ASSERT_TRUE(model.has_forward_override());
  expect_bit_identical(model.forward(x), unfused, "installed override");

  EXPECT_EQ(install_executor(model, FusionMode::kOff), nullptr);
  EXPECT_FALSE(model.has_forward_override());
  expect_bit_identical(model.forward(x), unfused, "after uninstall");
}

INSTANTIATE_TEST_SUITE_P(AllScalings, FusionIdentityTest,
                         ::testing::Values(bitops::InputScaling::kPerChannel,
                                           bitops::InputScaling::kScalar,
                                           bitops::InputScaling::kNone),
                         [](const auto& info) {
                           switch (info.param) {
                             case bitops::InputScaling::kPerChannel:
                               return std::string("PerChannel");
                             case bitops::InputScaling::kScalar:
                               return std::string("Scalar");
                             case bitops::InputScaling::kNone:
                               return std::string("None");
                           }
                           return std::string("Unknown");
                         });

TEST(FusionIdentity, PaperConfigBitIdentical) {
  core::BrnnConfig config = core::BrnnConfig::paper();
  core::BrnnModel model = make_model(config, 41);

  util::Rng data_rng(8);
  const Tensor x = Tensor::uniform(
      {2, config.input_channels, config.image_size, config.image_size},
      data_rng, 0.0f, 1.0f);
  const Tensor unfused = model.forward(x);

  GraphExecutor executor(model, FusionMode::kFused);
  expect_bit_identical(executor.run(x), unfused, "paper config");
}

TEST(FusionPasses, NoneScalingChainsIntegerThresholds) {
  core::BrnnConfig config = core::BrnnConfig::compact(32);
  config.scaling = bitops::InputScaling::kNone;
  core::BrnnModel model = make_model(config, 13);

  GraphExecutor executor(model, FusionMode::kFused);
  int fused = 0;
  int chained = 0;
  for (const PassResult& pass : executor.pass_results()) {
    if (pass.name == "fold_bn_binarize_conv") {
      fused = pass.changed;
    } else if (pass.name == "fold_integer_thresholds") {
      chained = pass.changed;
    }
  }
  EXPECT_EQ(fused, 9);  // every conv block folds
  // conv_a -> conv_b inside each residual main path is a sole-consumer
  // kNone -> kNone edge; stem/block outputs feed the residual add too.
  EXPECT_EQ(chained, 3);

  bool saw_emit = false;
  const Graph& graph = executor.graph();
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Op& op = graph.node(static_cast<int>(i));
    if (op.kind == OpKind::kFusedBnBinaryConv && op.emit_bits) {
      saw_emit = true;
      EXPECT_EQ(op.output.dtype, DType::kBits);
      EXPECT_FALSE(op.emit_bounds.empty());
    }
  }
  EXPECT_TRUE(saw_emit);

  util::Rng data_rng(29);
  const Tensor x = Tensor::uniform({4, 1, 32, 32}, data_rng, 0.0f, 1.0f);
  expect_bit_identical(executor.run(x), model.forward(x), "emit-bits chain");
}

TEST(FusionPasses, PipelineIsIdempotent) {
  core::BrnnConfig config = core::BrnnConfig::compact(32);
  config.scaling = bitops::InputScaling::kNone;
  core::BrnnModel model = make_model(config, 31);

  Graph graph = build_graph(model);
  const std::vector<PassResult> first = run_fusion_pipeline(graph);
  int total_first = 0;
  for (const PassResult& pass : first) {
    total_first += pass.changed;
  }
  EXPECT_GT(total_first, 0);

  const std::vector<PassResult> second = run_fusion_pipeline(graph);
  for (const PassResult& pass : second) {
    EXPECT_EQ(pass.changed, 0) << pass.name;
  }

  EXPECT_GT(plan_pack_layouts(graph), 0);
  EXPECT_EQ(plan_pack_layouts(graph), 0);  // plan is change-detecting too
}

TEST(GraphRoofline, OneRowPerFusedConvPlusHead) {
  core::BrnnConfig config = core::BrnnConfig::compact(32);
  core::BrnnModel model = make_model(config, 19);

  GraphExecutor executor(model, FusionMode::kFused);
  const bool was_tracing = obs::trace_enabled();
  obs::set_trace_enabled(true);
  obs::reset_spans();
  executor.reset_profile();

  util::Rng data_rng(43);
  const Tensor x = Tensor::uniform({4, 1, 32, 32}, data_rng, 0.0f, 1.0f);
  executor.run(x);

  const core::RooflineReport report =
      build_graph_roofline(executor, obs::collect_span_report());
  obs::set_trace_enabled(was_tracing);

  // 9 conv rows (fused) + 1 fc row.
  ASSERT_EQ(report.layers.size(), 10u);
  EXPECT_EQ(report.samples, 4u);
  int fused_rows = 0;
  int shortcut_rows = 0;
  for (const core::RooflineLayer& layer : report.layers) {
    if (layer.geometry.find("(fused") != std::string::npos) {
      ++fused_rows;
      EXPECT_GT(layer.bitops, 0.0);
    }
    shortcut_rows += !layer.main_path;
  }
  EXPECT_EQ(fused_rows, 9);
  EXPECT_EQ(shortcut_rows, 2);  // the two projection shortcuts
  EXPECT_FALSE(core::to_table(report).empty());
}

}  // namespace
}  // namespace hotspot::graph
