// Graph IR structure: builder lowering, validation of malformed graphs,
// and shape-inference failures (DESIGN.md §14.1).
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"

namespace hotspot::graph {
namespace {

Op input_op(std::vector<std::int64_t> shape) {
  Op op;
  op.kind = OpKind::kInput;
  op.name = "input";
  op.output = {DType::kFloat, std::move(shape)};
  return op;
}

Op simple(OpKind kind, std::vector<int> inputs) {
  Op op;
  op.kind = kind;
  op.inputs = std::move(inputs);
  return op;
}

TEST(GraphIr, BuilderLowersCompactModel) {
  util::Rng rng(1);
  core::BrnnModel model(core::BrnnConfig::compact(32), rng);
  Graph graph = build_graph(model);

  EXPECT_TRUE(graph.validate().empty());
  EXPECT_EQ(graph.node(0).kind, OpKind::kInput);
  EXPECT_EQ(graph.node(graph.output_id()).kind, OpKind::kLinear);

  // compact(32): stem block + 3 residual stages (2 conv blocks each, stages
  // 2 and 3 projected) + head BN/pool/fc. Each conv block lowers to three
  // nodes.
  int convs = 0;
  int binarizes = 0;
  int adds = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const OpKind kind = graph.node(static_cast<int>(i)).kind;
    convs += kind == OpKind::kBinaryConv;
    binarizes += kind == OpKind::kBinarize;
    adds += kind == OpKind::kAdd;
  }
  EXPECT_EQ(convs, 9);  // stem + 6 main-path + 2 projection shortcuts
  EXPECT_EQ(binarizes, convs);
  EXPECT_EQ(adds, 3);

  // Conv nodes carry the trace span labels and inferred output shapes.
  bool found_stem = false;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Op& op = graph.node(static_cast<int>(i));
    if (op.name == "brnn.conv.stem") {
      found_stem = true;
      ASSERT_EQ(op.output.shape.size(), 4u);
      EXPECT_EQ(op.output.shape[0], -1);  // symbolic batch
      EXPECT_EQ(op.output.shape[1], 8);
      EXPECT_EQ(op.output.shape[2], 32);
    }
  }
  EXPECT_TRUE(found_stem);
  EXPECT_FALSE(graph.to_string().empty());
}

TEST(GraphIr, ConsumersReportsEveryUse) {
  Graph graph;
  const int in = graph.add(input_op({-1, 2, 8, 8}));
  Op bn = simple(OpKind::kBatchNorm, {in});
  bn.attrs.emplace("channels", Attr(std::int64_t{2}));
  const int bn_id = graph.add(std::move(bn));
  const int add_id =
      graph.add(simple(OpKind::kAdd, {bn_id, bn_id}));
  EXPECT_EQ(graph.consumers(bn_id), std::vector<int>{add_id});
  EXPECT_EQ(graph.consumers(add_id), std::vector<int>{});
}

TEST(GraphIr, ValidateRejectsMissingInputNode) {
  Graph graph;
  Op bn;
  bn.kind = OpKind::kBatchNorm;
  graph.add(std::move(bn));
  const auto errors = graph.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("input"), std::string::npos);
}

TEST(GraphIr, ValidateRejectsWrongArity) {
  Graph graph;
  const int in = graph.add(input_op({-1, 2, 8, 8}));
  graph.add(simple(OpKind::kAdd, {in}));  // add wants two operands
  const auto errors = graph.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("expects 2"), std::string::npos);
}

TEST(GraphIr, ValidateRejectsConvWithoutBinarize) {
  Graph graph;
  const int in = graph.add(input_op({-1, 2, 8, 8}));
  Op conv = simple(OpKind::kBinaryConv, {in});
  graph.add(std::move(conv));
  const auto errors = graph.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("binarize"), std::string::npos);
}

TEST(GraphIr, ValidateRejectsBitsIntoFloatOp) {
  Graph graph;
  const int in = graph.add(input_op({-1, 2, 8, 8}));
  const int bin = graph.add(simple(OpKind::kBinarize, {in}));
  graph.add(simple(OpKind::kGlobalAvgPool, {bin}));
  const auto errors = graph.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("float"), std::string::npos);
}

TEST(GraphIr, InferShapesRejectsChannelMismatch) {
  Graph graph;
  const int in = graph.add(input_op({-1, 3, 8, 8}));
  Op bn = simple(OpKind::kBatchNorm, {in});
  bn.attrs.emplace("channels", Attr(std::int64_t{4}));
  graph.add(std::move(bn));
  const auto errors = graph.infer_shapes();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("channel mismatch"), std::string::npos);
}

TEST(GraphIr, InferShapesRejectsRankMismatch) {
  Graph graph;
  const int in = graph.add(input_op({-1, 3, 8, 8}));
  const int gap = graph.add(simple(OpKind::kGlobalAvgPool, {in}));
  Op fc = simple(OpKind::kLinear, {gap});
  fc.attrs.emplace("in_features", Attr(std::int64_t{3}));
  fc.attrs.emplace("out_features", Attr(std::int64_t{2}));
  const int fc_id = graph.add(std::move(fc));
  graph.add(simple(OpKind::kGlobalAvgPool, {fc_id}));  // rank-2 input
  const auto errors = graph.infer_shapes();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("rank-4"), std::string::npos);
}

TEST(GraphIr, InferShapesRejectsMismatchedAdd) {
  Graph graph;
  const int in = graph.add(input_op({-1, 2, 8, 8}));
  Op pool = simple(OpKind::kMaxPool, {in});
  pool.attrs.emplace("window", Attr(std::int64_t{2}));
  pool.attrs.emplace("stride", Attr(std::int64_t{2}));
  const int pool_id = graph.add(std::move(pool));
  graph.add(simple(OpKind::kAdd, {in, pool_id}));
  const auto errors = graph.infer_shapes();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("operand shapes differ"), std::string::npos);
}

TEST(GraphIr, InferShapesComputesConvAndPoolExtents) {
  Graph graph;
  const int in = graph.add(input_op({-1, 2, 9, 9}));
  Op bn = simple(OpKind::kBatchNorm, {in});
  bn.attrs.emplace("channels", Attr(std::int64_t{2}));
  const int bn_id = graph.add(std::move(bn));
  const int bin = graph.add(simple(OpKind::kBinarize, {bn_id}));
  Op conv = simple(OpKind::kBinaryConv, {bin});
  conv.attrs.emplace("in_channels", Attr(std::int64_t{2}));
  conv.attrs.emplace("out_channels", Attr(std::int64_t{4}));
  conv.attrs.emplace("kernel", Attr(std::int64_t{3}));
  conv.attrs.emplace("stride", Attr(std::int64_t{2}));
  conv.attrs.emplace("pad", Attr(std::int64_t{1}));
  const int conv_id = graph.add(std::move(conv));
  Op pool = simple(OpKind::kMaxPool, {conv_id});
  pool.attrs.emplace("window", Attr(std::int64_t{2}));
  pool.attrs.emplace("stride", Attr(std::int64_t{2}));
  graph.add(std::move(pool));

  ASSERT_TRUE(graph.infer_shapes().empty());
  EXPECT_EQ(graph.node(conv_id).output.shape,
            (std::vector<std::int64_t>{-1, 4, 5, 5}));
  EXPECT_EQ(graph.node(conv_id).output.dtype, DType::kFloat);
  EXPECT_EQ(graph.node(bin).output.dtype, DType::kBits);
  EXPECT_EQ(graph.node(graph.output_id()).output.shape,
            (std::vector<std::int64_t>{-1, 4, 2, 2}));
}

}  // namespace
}  // namespace hotspot::graph
