#include "core/binary_conv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace hotspot::core {
namespace {

using bitops::InputScaling;
using tensor::Tensor;

// Slow direct implementation of Eq. 15 used as the specification the layer
// is checked against: out(co,p) = alpha_W(co) * sum_c alpha(c,p) *
// sum_k sign(x)(c,k,p) * sign(w)(co,c,k), with -1 padding.
Tensor reference_forward(const Tensor& x, const Tensor& w,
                         const tensor::ConvSpec& spec, InputScaling mode) {
  const std::int64_t n = x.dim(0);
  const std::int64_t cin = x.dim(1);
  const std::int64_t h = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t cout = w.dim(0);
  const std::int64_t oh =
      tensor::conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t ow =
      tensor::conv_out_extent(width, spec.kernel_w, spec.stride, spec.pad);
  const Tensor alpha_w = bitops::weight_scales(w);
  Tensor alpha;
  if (mode == InputScaling::kPerChannel) {
    alpha = bitops::input_scales_per_channel(x, spec);
  } else if (mode == InputScaling::kScalar) {
    alpha = bitops::input_scales_scalar(x, spec);
  }
  Tensor out({n, cout, oh, ow});
  for (std::int64_t ni = 0; ni < n; ++ni)
    for (std::int64_t co = 0; co < cout; ++co)
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            double dot = 0.0;
            for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky)
              for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
                const std::int64_t iy = oy * spec.stride - spec.pad + ky;
                const std::int64_t ix = ox * spec.stride - spec.pad + kx;
                const double sx = (iy < 0 || iy >= h || ix < 0 || ix >= width)
                                      ? -1.0
                                      : (x.at4(ni, ci, iy, ix) >= 0 ? 1 : -1);
                const double sw = w.at4(co, ci, ky, kx) >= 0 ? 1.0 : -1.0;
                dot += sx * sw;
              }
            double a = 1.0;
            if (mode == InputScaling::kPerChannel) {
              a = alpha.at4(ni, ci, oy, ox);
            } else if (mode == InputScaling::kScalar) {
              a = alpha.at4(ni, 0, oy, ox);
            }
            acc += a * dot;
          }
          out.at4(ni, co, oy, ox) = static_cast<float>(acc * alpha_w[co]);
        }
  return out;
}

class ScalingModeTest : public ::testing::TestWithParam<InputScaling> {};

TEST_P(ScalingModeTest, FloatSimMatchesEq15Reference) {
  util::Rng rng(1);
  BinaryConv2d conv(3, 4, 3, 1, 1, GetParam(), rng);
  conv.set_training(true);
  const Tensor x = Tensor::normal({2, 3, 6, 6}, rng, 0.0f, 0.8f);
  const Tensor got = conv.forward(x);
  const Tensor want =
      reference_forward(x, conv.weight().value, conv.spec(), GetParam());
  EXPECT_TRUE(tensor::allclose(got, want, 1e-3))
      << "max diff " << tensor::max_abs_diff(got, want);
}

TEST_P(ScalingModeTest, PackedMatchesFloatSim) {
  util::Rng rng(2);
  BinaryConv2d conv(4, 5, 3, 2, 1, GetParam(), rng);
  const Tensor x = Tensor::normal({2, 4, 8, 8}, rng, 0.0f, 0.8f);
  conv.set_training(true);
  const Tensor float_out = conv.forward(x);
  conv.set_training(false);
  conv.set_backend(Backend::kPacked);
  const Tensor packed_out = conv.forward(x);
  EXPECT_TRUE(tensor::allclose(packed_out, float_out, 1e-3))
      << "max diff " << tensor::max_abs_diff(packed_out, float_out);
}

TEST_P(ScalingModeTest, OneByOneKernelAgrees) {
  util::Rng rng(3);
  BinaryConv2d conv(3, 2, 1, 2, 0, GetParam(), rng);
  const Tensor x = Tensor::normal({1, 3, 6, 6}, rng, 0.0f, 0.8f);
  conv.set_training(true);
  const Tensor float_out = conv.forward(x);
  conv.set_training(false);
  const Tensor packed_out = conv.forward(x);
  EXPECT_TRUE(tensor::allclose(packed_out, float_out, 1e-3));
}

INSTANTIATE_TEST_SUITE_P(Modes, ScalingModeTest,
                         ::testing::Values(InputScaling::kPerChannel,
                                           InputScaling::kScalar,
                                           InputScaling::kNone),
                         [](const auto& info) {
                           switch (info.param) {
                             case InputScaling::kPerChannel:
                               return "PerChannel";
                             case InputScaling::kScalar:
                               return "Scalar";
                             default:
                               return "None";
                           }
                         });

TEST(BinaryConv, OutputInvariantToInputMagnitudeWithoutScaling) {
  // With kNone, only input signs matter: scaling the input leaves the
  // output unchanged — the defining property of binarized activations.
  util::Rng rng(4);
  BinaryConv2d conv(2, 3, 3, 1, 1, InputScaling::kNone, rng);
  conv.set_training(true);
  const Tensor x = Tensor::normal({1, 2, 5, 5}, rng, 0.0f, 1.0f);
  const Tensor scaled = tensor::scale(x, 7.5f);
  EXPECT_TRUE(
      tensor::allclose(conv.forward(x), conv.forward(scaled), 1e-4));
}

TEST(BinaryConv, WeightGradFollowsEq13Structure) {
  // Eq. 13: dl/dW = dl/dW~ * (1/n + alpha_W * 1_{|W|<1}). Verify the STE
  // part by comparing gradients at weights inside vs outside the clip
  // region: for |W| >= 1 the gradient collapses to the 1/n term.
  util::Rng rng(5);
  BinaryConv2d conv(1, 1, 3, 1, 1, InputScaling::kNone, rng);
  conv.set_training(true);
  // Put one weight far outside [-1, 1].
  conv.weight().value[0] = 5.0f;
  conv.weight().value[1] = 0.5f;
  const Tensor x = Tensor::normal({1, 1, 4, 4}, rng, 0.0f, 0.8f);
  const Tensor out = conv.forward(x);
  conv.zero_grad();
  conv.backward(Tensor::ones(out.shape()));
  // dl/dW~ for both weights has the same *form*; the saturated weight's
  // gradient must be the unsaturated one scaled by (1/n) /
  // (1/n + alpha_W) if dl/dW~ matched. Check the structural part: the
  // saturated weight still receives a nonzero (1/n) alpha-path gradient.
  EXPECT_NE(conv.weight().grad[0], 0.0f);
}

TEST(BinaryConv, InputGradZeroWhereSaturated) {
  // Eq. 10-11: no gradient flows to inputs with |x| >= 1.
  util::Rng rng(6);
  BinaryConv2d conv(1, 2, 3, 1, 1, InputScaling::kNone, rng);
  conv.set_training(true);
  Tensor x({1, 1, 3, 3}, 0.5f);
  x[4] = 3.0f;  // saturated centre
  const Tensor out = conv.forward(x);
  conv.zero_grad();
  const Tensor gx = conv.backward(Tensor::ones(out.shape()));
  EXPECT_EQ(gx[4], 0.0f);
  // At least one unsaturated input receives gradient.
  EXPECT_GT(tensor::l1_norm(gx), 0.0);
}

TEST(BinaryConv, PackedCacheInvalidatedByTraining) {
  util::Rng rng(7);
  BinaryConv2d conv(2, 2, 3, 1, 1, InputScaling::kScalar, rng);
  const Tensor x = Tensor::normal({1, 2, 4, 4}, rng, 0.0f, 0.8f);
  conv.set_training(false);
  const Tensor before = conv.forward(x);
  // Mutate weights as an optimizer step would (after a backward).
  conv.set_training(true);
  conv.forward(x);
  conv.backward(Tensor::ones(before.shape()));
  for (std::int64_t i = 0; i < conv.weight().value.numel(); ++i) {
    conv.weight().value[i] = -conv.weight().value[i];
  }
  conv.set_training(false);
  const Tensor after = conv.forward(x);
  EXPECT_GT(tensor::max_abs_diff(before, after), 1e-3)
      << "stale packed weights were reused";
}

TEST(BinaryConv, RedundantEvalCallsDoNotRepack) {
  // The scan path calls set_training(false) defensively before every batch.
  // A no-op mode call must not drop the packed-filter cache: over a long
  // scan that meant a full re-pack (and a retired snapshot) per batch.
  util::Rng rng(14);
  BinaryConv2d conv(2, 2, 3, 1, 1, InputScaling::kScalar, rng);
  const Tensor x = Tensor::normal({1, 2, 4, 4}, rng, 0.0f, 0.8f);
  conv.set_training(false);
  conv.forward(x);  // builds the packed cache

  obs::Counter& misses =
      obs::MetricsRegistry::global().counter("binary_conv.pack_cache.miss");
  obs::Counter& hits =
      obs::MetricsRegistry::global().counter("binary_conv.pack_cache.hit");
  const std::uint64_t misses_before = misses.value();
  const std::uint64_t hits_before = hits.value();
  const Tensor first = conv.forward(x);
  for (int batch = 0; batch < 5; ++batch) {
    conv.set_training(false);  // already eval: must be a no-op
    const Tensor out = conv.forward(x);
    EXPECT_EQ(tensor::max_abs_diff(out, first), 0.0);
  }
  EXPECT_EQ(misses.value(), misses_before) << "no-op set_training repacked";
  EXPECT_EQ(hits.value(), hits_before + 6);

  // A real transition still invalidates.
  conv.set_training(true);
  conv.set_training(false);
  conv.forward(x);
  EXPECT_EQ(misses.value(), misses_before + 1);
}

TEST(BinaryConv, ParameterCount) {
  util::Rng rng(8);
  BinaryConv2d conv(4, 8, 3, 1, 1, InputScaling::kPerChannel, rng);
  EXPECT_EQ(conv.parameter_count(), 8 * 4 * 3 * 3);
  EXPECT_EQ(conv.parameters().size(), 1u);  // no bias in binary conv
}

TEST(BinaryConvDeath, RejectsOversizedKernelForPackedPath) {
  util::Rng rng(9);
  EXPECT_DEATH(
      BinaryConv2d(1, 1, 9, 1, 4, InputScaling::kPerChannel, rng),
      "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::core
