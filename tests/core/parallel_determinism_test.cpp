// Determinism guarantee of the threaded hot paths: every kernel wired into
// util::parallel_for must produce bit-identical outputs at any pool width,
// because partitioning depends only on (range, grain) and each index's
// arithmetic runs in a fixed order within its chunk.
#include <gtest/gtest.h>

#include <vector>

#include "bitops/xnor_gemm.h"
#include "core/brnn.h"
#include "tensor/conv.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace hotspot::core {
namespace {

using tensor::Tensor;

// Thread counts the suite sweeps; 4+ exceeds CI hardware on purpose — the
// guarantee is about partitioning, not about the machine.
const std::vector<int> kThreadCounts{1, 2, 4, 7};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { util::set_parallel_threads(previous_); }
  int previous_ = util::parallel_threads();
};

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const char* label, int threads) {
  ASSERT_TRUE(a.same_shape(b)) << label << " threads=" << threads;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " threads=" << threads << " i=" << i;
  }
}

TEST_F(ParallelDeterminismTest, XnorGemmBitIdenticalAcrossThreadCounts) {
  util::Rng rng(11);
  // Ragged shapes exercise both the 2x4 tile body and the scalar edges.
  const Tensor a_src = Tensor::uniform({37, 130}, rng, -1.0f, 1.0f);
  const Tensor b_src = Tensor::uniform({13, 130}, rng, -1.0f, 1.0f);
  const bitops::BitMatrix a = bitops::BitMatrix::pack_rows(a_src);
  const bitops::BitMatrix b = bitops::BitMatrix::pack_rows(b_src);

  util::set_parallel_threads(1);
  const Tensor reference = bitops::xnor_gemm(a, b);
  for (const int threads : kThreadCounts) {
    util::set_parallel_threads(threads);
    expect_bit_identical(bitops::xnor_gemm(a, b), reference, "xnor_gemm",
                         threads);
  }
}

TEST_F(ParallelDeterminismTest, BinaryConvCountsBitIdentical) {
  util::Rng rng(12);
  const Tensor input = Tensor::uniform({3, 4, 9, 9}, rng, -1.0f, 1.0f);
  const Tensor weight = Tensor::uniform({6, 4, 3, 3}, rng, -1.0f, 1.0f);
  const tensor::ConvSpec spec{3, 3, 1, 1};

  util::set_parallel_threads(1);
  const Tensor reference = bitops::binary_conv_counts(input, weight, spec);
  for (const int threads : kThreadCounts) {
    util::set_parallel_threads(threads);
    expect_bit_identical(bitops::binary_conv_counts(input, weight, spec),
                         reference, "binary_conv_counts", threads);
  }
}

TEST_F(ParallelDeterminismTest, FloatConvBitIdentical) {
  util::Rng rng(13);
  const Tensor input = Tensor::uniform({2, 3, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor weight = Tensor::uniform({5, 3, 3, 3}, rng, -0.5f, 0.5f);
  const Tensor bias = Tensor::uniform({5}, rng, -0.1f, 0.1f);
  const tensor::ConvSpec spec{3, 3, 1, 1};

  util::set_parallel_threads(1);
  const Tensor reference = tensor::conv2d(input, weight, &bias, spec);
  for (const int threads : kThreadCounts) {
    util::set_parallel_threads(threads);
    expect_bit_identical(tensor::conv2d(input, weight, &bias, spec),
                         reference, "conv2d", threads);
  }
}

TEST_F(ParallelDeterminismTest, BrnnForwardBitIdenticalBothBackends) {
  util::Rng rng(14);
  BrnnModel model(BrnnConfig::compact(32), rng);
  model.set_training(false);
  const Tensor images = Tensor::uniform({6, 1, 32, 32}, rng, -1.0f, 1.0f);

  for (const Backend backend : {Backend::kPacked, Backend::kFloatSim}) {
    model.set_backend(backend);
    util::set_parallel_threads(1);
    const Tensor reference = model.forward(images);
    const std::vector<int> reference_labels = model.predict(images);
    for (const int threads : kThreadCounts) {
      util::set_parallel_threads(threads);
      expect_bit_identical(model.forward(images), reference, "brnn_forward",
                           threads);
      EXPECT_EQ(model.predict(images), reference_labels)
          << "backend=" << static_cast<int>(backend)
          << " threads=" << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, TrainingStepBitIdenticalAcrossThreadCounts) {
  // One forward/backward through the float-sim path (the trainer's
  // mini-batch loop) must also be partition-independent.
  const Tensor images = [] {
    util::Rng rng(15);
    return Tensor::uniform({4, 1, 32, 32}, rng, -1.0f, 1.0f);
  }();
  auto run = [&](int threads) {
    util::set_parallel_threads(threads);
    util::Rng rng(16);
    BrnnModel model(BrnnConfig::compact(32), rng);
    model.set_training(true);
    const Tensor logits = model.forward(images);
    model.zero_grad();
    model.backward(Tensor::ones(logits.shape()));
    std::vector<float> grads;
    for (nn::Parameter* param : model.parameters()) {
      for (std::int64_t i = 0; i < param->grad.numel(); ++i) {
        grads.push_back(param->grad[i]);
      }
    }
    return grads;
  };
  const std::vector<float> reference = run(1);
  for (const int threads : {2, 4}) {
    EXPECT_EQ(run(threads), reference) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace hotspot::core
