#include "core/brnn.h"

#include <gtest/gtest.h>

#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace hotspot::core {
namespace {

using tensor::Tensor;

TEST(BrnnConfig, PaperNetworkHasTwelveWeightLayers) {
  const BrnnConfig config = BrnnConfig::paper();
  EXPECT_EQ(config.main_path_layer_count(), 12);
  EXPECT_EQ(config.image_size, 128);
  // "The deeper a layer is, the more filters it contains" (Sec. 3.1).
  for (std::size_t i = 1; i < config.block_filters.size(); ++i) {
    EXPECT_GE(config.block_filters[i], config.block_filters[i - 1]);
  }
}

TEST(BrnnModel, ForwardShape) {
  util::Rng rng(1);
  BrnnModel model(BrnnConfig::compact(32), rng);
  model.set_training(true);
  const Tensor logits = model.forward(Tensor({4, 1, 32, 32}));
  EXPECT_EQ(logits.shape(), (tensor::Shape{4, 2}));
}

TEST(BrnnModel, RejectsWrongInputSize) {
  util::Rng rng(2);
  BrnnModel model(BrnnConfig::compact(32), rng);
  EXPECT_DEATH(model.forward(Tensor({1, 1, 64, 64})), "HOTSPOT_CHECK");
}

TEST(BrnnModel, BackwardProducesInputShapedGradient) {
  util::Rng rng(3);
  BrnnModel model(BrnnConfig::compact(32), rng);
  model.set_training(true);
  const Tensor x = Tensor::uniform({2, 1, 32, 32}, rng, 0.0f, 1.0f);
  const Tensor logits = model.forward(x);
  const Tensor gx = model.backward(Tensor::ones(logits.shape()));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(BrnnModel, GradientsReachEveryParameter) {
  util::Rng rng(4);
  BrnnModel model(BrnnConfig::compact(32), rng);
  model.set_training(true);
  const Tensor x = Tensor::uniform({4, 1, 32, 32}, rng, 0.0f, 1.0f);
  const Tensor logits = model.forward(x);
  model.zero_grad();
  model.backward(Tensor::ones(logits.shape()));
  int dead = 0;
  for (nn::Parameter* param : model.parameters()) {
    if (tensor::l1_norm(param->grad) == 0.0) {
      ++dead;
    }
  }
  // A few BN betas can be zero-gradient on a tiny batch, but the bulk of
  // the network must receive gradient.
  EXPECT_LE(dead, 2) << "of " << model.parameters().size() << " parameters";
}

TEST(BrnnModel, BinaryConvCountMatchesArchitecture) {
  util::Rng rng(5);
  const BrnnConfig config = BrnnConfig::compact(32);
  BrnnModel model(config, rng);
  // stem + 2 per block + 1x1 shortcut per shape-changing block.
  std::int64_t expected = 1 + 2 * static_cast<std::int64_t>(
                                      config.block_filters.size());
  std::int64_t channels = config.stem_filters;
  for (std::size_t i = 0; i < config.block_filters.size(); ++i) {
    if (config.block_filters[i] != channels || config.block_strides[i] != 1) {
      ++expected;
    }
    channels = config.block_filters[i];
  }
  EXPECT_EQ(static_cast<std::int64_t>(model.binary_convs().size()), expected);
}

TEST(BrnnModel, CheckpointRoundTrip) {
  util::Rng rng_a(6);
  BrnnModel model(BrnnConfig::compact(32), rng_a);
  model.set_training(false);
  util::Rng data_rng(7);
  const Tensor x = Tensor::uniform({2, 1, 32, 32}, data_rng, 0.0f, 1.0f);
  model.set_backend(Backend::kFloatSim);
  const Tensor logits_before = model.forward(x);

  const std::string path =
      std::string(::testing::TempDir()) + "/brnn_checkpoint.bin";
  ASSERT_TRUE(nn::save_checkpoint(path, model));

  util::Rng rng_b(999);  // different init
  BrnnModel restored(BrnnConfig::compact(32), rng_b);
  ASSERT_TRUE(nn::load_checkpoint(path, restored));
  restored.set_training(false);
  restored.set_backend(Backend::kFloatSim);
  const Tensor logits_after = restored.forward(x);
  EXPECT_TRUE(tensor::allclose(logits_before, logits_after, 1e-5));
}

TEST(BrnnModel, ArchitectureDescriptionNonEmpty) {
  util::Rng rng(8);
  BrnnModel model(BrnnConfig::compact(32), rng);
  const auto layers = model.architecture();
  EXPECT_GE(layers.size(), 5u);
  EXPECT_NE(model.name().find("BRNN"), std::string::npos);
}

TEST(BrnnModel, StemPoolHalvesResolutionAt64) {
  util::Rng rng(9);
  const BrnnConfig config = BrnnConfig::compact(64);
  EXPECT_TRUE(config.stem_pool);
  BrnnModel model(config, rng);
  model.set_training(true);
  const Tensor logits = model.forward(Tensor({1, 1, 64, 64}));
  EXPECT_EQ(logits.shape(), (tensor::Shape{1, 2}));
}

TEST(BrnnModel, PredictReturnsBinaryLabels) {
  util::Rng rng(10);
  BrnnModel model(BrnnConfig::compact(32), rng);
  model.set_training(false);
  util::Rng data_rng(11);
  const auto labels =
      model.predict(Tensor::uniform({5, 1, 32, 32}, data_rng, 0.0f, 1.0f));
  ASSERT_EQ(labels.size(), 5u);
  for (const int label : labels) {
    EXPECT_TRUE(label == 0 || label == 1);
  }
}

}  // namespace
}  // namespace hotspot::core
