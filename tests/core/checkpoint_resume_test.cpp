// Crash-safety guarantees of the training loop:
//  * resumed training is bit-identical to uninterrupted training,
//  * a simulated crash at any injected failure point during a checkpoint
//    save leaves a fully loadable file (old or new, never torn),
//  * the numeric-health guard contains NaN/Inf batches per policy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "nn/activation_layers.h"
#include "nn/linear_layer.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "util/fault_injection.h"

namespace hotspot::core {
namespace {

using tensor::Tensor;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Same easy task the trainer tests use: label = "more than half the pixels
// set"; learnable by a linear probe in a few epochs.
dataset::HotspotDataset coverage_dataset(std::size_t count, util::Rng& rng) {
  dataset::HotspotDataset data;
  for (std::size_t i = 0; i < count; ++i) {
    Tensor image({8, 8});
    const double density = rng.uniform(0.0, 1.0);
    for (std::int64_t p = 0; p < image.numel(); ++p) {
      image[p] = rng.bernoulli(density) ? 1.0f : 0.0f;
    }
    const int label = image.sum() > 32.0 ? 1 : 0;
    data.add(dataset::ClipSample::from_image(image, label,
                                             dataset::Family::kContacts));
  }
  return data;
}

nn::Sequential linear_probe(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(64, 2, true, rng);
  return net;
}

TrainerConfig full_schedule() {
  TrainerConfig config;
  config.epochs = 4;
  config.finetune_epochs = 2;
  config.learning_rate = 0.05f;
  config.seed = 17;
  return config;
}

std::vector<float> flat_state(nn::Module& net) {
  std::vector<nn::NamedTensor> state;
  net.collect_state("", state);
  std::vector<float> values;
  for (const auto& entry : state) {
    const float* data = entry.value->data();
    values.insert(values.end(), data, data + entry.value->numel());
  }
  return values;
}

void expect_bit_identical_stats(const std::vector<EpochStats>& a,
                                const std::vector<EpochStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].finetune, b[i].finetune);
    // EXPECT_EQ on doubles is exact comparison — bit-identical, not close.
    EXPECT_EQ(a[i].train_loss, b[i].train_loss) << "epoch " << i;
    EXPECT_EQ(a[i].validation_loss, b[i].validation_loss) << "epoch " << i;
    EXPECT_EQ(a[i].learning_rate, b[i].learning_rate) << "epoch " << i;
    EXPECT_EQ(a[i].numeric_events, b[i].numeric_events);
    EXPECT_EQ(a[i].skipped_batches, b[i].skipped_batches);
  }
}

// Trains the first `kill_after` epochs of `full` (same seed, same phases)
// with per-epoch checkpointing, simulating a run killed right after the
// snapshot. Returns the checkpoint path.
std::string train_until_killed(const dataset::HotspotDataset& data,
                               const TrainerConfig& full, int kill_after,
                               const char* file_name) {
  TrainerConfig partial = full;
  if (kill_after <= full.epochs) {
    partial.epochs = kill_after;
    partial.finetune_epochs = 0;
  } else {
    partial.finetune_epochs = kill_after - full.epochs;
  }
  partial.checkpoint_path = temp_path(file_name);
  partial.checkpoint_every = 1;
  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, partial);
  trainer.train(data);
  return partial.checkpoint_path;
}

TEST(CheckpointResume, ResumeIsBitIdenticalMidMainPhase) {
  util::Rng data_rng(4);
  const auto data = coverage_dataset(120, data_rng);
  const TrainerConfig full = full_schedule();

  nn::Sequential straight_net = linear_probe(1);
  Trainer straight(straight_net, full);
  const auto straight_history = straight.train(data);

  const std::string checkpoint =
      train_until_killed(data, full, /*kill_after=*/2, "resume_main.ckpt");

  // Different init seed: every learned value must come from the checkpoint.
  nn::Sequential resumed_net = linear_probe(99);
  Trainer resumed(resumed_net, full);
  const nn::LoadResult loaded = resumed.resume_from(checkpoint);
  ASSERT_TRUE(loaded.ok()) << loaded.message;
  const auto resumed_history = resumed.train(data);

  expect_bit_identical_stats(straight_history, resumed_history);
  EXPECT_EQ(flat_state(straight_net), flat_state(resumed_net));
}

TEST(CheckpointResume, ResumeIsBitIdenticalInsideFinetunePhase) {
  util::Rng data_rng(5);
  const auto data = coverage_dataset(100, data_rng);
  const TrainerConfig full = full_schedule();

  nn::Sequential straight_net = linear_probe(1);
  Trainer straight(straight_net, full);
  const auto straight_history = straight.train(data);

  const std::string checkpoint = train_until_killed(
      data, full, /*kill_after=*/full.epochs + 1, "resume_finetune.ckpt");

  nn::Sequential resumed_net = linear_probe(42);
  Trainer resumed(resumed_net, full);
  ASSERT_TRUE(resumed.resume_from(checkpoint).ok());
  const auto resumed_history = resumed.train(data);

  expect_bit_identical_stats(straight_history, resumed_history);
  EXPECT_EQ(flat_state(straight_net), flat_state(resumed_net));
}

TEST(CheckpointResume, ResumeFromFinishedRunReplaysHistoryWithoutTraining) {
  util::Rng data_rng(6);
  const auto data = coverage_dataset(80, data_rng);
  TrainerConfig config = full_schedule();
  config.checkpoint_path = temp_path("resume_finished.ckpt");
  config.checkpoint_every = 1;

  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, config);
  const auto history = trainer.train(data);
  const auto weights = flat_state(net);

  nn::Sequential other = linear_probe(2);
  Trainer replay(other, config);
  ASSERT_TRUE(replay.resume_from(config.checkpoint_path).ok());
  const auto replayed = replay.train(data);
  expect_bit_identical_stats(history, replayed);
  EXPECT_EQ(weights, flat_state(other));
}

TEST(CheckpointResume, TypedErrorsForBadCheckpoints) {
  util::Rng data_rng(7);
  const auto data = coverage_dataset(60, data_rng);
  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, full_schedule());
  EXPECT_EQ(trainer.resume_from(temp_path("no_such.ckpt")).status,
            nn::IoStatus::kMissing);

  // A model-only checkpoint is not a training snapshot: the blob section is
  // missing, which must surface as a typed mismatch, not a crash.
  const std::string model_only = temp_path("model_only.ckpt");
  ASSERT_TRUE(nn::save_checkpoint(model_only, net).ok());
  EXPECT_EQ(trainer.resume_from(model_only).status,
            nn::IoStatus::kShapeMismatch);
}

TEST(CheckpointResume, ModelOnlyLoadReadsTrainingCheckpoint) {
  // Deployment path: load_checkpoint() must be able to pull just the model
  // tensors out of a full training snapshot (blob section skipped).
  util::Rng data_rng(8);
  const auto data = coverage_dataset(60, data_rng);
  TrainerConfig config = full_schedule();
  config.epochs = 2;
  config.finetune_epochs = 0;
  config.checkpoint_path = temp_path("deployable.ckpt");
  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, config);
  trainer.train(data);

  nn::Sequential fresh = linear_probe(33);
  const nn::LoadResult loaded =
      nn::load_checkpoint(config.checkpoint_path, fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.message;
  EXPECT_EQ(flat_state(net), flat_state(fresh));
}

TEST(CheckpointResume, BestModelSnapshotTracksLowestValidationLoss) {
  util::Rng data_rng(9);
  const auto data = coverage_dataset(120, data_rng);
  TrainerConfig config = full_schedule();
  config.checkpoint_path = temp_path("with_best.ckpt");
  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, config);
  const auto history = trainer.train(data);

  double lowest = std::numeric_limits<double>::infinity();
  for (const auto& stats : history) {
    lowest = std::min(lowest, stats.validation_loss);
  }
  EXPECT_EQ(trainer.best_validation_loss(), lowest);

  nn::Sequential best = linear_probe(2);
  EXPECT_TRUE(
      nn::load_checkpoint(config.checkpoint_path + ".best", best).ok());
}

// --- Fault-injection: atomicity of checkpoint saves ---------------------

std::vector<nn::NamedBlob> one_blob(const char* name, std::size_t size) {
  std::vector<nn::NamedBlob> blobs(1);
  blobs[0].name = name;
  blobs[0].bytes.assign(size, 0x5a);
  return blobs;
}

TEST(CheckpointFaultInjection, EveryWriteInterruptionLeavesOldFileIntact) {
  util::ScopedFaultInjection guard;
  const std::string path = temp_path("fault_atomic.ckpt");

  Tensor old_value({4, 4}, 1.5f);
  Tensor new_value({4, 4}, -2.25f);
  const std::vector<nn::NamedTensor> old_tensors = {{"w", &old_value}};
  const std::vector<nn::NamedTensor> new_tensors = {{"w", &new_value}};
  const auto blobs = one_blob("meta", 256);

  ASSERT_TRUE(nn::save_archive(path, old_tensors, blobs).ok());

  // Discover how many write() calls one save issues, then crash at each.
  util::fault_clear_all();
  ASSERT_TRUE(nn::save_archive(temp_path("fault_probe.ckpt"), new_tensors,
                               blobs)
                  .ok());
  const int write_probes =
      util::fault_probe_count(util::FaultPoint::kCheckpointWrite);
  ASSERT_GT(write_probes, 4);

  for (int countdown = 1; countdown <= write_probes; ++countdown) {
    util::fault_clear_all();
    util::fault_arm(util::FaultPoint::kCheckpointWrite, countdown);
    const nn::SaveResult result = nn::save_archive(path, new_tensors, blobs);
    EXPECT_EQ(result.status, nn::IoStatus::kWriteFailed)
        << "countdown " << countdown;
    EXPECT_EQ(util::fault_trip_count(util::FaultPoint::kCheckpointWrite), 1);

    // The published file must still be the complete old version.
    util::fault_clear_all();
    Tensor reloaded({4, 4});
    const std::vector<nn::NamedTensor> into = {{"w", &reloaded}};
    auto reread = one_blob("meta", 0);
    const nn::LoadResult loaded = nn::load_archive(path, into, &reread);
    ASSERT_TRUE(loaded.ok()) << "countdown " << countdown << ": "
                             << loaded.message;
    for (std::int64_t i = 0; i < reloaded.numel(); ++i) {
      ASSERT_EQ(reloaded[i], 1.5f);
    }
    ASSERT_EQ(reread[0].bytes.size(), 256u);
  }
}

TEST(CheckpointFaultInjection, FlushAndRenameFaultsLeaveOldFileIntact) {
  util::ScopedFaultInjection guard;
  const std::string path = temp_path("fault_flush_rename.ckpt");

  Tensor old_value({8}, 3.0f);
  Tensor new_value({8}, 4.0f);
  const std::vector<nn::NamedTensor> old_tensors = {{"w", &old_value}};
  const std::vector<nn::NamedTensor> new_tensors = {{"w", &new_value}};
  ASSERT_TRUE(nn::save_tensors(path, old_tensors).ok());

  for (const auto point : {util::FaultPoint::kCheckpointFlush,
                           util::FaultPoint::kCheckpointRename}) {
    util::fault_clear_all();
    util::fault_arm(point, 1);
    const nn::SaveResult result = nn::save_tensors(path, new_tensors);
    EXPECT_EQ(result.status, nn::IoStatus::kWriteFailed)
        << util::fault_point_name(point);
    EXPECT_EQ(util::fault_trip_count(point), 1);

    util::fault_clear_all();
    Tensor reloaded({8});
    const std::vector<nn::NamedTensor> into = {{"w", &reloaded}};
    ASSERT_TRUE(nn::load_tensors(path, into).ok());
    for (std::int64_t i = 0; i < reloaded.numel(); ++i) {
      ASSERT_EQ(reloaded[i], 3.0f);
    }
  }

  // With faults cleared the next save publishes the new version atomically.
  util::fault_clear_all();
  ASSERT_TRUE(nn::save_tensors(path, new_tensors).ok());
  Tensor reloaded({8});
  const std::vector<nn::NamedTensor> into = {{"w", &reloaded}};
  ASSERT_TRUE(nn::load_tensors(path, into).ok());
  EXPECT_EQ(reloaded[0], 4.0f);
}

TEST(CheckpointFaultInjection, FirstSaveFailureLeavesNoFileBehind) {
  util::ScopedFaultInjection guard;
  const std::string path = temp_path("fault_first_save.ckpt");
  std::remove(path.c_str());
  Tensor value({4}, 1.0f);
  const std::vector<nn::NamedTensor> tensors = {{"w", &value}};

  util::fault_arm(util::FaultPoint::kCheckpointRename, 1);
  EXPECT_FALSE(nn::save_tensors(path, tensors).ok());
  EXPECT_EQ(util::file_size_of(path), -1);
  EXPECT_EQ(util::file_size_of(path + ".tmp"), -1)
      << "temp file must not litter the checkpoint directory";
}

TEST(CheckpointFaultInjection, TrainingSurvivesCheckpointFaults) {
  // A mid-training checkpoint failure must not kill the run, and the
  // previous snapshot must stay loadable.
  util::ScopedFaultInjection guard;
  util::Rng data_rng(10);
  const auto data = coverage_dataset(80, data_rng);
  TrainerConfig config = full_schedule();
  config.epochs = 3;
  config.finetune_epochs = 0;
  config.checkpoint_path = temp_path("fault_training.ckpt");
  config.checkpoint_every = 1;

  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, config);
  // Fail the entire second snapshot (first probe of its rename).
  util::fault_arm(util::FaultPoint::kCheckpointRename, 2);
  const auto history = trainer.train(data);
  EXPECT_EQ(history.size(), 3u);

  util::fault_clear_all();
  nn::Sequential resumed_net = linear_probe(2);
  Trainer resumed(resumed_net, config);
  EXPECT_TRUE(resumed.resume_from(config.checkpoint_path).ok());
}

// --- Numeric-health guard ----------------------------------------------

// Wraps the default builder; poisons the images of chosen training batches
// (validation and inference pass a null augment rng and stay clean).
BatchBuilder poisoning_builder(std::vector<int> poisoned_calls) {
  auto calls = std::make_shared<int>(0);
  auto poison = std::make_shared<std::vector<int>>(std::move(poisoned_calls));
  return [calls, poison](const dataset::HotspotDataset& data,
                         const std::vector<std::size_t>& indices,
                         util::Rng* augment_rng) {
    tensor::Tensor images = data.batch_images(indices, augment_rng);
    if (augment_rng != nullptr) {
      const int call = (*calls)++;
      for (const int target : *poison) {
        if (call == target) {
          images.fill(std::numeric_limits<float>::quiet_NaN());
        }
      }
    }
    return images;
  };
}

TrainerConfig guard_config(NumericPolicy policy) {
  TrainerConfig config;
  config.epochs = 3;
  config.finetune_epochs = 0;
  config.learning_rate = 0.05f;
  config.validation_fraction = 0.1;
  config.seed = 5;
  config.numeric_policy = policy;
  return config;
}

TEST(NumericHealth, SkipBatchContainsNaNAndReportsIt) {
  util::Rng data_rng(11);
  const auto data = coverage_dataset(100, data_rng);
  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, guard_config(NumericPolicy::kSkipBatch),
                  poisoning_builder({1, 4}));
  const auto history = trainer.train(data);

  int events = 0;
  int skipped = 0;
  for (const auto& stats : history) {
    events += stats.numeric_events;
    skipped += stats.skipped_batches;
    EXPECT_TRUE(std::isfinite(stats.train_loss));
    EXPECT_TRUE(std::isfinite(stats.validation_loss));
  }
  EXPECT_EQ(events, 2);
  EXPECT_EQ(skipped, 2);
  for (const float value : flat_state(net)) {
    ASSERT_TRUE(std::isfinite(value));
  }
}

TEST(NumericHealth, OffPolicyLetsNaNPoisonTheModel) {
  // The pre-guard behaviour, kept as an explicit opt-out: without detection
  // a single NaN batch corrupts the weights for good.
  util::Rng data_rng(11);
  const auto data = coverage_dataset(100, data_rng);
  nn::Sequential net = linear_probe(1);
  Trainer trainer(net, guard_config(NumericPolicy::kOff),
                  poisoning_builder({1}));
  const auto history = trainer.train(data);
  EXPECT_FALSE(std::isfinite(history.back().train_loss));
}

TEST(NumericHealth, HalveLrPolicyCutsTheRate) {
  util::Rng data_rng(12);
  const auto data = coverage_dataset(100, data_rng);
  nn::Sequential net = linear_probe(1);
  TrainerConfig config = guard_config(NumericPolicy::kHalveLr);
  Trainer trainer(net, config, poisoning_builder({2}));
  const auto history = trainer.train(data);
  EXPECT_LE(history.back().learning_rate, config.learning_rate * 0.5f);
  for (const float value : flat_state(net)) {
    ASSERT_TRUE(std::isfinite(value));
  }
}

TEST(NumericHealth, RollbackPolicyRestoresLastCheckpointWeights) {
  util::Rng data_rng(13);
  const auto data = coverage_dataset(100, data_rng);
  nn::Sequential net = linear_probe(1);
  TrainerConfig config = guard_config(NumericPolicy::kRollback);
  config.checkpoint_path = temp_path("rollback.ckpt");
  config.checkpoint_every = 1;
  // Poison a batch in epoch 2, after a checkpoint exists.
  Trainer trainer(net, config, poisoning_builder({4}));
  const auto history = trainer.train(data);

  int events = 0;
  for (const auto& stats : history) {
    events += stats.numeric_events;
    EXPECT_TRUE(std::isfinite(stats.train_loss));
  }
  EXPECT_EQ(events, 1);
  for (const float value : flat_state(net)) {
    ASSERT_TRUE(std::isfinite(value));
  }
}

TEST(NumericHealth, HealthyTrainingIsUnchangedByTheGuard) {
  // With no NaNs the guard must be invisible: identical history and weights
  // with detection on and off.
  util::Rng data_rng(14);
  const auto data = coverage_dataset(100, data_rng);
  auto run = [&](NumericPolicy policy) {
    nn::Sequential net = linear_probe(1);
    Trainer trainer(net, guard_config(policy));
    const auto history = trainer.train(data);
    return std::make_pair(history, flat_state(net));
  };
  const auto with_guard = run(NumericPolicy::kSkipBatch);
  const auto without_guard = run(NumericPolicy::kOff);
  expect_bit_identical_stats(with_guard.first, without_guard.first);
  EXPECT_EQ(with_guard.second, without_guard.second);
}

}  // namespace
}  // namespace hotspot::core
