#include "core/roofline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/cost_model.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/rng.h"

namespace hotspot::core {
namespace {

class RooflineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(true);
    obs::reset_spans();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::reset_spans();
  }
};

// The paper's 12-layer topology at a CI-friendly resolution.
BrnnConfig paper_config_small() {
  BrnnConfig config = BrnnConfig::paper();
  config.image_size = 32;
  return config;
}

tensor::Tensor make_batch(std::int64_t n, std::int64_t size, util::Rng& rng) {
  tensor::Tensor images({n, 1, size, size});
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images.data()[i] = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  }
  return images;
}

TEST_F(RooflineTest, ListsAllPaperLayersWithTimeAndOps) {
  const BrnnConfig config = paper_config_small();
  util::Rng rng(11);
  BrnnModel model(config, rng);
  model.set_training(false);
  model.set_backend(Backend::kPacked);
  model.reset_profile();
  obs::reset_spans();

  constexpr std::int64_t kBatch = 4;
  util::Rng data_rng(5);
  model.forward(make_batch(kBatch, config.image_size, data_rng));

  const obs::SpanReport spans = obs::collect_span_report();
  const RooflineReport report = build_roofline(model, spans);

  // Paper topology: 15 binary convs (stem + 10 main-path + 4 projection
  // shortcuts) plus the fc head; 12 of those rows are main-path weight
  // layers — the paper's "12 layers".
  ASSERT_EQ(report.layers.size(), 16u);
  EXPECT_EQ(report.main_path_layer_count(), 12);
  EXPECT_EQ(report.samples, static_cast<std::uint64_t>(kBatch));

  const NetworkCost cost = network_cost(config);
  for (std::size_t i = 0; i < cost.layers.size(); ++i) {
    const RooflineLayer& layer = report.layers[i];
    EXPECT_EQ(layer.samples, static_cast<std::uint64_t>(kBatch))
        << layer.label;
    EXPECT_GT(layer.seconds, 0.0) << layer.label;
    EXPECT_GT(layer.bitops, 0.0) << layer.label;
    EXPECT_GT(layer.gops_per_second, 0.0) << layer.label;
    EXPECT_DOUBLE_EQ(
        layer.bitops,
        64.0 * static_cast<double>(cost.layers[i].packed_word_ops) * kBatch)
        << layer.label;
    EXPECT_EQ(layer.geometry, cost.layers[i].name);
  }

  // The fc head is the last row: dense float work, no bitops.
  const RooflineLayer& head = report.layers.back();
  EXPECT_EQ(head.label, "brnn.layer.head_fc");
  EXPECT_TRUE(head.main_path);
  EXPECT_EQ(head.bitops, 0.0);
  EXPECT_DOUBLE_EQ(
      head.float_ops,
      static_cast<double>(kBatch) * 2.0 *
          static_cast<double>(config.block_filters.back()) * 2.0);

  // Totals agree with the aggregate span report on the same window: every
  // roofline row's time is the matching span's total time.
  double span_total = 0.0;
  for (const RooflineLayer& layer : report.layers) {
    const obs::SpanStat* stat = spans.find(layer.label);
    ASSERT_NE(stat, nullptr) << layer.label;
    EXPECT_DOUBLE_EQ(layer.seconds, stat->total_seconds) << layer.label;
    span_total += stat->total_seconds;
  }
  EXPECT_NEAR(report.total_seconds, span_total,
              0.05 * span_total + 1e-12);

  double fraction_sum = 0.0;
  for (const RooflineLayer& layer : report.layers) {
    fraction_sum += layer.time_fraction;
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
}

TEST_F(RooflineTest, StableLabelsFollowArchitecture) {
  const BrnnConfig config = paper_config_small();
  util::Rng rng(3);
  BrnnModel model(config, rng);
  const RooflineReport report =
      build_roofline(model, obs::SpanReport{});
  EXPECT_EQ(report.layers.front().label, "brnn.conv.stem");
  EXPECT_NE(report.find("brnn.conv.block1a"), nullptr);
  EXPECT_NE(report.find("brnn.conv.block5b"), nullptr);
  // Stage 1 keeps shape (16 -> 16, stride 1): no projection shortcut.
  EXPECT_EQ(report.find("brnn.conv.block1sc"), nullptr);
  // Stage 2 changes both: shortcut present and flagged off the main path.
  const RooflineLayer* shortcut = report.find("brnn.conv.block2sc");
  ASSERT_NE(shortcut, nullptr);
  EXPECT_FALSE(shortcut->main_path);
}

TEST_F(RooflineTest, UnprofiledModelReportsZeros) {
  const BrnnConfig config = BrnnConfig::compact(32);
  util::Rng rng(1);
  BrnnModel model(config, rng);
  const RooflineReport report =
      build_roofline(model, obs::SpanReport{});
  EXPECT_EQ(report.samples, 0u);
  EXPECT_EQ(report.total_seconds, 0.0);
  for (const RooflineLayer& layer : report.layers) {
    EXPECT_EQ(layer.seconds, 0.0);
    EXPECT_EQ(layer.gops_per_second, 0.0);
  }
}

TEST_F(RooflineTest, ProfilingOnlyCountsWhileTracingEnabled) {
  const BrnnConfig config = BrnnConfig::compact(32);
  util::Rng rng(1);
  BrnnModel model(config, rng);
  model.set_training(false);
  model.reset_profile();
  util::Rng data_rng(2);

  obs::set_trace_enabled(false);
  model.forward(make_batch(2, config.image_size, data_rng));
  EXPECT_EQ(model.binary_convs().front()->profile_samples(), 0u);

  obs::set_trace_enabled(true);
  model.forward(make_batch(3, config.image_size, data_rng));
  EXPECT_EQ(model.binary_convs().front()->profile_samples(), 3u);

  model.reset_profile();
  EXPECT_EQ(model.binary_convs().front()->profile_samples(), 0u);
}

TEST_F(RooflineTest, TableAndJsonRenderEveryLayer) {
  const BrnnConfig config = BrnnConfig::compact(32);
  util::Rng rng(9);
  BrnnModel model(config, rng);
  model.set_training(false);
  model.reset_profile();
  obs::reset_spans();
  util::Rng data_rng(4);
  model.forward(make_batch(2, config.image_size, data_rng));

  const RooflineReport report =
      build_roofline(model, obs::collect_span_report());
  const std::string table = to_table(report);
  for (const RooflineLayer& layer : report.layers) {
    EXPECT_NE(table.find(layer.label), std::string::npos) << layer.label;
  }
  EXPECT_NE(table.find("total"), std::string::npos);

  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::parse_json(to_json(report), doc, error)) << error;
  ASSERT_NE(doc.find("layers"), nullptr);
  EXPECT_EQ(doc.find("layers")->size(), report.layers.size());
  EXPECT_DOUBLE_EQ(doc.find("total_seconds")->as_number(),
                   report.total_seconds);
}

}  // namespace
}  // namespace hotspot::core
