// Whole-model equivalence of the two execution paths: the packed
// XNOR-popcount deployment engine must produce the same logits (hence the
// same decisions) as the float-sim graph it was trained as. This is the
// contract that makes the Fig. 1 / Table 3 speedups a free lunch rather
// than an accuracy trade.
#include <gtest/gtest.h>

#include "core/brnn.h"
#include "tensor/tensor_ops.h"

namespace hotspot::core {
namespace {

using tensor::Tensor;

class PackedEquivalenceTest
    : public ::testing::TestWithParam<bitops::InputScaling> {};

TEST_P(PackedEquivalenceTest, LogitsAgreeOnRandomInputs) {
  util::Rng rng(1);
  BrnnConfig config = BrnnConfig::compact(32);
  config.scaling = GetParam();
  BrnnModel model(config, rng);

  // Run a few training-mode forwards so batch-norm running statistics are
  // non-trivial.
  model.set_training(true);
  for (int i = 0; i < 3; ++i) {
    model.forward(Tensor::uniform({8, 1, 32, 32}, rng, 0.0f, 1.0f));
  }
  model.set_training(false);

  const Tensor x = Tensor::uniform({16, 1, 32, 32}, rng, 0.0f, 1.0f);
  model.set_backend(Backend::kFloatSim);
  const Tensor float_logits = model.forward(x);
  model.set_backend(Backend::kPacked);
  const Tensor packed_logits = model.forward(x);

  EXPECT_TRUE(tensor::allclose(packed_logits, float_logits, 1e-2))
      << "max diff " << tensor::max_abs_diff(packed_logits, float_logits);
}

TEST_P(PackedEquivalenceTest, DecisionsIdentical) {
  util::Rng rng(2);
  BrnnConfig config = BrnnConfig::compact(32);
  config.scaling = GetParam();
  BrnnModel model(config, rng);
  model.set_training(true);
  model.forward(Tensor::uniform({8, 1, 32, 32}, rng, 0.0f, 1.0f));
  model.set_training(false);

  const Tensor x = Tensor::uniform({32, 1, 32, 32}, rng, 0.0f, 1.0f);
  model.set_backend(Backend::kFloatSim);
  const auto float_labels = model.predict(x);
  model.set_backend(Backend::kPacked);
  const auto packed_labels = model.predict(x);
  // Logit agreement to 1e-2 can still flip a knife-edge argmax; allow at
  // most one flip in 32.
  int flips = 0;
  for (std::size_t i = 0; i < float_labels.size(); ++i) {
    flips += float_labels[i] != packed_labels[i] ? 1 : 0;
  }
  EXPECT_LE(flips, 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, PackedEquivalenceTest,
                         ::testing::Values(bitops::InputScaling::kPerChannel,
                                           bitops::InputScaling::kScalar,
                                           bitops::InputScaling::kNone),
                         [](const auto& info) {
                           switch (info.param) {
                             case bitops::InputScaling::kPerChannel:
                               return "PerChannel";
                             case bitops::InputScaling::kScalar:
                               return "Scalar";
                             default:
                               return "None";
                           }
                         });

TEST(PackedEquivalence, BinaryLayoutInputs) {
  // The real use case: strictly binary {0,1} clip images.
  util::Rng rng(3);
  BrnnModel model(BrnnConfig::compact(32), rng);
  model.set_training(true);
  Tensor x({8, 1, 32, 32});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  }
  model.forward(x);
  model.set_training(false);
  model.set_backend(Backend::kFloatSim);
  const Tensor float_logits = model.forward(x);
  model.set_backend(Backend::kPacked);
  const Tensor packed_logits = model.forward(x);
  EXPECT_TRUE(tensor::allclose(packed_logits, float_logits, 1e-2));
}

}  // namespace
}  // namespace hotspot::core
