#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/brnn.h"
#include "dataset/generator.h"
#include "nn/activation_layers.h"
#include "nn/linear_layer.h"
#include "nn/sequential.h"

namespace hotspot::core {
namespace {

using tensor::Tensor;

// A small image dataset where the label is simply "more than half the
// pixels set" — easy enough for a linear model to learn in a few epochs.
dataset::HotspotDataset coverage_dataset(std::size_t count, util::Rng& rng) {
  dataset::HotspotDataset data;
  for (std::size_t i = 0; i < count; ++i) {
    Tensor image({8, 8});
    const double density = rng.uniform(0.0, 1.0);
    for (std::int64_t p = 0; p < image.numel(); ++p) {
      image[p] = rng.bernoulli(density) ? 1.0f : 0.0f;
    }
    const int label = image.sum() > 32.0 ? 1 : 0;
    data.add(dataset::ClipSample::from_image(image, label,
                                             dataset::Family::kContacts));
  }
  return data;
}

nn::Sequential linear_probe(util::Rng& rng) {
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(64, 2, true, rng);
  return net;
}

TEST(Trainer, LossDecreasesOnLearnableTask) {
  util::Rng rng(1);
  auto data = coverage_dataset(200, rng);
  auto net = linear_probe(rng);
  TrainerConfig config;
  config.epochs = 6;
  config.finetune_epochs = 0;
  config.learning_rate = 0.05f;
  config.augment = false;
  Trainer trainer(net, config);
  const auto history = trainer.train(data);
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss * 0.7);
}

TEST(Trainer, FinetunePhaseFlagged) {
  util::Rng rng(2);
  auto data = coverage_dataset(60, rng);
  auto net = linear_probe(rng);
  TrainerConfig config;
  config.epochs = 2;
  config.finetune_epochs = 3;
  Trainer trainer(net, config);
  const auto history = trainer.train(data);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_FALSE(history[1].finetune);
  EXPECT_TRUE(history[2].finetune);
  EXPECT_TRUE(history[4].finetune);
}

TEST(Trainer, ModelLeftInEvalMode) {
  util::Rng rng(3);
  auto data = coverage_dataset(40, rng);
  auto net = linear_probe(rng);
  TrainerConfig config;
  config.epochs = 1;
  config.finetune_epochs = 0;
  Trainer trainer(net, config);
  trainer.train(data);
  EXPECT_FALSE(net.training());
}

TEST(Trainer, DeterministicAtFixedSeed) {
  util::Rng data_rng(4);
  auto data = coverage_dataset(80, data_rng);
  auto run = [&](std::uint64_t seed) {
    util::Rng rng(11);
    auto net = linear_probe(rng);
    TrainerConfig config;
    config.epochs = 3;
    config.finetune_epochs = 0;
    config.seed = seed;
    Trainer trainer(net, config);
    return trainer.train(data).back().train_loss;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Trainer, OversampleGrowsEpochWorkOnImbalancedData) {
  // With oversampling, hotspots appear multiple times per epoch; check that
  // training still works and the model leans more positive than without.
  util::Rng rng(5);
  dataset::HotspotDataset data;
  for (int i = 0; i < 60; ++i) {
    Tensor image({8, 8}, i < 6 ? 1.0f : 0.0f);
    data.add(dataset::ClipSample::from_image(image, i < 6 ? 1 : 0,
                                             dataset::Family::kComb));
  }
  auto net = linear_probe(rng);
  TrainerConfig config;
  config.epochs = 4;
  config.finetune_epochs = 0;
  config.hotspot_oversample = 5;
  config.validation_fraction = 0.0;
  config.augment = false;
  Trainer trainer(net, config);
  trainer.train(data);
  const auto predictions = predict_labels(net, data, 16);
  int caught = 0;
  for (int i = 0; i < 6; ++i) {
    caught += predictions[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(caught, 6);  // trivially separable, must catch all hotspots
}

TEST(Trainer, BiasedFinetuneIncreasesHotspotPredictions) {
  // Property of Sec. 3.4.3: finetuning with smoothed non-hotspot labels can
  // only push logits toward the hotspot class. Compare prediction counts.
  util::Rng data_rng(6);
  auto data = coverage_dataset(150, data_rng);
  auto count_positives = [&](int finetune_epochs, float eps) {
    util::Rng rng(7);
    auto net = linear_probe(rng);
    TrainerConfig config;
    config.epochs = 4;
    config.finetune_epochs = finetune_epochs;
    config.bias_epsilon = eps;
    config.augment = false;
    config.seed = 3;
    Trainer trainer(net, config);
    trainer.train(data);
    int positives = 0;
    for (const int p : predict_labels(net, data, 32)) {
      positives += p;
    }
    return positives;
  };
  EXPECT_GE(count_positives(3, 0.3f), count_positives(0, 0.0f));
}

TEST(Trainer, PredictLabelsCoversWholeDataset) {
  util::Rng rng(8);
  auto data = coverage_dataset(33, rng);  // not a batch multiple
  auto net = linear_probe(rng);
  EXPECT_EQ(predict_labels(net, data, 8).size(), 33u);
}

TEST(TrainerDeath, EmptyDatasetRejected) {
  util::Rng rng(9);
  auto net = linear_probe(rng);
  TrainerConfig config;
  Trainer trainer(net, config);
  dataset::HotspotDataset empty;
  EXPECT_DEATH(trainer.train(empty), "HOTSPOT_CHECK");
}

}  // namespace
}  // namespace hotspot::core
