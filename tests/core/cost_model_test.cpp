#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace hotspot::core {
namespace {

TEST(CostModel, SingleLayerFloatMacs) {
  // 16->32 3x3 stride 1 pad 1 on 8x8: 64 positions * 32 * 16*9 MACs.
  const LayerCost cost = binary_conv_cost(
      16, 32, 3, 1, 1, 8, 8, bitops::InputScaling::kPerChannel);
  EXPECT_EQ(cost.output_positions, 64);
  EXPECT_EQ(cost.float_macs, 64 * 32 * 16 * 9);
  EXPECT_EQ(cost.float_weight_bytes, 32 * 16 * 9 * 4);
}

TEST(CostModel, PerChannelWordOps) {
  const LayerCost cost = binary_conv_cost(
      16, 32, 3, 1, 1, 8, 8, bitops::InputScaling::kPerChannel);
  // One word per (position, filter, channel).
  EXPECT_EQ(cost.packed_word_ops, 64 * 32 * 16);
  EXPECT_EQ(cost.packed_weight_bytes, 32 * 16 * 8);
}

TEST(CostModel, DenseWordOpsForScalarMode) {
  const LayerCost cost = binary_conv_cost(
      16, 32, 3, 1, 1, 8, 8, bitops::InputScaling::kScalar);
  // patch = 144 bits -> 3 words per (position, filter).
  EXPECT_EQ(cost.packed_word_ops, 64 * 32 * 3);
}

TEST(CostModel, StrideShrinksPositions) {
  const LayerCost s1 =
      binary_conv_cost(8, 8, 3, 1, 1, 16, 16, bitops::InputScaling::kNone);
  const LayerCost s2 =
      binary_conv_cost(8, 8, 3, 2, 1, 16, 16, bitops::InputScaling::kNone);
  EXPECT_EQ(s1.output_positions, 256);
  EXPECT_EQ(s2.output_positions, 64);
}

TEST(CostModel, NetworkAggregatesAllConvs) {
  const BrnnConfig config = BrnnConfig::compact(32);
  const NetworkCost cost = network_cost(config);
  // stem + 2 per block + projection shortcuts for stages 2 and 3.
  EXPECT_EQ(cost.layers.size(), 1u + 2u * 3u + 2u);
  std::int64_t macs = 0;
  for (const auto& layer : cost.layers) {
    macs += layer.float_macs;
  }
  EXPECT_EQ(macs, cost.float_macs);
}

TEST(CostModel, StorageReductionIsLargeForWideLayers) {
  // Dense packing stores kernels at ~1 bit/weight -> close to 32x for
  // layers whose patch size is a multiple of 64.
  BrnnConfig config = BrnnConfig::paper();
  config.scaling = bitops::InputScaling::kScalar;
  const NetworkCost cost = network_cost(config);
  EXPECT_GT(cost.storage_reduction(), 20.0);
  EXPECT_LE(cost.storage_reduction(), 32.0);
}

TEST(CostModel, ScalarModeArithmeticReductionGrowsWithWidth) {
  // The Fig. 1 trend: wider layers amortize the per-position overheads and
  // approach the 64-MACs-per-word limit.
  auto reduction = [](std::int64_t channels) {
    const LayerCost cost = binary_conv_cost(
        channels, channels, 3, 1, 1, 16, 16, bitops::InputScaling::kScalar);
    return static_cast<double>(cost.float_macs) /
           static_cast<double>(cost.packed_word_ops + cost.packed_float_ops);
  };
  EXPECT_GT(reduction(64), reduction(16));
  EXPECT_GT(reduction(256), 8.0);  // the paper's 8x is reachable
}

TEST(CostModel, PaperNetworkDominatedByBinaryOps) {
  const NetworkCost cost = network_cost(BrnnConfig::paper());
  EXPECT_GT(cost.float_macs, 0);
  EXPECT_GT(cost.arithmetic_reduction(), 1.0);
}

}  // namespace
}  // namespace hotspot::core
