#include "optim/lr_scheduler.h"

#include <gtest/gtest.h>

#include "optim/sgd.h"

namespace hotspot::optim {
namespace {

nn::Parameter make_param() {
  return nn::Parameter("p", tensor::Tensor({2}));
}

TEST(PlateauDecay, DecaysAfterPatienceExceeded) {
  auto param = make_param();
  Sgd optimizer({&param}, 1.0f);
  PlateauDecay scheduler(optimizer, 0.5f, /*patience=*/2);
  EXPECT_FALSE(scheduler.observe(1.0));   // new best
  EXPECT_FALSE(scheduler.observe(1.0));   // stall 1
  EXPECT_FALSE(scheduler.observe(1.0));   // stall 2 == patience
  EXPECT_TRUE(scheduler.observe(1.0));    // stall 3 > patience -> decay
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.5f);
}

TEST(PlateauDecay, ImprovementResetsStall) {
  auto param = make_param();
  Sgd optimizer({&param}, 1.0f);
  PlateauDecay scheduler(optimizer, 0.5f, 1);
  scheduler.observe(1.0);
  scheduler.observe(1.0);  // stall 1
  scheduler.observe(0.5);  // improvement resets
  EXPECT_EQ(scheduler.epochs_since_improvement(), 0);
  scheduler.observe(0.5);  // stall 1 again
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 1.0f);  // no decay yet
}

TEST(PlateauDecay, RespectsMinimumLr) {
  auto param = make_param();
  Sgd optimizer({&param}, 1.0f);
  PlateauDecay scheduler(optimizer, 0.1f, 0, 1e-4, /*min_lr=*/0.05f);
  scheduler.observe(1.0);
  for (int i = 0; i < 10; ++i) {
    scheduler.observe(1.0);
  }
  EXPECT_GE(optimizer.learning_rate(), 0.05f);
}

TEST(PlateauDecay, MinDeltaFiltersNoise) {
  auto param = make_param();
  Sgd optimizer({&param}, 1.0f);
  PlateauDecay scheduler(optimizer, 0.5f, 0, /*min_delta=*/0.1);
  scheduler.observe(1.0);
  // 0.95 improves by less than min_delta: counts as a stall -> decay.
  EXPECT_TRUE(scheduler.observe(0.95));
}

TEST(StepDecay, GeometricSchedule) {
  auto param = make_param();
  Sgd optimizer({&param}, 1.0f);
  StepDecay scheduler(optimizer, /*step_epochs=*/2, /*gamma=*/0.1f);
  scheduler.observe_epoch(0);
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 1.0f);
  scheduler.observe_epoch(2);
  EXPECT_NEAR(optimizer.learning_rate(), 0.1f, 1e-6);
  scheduler.observe_epoch(5);
  EXPECT_NEAR(optimizer.learning_rate(), 0.01f, 1e-6);
}

}  // namespace
}  // namespace hotspot::optim
