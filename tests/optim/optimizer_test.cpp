#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear_layer.h"
#include "optim/adam.h"
#include "optim/nadam.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace hotspot::optim {
namespace {

using nn::Parameter;
using tensor::Tensor;

// Quadratic bowl: loss = 0.5 * ||theta - target||^2, gradient = theta -
// target. Every optimizer must drive theta to the target.
class QuadraticProblem {
 public:
  explicit QuadraticProblem(std::vector<float> target)
      : target_(std::move(target)),
        param_("theta", Tensor({static_cast<std::int64_t>(target_.size())})) {}

  void fill_gradient() {
    for (std::size_t i = 0; i < target_.size(); ++i) {
      param_.grad[static_cast<std::int64_t>(i)] =
          param_.value[static_cast<std::int64_t>(i)] - target_[i];
    }
  }

  double distance() const {
    double total = 0.0;
    for (std::size_t i = 0; i < target_.size(); ++i) {
      const double d = param_.value[static_cast<std::int64_t>(i)] - target_[i];
      total += d * d;
    }
    return std::sqrt(total);
  }

  Parameter& param() { return param_; }

 private:
  std::vector<float> target_;
  Parameter param_;
};

template <typename Opt, typename... Args>
double run_to_convergence(int steps, float lr, Args&&... args) {
  QuadraticProblem problem({1.0f, -2.0f, 3.0f});
  Opt optimizer({&problem.param()}, lr, std::forward<Args>(args)...);
  for (int i = 0; i < steps; ++i) {
    optimizer.zero_grad();
    problem.fill_gradient();
    optimizer.step();
  }
  return problem.distance();
}

TEST(Sgd, ConvergesOnQuadratic) {
  EXPECT_LT(run_to_convergence<Sgd>(200, 0.1f), 1e-3);
}

TEST(Sgd, MomentumConverges) {
  EXPECT_LT(run_to_convergence<Sgd>(200, 0.05f, 0.9f), 1e-3);
}

TEST(Sgd, NesterovConverges) {
  EXPECT_LT(run_to_convergence<Sgd>(200, 0.05f, 0.9f, true), 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  EXPECT_LT(run_to_convergence<Adam>(800, 0.05f), 1e-2);
}

TEST(NAdam, ConvergesOnQuadratic) {
  EXPECT_LT(run_to_convergence<NAdam>(800, 0.05f), 1e-2);
}

TEST(NAdam, FasterThanAdamEarly) {
  // Nesterov look-ahead accelerates the first phase on a smooth bowl; check
  // NAdam is at least not behind after few steps.
  const double adam = run_to_convergence<Adam>(50, 0.05f);
  const double nadam = run_to_convergence<NAdam>(50, 0.05f);
  EXPECT_LE(nadam, adam * 1.2);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  QuadraticProblem problem({0.0f, 0.0f, 0.0f});
  problem.param().value.fill(1.0f);
  Sgd optimizer({&problem.param()}, 0.1f, 0.0f, false, /*weight_decay=*/0.5f);
  // Zero task gradient: only decay acts.
  optimizer.step();
  EXPECT_LT(problem.param().value[0], 1.0f);
}

TEST(Optimizer, StepCountIncrements) {
  QuadraticProblem problem({1.0f});
  Sgd optimizer({&problem.param()}, 0.1f);
  EXPECT_EQ(optimizer.step_count(), 0);
  optimizer.step();
  optimizer.step();
  EXPECT_EQ(optimizer.step_count(), 2);
}

TEST(Optimizer, ClipGradNormScalesDown) {
  QuadraticProblem problem({0.0f});
  problem.param().grad[0] = 30.0f;
  Sgd optimizer({&problem.param()}, 0.1f);
  optimizer.clip_grad_norm(3.0);
  EXPECT_NEAR(problem.param().grad[0], 3.0f, 1e-4);
}

TEST(Optimizer, ClipGradNormNoopUnderLimit) {
  QuadraticProblem problem({0.0f});
  problem.param().grad[0] = 1.0f;
  Sgd optimizer({&problem.param()}, 0.1f);
  optimizer.clip_grad_norm(3.0);
  EXPECT_FLOAT_EQ(problem.param().grad[0], 1.0f);
}

TEST(Optimizer, LearningRateMutable) {
  QuadraticProblem problem({1.0f});
  Sgd optimizer({&problem.param()}, 0.1f);
  optimizer.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.01f);
}

}  // namespace
}  // namespace hotspot::optim
