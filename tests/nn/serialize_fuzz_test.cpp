// Fuzz-style robustness coverage for checkpoint loading: truncations at
// every 64-byte boundary, single-bit flips across the file, and random
// garbage must all come back as typed errors — never an abort, a crash, or
// an allocation driven by an unvalidated on-disk length. Run under
// -DHOTSPOT_SANITIZE=address to turn any latent OOB/overallocation into a
// hard failure.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "nn/batchnorm_layer.h"
#include "nn/linear_layer.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace hotspot::nn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Sequential make_net(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential net;
  net.emplace<Linear>(16, 8, true, rng);
  net.emplace<BatchNorm2d>(8);
  net.emplace<Linear>(8, 2, true, rng);
  return net;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const char* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(data, static_cast<std::streamsize>(size));
}

// A reference checkpoint every case mutilates a copy of.
class SerializeFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_path_ = temp_path("fuzz_reference.bin");
    Sequential net = make_net(1);
    ASSERT_TRUE(save_checkpoint(reference_path_, net).ok());
    reference_bytes_ = read_file(reference_path_);
    ASSERT_GT(reference_bytes_.size(), 64u);
  }

  std::string reference_path_;
  std::vector<char> reference_bytes_;
};

TEST_F(SerializeFuzz, IntactFileLoads) {
  Sequential net = make_net(2);
  const LoadResult result = load_checkpoint(reference_path_, net);
  EXPECT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.status, IoStatus::kOk);
}

TEST_F(SerializeFuzz, MissingFileIsTyped) {
  Sequential net = make_net(2);
  const LoadResult result =
      load_checkpoint(temp_path("fuzz_never_written.bin"), net);
  EXPECT_EQ(result.status, IoStatus::kMissing);
}

TEST_F(SerializeFuzz, TruncationAtEvery64ByteBoundaryIsTyped) {
  const std::string path = temp_path("fuzz_truncated.bin");
  for (std::size_t keep = 0; keep < reference_bytes_.size(); keep += 64) {
    write_file(path, reference_bytes_.data(), keep);
    Sequential net = make_net(3);
    const LoadResult result = load_checkpoint(path, net);
    ASSERT_FALSE(result.ok()) << "accepted a " << keep << "-byte prefix";
    // Cutting the file can only read as truncation or as damage to a field
    // the parser validates; it must never be mistaken for success.
    EXPECT_TRUE(result.status == IoStatus::kTruncated ||
                result.status == IoStatus::kCorrupt ||
                result.status == IoStatus::kBadFormat ||
                result.status == IoStatus::kShapeMismatch)
        << "prefix " << keep << ": " << io_status_name(result.status);
    EXPECT_FALSE(result.message.empty());
  }
  // Dropping just the CRC footer must also fail: the payload parses, but
  // the integrity proof is gone.
  write_file(path, reference_bytes_.data(), reference_bytes_.size() - 4);
  Sequential net = make_net(3);
  EXPECT_EQ(load_checkpoint(path, net).status, IoStatus::kTruncated);
}

TEST_F(SerializeFuzz, SingleBitFlipsAreAlwaysRejected) {
  const std::string path = temp_path("fuzz_bitflip.bin");
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto byte = rng.uniform_int(
        0, static_cast<std::int64_t>(reference_bytes_.size()) - 1);
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    write_file(path, reference_bytes_.data(), reference_bytes_.size());
    ASSERT_TRUE(util::corrupt_flip_bit(path, byte, bit));
    Sequential net = make_net(4);
    const LoadResult result = load_checkpoint(path, net);
    // CRC32 detects every single-bit error, so even a flip that survives
    // all structural validation cannot load as success.
    ASSERT_FALSE(result.ok())
        << "bit " << bit << " of byte " << byte << " flipped unnoticed";
    EXPECT_NE(result.status, IoStatus::kOk);
    EXPECT_NE(result.status, IoStatus::kMissing);
  }
}

TEST_F(SerializeFuzz, SixteenByteGarbageFailsCleanly) {
  // Regression for the unbounded `text.resize(length)` in the v1 loader: a
  // tiny garbage file whose bytes decode as a huge length must be rejected
  // by bounds validation before any allocation happens.
  const std::string path = temp_path("fuzz_garbage16.bin");
  const char garbage[16] = {'\x54', '\x50', '\x53', '\x48',  // bad magic
                            '\xff', '\xff', '\xff', '\xff', '\xff', '\xff',
                            '\xff', '\xff', '\xff', '\xff', '\xff', '\xff'};
  write_file(path, garbage, sizeof(garbage));
  Sequential net = make_net(5);
  const LoadResult result = load_checkpoint(path, net);
  EXPECT_EQ(result.status, IoStatus::kTruncated) << result.message;
}

TEST_F(SerializeFuzz, RandomGarbageFilesAreTyped) {
  const std::string path = temp_path("fuzz_garbage.bin");
  util::Rng rng(7);
  const std::size_t sizes[] = {0, 3, 19, 20, 64, 1024, 8192};
  for (const std::size_t size : sizes) {
    std::vector<char> garbage(size);
    for (char& value : garbage) {
      value = static_cast<char>(rng.uniform_int(0, 255));
    }
    write_file(path, garbage.data(), garbage.size());
    Sequential net = make_net(6);
    const LoadResult result = load_checkpoint(path, net);
    ASSERT_FALSE(result.ok()) << size << "-byte garbage accepted";
    EXPECT_NE(result.status, IoStatus::kMissing);
  }
}

TEST_F(SerializeFuzz, GarbageWithValidHeaderIsTyped) {
  // Correct magic/version but hostile counts and lengths after it: the caps
  // and remaining-bytes checks must reject before trusting any field.
  const std::string path = temp_path("fuzz_hostile_header.bin");
  std::vector<char> hostile(reference_bytes_.begin(),
                            reference_bytes_.begin() + 8);
  for (int i = 0; i < 64; ++i) {
    hostile.push_back('\xff');
  }
  write_file(path, hostile.data(), hostile.size());
  Sequential net = make_net(7);
  const LoadResult result = load_checkpoint(path, net);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status == IoStatus::kCorrupt ||
              result.status == IoStatus::kShapeMismatch)
      << io_status_name(result.status);
}

TEST_F(SerializeFuzz, TrailingBytesAreCorrupt) {
  const std::string path = temp_path("fuzz_trailing.bin");
  std::vector<char> padded = reference_bytes_;
  padded.insert(padded.end(), 128, '\0');
  write_file(path, padded.data(), padded.size());
  Sequential net = make_net(8);
  EXPECT_EQ(load_checkpoint(path, net).status, IoStatus::kCorrupt);
}

TEST_F(SerializeFuzz, PreCrcFormatVersionRejected) {
  const std::string path = temp_path("fuzz_v1.bin");
  std::vector<char> old_version = reference_bytes_;
  old_version[4] = '\x01';  // version field
  write_file(path, old_version.data(), old_version.size());
  Sequential net = make_net(9);
  EXPECT_EQ(load_checkpoint(path, net).status, IoStatus::kBadFormat);
}

}  // namespace
}  // namespace hotspot::nn
