#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nn/activation_layers.h"
#include "nn/batchnorm_layer.h"
#include "nn/conv_layer.h"
#include "nn/linear_layer.h"
#include "nn/pool_layers.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace hotspot::nn {
namespace {

using tensor::Tensor;

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor out = relu.forward(Tensor({3}, {-1.0f, 0.0f, 2.0f}));
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(ReLULayer, BackwardMasksByInput) {
  ReLU relu;
  relu.forward(Tensor({3}, {-1.0f, 0.5f, 2.0f}));
  const Tensor gx = relu.backward(Tensor({3}, {1.0f, 1.0f, 1.0f}));
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
}

TEST(SignSTELayer, ForwardBinarizes) {
  SignSTE layer;
  const Tensor out = layer.forward(Tensor({3}, {-0.1f, 0.0f, 3.0f}));
  EXPECT_FLOAT_EQ(out[0], -1.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(SignSTELayer, BackwardSaturates) {
  // Eq. 10-11: gradient passes only where |x| < 1.
  SignSTE layer;
  layer.forward(Tensor({4}, {-2.0f, -0.5f, 0.5f, 1.5f}));
  const Tensor gx = layer.backward(Tensor({4}, {1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(FlattenLayer, RoundTripShape) {
  Flatten flatten;
  util::Rng rng(1);
  const Tensor x = Tensor::normal({2, 3, 4, 4}, rng, 0.0f, 1.0f);
  const Tensor flat = flatten.forward(x);
  EXPECT_EQ(flat.shape(), (tensor::Shape{2, 48}));
  const Tensor back = flatten.backward(flat);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(DropoutLayer, IdentityInEvalMode) {
  util::Rng rng(2);
  Dropout dropout(0.5f, rng);
  dropout.set_training(false);
  const Tensor x = Tensor::normal({100}, rng, 0.0f, 1.0f);
  EXPECT_TRUE(tensor::allclose(dropout.forward(x), x, 0.0));
}

TEST(DropoutLayer, InvertedScalingKeepsExpectation) {
  util::Rng rng(3);
  Dropout dropout(0.5f, rng);
  dropout.set_training(true);
  const Tensor x = Tensor::ones({20000});
  const Tensor out = dropout.forward(x);
  EXPECT_NEAR(out.mean(), 1.0, 0.05);
  // Surviving values are scaled by 1/keep.
  bool saw_two = false;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    saw_two |= out[i] == 2.0f;
  }
  EXPECT_TRUE(saw_two);
}

TEST(BatchNormLayer, NormalizesTrainingBatch) {
  util::Rng rng(4);
  BatchNorm2d bn(3);
  const Tensor x = Tensor::normal({4, 3, 5, 5}, rng, 3.0f, 2.0f);
  const Tensor out = bn.forward(x);
  const Tensor mean = tensor::channel_mean(out);
  const Tensor var = tensor::channel_variance(out, mean);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(mean[c], 0.0f, 1e-4);
    EXPECT_NEAR(var[c], 1.0f, 1e-2);
  }
}

TEST(BatchNormLayer, EvalUsesRunningStatistics) {
  util::Rng rng(5);
  BatchNorm2d bn(2, /*momentum=*/0.5f);
  // Feed several training batches so the running stats adapt.
  for (int step = 0; step < 20; ++step) {
    bn.forward(Tensor::normal({8, 2, 4, 4}, rng, 10.0f, 1.0f));
  }
  bn.set_training(false);
  const Tensor out = bn.forward(Tensor({1, 2, 1, 1}, {10.0f, 10.0f}));
  // 10 is the running mean, so the normalized output is ~0.
  EXPECT_NEAR(out[0], 0.0f, 0.2f);
  EXPECT_NEAR(out[1], 0.0f, 0.2f);
}

TEST(BatchNormLayer, GammaBetaApplied) {
  BatchNorm2d bn(1);
  bn.gamma().value[0] = 3.0f;
  bn.beta().value[0] = 1.0f;
  const Tensor x({2, 1, 1, 1}, {-1.0f, 1.0f});
  const Tensor out = bn.forward(x);
  // Normalized inputs are -1 and +1; out = 3*xhat + 1.
  EXPECT_NEAR(out[0], -2.0f, 1e-2);
  EXPECT_NEAR(out[1], 4.0f, 1e-2);
}

TEST(BatchNormLayer, ZeroVarianceChannelStaysFinite) {
  BatchNorm2d bn(2);
  bn.mutable_running_mean() = Tensor({2}, {0.5f, -1.0f});
  bn.mutable_running_var() = Tensor({2}, {0.0f, 1.0f});  // dead channel 0
  bn.set_training(false);
  const Tensor out = bn.forward(Tensor({1, 2, 2, 2}, 0.5f));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i])) << "index " << i;
  }
  // Channel 0 input equals the running mean: xhat is exactly 0, out = beta.
  EXPECT_EQ(out[0], bn.beta().value[0]);
}

TEST(BatchNormLayer, NegativeRunningVarianceClampsToEpsilonFloor) {
  // EMA updates and deserialized checkpoints can drift a tiny variance
  // below zero; sqrt of a negative would poison every activation with NaN.
  BatchNorm2d bn(1);
  bn.mutable_running_mean() = Tensor({1}, {0.0f});
  bn.mutable_running_var() = Tensor({1}, {-1e-6f});
  bn.set_training(false);
  const Tensor out = bn.forward(Tensor({1, 1, 1, 2}, {1.0f, -1.0f}));
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_TRUE(std::isfinite(out[1]));
  // Clamped to var = 0: inv_std = 1/sqrt(eps), the zero-variance factor.
  const float expected = 1.0f / std::sqrt(bn.epsilon());
  EXPECT_EQ(out[0], expected);
  EXPECT_EQ(bn.inference_inv_std()[0], expected);
}

TEST(BatchNormLayer, ZeroGammaChannelBinarizesDeterministically) {
  // gamma == 0 collapses the channel to the constant beta; the downstream
  // sign() must see a well-defined bit, not NaN.
  BatchNorm2d bn(1);
  bn.gamma().value[0] = 0.0f;
  bn.beta().value[0] = -0.25f;
  bn.set_training(false);
  const Tensor out = bn.forward(Tensor({1, 1, 1, 3}, {-7.0f, 0.0f, 512.0f}));
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i], -0.25f);
    EXPECT_FALSE(out[i] >= 0.0f);  // the sign rule's bit, deterministically 0
  }
}

TEST(BatchNormLayer, InferenceInvStdMatchesForwardFactors) {
  util::Rng rng(21);
  BatchNorm2d bn(3);
  for (int step = 0; step < 4; ++step) {
    bn.forward(Tensor::normal({4, 3, 4, 4}, rng, 1.0f, 2.0f));
  }
  bn.set_training(false);
  const Tensor inv_std = bn.inference_inv_std();
  ASSERT_EQ(inv_std.shape(), (tensor::Shape{3}));
  for (int c = 0; c < 3; ++c) {
    const float expected =
        1.0f / std::sqrt(std::max(bn.running_var()[c], 0.0f) + bn.epsilon());
    EXPECT_EQ(inv_std[c], expected);
  }
}

TEST(LinearLayer, KnownAffineMap) {
  util::Rng rng(6);
  Linear linear(2, 2, true, rng);
  linear.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  linear.bias().value = Tensor({2}, {10, 20});
  const Tensor out = linear.forward(Tensor({1, 2}, {1, 1}));
  EXPECT_FLOAT_EQ(out.at2(0, 0), 13.0f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 27.0f);
}

TEST(Conv2dLayer, ShapeAndParameterCount) {
  util::Rng rng(7);
  Conv2d conv(3, 8, 3, 1, 1, true, rng);
  EXPECT_EQ(conv.parameter_count(), 8 * 3 * 3 * 3 + 8);
  const Tensor out = conv.forward(Tensor({2, 3, 6, 6}));
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 8, 6, 6}));
}

TEST(Sequential, ComposesForwardAndBackward) {
  util::Rng rng(8);
  Sequential net;
  net.emplace<Linear>(4, 3, true, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(3, 2, true, rng);
  EXPECT_EQ(net.size(), 3u);
  const Tensor x = Tensor::normal({5, 4}, rng, 0.0f, 1.0f);
  const Tensor out = net.forward(x);
  EXPECT_EQ(out.shape(), (tensor::Shape{5, 2}));
  const Tensor gx = net.backward(Tensor::ones(out.shape()));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Sequential, TrainingFlagPropagates) {
  util::Rng rng(9);
  Sequential net;
  net.emplace<BatchNorm2d>(2);
  net.set_training(false);
  EXPECT_FALSE(net.at(0).training());
  net.set_training(true);
  EXPECT_TRUE(net.at(0).training());
}

TEST(Residual, IdentityShortcutAddsInput) {
  auto main_path = std::make_unique<Sequential>();  // empty = identity
  ResidualBlock block(std::move(main_path), nullptr);
  const Tensor x({1, 1, 1, 2}, {1.0f, 2.0f});
  const Tensor out = block.forward(x);
  EXPECT_FLOAT_EQ(out[0], 2.0f);  // x + x
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(Residual, BackwardSumsBothPaths) {
  auto main_path = std::make_unique<Sequential>();
  ResidualBlock block(std::move(main_path), nullptr);
  block.forward(Tensor({1, 1, 1, 1}, {1.0f}));
  const Tensor gx = block.backward(Tensor({1, 1, 1, 1}, {1.0f}));
  EXPECT_FLOAT_EQ(gx[0], 2.0f);  // gradient through main + identity
}

TEST(Residual, ProjectionShortcutChangesShape) {
  util::Rng rng(10);
  auto main_path = std::make_unique<Sequential>();
  main_path->emplace<Conv2d>(2, 4, 3, 2, 1, false, rng);
  auto shortcut = std::make_unique<Conv2d>(2, 4, 1, 2, 0, false, rng);
  ResidualBlock block(std::move(main_path), std::move(shortcut));
  EXPECT_TRUE(block.has_projection());
  const Tensor out = block.forward(Tensor({1, 2, 8, 8}));
  EXPECT_EQ(out.shape(), (tensor::Shape{1, 4, 4, 4}));
}

TEST(Module, ParameterCountAggregates) {
  util::Rng rng(11);
  Sequential net;
  net.emplace<Linear>(10, 5, true, rng);   // 55
  net.emplace<Linear>(5, 2, false, rng);   // 10
  EXPECT_EQ(net.parameter_count(), 65);
}

TEST(Module, ZeroGradClearsAccumulation) {
  util::Rng rng(12);
  Linear linear(2, 2, true, rng);
  linear.forward(Tensor({1, 2}, {1, 1}));
  linear.backward(Tensor({1, 2}, {1, 1}));
  EXPECT_GT(tensor::l1_norm(linear.weight().grad), 0.0);
  linear.zero_grad();
  EXPECT_EQ(tensor::l1_norm(linear.weight().grad), 0.0);
}

}  // namespace
}  // namespace hotspot::nn
