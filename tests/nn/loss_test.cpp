#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.h"

namespace hotspot::nn {
namespace {

TEST(MakeTargets, HardLabels) {
  const tensor::Tensor targets = make_targets({0, 1, 0}, 0.0f);
  EXPECT_EQ(targets.shape(), (tensor::Shape{3, 2}));
  EXPECT_FLOAT_EQ(targets.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(targets.at2(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(targets.at2(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(targets.at2(1, 1), 1.0f);
}

TEST(MakeTargets, BiasedNonHotspotOnly) {
  // Sec. 3.4.3: non-hotspot -> [1-eps, eps]; hotspot stays [0, 1].
  const tensor::Tensor targets = make_targets({0, 1}, 0.2f);
  EXPECT_FLOAT_EQ(targets.at2(0, 0), 0.8f);
  EXPECT_FLOAT_EQ(targets.at2(0, 1), 0.2f);
  EXPECT_FLOAT_EQ(targets.at2(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(targets.at2(1, 1), 1.0f);
}

TEST(MakeTargets, RejectsBadInput) {
  EXPECT_DEATH(make_targets({2}, 0.0f), "HOTSPOT_CHECK");
  EXPECT_DEATH(make_targets({0}, 0.6f), "HOTSPOT_CHECK");
}

TEST(SoftmaxCrossEntropy, LossAndGradientShape) {
  SoftmaxCrossEntropy loss;
  const tensor::Tensor logits({2, 2}, {2.0f, -2.0f, -2.0f, 2.0f});
  const tensor::Tensor targets = make_targets({0, 1}, 0.0f);
  const double value = loss.forward(logits, targets);
  // Confident-correct predictions: small loss.
  EXPECT_LT(value, 0.1);
  EXPECT_EQ(loss.gradient().shape(), logits.shape());
}

TEST(SoftmaxCrossEntropy, BiasedTargetsShiftOptimum) {
  // With eps-smoothed non-hotspot targets, the loss at a confident
  // non-hotspot prediction is higher than with hard targets: the bias term
  // penalizes total confidence against the hotspot class.
  SoftmaxCrossEntropy loss;
  const tensor::Tensor logits({1, 2}, {6.0f, -6.0f});
  const double hard = loss.forward(logits, make_targets({0}, 0.0f));
  const double biased = loss.forward(logits, make_targets({0}, 0.2f));
  EXPECT_GT(biased, hard);
}

TEST(SoftmaxCrossEntropy, GradientPushesTowardTarget) {
  SoftmaxCrossEntropy loss;
  const tensor::Tensor logits({1, 2}, {0.0f, 0.0f});
  loss.forward(logits, make_targets({1}, 0.0f));
  // Hotspot target: gradient decreases logit 0 and increases logit 1.
  EXPECT_GT(loss.gradient().at2(0, 0), 0.0f);
  EXPECT_LT(loss.gradient().at2(0, 1), 0.0f);
}

}  // namespace
}  // namespace hotspot::nn
