// Central-finite-difference validation of every differentiable layer's
// backward pass. Loss = <forward(x), G> for a fixed random G, so
// d loss/d x and d loss/d theta must match the layer's backward output and
// accumulated parameter gradients.
//
// Binarized layers (SignSTE, BinaryConv2d) are deliberately absent: the
// straight-through estimator is *defined* to differ from the true gradient
// of sign (which is zero almost everywhere), so they are validated
// structurally in their own tests instead.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activation_layers.h"
#include "nn/batchnorm_layer.h"
#include "nn/conv_layer.h"
#include "nn/linear_layer.h"
#include "nn/pool_layers.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace hotspot::nn {
namespace {

using tensor::Tensor;

// Verifies the input gradient and all parameter gradients of `module` at
// input `x` against central differences.
void check_gradients(Module& module, const Tensor& x, double step,
                     double tolerance) {
  util::Rng rng(99);
  Tensor out = module.forward(x);
  const Tensor g = Tensor::normal(out.shape(), rng, 0.0f, 1.0f);
  module.zero_grad();
  const Tensor gx = module.backward(g);

  auto loss_at = [&](const Tensor& input) {
    return tensor::mul(module.forward(input), g).sum();
  };

  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(step);
    xm[i] -= static_cast<float>(step);
    const double numeric = (loss_at(xp) - loss_at(xm)) / (2.0 * step);
    ASSERT_NEAR(gx[i], numeric, tolerance) << "input grad at " << i;
  }

  for (Parameter* param : module.parameters()) {
    for (std::int64_t i = 0; i < param->value.numel(); ++i) {
      const float saved = param->value[i];
      param->value[i] = saved + static_cast<float>(step);
      const double up = loss_at(x);
      param->value[i] = saved - static_cast<float>(step);
      const double down = loss_at(x);
      param->value[i] = saved;
      const double numeric = (up - down) / (2.0 * step);
      ASSERT_NEAR(param->grad[i], numeric, tolerance)
          << param->name << " grad at " << i;
    }
  }
}

TEST(GradientCheck, Linear) {
  util::Rng rng(1);
  Linear layer(4, 3, true, rng);
  check_gradients(layer, Tensor::normal({3, 4}, rng, 0.0f, 1.0f), 1e-2, 5e-2);
}

TEST(GradientCheck, Conv2d) {
  util::Rng rng(2);
  Conv2d layer(2, 3, 3, 1, 1, true, rng);
  check_gradients(layer, Tensor::normal({2, 2, 4, 4}, rng, 0.0f, 1.0f), 1e-2,
                  5e-2);
}

TEST(GradientCheck, Conv2dStrided) {
  util::Rng rng(3);
  Conv2d layer(2, 2, 3, 2, 1, false, rng);
  check_gradients(layer, Tensor::normal({1, 2, 5, 5}, rng, 0.0f, 1.0f), 1e-2,
                  5e-2);
}

TEST(GradientCheck, Conv2dOneByOne) {
  util::Rng rng(4);
  Conv2d layer(3, 2, 1, 1, 0, false, rng);
  check_gradients(layer, Tensor::normal({2, 3, 3, 3}, rng, 0.0f, 1.0f), 1e-2,
                  5e-2);
}

TEST(GradientCheck, BatchNormTraining) {
  util::Rng rng(5);
  BatchNorm2d layer(2);
  layer.set_training(true);
  check_gradients(layer, Tensor::normal({3, 2, 3, 3}, rng, 1.0f, 2.0f), 1e-2,
                  8e-2);
}

TEST(GradientCheck, BatchNormEval) {
  util::Rng rng(6);
  BatchNorm2d layer(2);
  // Adapt running stats first, then check the (simpler) eval-mode gradient.
  for (int i = 0; i < 5; ++i) {
    layer.forward(Tensor::normal({4, 2, 3, 3}, rng, 0.0f, 1.0f));
  }
  layer.set_training(false);
  check_gradients(layer, Tensor::normal({2, 2, 3, 3}, rng, 0.0f, 1.0f), 1e-2,
                  5e-2);
}

TEST(GradientCheck, ReLUAwayFromKink) {
  util::Rng rng(7);
  ReLU layer;
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor x = Tensor::normal({2, 5}, rng, 0.0f, 1.0f);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.1f) {
      x[i] = 0.5f;
    }
  }
  check_gradients(layer, x, 1e-3, 1e-2);
}

TEST(GradientCheck, AvgPool) {
  util::Rng rng(8);
  AvgPool2d layer(2);
  check_gradients(layer, Tensor::normal({2, 2, 4, 4}, rng, 0.0f, 1.0f), 1e-2,
                  2e-2);
}

TEST(GradientCheck, MaxPoolAwayFromTies) {
  util::Rng rng(9);
  MaxPool2d layer(2);
  // Gaussian inputs have distinct values a.s., so argmax is stable under
  // the probe step.
  check_gradients(layer, Tensor::normal({1, 2, 4, 4}, rng, 0.0f, 5.0f), 1e-3,
                  1e-2);
}

TEST(GradientCheck, GlobalAvgPool) {
  util::Rng rng(10);
  GlobalAvgPool layer;
  check_gradients(layer, Tensor::normal({2, 3, 3, 3}, rng, 0.0f, 1.0f), 1e-2,
                  2e-2);
}

TEST(GradientCheck, ResidualWithProjection) {
  util::Rng rng(11);
  auto main_path = std::make_unique<Sequential>();
  main_path->emplace<Conv2d>(2, 3, 3, 2, 1, false, rng);
  auto shortcut = std::make_unique<Conv2d>(2, 3, 1, 2, 0, false, rng);
  ResidualBlock block(std::move(main_path), std::move(shortcut));
  check_gradients(block, Tensor::normal({1, 2, 4, 4}, rng, 0.0f, 1.0f), 1e-2,
                  5e-2);
}

TEST(GradientCheck, SmallMlpEndToEnd) {
  util::Rng rng(12);
  Sequential net;
  net.emplace<Linear>(6, 4, true, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(4, 2, true, rng);
  Tensor x = Tensor::normal({3, 6}, rng, 0.0f, 1.0f);
  // Nudge pre-activations away from ReLU kinks by scaling up.
  tensor::scale_inplace(x, 1.5f);
  check_gradients(net, x, 1e-2, 6e-2);
}

}  // namespace
}  // namespace hotspot::nn
