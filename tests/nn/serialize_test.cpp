#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "nn/batchnorm_layer.h"
#include "nn/linear_layer.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace hotspot::nn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Sequential make_net(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential net;
  net.emplace<Linear>(4, 3, true, rng);
  net.emplace<BatchNorm2d>(3);
  return net;
}

TEST(Serialize, RoundTripRestoresParameters) {
  Sequential net = make_net(1);
  const std::string path = temp_path("roundtrip.bin");
  ASSERT_TRUE(save_checkpoint(path, net));

  Sequential other = make_net(2);  // different init
  ASSERT_TRUE(load_checkpoint(path, other));

  std::vector<NamedTensor> a, b;
  net.collect_state("", a);
  other.collect_state("", b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_TRUE(tensor::allclose(*a[i].value, *b[i].value, 0.0))
        << a[i].name;
  }
}

TEST(Serialize, IncludesBatchNormRunningStats) {
  Sequential net = make_net(3);
  std::vector<NamedTensor> state;
  net.collect_state("", state);
  bool has_running_mean = false;
  for (const auto& entry : state) {
    has_running_mean |= entry.name.find("running_mean") != std::string::npos;
  }
  EXPECT_TRUE(has_running_mean);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Sequential net = make_net(4);
  const std::string path = temp_path("mismatch.bin");
  ASSERT_TRUE(save_checkpoint(path, net));

  util::Rng rng(5);
  Sequential bigger;
  bigger.emplace<Linear>(4, 5, true, rng);  // different shape
  bigger.emplace<BatchNorm2d>(5);
  EXPECT_FALSE(load_checkpoint(path, bigger));
}

TEST(Serialize, MissingFileFailsGracefully) {
  Sequential net = make_net(6);
  EXPECT_FALSE(load_checkpoint(temp_path("does-not-exist.bin"), net));
}

TEST(Serialize, CorruptMagicRejected) {
  const std::string path = temp_path("corrupt.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage-not-a-checkpoint", f);
    std::fclose(f);
  }
  Sequential net = make_net(7);
  EXPECT_FALSE(load_checkpoint(path, net));
}

}  // namespace
}  // namespace hotspot::nn
