// Full-chip scan: the deployment workload the intro motivates — sweep a
// trained detector over every clip window of a layout and flag hotspot
// regions for lithography simulation.
//
// Builds a synthetic multi-block "chip" layout, trains a compact BRNN on
// generated clips, then slides a clip window over the chip, classifying
// each window with the packed inference engine and cross-checking flagged
// windows against the litho oracle.
#include <cstdio>

#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/metrics.h"
#include "litho/simulator.h"
#include "util/stopwatch.h"

namespace {

using namespace hotspot;

// A chip made of pattern-family tiles laid out on a grid.
layout::Pattern build_chip(const dataset::PatternParams& params,
                           util::Rng& rng, int tiles_per_side) {
  layout::Pattern chip;
  for (int ty = 0; ty < tiles_per_side; ++ty) {
    for (int tx = 0; tx < tiles_per_side; ++tx) {
      const auto family = static_cast<dataset::Family>(
          rng.uniform_int(0, dataset::kFamilyCount - 1));
      layout::Pattern tile = dataset::generate_pattern(family, params, rng);
      tile.translate(tx * params.clip_nm, ty * params.clip_nm);
      for (const auto& rect : tile.rects()) {
        chip.add(rect);
      }
    }
  }
  return chip;
}

}  // namespace

int main(int argc, char** argv) {
  const int tiles = argc > 1 ? std::atoi(argv[1]) : 4;
  constexpr std::int64_t kImageSize = 32;

  // Train on generated clips (same process parameters as the chip).
  const dataset::BenchmarkConfig config =
      dataset::iccad2012_config(0.04, kImageSize);
  std::printf("Training the detector on %s...\n", "a generated benchmark");
  const dataset::Benchmark bench = dataset::generate_benchmark(config);
  core::BnnHotspotDetector detector(
      core::BnnDetectorConfig::compact(kImageSize));
  util::Rng rng(7);
  detector.fit(bench.train, rng);

  // Build the chip and extract overlapping clip windows.
  util::Rng chip_rng(99);
  const layout::Pattern chip =
      build_chip(config.pattern, chip_rng, tiles);
  // Window stride = clip size: every window sees whole pattern tiles, the
  // distribution the detector was trained on. (Halve the stride for an
  // overlapping scan; the straddling windows are out-of-distribution and
  // show the detector's limits.)
  const auto clips = layout::extract_clips(chip, config.pattern.clip_nm,
                                           config.pattern.clip_nm);
  std::printf("Chip: %d x %d tiles, %zu rects, %zu clip windows\n\n", tiles,
              tiles, chip.rects().size(), clips.size());

  // Classify every window with the packed engine.
  dataset::HotspotDataset windows;
  for (const auto& clip : clips) {
    windows.add(dataset::ClipSample::from_image(clip.binary(kImageSize), 0,
                                                dataset::Family::kDenseLines));
  }
  util::Stopwatch scan_timer;
  const std::vector<int> flagged = detector.predict(windows);
  const double scan_seconds = scan_timer.seconds();

  // Cross-check against the lithography oracle (the expensive step the
  // detector exists to avoid running everywhere).
  const litho::Simulator simulator(config.litho);
  eval::ConfusionMatrix matrix;
  util::Stopwatch litho_timer;
  for (std::size_t i = 0; i < clips.size(); ++i) {
    matrix.record(simulator.is_hotspot(clips[i]) ? 1 : 0, flagged[i]);
  }
  const double litho_seconds = litho_timer.seconds();

  std::printf("Scan results:\n");
  std::printf("  windows flagged hotspot: %lld of %zu\n",
              static_cast<long long>(matrix.true_positive +
                                     matrix.false_positive),
              clips.size());
  std::printf("  oracle check: %s\n", matrix.to_string().c_str());
  std::printf("  detection accuracy: %.1f%%, false alarms: %lld\n",
              matrix.accuracy() * 100.0,
              static_cast<long long>(matrix.false_alarm()));
  std::printf("  detector scan: %.2f s; full litho of every window (what "
              "the detector replaces): %.2f s here, hours on a real "
              "simulator\n",
              scan_seconds, litho_seconds);
  std::printf("  ODST at t_ls = 10 s: %.0f s vs %.0f s for simulate-"
              "everything\n",
              matrix.odst(10.0, scan_seconds /
                                    static_cast<double>(clips.size())),
              10.0 * static_cast<double>(clips.size()));
  return 0;
}
