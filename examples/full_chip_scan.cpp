// Full-chip scan: the deployment workload the intro motivates — sweep a
// trained detector over every clip window of a full layout and spend
// lithography simulation only on the flagged regions (ODST, Eq. 3).
//
// Runs on the streaming scan subsystem (src/scan/): windows come from a
// lazy ClipWindowStream instead of an eagerly materialized clip vector,
// duplicate window rasters are deduplicated so tiled geometry pays
// inference once, and rasterization of batch N+1 overlaps classification
// of batch N on a double-buffered pipeline.
//
//   ./examples/full_chip_scan [tiles] [--stride <nm>] [--metrics-out <path>]
//                             [--trace-out <path>] [--journal <path>]
//                             [--resume] [--window-deadline-ms <ms>]
//
//   tiles          chip edge length in pattern tiles (default 4, >= 1)
//   --stride       scan stride in nm (default: clip size = non-overlapping;
//                  halve it for an overlapping scan)
//   --metrics-out  write a JSON metrics snapshot (scan counters + spans +
//                  manifest)
//   --trace-out    write a Chrome trace-event timeline of the scan; open in
//                  chrome://tracing or https://ui.perfetto.dev
//   --journal      append every completed scan batch to a crash-safe
//                  journal at <path> (fsync per batch, periodic snapshots)
//   --resume       recover the journal's state and scan only the remaining
//                  windows; the final result is bit-identical to an
//                  uninterrupted run (requires --journal)
//   --window-deadline-ms  per-window attempt budget; windows that fail past
//                  the retry budget are quarantined, not hung on
//   --fusion       classify through the fused graph executor (BN ->
//                  Binarize -> BinaryConv folded to threshold-compare ops,
//                  DESIGN.md §14); bit-identical flags, fewer float stages
//
// Exits 0 on success, 1 on runtime failure (including quarantined
// windows — the printed results are then partial), 2 on a bad invocation.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <string>

#include "cli_util.h"
#include "core/bnn_detector.h"
#include "core/roofline.h"
#include "dataset/generator.h"
#include "eval/metrics.h"
#include "graph/executor.h"
#include "graph/roofline.h"
#include "litho/simulator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scan/pipeline.h"
#include "util/stopwatch.h"

namespace {

using namespace hotspot;

// A chip made of pattern-family tiles laid out on a grid.
layout::Pattern build_chip(const dataset::PatternParams& params,
                           util::Rng& rng, int tiles_per_side) {
  layout::Pattern chip;
  for (int ty = 0; ty < tiles_per_side; ++ty) {
    for (int tx = 0; tx < tiles_per_side; ++tx) {
      const auto family = static_cast<dataset::Family>(
          rng.uniform_int(0, dataset::kFamilyCount - 1));
      layout::Pattern tile = dataset::generate_pattern(family, params, rng);
      tile.translate(tx * params.clip_nm, ty * params.clip_nm);
      for (const auto& rect : tile.rects()) {
        chip.add(rect);
      }
    }
  }
  return chip;
}

std::string iso_timestamp() {
  const std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hotspot::examples;
  long tiles = 4;
  long stride_nm = 0;  // 0 = clip size (non-overlapping)
  long window_deadline_ms = 0;
  std::string metrics_out;
  std::string trace_out;
  std::string journal_path;
  bool resume = false;
  bool fusion = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stride") {
      if (i + 1 >= argc || !parse_positive(argv[i + 1], 1L << 30, &stride_nm)) {
        return usage_error(
            "--stride requires a positive integer number of nanometres",
            i + 1 < argc ? argv[i + 1] : nullptr);
      }
      ++i;
    } else if (arg == "--window-deadline-ms") {
      if (i + 1 >= argc ||
          !parse_positive(argv[i + 1], 1L << 30, &window_deadline_ms)) {
        return usage_error(
            "--window-deadline-ms requires a positive integer number of "
            "milliseconds",
            i + 1 < argc ? argv[i + 1] : nullptr);
      }
      ++i;
    } else if (arg == "--journal") {
      if (i + 1 >= argc) {
        return usage_error("--journal requires a path", nullptr);
      }
      journal_path = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--fusion") {
      fusion = true;
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        return usage_error("--metrics-out requires a path", nullptr);
      }
      metrics_out = argv[++i];
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        return usage_error("--trace-out requires a path", nullptr);
      }
      trace_out = argv[++i];
    } else if (!parse_positive(arg.c_str(), 64, &tiles)) {
      // An unvalidated atoi here used to turn garbage (or "0") into an
      // empty chip and a divide-by-zero in the ODST printout.
      return usage_error("tiles must be an integer in [1, 64]", arg.c_str());
    }
  }
  if (resume && journal_path.empty()) {
    return usage_error("--resume requires --journal", "--resume");
  }
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::set_trace_enabled(true);
  }
  if (!trace_out.empty()) {
    obs::set_timeline_enabled(true);
  }
  constexpr std::int64_t kImageSize = 32;

  // Train on generated clips (same process parameters as the chip).
  const dataset::BenchmarkConfig config =
      dataset::iccad2012_config(0.04, kImageSize);
  std::printf("Training the detector on %s...\n", "a generated benchmark");
  const dataset::Benchmark bench = dataset::generate_benchmark(config);
  core::BnnHotspotDetector detector(
      core::BnnDetectorConfig::compact(kImageSize));
  util::Rng rng(7);
  detector.fit(bench.train, rng);

  // Installed after training: the fusion passes snapshot the final BN
  // statistics. Every scan batch then classifies through the fused graph,
  // bit-identically to the module chain.
  std::shared_ptr<graph::GraphExecutor> executor;
  if (fusion) {
    executor =
        graph::install_executor(detector.model(), graph::FusionMode::kFused);
    std::printf("Fusion on:");
    for (const graph::PassResult& pass : executor->pass_results()) {
      std::printf(" %s=%d", pass.name.c_str(), pass.changed);
    }
    std::printf("\n");
    // The executor's sample counters start at zero here, so scope the span
    // clock to match: the fused roofline covers the scan, not training.
    if (obs::trace_enabled()) {
      obs::reset_spans();
    }
  }

  // Build the chip and stream clip windows over it.
  util::Rng chip_rng(99);
  const layout::Pattern chip =
      build_chip(config.pattern, chip_rng, static_cast<int>(tiles));
  // Default stride = clip size: every window sees whole pattern tiles, the
  // distribution the detector was trained on. (An overlapping --stride
  // exposes straddling, out-of-distribution windows.)
  scan::ScanConfig scan_config;
  scan_config.window_nm = config.pattern.clip_nm;
  scan_config.step_nm = stride_nm > 0 ? stride_nm : config.pattern.clip_nm;
  scan_config.grid = kImageSize;
  scan_config.window_deadline_ms = static_cast<int>(window_deadline_ms);
  scan_config.journal_path = journal_path;
  scan_config.resume = resume;
  scan::ScanPipeline pipeline(scan_config, detector.classifier());
  scan::ScanResult result;
  try {
    result = pipeline.scan(chip);
  } catch (const std::exception& error) {
    // Journal open/append failure or an injected abort. The journal (if
    // any) keeps every completed batch; a --resume run picks up from it.
    std::fprintf(stderr, "error: scan failed: %s\n", error.what());
    return kExitRuntime;
  }
  if (result.stats.resume_skipped > 0) {
    std::printf("Resumed from %s: %lld of %lld windows recovered from the "
                "journal\n",
                journal_path.c_str(),
                static_cast<long long>(result.stats.resume_skipped),
                static_cast<long long>(result.labels.size()));
  }
  std::printf("Chip: %ld x %ld tiles, %zu rects, %lld clip windows "
              "(%lld x %lld grid, stride %lld nm)\n\n",
              tiles, tiles, chip.rects().size(),
              static_cast<long long>(result.labels.size()),
              static_cast<long long>(result.cols),
              static_cast<long long>(result.rows),
              static_cast<long long>(result.step_nm));
  if (result.labels.empty()) {
    std::printf("Chip has no geometry — nothing to scan.\n");
    return kExitOk;
  }

  // Cross-check against the lithography oracle (the expensive step the
  // detector exists to avoid running everywhere).
  const litho::Simulator simulator(config.litho);
  scan::ClipWindowStream oracle_stream(chip, scan_config.window_nm,
                                       scan_config.step_nm);
  eval::ConfusionMatrix matrix;
  util::Stopwatch litho_timer;
  scan::WindowRef ref;
  while (oracle_stream.next(ref)) {
    const layout::Clip clip = oracle_stream.materialize(ref);
    matrix.record(simulator.is_hotspot(clip) ? 1 : 0,
                  result.labels[static_cast<std::size_t>(ref.index)]);
  }
  const double litho_seconds = litho_timer.seconds();

  const scan::ScanStats& stats = result.stats;
  const auto window_count = static_cast<double>(result.labels.size());
  const double scan_seconds = stats.total_seconds;
  std::printf("Scan results:\n");
  std::printf("  windows flagged hotspot: %lld of %lld, merged into %zu "
              "regions\n",
              static_cast<long long>(result.flagged_count()),
              static_cast<long long>(result.labels.size()),
              result.regions.size());
  for (const scan::HotspotRegion& region : result.regions) {
    std::printf("    region [%lld,%lld)x[%lld,%lld): %lld windows, "
                "litho budget %.0f s at t_ls = 10 s\n",
                static_cast<long long>(region.bounds.x0),
                static_cast<long long>(region.bounds.x1),
                static_cast<long long>(region.bounds.y0),
                static_cast<long long>(region.bounds.y1),
                static_cast<long long>(region.window_count),
                region.odst(10.0, 0.0));
  }
  std::printf("  dedup: %lld of %lld windows served from cache (%.0f%% hit "
              "rate), %lld batches\n",
              static_cast<long long>(stats.dedup_hits),
              static_cast<long long>(stats.windows),
              100.0 * stats.dedup_hit_rate(),
              static_cast<long long>(stats.batches));
  if (stats.retries > 0 || stats.quarantined > 0) {
    std::printf("  fault tolerance: %lld retries, %lld windows "
                "quarantined\n",
                static_cast<long long>(stats.retries),
                static_cast<long long>(stats.quarantined));
  }
  std::printf("  oracle check: %s\n", matrix.to_string().c_str());
  std::printf("  detection accuracy: %.1f%%, false alarms: %lld\n",
              matrix.accuracy() * 100.0,
              static_cast<long long>(matrix.false_alarm()));
  std::printf("  detector scan: %.2f s (raster %.2f s || infer %.2f s); "
              "full litho of every window (what the detector replaces): "
              "%.2f s here, hours on a real simulator\n",
              scan_seconds, stats.raster_seconds, stats.infer_seconds,
              litho_seconds);
  std::printf("  ODST at t_ls = 10 s: %.0f s vs %.0f s for simulate-"
              "everything\n",
              result.odst(10.0, scan_seconds / window_count),
              10.0 * window_count);

  if (obs::trace_enabled()) {
    // Per-layer roofline over everything traced so far (training + scan).
    // Under --fusion the graph builder attributes each fused op's bitops
    // once, on the executor's own sample counters.
    const core::RooflineReport roofline =
        executor != nullptr
            ? graph::build_graph_roofline(*executor, obs::collect_span_report())
            : core::build_roofline(detector.model(), obs::collect_span_report());
    std::printf("\nPer-layer roofline (%s):\n%s\n",
                executor != nullptr ? "fused scan" : "all traced forwards",
                core::to_table(roofline).c_str());
  }

  if (!metrics_out.empty()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("scan.seconds").set(scan_seconds);
    registry.gauge("scan.dedup.hit_rate").set(stats.dedup_hit_rate());
    registry.gauge("scan.regions").set(
        static_cast<double>(result.regions.size()));
    const obs::RunManifest manifest = obs::collect_manifest(iso_timestamp());
    if (!obs::write_metrics_json(metrics_out, registry.snapshot(),
                                 obs::collect_span_report(), &manifest)) {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   metrics_out.c_str());
      return kExitRuntime;
    }
    std::printf("Wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::write_chrome_trace(trace_out, obs::collect_timeline())) {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   trace_out.c_str());
      return kExitRuntime;
    }
    std::printf("Wrote Chrome trace to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n", trace_out.c_str());
  }
  if (result.stats.quarantined > 0) {
    // The printed results are partial: quarantined windows carry a
    // conservative 0 instead of a verdict. Succeeding here would let a
    // driving script mistake them for a clean scan.
    std::fprintf(stderr, "error: %lld windows were quarantined; results "
                         "above are partial\n",
                 static_cast<long long>(result.stats.quarantined));
    return kExitRuntime;
  }
  return kExitOk;
}
