// Shared command-line conventions for the example binaries.
//
// Every example exits with the same typed codes — kExitOk (0) on success,
// kExitRuntime (1) when the run itself fails (I/O, corrupt checkpoint,
// quarantined scan windows), kExitUsage (2) on a bad invocation — and a
// usage error always names the offending value on stderr instead of
// silently substituting a default. Scripts and CI legs branch on the code;
// humans read the message.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hotspot::examples {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;
// The endpoint answered but its payload failed validation (non-JSON
// /healthz, unparseable Prometheus line, non-finite sample). Distinct from
// kExitRuntime so monitoring can tell "server down" from "server lying".
inline constexpr int kExitMalformed = 3;

// Strict integer parse; false on garbage, trailing junk, overflow, or
// values outside [min, max].
inline bool parse_long(const char* text, long min, long max, long* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || parsed < min ||
      parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

// Strict positive-integer parse into [1, max].
inline bool parse_positive(const char* text, long max, long* out) {
  return parse_long(text, 1, max, out);
}

// Strict positive-double parse; false on garbage, trailing junk, overflow,
// NaN, or values <= 0.
inline bool parse_positive_double(const char* text, double* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed) || parsed <= 0.0) {
    return false;
  }
  *out = parsed;
  return true;
}

// Prints "error: <what>, got '<got>'" and returns kExitUsage so callers can
// `return usage_error(...)` in one line.
inline int usage_error(const char* what, const char* got) {
  std::fprintf(stderr, "error: %s, got '%s'\n", what,
               got != nullptr ? got : "<missing>");
  return kExitUsage;
}

}  // namespace hotspot::examples
