// Deployment: load a trained checkpoint (from ./quickstart) into a fresh
// model, switch it to the packed XNOR-popcount engine, and classify clips —
// the workflow of shipping the detector into a physical-verification flow.
//
//   ./examples/quickstart && ./examples/deploy_inference quickstart_model.bin
#include <cstdio>

#include "core/brnn.h"
#include "dataset/generator.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace hotspot;
  const char* path = argc > 1 ? argv[1] : "quickstart_model.bin";
  constexpr std::int64_t kImageSize = 32;

  // The checkpoint format is strict about architecture, so construct the
  // same configuration quickstart trained.
  util::Rng rng(0);
  core::BrnnModel model(core::BrnnConfig::compact(kImageSize), rng);
  // Refuse to run on anything but a fully validated checkpoint: a missing,
  // truncated, or bit-flipped file must never silently classify with
  // uninitialized weights.
  if (const nn::LoadResult loaded = nn::load_checkpoint(path, model);
      !loaded.ok()) {
    std::fprintf(stderr, "error: cannot load checkpoint (%s): %s\n",
                 nn::io_status_name(loaded.status), loaded.message.c_str());
    if (loaded.status == nn::IoStatus::kMissing) {
      std::fprintf(stderr, "Run ./quickstart first to train and save %s.\n",
                   path);
    }
    return 1;
  }
  model.set_training(false);
  model.set_backend(core::Backend::kPacked);
  std::printf("Loaded %s (%lld parameters; conv weights deploy as 1 bit "
              "each).\n\n",
              path, static_cast<long long>(model.parameter_count()));

  // Classify freshly generated clips and time both engines.
  const dataset::BenchmarkConfig config =
      dataset::iccad2012_config(0.01, kImageSize);
  util::Rng gen_rng(123);
  dataset::HotspotDataset clips =
      dataset::generate_split(config, config.test, gen_rng);
  const auto indices = clips.all_indices();
  const tensor::Tensor images = clips.batch_images(indices);

  model.forward(images);  // warm-up packs the weights
  util::Stopwatch packed_timer;
  const auto labels = model.predict(images);
  const double packed_seconds = packed_timer.seconds();

  model.set_backend(core::Backend::kFloatSim);
  util::Stopwatch float_timer;
  model.forward(images);
  const double float_seconds = float_timer.seconds();

  int flagged = 0;
  int correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    flagged += labels[i];
    correct += labels[i] == clips.sample(i).label ? 1 : 0;
  }
  std::printf("Classified %zu clips: %d flagged as hotspots, %d labels "
              "agree with the litho oracle.\n",
              labels.size(), flagged, correct);
  std::printf("Packed XNOR-popcount: %.3f s (%.2f ms/clip)\n", packed_seconds,
              1e3 * packed_seconds / static_cast<double>(labels.size()));
  std::printf("Float-sim reference:  %.3f s -> binarization speedup %.1fx "
              "at these (CI-scale) channel widths\n",
              float_seconds, float_seconds / packed_seconds);
  return 0;
}
