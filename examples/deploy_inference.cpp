// Deployment: load a trained checkpoint (from ./quickstart) into a fresh
// model, switch it to the packed XNOR-popcount engine, and classify clips —
// the workflow of shipping the detector into a physical-verification flow.
//
//   ./examples/quickstart && ./examples/deploy_inference quickstart_model.bin
//
// With --metrics-out <path>, per-layer trace spans are enabled and a JSON
// metrics snapshot (registry + span aggregates + manifest for the packed
// run) is written on exit, along with a per-layer roofline table joining
// the span timings with the analytic cost model:
//
//   ./examples/deploy_inference quickstart_model.bin --metrics-out metrics.json
//
// With --trace-out <path>, a Chrome trace-event timeline of the packed run
// is written (open in chrome://tracing or https://ui.perfetto.dev).
//
// With --fusion, inference runs through the fused graph executor
// (BN -> Binarize -> BinaryConv folded into threshold-compare ops,
// DESIGN.md §14) — same logits bit for bit, fewer float stages — and the
// roofline table reports one row per fused op.
#include <cstdio>
#include <ctime>
#include <string>

#include "cli_util.h"
#include "core/brnn.h"
#include "core/roofline.h"
#include "dataset/generator.h"
#include "graph/executor.h"
#include "graph/roofline.h"
#include "nn/serialize.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/stopwatch.h"

namespace {

std::string iso_timestamp() {
  const std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hotspot;
  using namespace hotspot::examples;
  std::string model_path = "quickstart_model.bin";
  std::string metrics_out;
  std::string trace_out;
  bool fusion = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fusion") {
      fusion = true;
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        return usage_error("--metrics-out requires a path", nullptr);
      }
      metrics_out = argv[++i];
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        return usage_error("--trace-out requires a path", nullptr);
      }
      trace_out = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      // A mistyped flag used to be taken as the model path and surface as a
      // confusing "cannot load checkpoint" error.
      return usage_error("unknown flag", arg.c_str());
    } else {
      model_path = arg;
    }
  }
  // Span recording costs one clock read per instrumented scope; leave it
  // off unless a snapshot was requested.
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::set_trace_enabled(true);
  }
  if (!trace_out.empty()) {
    obs::set_timeline_enabled(true);
  }
  constexpr std::int64_t kImageSize = 32;

  // The checkpoint format is strict about architecture, so construct the
  // same configuration quickstart trained.
  util::Rng rng(0);
  core::BrnnModel model(core::BrnnConfig::compact(kImageSize), rng);
  // Refuse to run on anything but a fully validated checkpoint: a missing,
  // truncated, or bit-flipped file must never silently classify with
  // uninitialized weights.
  if (const nn::LoadResult loaded = nn::load_checkpoint(model_path, model);
      !loaded.ok()) {
    std::fprintf(stderr, "error: cannot load checkpoint (%s): %s\n",
                 nn::io_status_name(loaded.status), loaded.message.c_str());
    if (loaded.status == nn::IoStatus::kMissing) {
      std::fprintf(stderr, "Run ./quickstart first to train and save %s.\n",
                   model_path.c_str());
    }
    return kExitRuntime;
  }
  model.set_training(false);
  model.set_backend(core::Backend::kPacked);
  // Installed after the checkpoint load: the fusion passes snapshot BN
  // statistics at build time.
  std::shared_ptr<graph::GraphExecutor> executor;
  if (fusion) {
    executor = graph::install_executor(model, graph::FusionMode::kFused);
    std::printf("Fusion on:");
    for (const graph::PassResult& pass : executor->pass_results()) {
      std::printf(" %s=%d", pass.name.c_str(), pass.changed);
    }
    std::printf("\n");
  }
  std::printf("Loaded %s (%lld parameters; conv weights deploy as 1 bit "
              "each).\n\n",
              model_path.c_str(),
              static_cast<long long>(model.parameter_count()));

  // Classify freshly generated clips and time both engines.
  const dataset::BenchmarkConfig config =
      dataset::iccad2012_config(0.01, kImageSize);
  util::Rng gen_rng(123);
  dataset::HotspotDataset clips =
      dataset::generate_split(config, config.test, gen_rng);
  const auto indices = clips.all_indices();
  const tensor::Tensor images = clips.batch_images(indices);

  model.forward(images);  // warm-up packs the weights (and plans the graph)
  obs::reset_spans();     // scope the span report to the timed runs
  obs::reset_timeline();
  model.reset_profile();  // keep roofline sample counts in the same window
  if (executor != nullptr) {
    executor->reset_profile();
  }
  util::Stopwatch packed_timer;
  std::vector<int> labels;
  {
    obs::TraceSpan inference_span("inference.total");
    labels = model.predict(images);
  }
  const double packed_seconds = packed_timer.seconds();
  // Span aggregates (and timeline/profile counters) of the packed run
  // alone, before the float-sim reference re-enters the same layers.
  const obs::SpanReport packed_spans = obs::collect_span_report();
  const obs::TimelineReport packed_timeline = obs::collect_timeline();
  const core::RooflineReport roofline =
      executor != nullptr ? graph::build_graph_roofline(*executor, packed_spans)
                          : core::build_roofline(model, packed_spans);

  if (executor != nullptr) {
    // The override routes every inference forward; drop it so the float-sim
    // reference below times the module chain, not the fused graph.
    graph::install_executor(model, graph::FusionMode::kOff);
  }
  model.set_backend(core::Backend::kFloatSim);
  util::Stopwatch float_timer;
  model.forward(images);
  const double float_seconds = float_timer.seconds();

  int flagged = 0;
  int correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    flagged += labels[i];
    correct += labels[i] == clips.sample(i).label ? 1 : 0;
  }
  std::printf("Classified %zu clips: %d flagged as hotspots, %d labels "
              "agree with the litho oracle.\n",
              labels.size(), flagged, correct);
  std::printf("Packed XNOR-popcount: %.3f s (%.2f ms/clip)\n", packed_seconds,
              1e3 * packed_seconds / static_cast<double>(labels.size()));
  std::printf("Float-sim reference:  %.3f s -> binarization speedup %.1fx "
              "at these (CI-scale) channel widths\n",
              float_seconds, float_seconds / packed_seconds);

  if (!metrics_out.empty()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("inference.packed_seconds").set(packed_seconds);
    registry.gauge("inference.float_sim_seconds").set(float_seconds);
    registry.gauge("inference.clips")
        .set(static_cast<double>(labels.size()));

    // Sanity-check the instrumentation itself: the per-layer spans should
    // account for (nearly) all of the measured packed inference wall time.
    // The module chain nests brnn.conv.* inside brnn.layer.* wrappers, so
    // only the wrappers are summed; the graph executor emits one flat span
    // per node (brnn.conv.* for fused convs, brnn.layer.* for the rest),
    // so both prefixes are summed without double counting.
    double layer_seconds = 0.0;
    for (const auto& [name, stat] : packed_spans.spans) {
      const bool node_span =
          name.rfind("brnn.layer.", 0) == 0 ||
          (fusion && name.rfind("brnn.conv.", 0) == 0);
      if (node_span) {
        layer_seconds += stat.total_seconds;
      }
    }
    std::printf("Per-layer spans cover %.3f s of %.3f s measured packed "
                "inference (%.1f%%).\n",
                layer_seconds, packed_seconds,
                packed_seconds > 0.0 ? 100.0 * layer_seconds / packed_seconds
                                     : 0.0);
    std::printf("\nPer-layer roofline (packed run):\n%s\n",
                core::to_table(roofline).c_str());

    const obs::RunManifest manifest = obs::collect_manifest(iso_timestamp());
    if (!obs::write_metrics_json(metrics_out, registry.snapshot(),
                                 packed_spans, &manifest)) {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   metrics_out.c_str());
      return kExitRuntime;
    }
    std::printf("Wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::write_chrome_trace(trace_out, packed_timeline)) {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   trace_out.c_str());
      return kExitRuntime;
    }
    std::printf("Wrote Chrome trace to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n", trace_out.c_str());
  }
  return kExitOk;
}
