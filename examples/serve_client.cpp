// Load generator and smoke-test driver for ./hotspot_serve.
//
// Default mode: N client threads each round-trip R predict requests of C
// clips and the run reports sustained clips/sec plus p50/p95/p99 request
// latency — the numbers BENCH_serve.json pins.
//
//   ./examples/serve_client $(cat /tmp/serve.port) --clients 4 \
//       --requests 50 --clips 8 --grid 32
//
// Smoke modes (each exits 0 exactly when the server behaved as §15
// specifies, so CI legs branch on the exit code):
//   --ping            one Ping/Pong round trip
//   --malformed       ship garbage bytes, expect Reject(kBadFrame)
//   --expect-shed     expect this predict to be shed with Reject(kQueueFull)
//                     (run against a --stall-ms server with a small queue)
//   --swap PATH       hot-swap the server to PATH, expect SwapOk
//   --stats           print the server's metrics JSON
//   --shutdown        ask for a clean server shutdown
//   --admin-port N    probe the admin endpoint instead of the serve port:
//                     fetch /healthz (must be healthy strict JSON) and
//                     /metrics (every sample line must parse with a finite
//                     value). Exits 3 (kExitMalformed) naming the offending
//                     line when the endpoint answers garbage, 1 when it is
//                     unreachable/unhealthy — monitoring branches on which.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cli_util.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "tensor/tensor.h"
#include "util/json.h"

namespace {

using hotspot::tensor::Shape;
using hotspot::tensor::Tensor;

Tensor random_clips(unsigned seed, long count, long grid) {
  Tensor images(Shape{count, 1, grid, grid});
  unsigned state = seed * 2654435761u + 17;
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    images[i] = (state >> 16) % 2 == 0 ? 0.0f : 1.0f;
  }
  return images;
}

double percentile(std::vector<double> sorted_seconds, double q) {
  if (sorted_seconds.empty()) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(sorted_seconds.size() - 1);
  const auto index = static_cast<std::size_t>(rank);
  return sorted_seconds[std::min(index, sorted_seconds.size() - 1)];
}

// Minimal HTTP/1.0 GET against the admin endpoint: one request, read to
// EOF, split status line from body. No HTTP library — the admin server
// speaks the same dialect.
bool http_get(const std::string& host, int port, const std::string& path,
              int* status, std::string* body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = "cannot connect to " + host + ":" + std::to_string(port);
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      *error = "send failed";
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\n<body>"
  const std::size_t space = response.find(' ');
  const std::size_t header_end = response.find("\r\n\r\n");
  if (space == std::string::npos || header_end == std::string::npos) {
    *error = "response is not HTTP";
    return false;
  }
  *status = std::atoi(response.c_str() + space + 1);
  *body = response.substr(header_end + 4);
  return true;
}

// Validates one Prometheus sample line: `name{labels} value` or
// `name value` — name restricted to the exporter's charset and the value a
// finite double with no trailing junk.
bool valid_prometheus_line(const std::string& line) {
  const std::size_t space = line.rfind(' ');
  if (space == std::string::npos || space == 0) {
    return false;
  }
  const std::string name_part = line.substr(0, space);
  const std::size_t brace = name_part.find('{');
  const std::string name =
      brace == std::string::npos ? name_part : name_part.substr(0, brace);
  if (name.empty() ||
      (brace != std::string::npos && name_part.back() != '}')) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      return false;
    }
  }
  const std::string value = line.substr(space + 1);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  return end != value.c_str() && *end == '\0' && errno != ERANGE &&
         std::isfinite(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hotspot;
  using namespace hotspot::examples;
  long port = 0;
  std::string host = "127.0.0.1";
  long clients = 1;
  long requests = 10;
  long clips = 4;
  long grid = 32;
  long seed = 1;
  std::string tenant = "loadgen";
  std::string swap_path;
  long swap_grid = 32;
  long admin_port = -1;
  enum class Mode {
    kLoad,
    kPing,
    kMalformed,
    kExpectShed,
    kSwap,
    kStats,
    kShutdown
  };
  Mode mode = Mode::kLoad;
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* value = next();
      if (value == nullptr) {
        return usage_error("--host requires an address", nullptr);
      }
      host = value;
    } else if (arg == "--clients") {
      if (!parse_positive(next(), 4096, &clients)) {
        return usage_error("--clients expects an integer in [1, 4096]",
                           argv[i]);
      }
    } else if (arg == "--requests") {
      if (!parse_positive(next(), 1'000'000, &requests)) {
        return usage_error("--requests expects a positive integer", argv[i]);
      }
    } else if (arg == "--clips") {
      if (!parse_positive(next(), 1 << 20, &clips)) {
        return usage_error("--clips expects a positive integer", argv[i]);
      }
    } else if (arg == "--grid") {
      if (!parse_positive(next(), 4096, &grid)) {
        return usage_error("--grid expects an integer in [1, 4096]", argv[i]);
      }
    } else if (arg == "--seed") {
      if (!parse_positive(next(), 1L << 30, &seed)) {
        return usage_error("--seed expects a positive integer", argv[i]);
      }
    } else if (arg == "--tenant") {
      const char* value = next();
      if (value == nullptr || !serve::valid_tenant(value)) {
        return usage_error("--tenant expects [A-Za-z0-9_.-]{1,32}",
                           value != nullptr ? value : "<missing>");
      }
      tenant = value;
    } else if (arg == "--ping") {
      mode = Mode::kPing;
    } else if (arg == "--malformed") {
      mode = Mode::kMalformed;
    } else if (arg == "--expect-shed") {
      mode = Mode::kExpectShed;
    } else if (arg == "--swap") {
      const char* value = next();
      if (value == nullptr) {
        return usage_error("--swap requires a checkpoint path", nullptr);
      }
      swap_path = value;
      mode = Mode::kSwap;
    } else if (arg == "--swap-grid") {
      if (!parse_positive(next(), 4096, &swap_grid)) {
        return usage_error("--swap-grid expects an integer in [1, 4096]",
                           argv[i]);
      }
    } else if (arg == "--stats") {
      mode = Mode::kStats;
    } else if (arg == "--shutdown") {
      mode = Mode::kShutdown;
    } else if (arg == "--admin-port") {
      if (!parse_positive(next(), 65535, &admin_port)) {
        return usage_error("--admin-port expects an integer in [1, 65535]",
                           argv[i]);
      }
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag", arg.c_str());
    } else if (!have_port) {
      if (!parse_long(arg.c_str(), 1, 65535, &port)) {
        return usage_error("port expects an integer in [1, 65535]",
                           arg.c_str());
      }
      have_port = true;
    } else {
      return usage_error("unexpected positional argument", arg.c_str());
    }
  }
  if (!have_port && admin_port < 0) {
    return usage_error("usage: serve_client <port> [flags]", nullptr);
  }

  if (admin_port >= 0) {
    // Admin probe: the endpoint must answer AND the payloads must be
    // well-formed. A scrape pipeline that swallows garbage is worse than a
    // down endpoint, hence the dedicated malformed exit code.
    std::string error;
    int status = 0;
    std::string body;
    if (!http_get(host, static_cast<int>(admin_port), "/healthz", &status,
                  &body, &error)) {
      std::fprintf(stderr, "error: /healthz: %s\n", error.c_str());
      return kExitRuntime;
    }
    util::JsonValue health;
    if (!util::parse_json(body, health, error)) {
      std::fprintf(stderr, "error: /healthz is not strict JSON: %s\n%s",
                   error.c_str(), body.c_str());
      return kExitMalformed;
    }
    const util::JsonValue* healthy = health.find("healthy");
    if (healthy == nullptr || !healthy->is_bool()) {
      std::fprintf(stderr, "error: /healthz lacks a boolean \"healthy\"\n");
      return kExitMalformed;
    }
    if (status != 200 || !healthy->as_bool()) {
      std::fprintf(stderr, "error: server unhealthy (HTTP %d): %s",
                   status, body.c_str());
      return kExitRuntime;
    }
    if (!http_get(host, static_cast<int>(admin_port), "/metrics", &status,
                  &body, &error)) {
      std::fprintf(stderr, "error: /metrics: %s\n", error.c_str());
      return kExitRuntime;
    }
    if (status != 200 || body.empty()) {
      std::fprintf(stderr, "error: /metrics answered HTTP %d\n", status);
      return kExitMalformed;
    }
    long samples = 0;
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t end = body.find('\n', pos);
      if (end == std::string::npos) {
        end = body.size();
      }
      const std::string line = body.substr(pos, end - pos);
      pos = end + 1;
      if (line.empty() || line[0] == '#') {
        continue;
      }
      if (!valid_prometheus_line(line)) {
        std::fprintf(stderr, "error: malformed /metrics line: %s\n",
                     line.c_str());
        return kExitMalformed;
      }
      ++samples;
    }
    std::printf("admin probe ok: healthy, %ld finite samples\n", samples);
    return kExitOk;
  }

  if (mode != Mode::kLoad) {
    serve::ServeClient client;
    std::string error;
    if (!client.connect(host, static_cast<int>(port), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitRuntime;
    }
    switch (mode) {
      case Mode::kPing: {
        if (!client.ping(0x70696e67, &error)) {
          std::fprintf(stderr, "error: ping failed: %s\n", error.c_str());
          return kExitRuntime;
        }
        std::printf("pong\n");
        return kExitOk;
      }
      case Mode::kMalformed: {
        const std::vector<std::uint8_t> garbage = {0xba, 0xdf, 0x00, 0x0d,
                                                   1,    2,    3,    4,
                                                   5,    6,    7,    8};
        serve::Frame response;
        if (!client.send_raw(garbage, &response, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return kExitRuntime;
        }
        serve::Reject reject;
        if (response.type != serve::MessageType::kReject ||
            !serve::decode_reject(response.payload, &reject) ||
            reject.reason != serve::RejectReason::kBadFrame) {
          std::fprintf(stderr,
                       "error: expected Reject(kBadFrame), got type %u\n",
                       static_cast<unsigned>(response.type));
          return kExitRuntime;
        }
        std::printf("rejected as expected: %s\n", reject.detail.c_str());
        return kExitOk;
      }
      case Mode::kExpectShed: {
        serve::PredictOutcome outcome;
        if (!client.predict(tenant,
                            random_clips(static_cast<unsigned>(seed), clips,
                                         grid),
                            &outcome, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return kExitRuntime;
        }
        if (outcome.ok ||
            outcome.reason != serve::RejectReason::kQueueFull) {
          std::fprintf(stderr,
                       "error: expected Reject(kQueueFull), got %s\n",
                       outcome.ok ? "labels" : outcome.detail.c_str());
          return kExitRuntime;
        }
        std::printf("shed as expected: %s\n", outcome.detail.c_str());
        return kExitOk;
      }
      case Mode::kSwap: {
        std::uint64_t version = 0;
        std::optional<serve::Reject> reject;
        if (!client.swap_model(swap_path, swap_grid, &version, &reject,
                               &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return kExitRuntime;
        }
        if (reject.has_value()) {
          std::fprintf(stderr, "error: swap refused: %s\n",
                       reject->detail.c_str());
          return kExitRuntime;
        }
        std::printf("swapped to %s (version %llu)\n", swap_path.c_str(),
                    static_cast<unsigned long long>(version));
        return kExitOk;
      }
      case Mode::kStats: {
        std::string json;
        if (!client.stats(&json, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return kExitRuntime;
        }
        std::printf("%s\n", json.c_str());
        return kExitOk;
      }
      case Mode::kShutdown: {
        if (!client.shutdown_server(&error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return kExitRuntime;
        }
        std::printf("server acknowledged shutdown\n");
        return kExitOk;
      }
      case Mode::kLoad:
        break;
    }
  }

  // Load mode: `clients` threads, each with its own connection, each
  // sending `requests` predict calls. Shed responses are counted and
  // retried once after a short backoff (the §15 client contract).
  std::atomic<long> completed{0};
  std::atomic<long> shed{0};
  std::atomic<long> failed{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (long c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::ServeClient client;
      std::string error;
      if (!client.connect(host, static_cast<int>(port), &error)) {
        failed += requests;
        return;
      }
      auto& bucket = latencies[static_cast<std::size_t>(c)];
      bucket.reserve(static_cast<std::size_t>(requests));
      for (long r = 0; r < requests; ++r) {
        const unsigned request_seed =
            static_cast<unsigned>(seed + c * 100003 + r);
        const Tensor images = random_clips(request_seed, clips, grid);
        for (int attempt = 0; attempt < 2; ++attempt) {
          serve::PredictOutcome outcome;
          const auto t0 = std::chrono::steady_clock::now();
          if (!client.predict(tenant + "-" + std::to_string(c), images,
                              &outcome, &error)) {
            ++failed;
            return;  // transport is gone; stop this worker
          }
          const auto t1 = std::chrono::steady_clock::now();
          if (outcome.ok) {
            bucket.push_back(
                std::chrono::duration<double>(t1 - t0).count());
            ++completed;
            break;
          }
          if (outcome.reason == serve::RejectReason::kQueueFull &&
              attempt == 0) {
            ++shed;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          ++failed;
          break;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::vector<double> all;
  for (const auto& bucket : latencies) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end());
  const double clips_per_second =
      elapsed > 0.0
          ? static_cast<double>(completed.load() * clips) / elapsed
          : 0.0;
  std::printf(
      "clients=%ld requests_ok=%ld shed=%ld failed=%ld elapsed=%.3fs\n",
      clients, completed.load(), shed.load(), failed.load(), elapsed);
  std::printf("clips/sec=%.1f p50=%.6fs p95=%.6fs p99=%.6fs\n",
              clips_per_second, percentile(all, 0.50),
              percentile(all, 0.95), percentile(all, 0.99));
  return failed.load() == 0 ? kExitOk : kExitRuntime;
}
