// Detector comparison: trains the paper's BRNN next to the three baseline
// families it is compared against in Table 3, on one shared benchmark, and
// prints the comparison table. A lighter-weight interactive version of
// bench_table3_comparison.
//
//   ./examples/detector_comparison [scale]
//
// `scale` is the fraction of the paper's Table-2 sample counts to generate
// (default 0.02). Exits 0 on success, 2 on a bad invocation.
#include <cstdio>
#include <cstdlib>

#include "baselines/adaboost_detector.h"
#include "cli_util.h"
#include "baselines/dct_cnn.h"
#include "baselines/online_learner.h"
#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"

int main(int argc, char** argv) {
  using namespace hotspot;
  using namespace hotspot::examples;
  double scale = 0.02;
  if (argc > 2) {
    return usage_error("expected at most one argument (scale)", argv[2]);
  }
  if (argc > 1 && !parse_positive_double(argv[1], &scale)) {
    // std::atof here used to turn garbage into scale 0 and an empty
    // benchmark; reject it with the offending value instead.
    return usage_error("scale must be a positive number", argv[1]);
  }
  constexpr std::int64_t kImageSize = 32;

  const dataset::Benchmark bench = dataset::generate_benchmark(
      dataset::iccad2012_config(scale, kImageSize));
  std::printf("Benchmark: %zu train / %zu test clips\n\n",
              bench.train.size(), bench.test.size());

  util::Rng rng(1);
  std::vector<eval::EvaluationRow> rows;

  {
    baselines::AdaBoostDetector detector{
        baselines::AdaBoostDetectorConfig{}};
    std::printf("Training %s (density features + boosted trees)...\n",
                detector.name().c_str());
    rows.push_back(
        eval::evaluate_detector(detector, bench.train, bench.test, rng));
  }
  {
    baselines::OnlineLearnerDetector detector{
        baselines::OnlineLearnerConfig{}};
    std::printf("Training %s (CCS features + MI selection + online "
                "logistic)...\n",
                detector.name().c_str());
    rows.push_back(
        eval::evaluate_detector(detector, bench.train, bench.test, rng));
  }
  {
    baselines::DctCnnDetector detector{
        baselines::DctCnnConfig::compact(kImageSize)};
    std::printf("Training %s (DCT feature tensor + float CNN + biased "
                "learning)...\n",
                detector.name().c_str());
    rows.push_back(
        eval::evaluate_detector(detector, bench.train, bench.test, rng));
  }
  {
    core::BnnHotspotDetector detector{
        core::BnnDetectorConfig::compact(kImageSize)};
    std::printf("Training %s (binarized residual network, packed "
                "inference)...\n",
                detector.name().c_str());
    rows.push_back(
        eval::evaluate_detector(detector, bench.train, bench.test, rng));
  }

  std::printf("\n%s", eval::comparison_table(rows).to_string().c_str());
  std::printf("\n(Paper's Table 3 on the full benchmark: 84.2 / 97.7 / 98.2 "
              "/ 99.2 %% accuracy in the same order.)\n");
  return kExitOk;
}
