// Quickstart: generate a small benchmark, train the binarized residual
// network, evaluate it with the paper's metrics, and save the model.
//
//   ./examples/quickstart [scale] [--metrics-out <path>] [--trace-out <path>]
//
// `scale` is the fraction of the paper's Table-2 sample counts to generate
// (default 0.02 so the whole run takes well under a minute on one core).
// `--metrics-out` enables trace spans and writes a JSON metrics snapshot
// (per-epoch training metrics, layer/phase timings, ODST components,
// manifest). `--trace-out` additionally records an event timeline and
// writes it as Chrome trace-event JSON.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "cli_util.h"
#include "core/bnn_detector.h"
#include "dataset/generator.h"
#include "eval/evaluation.h"
#include "nn/serialize.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace {

std::string iso_timestamp() {
  const std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hotspot;
  using namespace hotspot::examples;
  util::set_log_level(util::LogLevel::kInfo);
  double scale = 0.02;
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        return usage_error("--metrics-out requires a path", nullptr);
      }
      metrics_out = argv[++i];
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        return usage_error("--trace-out requires a path", nullptr);
      }
      trace_out = argv[++i];
    } else if (!parse_positive_double(arg.c_str(), &scale)) {
      return usage_error("scale must be a positive number", arg.c_str());
    }
  }
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::set_trace_enabled(true);
  }
  if (!trace_out.empty()) {
    obs::set_timeline_enabled(true);
  }
  constexpr std::int64_t kImageSize = 32;

  // 1. Synthesize an ICCAD-2012-like benchmark: Manhattan clips labelled by
  //    the lithography proxy (see DESIGN.md for the substitution).
  std::printf("Generating benchmark at scale %.3f...\n", scale);
  const dataset::Benchmark bench = dataset::generate_benchmark(
      dataset::iccad2012_config(scale, kImageSize));
  std::printf("  train: %zu clips (%lld hotspots)\n", bench.train.size(),
              static_cast<long long>(bench.train.stats().hotspots));
  std::printf("  test:  %zu clips (%lld hotspots)\n\n", bench.test.size(),
              static_cast<long long>(bench.test.stats().hotspots));

  // 2. Train the paper's detector: 8-layer compact BRNN (the 12-layer
  //    config is BrnnConfig::paper()), NAdam, flips, plateau LR decay, then
  //    the biased finetune.
  core::BnnDetectorConfig config = core::BnnDetectorConfig::compact(kImageSize);
  config.trainer.verbose = true;
  core::BnnHotspotDetector detector(config);
  util::Rng rng(42);
  std::printf("Training %s...\n", detector.name().c_str());
  const eval::EvaluationRow row =
      eval::evaluate_detector(detector, bench.train, bench.test, rng);

  // 3. Report with the paper's metrics (Eq. 1-3).
  std::printf("\nResults on the held-out split:\n");
  std::printf("  confusion: %s\n", row.matrix.to_string().c_str());
  std::printf("  accuracy (hotspot recall): %.1f%%\n",
              row.matrix.accuracy() * 100.0);
  std::printf("  false alarms: %lld\n",
              static_cast<long long>(row.matrix.false_alarm()));
  std::printf("  runtime: %.2f s (packed XNOR-popcount inference)\n",
              row.eval_seconds);
  std::printf("  ODST (t_ls = 10 s): %.0f s\n", row.odst(10.0));

  // 4. Persist the trained model for deploy_inference. The write is atomic
  //    (tmp + fsync + rename), so a crash here cannot leave a torn file; a
  //    reported failure means the model was NOT saved and the run must not
  //    pretend otherwise.
  const char* path = "quickstart_model.bin";
  if (const nn::SaveResult saved = nn::save_checkpoint(path, detector.model());
      !saved.ok()) {
    std::fprintf(stderr, "error: failed to save model (%s): %s\n",
                 nn::io_status_name(saved.status), saved.message.c_str());
    return kExitRuntime;
  }
  std::printf("\nSaved trained model to %s (run ./deploy_inference next).\n",
              path);

  if (!metrics_out.empty()) {
    const obs::RunManifest manifest = obs::collect_manifest(iso_timestamp());
    if (!obs::write_metrics_json(metrics_out,
                                 obs::MetricsRegistry::global().snapshot(),
                                 obs::collect_span_report(), &manifest)) {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   metrics_out.c_str());
      return kExitRuntime;
    }
    std::printf("Wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::write_chrome_trace(trace_out, obs::collect_timeline())) {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   trace_out.c_str());
      return kExitRuntime;
    }
    std::printf("Wrote Chrome trace to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n", trace_out.c_str());
  }
  return kExitOk;
}
