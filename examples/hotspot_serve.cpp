// Hotspot detection as a service (DESIGN.md §15): a persistent server that
// loads a trained checkpoint into the model registry and classifies clips
// for many concurrent clients, micro-batching across them.
//
//   ./examples/quickstart
//   ./examples/hotspot_serve quickstart_model.bin --grid 32 --port 0 \
//       --port-file /tmp/serve.port &
//   ./examples/serve_client $(cat /tmp/serve.port) --clips 8 --grid 32
//
// The bound port is printed on stdout (and written to --port-file when
// given) so scripts never have to parse logs. With --state <path> the
// registry persists the active model: a killed-and-restarted server with
// the same --state resumes serving without naming the model again.
//
// Exit codes: 0 after a clean shutdown (SIGINT/SIGTERM or a client Shutdown
// frame), 1 on runtime failure (model load, bind), 2 on a bad invocation.
//
// --stall-ms is a chaos/debug flag: it arms the predict stall fault point,
// wedging the batch worker on every model call so the CI smoke leg can
// fill the admission queue and observe a deterministic Reject(kQueueFull).
#include <csignal>
#include <cstdio>
#include <string>

#include "cli_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admin.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/fault_injection.h"
#include "util/parallel.h"

namespace {

hotspot::serve::Server* g_server = nullptr;
// Set before signal handlers are installed, then never written again, so
// the fatal handler reads a stable pointer/string.
std::string g_flight_dump_path;

void handle_signal(int /*signum*/) {
  // async-signal-safe enough for a demo binary: stop() only touches
  // mutexes/sockets, and the alternative (self-pipe) buys little here.
  if (g_server != nullptr) {
    g_server->stop();
  }
}

// Fatal-signal path: persist the flight recorder (bounded spins, so a
// crashed writer holding a slot lock cannot wedge the handler), then
// re-raise with the default disposition so the exit status still reports
// the crash. Not strictly async-signal-safe — this is best-effort forensics
// on the way down, and a failed dump must never mask the original fault.
void handle_fatal(int signum) {
  std::signal(signum, SIG_DFL);
  if (g_server != nullptr && !g_flight_dump_path.empty()) {
    g_server->flight_recorder().dump(g_flight_dump_path, nullptr);
  }
  std::raise(signum);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hotspot;
  using namespace hotspot::examples;
  std::string model_path;
  std::string state_path;
  std::string port_file;
  std::string metrics_out;
  std::string trace_out;
  std::string admin_port_file;
  serve::ServerConfig config;
  serve::AdminConfig admin_config;
  long admin_port = -1;  // -1 = admin endpoint disabled
  long grid = 32;
  long stall_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        return nullptr;
      }
      (void)flag;
      return argv[++i];
    };
    if (arg == "--port") {
      long port = 0;
      if (!parse_long(next("--port"), 0, 65535, &port)) {
        return usage_error("--port expects an integer in [0, 65535]",
                           argv[i]);
      }
      config.port = static_cast<int>(port);
    } else if (arg == "--port-file") {
      const char* value = next("--port-file");
      if (value == nullptr) {
        return usage_error("--port-file requires a path", nullptr);
      }
      port_file = value;
    } else if (arg == "--state") {
      const char* value = next("--state");
      if (value == nullptr) {
        return usage_error("--state requires a path", nullptr);
      }
      state_path = value;
    } else if (arg == "--grid") {
      if (!parse_positive(next("--grid"), 4096, &grid)) {
        return usage_error("--grid expects an integer in [1, 4096]", argv[i]);
      }
    } else if (arg == "--max-batch") {
      long value = 0;
      if (!parse_positive(next("--max-batch"), 1 << 20, &value)) {
        return usage_error("--max-batch expects a positive integer", argv[i]);
      }
      config.batcher.max_batch_clips = static_cast<std::size_t>(value);
    } else if (arg == "--queue-cap") {
      long value = 0;
      if (!parse_positive(next("--queue-cap"), 1 << 24, &value)) {
        return usage_error("--queue-cap expects a positive integer", argv[i]);
      }
      config.batcher.max_queue_clips = static_cast<std::size_t>(value);
    } else if (arg == "--deadline-us") {
      long value = 0;
      if (!parse_long(next("--deadline-us"), 0, 60'000'000, &value)) {
        return usage_error("--deadline-us expects microseconds in [0, 6e7]",
                           argv[i]);
      }
      config.batcher.batch_deadline = std::chrono::microseconds(value);
    } else if (arg == "--max-clips") {
      long value = 0;
      if (!parse_positive(next("--max-clips"), 1 << 20, &value)) {
        return usage_error("--max-clips expects a positive integer", argv[i]);
      }
      config.max_clips_per_request = static_cast<std::size_t>(value);
    } else if (arg == "--threads") {
      // Same strict validator as HOTSPOT_NUM_THREADS: garbage or overflow
      // is a usage error naming the offending value, never a silent default.
      int threads = 0;
      const char* value = next("--threads");
      if (!util::parse_thread_count_strict(value, &threads)) {
        return usage_error("--threads expects an integer in [1, 1024]",
                           value != nullptr ? value : "<missing>");
      }
      util::set_parallel_threads(threads);
    } else if (arg == "--metrics-out") {
      const char* value = next("--metrics-out");
      if (value == nullptr) {
        return usage_error("--metrics-out requires a path", nullptr);
      }
      metrics_out = value;
    } else if (arg == "--stall-ms") {
      if (!parse_long(next("--stall-ms"), 1, 60'000, &stall_ms)) {
        return usage_error("--stall-ms expects milliseconds in [1, 60000]",
                           argv[i]);
      }
    } else if (arg == "--admin-port") {
      if (!parse_long(next("--admin-port"), 0, 65535, &admin_port)) {
        return usage_error("--admin-port expects an integer in [0, 65535]",
                           argv[i]);
      }
    } else if (arg == "--admin-port-file") {
      const char* value = next("--admin-port-file");
      if (value == nullptr) {
        return usage_error("--admin-port-file requires a path", nullptr);
      }
      admin_port_file = value;
    } else if (arg == "--slo-p99-ms") {
      double value = 0.0;
      if (!parse_positive_double(next("--slo-p99-ms"), &value)) {
        return usage_error("--slo-p99-ms expects a positive number", argv[i]);
      }
      config.slo.p99_objective_seconds = value / 1000.0;
    } else if (arg == "--slo-availability") {
      double value = 0.0;
      if (!parse_positive_double(next("--slo-availability"), &value) ||
          value >= 1.0) {
        return usage_error("--slo-availability expects a value in (0, 1)",
                           argv[i]);
      }
      config.slo.availability_objective = value;
    } else if (arg == "--slo-window-s") {
      long value = 0;
      if (!parse_positive(next("--slo-window-s"), 86'400, &value)) {
        return usage_error("--slo-window-s expects seconds in [1, 86400]",
                           argv[i]);
      }
      config.slo.window_seconds = static_cast<std::size_t>(value);
    } else if (arg == "--flight-size") {
      long value = 0;
      if (!parse_positive(next("--flight-size"), 1 << 20, &value)) {
        return usage_error("--flight-size expects a positive integer",
                           argv[i]);
      }
      config.flight_recorder_capacity = static_cast<std::size_t>(value);
    } else if (arg == "--flight-dump") {
      const char* value = next("--flight-dump");
      if (value == nullptr) {
        return usage_error("--flight-dump requires a path", nullptr);
      }
      g_flight_dump_path = value;
    } else if (arg == "--trace-out") {
      const char* value = next("--trace-out");
      if (value == nullptr) {
        return usage_error("--trace-out requires a path", nullptr);
      }
      trace_out = value;
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag", arg.c_str());
    } else if (model_path.empty()) {
      model_path = arg;
    } else {
      return usage_error("unexpected positional argument", arg.c_str());
    }
  }
  if (config.max_clips_per_request > config.batcher.max_batch_clips) {
    return usage_error(
        "--max-clips must not exceed --max-batch (requests are never split)",
        std::to_string(config.max_clips_per_request).c_str());
  }

  serve::ModelRegistry registry(state_path);
  if (!model_path.empty()) {
    const nn::LoadResult result =
        registry.load(model_path, static_cast<std::int64_t>(grid));
    if (!result.ok()) {
      std::fprintf(stderr, "error: cannot load model '%s': %s\n",
                   model_path.c_str(), result.message.c_str());
      return kExitRuntime;
    }
    std::printf("model %s registered as version %llu (grid %ld)\n",
                model_path.c_str(),
                static_cast<unsigned long long>(registry.version()), grid);
  } else if (!state_path.empty()) {
    const nn::LoadResult result = registry.restore();
    if (result.ok()) {
      std::printf("restored model %s (version %llu) from %s\n",
                  registry.active()->path().c_str(),
                  static_cast<unsigned long long>(registry.version()),
                  state_path.c_str());
    } else {
      std::fprintf(stderr,
                   "warning: no model restored from %s (%s); serving "
                   "Reject(kModelUnavailable) until a SwapModel arrives\n",
                   state_path.c_str(), result.message.c_str());
    }
  } else {
    std::fprintf(stderr,
                 "warning: no model and no --state; serving "
                 "Reject(kModelUnavailable) until a SwapModel arrives\n");
  }

  if (stall_ms > 0) {
    util::fault_set_stall_ms(static_cast<int>(stall_ms));
    util::fault_arm_sticky(util::FaultPoint::kScanPredictStall);
    std::printf("chaos: every predict stalls %ld ms\n", stall_ms);
  }

  serve::Server server(config, &registry);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }
  std::printf("serving on 127.0.0.1:%d\n", server.bound_port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* file = std::fopen(port_file.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   port_file.c_str());
      server.stop();
      return kExitRuntime;
    }
    std::fprintf(file, "%d\n", server.bound_port());
    std::fclose(file);
  }

  admin_config.port = static_cast<int>(admin_port < 0 ? 0 : admin_port);
  admin_config.flight_dump_path = g_flight_dump_path;
  serve::AdminServer admin(admin_config, &server);
  if (admin_port >= 0) {
    if (!admin.start(&error)) {
      std::fprintf(stderr, "error: admin endpoint: %s\n", error.c_str());
      server.stop();
      return kExitRuntime;
    }
    std::printf("admin endpoint on 127.0.0.1:%d\n", admin.bound_port());
    std::fflush(stdout);
    if (!admin_port_file.empty()) {
      std::FILE* file = std::fopen(admin_port_file.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "error: cannot write --admin-port-file %s\n",
                     admin_port_file.c_str());
        server.stop();
        return kExitRuntime;
      }
      std::fprintf(file, "%d\n", admin.bound_port());
      std::fclose(file);
    }
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Fatal signals persist the flight recorder before the default
  // disposition kills the process: the last N requests survive the crash.
  std::signal(SIGSEGV, handle_fatal);
  std::signal(SIGABRT, handle_fatal);
  std::signal(SIGBUS, handle_fatal);
  std::signal(SIGFPE, handle_fatal);
  std::signal(SIGILL, handle_fatal);
  server.wait();
  server.stop();

  if (!g_flight_dump_path.empty()) {
    std::string dump_error;
    if (server.flight_recorder().dump(g_flight_dump_path, &dump_error)) {
      std::printf("flight recorder written to %s\n",
                  g_flight_dump_path.c_str());
    } else {
      std::fprintf(stderr, "warning: flight dump failed: %s\n",
                   dump_error.c_str());
    }
  }
  if (!metrics_out.empty()) {
    // Refresh the derived gauges so the final export carries them too.
    server.slo_monitor().publish();
    obs::publish_timeline_metrics();
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    if (!obs::write_metrics_json(metrics_out, snapshot,
                                 obs::collect_span_report())) {
      g_server = nullptr;
      return kExitRuntime;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    // Span timeline plus the request flows from the flight recorder, one
    // chrome://tracing file: phases line up because both record against the
    // process steady clock.
    const std::string trace = obs::to_chrome_trace(
        obs::collect_timeline(), server.flight_recorder().snapshot());
    std::FILE* file = std::fopen(trace_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write --trace-out %s\n",
                   trace_out.c_str());
      g_server = nullptr;
      return kExitRuntime;
    }
    std::fprintf(file, "%s\n", trace.c_str());
    std::fclose(file);
    std::printf("chrome trace written to %s\n", trace_out.c_str());
  }
  g_server = nullptr;
  std::printf("clean shutdown\n");
  return kExitOk;
}
