// Deterministic fault injection for crash-safety and chaos tests.
//
// Production code sprinkles named failure points through its I/O and scan
// paths (`fault_should_fail(FaultPoint::kCheckpointWrite)` before each
// write, and so on). In normal operation every probe returns false at the
// cost of one relaxed atomic load. Tests arm a point in one of two modes:
//
//   * one-shot (fault_arm): the N-th probe of that point reports failure,
//     then the point disarms itself. A loop over countdown values simulates
//     a crash at every interruption point of a multi-step operation —
//     exactly what the checkpoint atomicity and scan kill-and-resume sweeps
//     need. Because the fault fires once, it models a *transient* error
//     (ENOSPC that clears, a cosmic-ray compute fault): a retry succeeds.
//
//   * sticky (fault_arm_sticky): every probe from the N-th onward fails
//     until the point is cleared. This models a *persistent* fault (bad
//     window geometry, dead allocator) and is what drives retry exhaustion
//     into quarantine in the scan pipeline.
//
// Stall points (fault_maybe_stall) additionally sleep for a configurable
// duration when they fire, so deadline/watchdog code can be tested against
// a wedged window without wall-clock-scale test times.
//
// The harness also bundles file-corruption helpers (truncation, single-bit
// flips) so integrity tests can damage a checkpoint or journal the way torn
// writes and bit rot do, without hand-rolling file surgery in every test.
//
// State is global and thread-safe; tests must call fault_clear_all() (or use
// the ScopedFaultInjection RAII guard) so armed faults never leak across
// test cases.
#pragma once

#include <cstdint>
#include <string>

namespace hotspot::util {

// Failure points instrumented in production code. Keep in sync with
// fault_point_name().
enum class FaultPoint {
  kCheckpointWrite = 0,    // any payload write to the checkpoint temp file
  kCheckpointFlush = 1,    // the flush/fsync before publishing
  kCheckpointRename = 2,   // the atomic rename that publishes the file
  kJournalWrite = 3,       // any byte write to the scan journal / snapshot
  kJournalFlush = 4,       // the journal's per-record flush/fsync
  kJournalRename = 5,      // the atomic rename publishing a snapshot
  kScanRasterCompute = 6,  // window rasterization (compute fault)
  kScanRasterStall = 7,    // window rasterization (stall; sleeps on fire)
  kScanAlloc = 8,          // allocation in the scan path (dedup insert,
                           // batch assembly)
  kScanPredictCompute = 9,   // batch classification (compute fault)
  kScanPredictStall = 10,    // batch classification (stall; sleeps on fire)
  kScanAbort = 11,           // simulated process death in the scan consumer
};
inline constexpr int kFaultPointCount = 12;

const char* fault_point_name(FaultPoint point);

// Arms `point` so that its `countdown`-th probe (1-based) fails. Until then
// probes pass; after firing the point disarms itself, so at most one failure
// per arm call. countdown must be >= 1.
void fault_arm(FaultPoint point, int countdown);

// Arms `point` so that every probe from the `after`-th (1-based) onward
// fails until the point is cleared — a persistent fault. after must be >= 1.
void fault_arm_sticky(FaultPoint point, int after = 1);

// Disarms one point / every point. fault_clear_all also resets the stall
// duration to zero.
void fault_clear(FaultPoint point);
void fault_clear_all();

// Probe called by instrumented code. Returns true exactly when an armed
// one-shot countdown reaches zero or a sticky arm is in effect; always
// false for unarmed points.
bool fault_should_fail(FaultPoint point);

// Stall duration (milliseconds) that firing stall points sleep for.
void fault_set_stall_ms(int ms);
int fault_stall_ms();

// Probe for stall points: when the probe fires, sleeps fault_stall_ms()
// and returns true. Instrumented code calls this where a real stall (page
// cache thrash, pathological geometry) would wedge the pipeline.
bool fault_maybe_stall(FaultPoint point);

// Number of times `point` has fired since the last clear — lets tests assert
// that the simulated crash actually happened.
int fault_trip_count(FaultPoint point);

// Total probes observed on `point` since the last clear (fired or not).
// Tests use this to discover how many interruption points an operation has,
// then sweep countdown = 1..N.
int fault_probe_count(FaultPoint point);

// RAII guard: clears all fault state on construction and destruction so a
// test cannot leak armed faults into its neighbours.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { fault_clear_all(); }
  ~ScopedFaultInjection() { fault_clear_all(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// --- File corruption helpers -------------------------------------------

// Size of `path` in bytes, or -1 if it cannot be stat'ed.
std::int64_t file_size_of(const std::string& path);

// Truncates `path` to `new_size` bytes (must be <= current size). Returns
// false if the file is missing or the OS call fails.
bool corrupt_truncate(const std::string& path, std::int64_t new_size);

// Flips bit `bit` (0-7) of byte `byte_offset` in place. Returns false if the
// offset is out of range or I/O fails.
bool corrupt_flip_bit(const std::string& path, std::int64_t byte_offset,
                      int bit);

}  // namespace hotspot::util
