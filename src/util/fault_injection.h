// Deterministic fault injection for crash-safety tests.
//
// Production code sprinkles named failure points through its I/O paths
// (`fault_should_fail(FaultPoint::kCheckpointWrite)` before each write, and
// so on). In normal operation every probe returns false at the cost of one
// relaxed atomic load. Tests arm a point with a countdown: the N-th probe of
// that point reports failure, which the instrumented code turns into the
// same error path a real ENOSPC / crash / yanked disk would take. Because
// the countdown selects *which* probe fires, a loop over countdown values
// simulates a crash at every interruption point of a multi-step operation —
// exactly what the checkpoint atomicity tests need.
//
// The harness also bundles file-corruption helpers (truncation, single-bit
// flips) so integrity tests can damage a checkpoint the way torn writes and
// bit rot do, without hand-rolling file surgery in every test.
//
// State is global and thread-safe; tests must call fault_clear_all() (or use
// the ScopedFaultInjection RAII guard) so armed faults never leak across
// test cases.
#pragma once

#include <cstdint>
#include <string>

namespace hotspot::util {

// Failure points instrumented in production code. Keep in sync with
// fault_point_name().
enum class FaultPoint {
  kCheckpointWrite = 0,   // any payload write to the temp file
  kCheckpointFlush = 1,   // the flush/fsync before publishing
  kCheckpointRename = 2,  // the atomic rename that publishes the file
};
inline constexpr int kFaultPointCount = 3;

const char* fault_point_name(FaultPoint point);

// Arms `point` so that its `countdown`-th probe (1-based) fails. Until then
// probes pass; after firing the point disarms itself, so at most one failure
// per arm call. countdown must be >= 1.
void fault_arm(FaultPoint point, int countdown);

// Disarms one point / every point.
void fault_clear(FaultPoint point);
void fault_clear_all();

// Probe called by instrumented code. Returns true exactly when an armed
// countdown reaches zero; always false for unarmed points.
bool fault_should_fail(FaultPoint point);

// Number of times `point` has fired since the last clear — lets tests assert
// that the simulated crash actually happened.
int fault_trip_count(FaultPoint point);

// Total probes observed on `point` since the last clear (fired or not).
// Tests use this to discover how many interruption points an operation has,
// then sweep countdown = 1..N.
int fault_probe_count(FaultPoint point);

// RAII guard: clears all fault state on construction and destruction so a
// test cannot leak armed faults into its neighbours.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { fault_clear_all(); }
  ~ScopedFaultInjection() { fault_clear_all(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// --- File corruption helpers -------------------------------------------

// Size of `path` in bytes, or -1 if it cannot be stat'ed.
std::int64_t file_size_of(const std::string& path);

// Truncates `path` to `new_size` bytes (must be <= current size). Returns
// false if the file is missing or the OS call fails.
bool corrupt_truncate(const std::string& path, std::int64_t new_size);

// Flips bit `bit` (0-7) of byte `byte_offset` in place. Returns false if the
// offset is out of range or I/O fails.
bool corrupt_flip_bit(const std::string& path, std::int64_t byte_offset,
                      int bit);

}  // namespace hotspot::util
