#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace hotspot::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(delimiter, begin);
    if (end == std::string_view::npos) {
      parts.emplace_back(text.substr(begin));
      return parts;
    }
    parts.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t first = 0;
  while (first < text.size() &&
         std::isspace(static_cast<unsigned char>(text[first]))) {
    ++first;
  }
  std::size_t last = text.size();
  while (last > first &&
         std::isspace(static_cast<unsigned char>(text[last - 1]))) {
    --last;
  }
  return text.substr(first, last - first);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      result += separator;
    }
    result += parts[i];
  }
  return result;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_count(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) {
      grouped += ',';
    }
    grouped += digits[i];
  }
  return negative ? "-" + grouped : grouped;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace hotspot::util
