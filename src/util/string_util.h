// Small string helpers shared by the table formatter and file I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hotspot::util {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

// Joins values with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Formats a double with the given number of decimal places.
std::string format_double(double value, int decimals);

// Formats counts with thousands separators, e.g. 17096 -> "17,096".
std::string format_count(long long value);

// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace hotspot::util
