#include "util/json.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace hotspot::util {

bool JsonValue::as_bool() const {
  HOTSPOT_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double JsonValue::as_number() const {
  HOTSPOT_CHECK(is_number()) << "JSON value is not a number";
  return number_;
}

const std::string& JsonValue::as_string() const {
  HOTSPOT_CHECK(is_string()) << "JSON value is not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  HOTSPOT_CHECK(is_array()) << "JSON value is not an array";
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  HOTSPOT_CHECK(is_object()) << "JSON value is not an object";
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) {
      found = &value;
    }
  }
  return found;
}

std::size_t JsonValue::size() const {
  if (is_array()) {
    return array_.size();
  }
  if (is_object()) {
    return object_.size();
  }
  return 0;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.type_ = JsonType::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.type_ = JsonType::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.type_ = JsonType::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = JsonType::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = JsonType::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue& out) {
    skip_whitespace();
    if (!parse_value(out, /*depth=*/0)) {
      return false;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool fail(const std::string& message) {
    std::ostringstream out;
    out << message << " at offset " << pos_;
    error_ = out.str();
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool consume_literal(const char* literal) {
    const std::size_t length = std::strlen(literal);
    if (text_.compare(pos_, length, literal) != 0) {
      return false;
    }
    pos_ += length;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!consume_literal("null")) {
          return fail("invalid literal");
        }
        out = JsonValue::make_null();
        return true;
      case 't':
        if (!consume_literal("true")) {
          return fail("invalid literal");
        }
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!consume_literal("false")) {
          return fail("invalid literal");
        }
        out = JsonValue::make_bool(false);
        return true;
      case '"':
        return parse_string_value(out);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_string_body(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        return fail("unterminated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (enough for our own files,
          // which never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(JsonValue& out) {
    std::string text;
    if (!parse_string_body(text)) {
      return false;
    }
    out = JsonValue::make_string(std::move(text));
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return fail("invalid value");
    }
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return fail("number out of range");
    }
    out = JsonValue::make_number(value);
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      skip_whitespace();
      if (!parse_value(item, depth + 1)) {
        return false;
      }
      items.push_back(std::move(item));
      skip_whitespace();
      if (pos_ >= text_.size()) {
        return fail("unterminated array");
      }
      const char c = text_[pos_];
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("',' or ']' expected in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("object key expected");
      }
      std::string key;
      if (!parse_string_body(key)) {
        return false;
      }
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("':' expected after object key");
      }
      ++pos_;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) {
        return fail("unterminated object");
      }
      const char c = text_[pos_];
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("',' or '}' expected in object");
    }
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
  Parser parser(text, error);
  return parser.parse_document(out);
}

bool parse_json_file(const std::string& path, JsonValue& out,
                     std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    error = "read error on " + path;
    return false;
  }
  return parse_json(contents.str(), out, error);
}

}  // namespace hotspot::util
