// PGM (portable graymap) export for rasters — clip images, aerial
// intensities, printed shapes. Every image-producing example and debugging
// session can dump its tensors without an image library.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace hotspot::util {

// Writes a rank-2 tensor as binary PGM (P5), mapping [lo, hi] to 0..255
// (values are clamped). Returns false on I/O failure.
bool write_pgm(const std::string& path, const tensor::Tensor& image,
               float lo = 0.0f, float hi = 1.0f);

}  // namespace hotspot::util
