#include "util/pgm.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

#include "util/check.h"
#include "util/logging.h"

namespace hotspot::util {

bool write_pgm(const std::string& path, const tensor::Tensor& image,
               float lo, float hi) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_GT(hi, lo);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  out << "P5\n" << image.dim(1) << " " << image.dim(0) << "\n255\n";
  if (!out.good()) {
    HOTSPOT_LOG(kError) << "write failure on " << path << " (header)";
    return false;
  }
  const float scale = 255.0f / (hi - lo);
  std::string payload(static_cast<std::size_t>(image.numel()), '\0');
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    const float value = std::clamp((image[i] - lo) * scale, 0.0f, 255.0f);
    // Round to nearest: truncation would map e.g. 254.9 down to 254 and
    // bias every mid-range intensity half a level dark.
    payload[static_cast<std::size_t>(i)] =
        static_cast<char>(static_cast<unsigned char>(std::lround(value)));
  }
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out.good()) {
    HOTSPOT_LOG(kError) << "write failure on " << path << " (payload)";
    return false;
  }
  return true;
}

}  // namespace hotspot::util
