#include "util/pgm.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"
#include "util/logging.h"

namespace hotspot::util {

bool write_pgm(const std::string& path, const tensor::Tensor& image,
               float lo, float hi) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_GT(hi, lo);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  out << "P5\n" << image.dim(1) << " " << image.dim(0) << "\n255\n";
  const float scale = 255.0f / (hi - lo);
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    const float value = std::clamp((image[i] - lo) * scale, 0.0f, 255.0f);
    const auto byte = static_cast<unsigned char>(value);
    out.write(reinterpret_cast<const char*>(&byte), 1);
  }
  return out.good();
}

}  // namespace hotspot::util
