// Bounded producer/consumer handoff queue.
//
// This is the double-buffered BatchQueue the streaming scan pipeline
// (DESIGN.md §11) introduced, generalized so the serving layer's admission
// scheduler (DESIGN.md §15) can share one audited implementation:
//
//   * capacity is measured in caller-defined units (push takes a `weight`),
//     so the scan pipeline bounds *batches in flight* (weight 1, capacity 2
//     = the classic double buffer) while the serve admission queue bounds
//     *clips queued* (weight = clips per request);
//   * push() blocks until space frees (the scan producer's backpressure),
//     try_push() fails immediately instead (the serve layer's load-shed
//     path — a client is told "queue full" rather than held);
//   * pop() blocks until an item, close(), or abort(); pop_until() gives
//     the consumer a deadline, which is how micro-batches stop waiting for
//     stragglers and ship what they have.
//
// close() ends production: queued items still drain, then pops return
// nullopt. abort() ends consumption: queued items are dropped, blocked
// producers and consumers wake immediately, and every later push fails —
// the "consumer threw, stop the producer" path.
//
// Multi-producer / multi-consumer safe; every operation is serialized on
// one internal mutex (the payloads are batches, not bytes, so the lock is
// never hot).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.h"

namespace hotspot::util {

template <typename T>
class BoundedQueue {
 public:
  // `capacity` is the maximum total weight queued; a single item heavier
  // than the capacity is rejected by try_push and refused (CHECK) by push,
  // so a misconfigured producer cannot wedge the queue forever.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    HOTSPOT_CHECK_GT(capacity, std::size_t{0}) << "queue needs capacity";
  }

  // Blocks until the item fits; false when the queue was closed or aborted
  // before the item could be enqueued (the item is dropped).
  bool push(T item, std::size_t weight = 1) {
    HOTSPOT_CHECK_LE(weight, capacity_)
        << "item weight exceeds queue capacity";
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [&] {
      return closed_ || weight_ + weight <= capacity_;
    });
    if (closed_) {
      return false;
    }
    enqueue_locked(std::move(item), weight);
    return true;
  }

  // Never blocks: false when the item does not fit right now (or the queue
  // is closed/aborted). This is the admission-control path — the caller
  // turns a false into a typed "shed" response instead of waiting.
  bool try_push(T item, std::size_t weight = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || weight > capacity_ || weight_ + weight > capacity_) {
      return false;
    }
    enqueue_locked(std::move(item), weight);
    return true;
  }

  // Blocks until an item is available; nullopt once the queue is closed
  // (or aborted) and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    item_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return dequeue_locked();
  }

  // Like pop(), but gives up at `deadline`: nullopt on timeout as well as
  // on closed-and-drained (disambiguate with closed() if it matters).
  template <typename Clock, typename Duration>
  std::optional<T> pop_until(
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    item_cv_.wait_until(lock, deadline,
                        [&] { return closed_ || !queue_.empty(); });
    return dequeue_locked();
  }

  // Non-blocking pop; nullopt when nothing is queued right now.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return dequeue_locked();
  }

  // Producers are done; queued items still drain, then pop() returns
  // nullopt. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  // Consumer failed: drop everything queued, wake every blocked producer
  // and consumer, and fail all later pushes. Implies close().
  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    queue_.clear();
    weight_ = 0;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  // Total weight currently queued.
  std::size_t weight() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return weight_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  void enqueue_locked(T item, std::size_t weight) {
    queue_.emplace_back(std::move(item), weight);
    weight_ += weight;
    item_cv_.notify_one();
  }

  std::optional<T> dequeue_locked() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    std::optional<T> item(std::move(queue_.front().first));
    weight_ -= queue_.front().second;
    queue_.pop_front();
    space_cv_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable item_cv_;
  std::condition_variable space_cv_;
  std::deque<std::pair<T, std::size_t>> queue_;
  std::size_t weight_ = 0;
  bool closed_ = false;
};

}  // namespace hotspot::util
