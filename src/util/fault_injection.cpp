#include "util/fault_injection.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sys/stat.h>
#include <thread>

#include "util/check.h"

namespace hotspot::util {
namespace {

struct PointState {
  // Remaining probes before the one-shot fires; 0 = disarmed.
  std::atomic<int> countdown{0};
  // Sticky mode: probes with 1-based sequence >= sticky_after fire until
  // cleared; 0 = disarmed.
  std::atomic<int> sticky_after{0};
  std::atomic<int> trips{0};
  std::atomic<int> probes{0};
};

PointState g_points[kFaultPointCount];
std::atomic<int> g_stall_ms{0};

PointState& state_for(FaultPoint point) {
  const int index = static_cast<int>(point);
  HOTSPOT_CHECK(index >= 0 && index < kFaultPointCount)
      << "unknown fault point " << index;
  return g_points[index];
}

}  // namespace

const char* fault_point_name(FaultPoint point) {
  switch (point) {
    case FaultPoint::kCheckpointWrite:
      return "checkpoint-write";
    case FaultPoint::kCheckpointFlush:
      return "checkpoint-flush";
    case FaultPoint::kCheckpointRename:
      return "checkpoint-rename";
    case FaultPoint::kJournalWrite:
      return "journal-write";
    case FaultPoint::kJournalFlush:
      return "journal-flush";
    case FaultPoint::kJournalRename:
      return "journal-rename";
    case FaultPoint::kScanRasterCompute:
      return "scan-raster-compute";
    case FaultPoint::kScanRasterStall:
      return "scan-raster-stall";
    case FaultPoint::kScanAlloc:
      return "scan-alloc";
    case FaultPoint::kScanPredictCompute:
      return "scan-predict-compute";
    case FaultPoint::kScanPredictStall:
      return "scan-predict-stall";
    case FaultPoint::kScanAbort:
      return "scan-abort";
  }
  return "unknown";
}

void fault_arm(FaultPoint point, int countdown) {
  HOTSPOT_CHECK_GE(countdown, 1);
  state_for(point).countdown.store(countdown, std::memory_order_relaxed);
}

void fault_arm_sticky(FaultPoint point, int after) {
  HOTSPOT_CHECK_GE(after, 1);
  PointState& state = state_for(point);
  // Sticky arming starts a fresh probe sequence so `after` counts from the
  // arm call, not from probes a previous test phase already burned.
  state.probes.store(0, std::memory_order_relaxed);
  state.sticky_after.store(after, std::memory_order_relaxed);
}

void fault_clear(FaultPoint point) {
  PointState& state = state_for(point);
  state.countdown.store(0, std::memory_order_relaxed);
  state.sticky_after.store(0, std::memory_order_relaxed);
  state.trips.store(0, std::memory_order_relaxed);
  state.probes.store(0, std::memory_order_relaxed);
}

void fault_clear_all() {
  for (int i = 0; i < kFaultPointCount; ++i) {
    fault_clear(static_cast<FaultPoint>(i));
  }
  g_stall_ms.store(0, std::memory_order_relaxed);
}

bool fault_should_fail(FaultPoint point) {
  PointState& state = state_for(point);
  const int sequence = state.probes.fetch_add(1, std::memory_order_relaxed) + 1;
  const int sticky = state.sticky_after.load(std::memory_order_relaxed);
  if (sticky > 0 && sequence >= sticky) {
    state.trips.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Fast path: unarmed points never fail and never write.
  if (state.countdown.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  if (state.countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    state.trips.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void fault_set_stall_ms(int ms) {
  HOTSPOT_CHECK_GE(ms, 0);
  g_stall_ms.store(ms, std::memory_order_relaxed);
}

int fault_stall_ms() { return g_stall_ms.load(std::memory_order_relaxed); }

bool fault_maybe_stall(FaultPoint point) {
  if (!fault_should_fail(point)) {
    return false;
  }
  const int ms = fault_stall_ms();
  if (ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  return true;
}

int fault_trip_count(FaultPoint point) {
  return state_for(point).trips.load(std::memory_order_relaxed);
}

int fault_probe_count(FaultPoint point) {
  return state_for(point).probes.load(std::memory_order_relaxed);
}

std::int64_t file_size_of(const std::string& path) {
  struct stat info {};
  if (::stat(path.c_str(), &info) != 0) {
    return -1;
  }
  return static_cast<std::int64_t>(info.st_size);
}

bool corrupt_truncate(const std::string& path, std::int64_t new_size) {
  const std::int64_t size = file_size_of(path);
  if (size < 0 || new_size < 0 || new_size > size) {
    return false;
  }
  return ::truncate(path.c_str(), static_cast<off_t>(new_size)) == 0;
}

bool corrupt_flip_bit(const std::string& path, std::int64_t byte_offset,
                      int bit) {
  if (bit < 0 || bit > 7) {
    return false;
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return false;
  }
  bool ok = false;
  unsigned char byte = 0;
  if (std::fseek(file, static_cast<long>(byte_offset), SEEK_SET) == 0 &&
      std::fread(&byte, 1, 1, file) == 1) {
    byte = static_cast<unsigned char>(byte ^ (1u << bit));
    ok = std::fseek(file, static_cast<long>(byte_offset), SEEK_SET) == 0 &&
         std::fwrite(&byte, 1, 1, file) == 1;
  }
  std::fclose(file);
  return ok;
}

}  // namespace hotspot::util
