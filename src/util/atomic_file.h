// Atomic file publication: write to "<path>.tmp", then finalize() flushes,
// fsyncs, and renames over the target in one step. A crash — or an injected
// fault, see util/fault_injection.h — at any point before the rename leaves
// the previous file (or no file) fully intact; readers can never observe a
// torn write at `path`.
//
// This is the tmp+fsync+rename machinery the HSPT checkpoint writer
// (nn/serialize) introduced, factored out so the scan journal's snapshots
// and any future durable artifact share one audited implementation. The
// writer keeps a running CRC-32 of every byte written, so callers can
// append an integrity footer without hashing twice.
//
// Fault points are parameterized: each writer instance probes its own
// write/flush/rename points, so checkpoint tests and scan-journal chaos
// tests can injure their own subsystem without tripping the other.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/crc32.h"
#include "util/fault_injection.h"

namespace hotspot::util {

class AtomicFileWriter {
 public:
  // The failure points this writer probes (see fault_injection.h).
  struct FaultPoints {
    FaultPoint write;
    FaultPoint flush;
    FaultPoint rename;
  };

  // Opens "<path>.tmp" for writing; ok() reports whether that worked.
  AtomicFileWriter(std::string path, FaultPoints points);

  // Any exit before a successful finalize() removes the temp file and
  // leaves `path` untouched.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  bool ok() const { return file_ != nullptr && error_.empty(); }
  // Human-readable description of the first failure ("<path>: detail").
  const std::string& error() const { return error_; }

  // Appends bytes; returns false (and latches error()) on failure. An
  // injected write fault lands half the chunk, the way a real torn write
  // would.
  bool write(const void* data, std::size_t size);

  bool write_u8(std::uint8_t value) { return write(&value, sizeof(value)); }
  bool write_u32(std::uint32_t value) { return write(&value, sizeof(value)); }
  bool write_u64(std::uint64_t value) { return write(&value, sizeof(value)); }
  bool write_i32(std::int32_t value) { return write(&value, sizeof(value)); }
  bool write_i64(std::int64_t value) { return write(&value, sizeof(value)); }

  // CRC-32 of everything written so far (for integrity footers).
  std::uint32_t crc() const { return crc_.value(); }

  // Flush + fsync + atomic rename onto `path`. Returns false (and latches
  // error()) on failure; the temp file is removed either way.
  bool finalize();

 private:
  std::string path_;
  std::string tmp_path_;
  FaultPoints points_;
  std::FILE* file_ = nullptr;
  Crc32 crc_;
  std::string error_;
};

}  // namespace hotspot::util
