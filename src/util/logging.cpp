#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hotspot::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes the final stream write: HOTSPOT_LOG is reachable from
// parallel_for workers, and without the lock concurrent messages interleave
// partial lines on stderr.
std::mutex& log_mutex() {
  static std::mutex* mutex = new std::mutex();  // leaked: usable at exit
  return *mutex;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) {
    return;
  }
  // Compose the whole line first so the critical section is one write.
  std::string line;
  line.reserve(message.size() + 5);
  line += '[';
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << line;
}

}  // namespace hotspot::util
