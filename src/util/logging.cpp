#include "util/logging.h"

#include <iostream>

namespace hotspot::util {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace hotspot::util
