// Persistent thread pool with a deterministic parallel_for.
//
// Partitioning is a pure function of (range, grain) — never of the thread
// count — so a loop body that writes disjoint outputs per index (or reduces
// entirely within one index) produces bit-identical results at any thread
// count. Chunks are handed to threads dynamically for load balance; only the
// *assignment* varies between runs, never the chunk boundaries or the
// iteration order inside a chunk.
//
// The pool is process-global and lazy: no threads are spawned until the
// first parallel_for that could use more than one, so single-threaded
// configurations pay nothing. The worker count defaults to the hardware
// concurrency and can be overridden with the HOTSPOT_NUM_THREADS environment
// variable or set_parallel_threads() at runtime (benches sweep it).
//
// Nested parallel_for calls (a loop body calling a parallel kernel) execute
// the inner loop inline on the calling worker, so composition is safe and
// still deterministic.
#pragma once

#include <cstdint>
#include <functional>

namespace hotspot::util {

// Loop body: processes the half-open index range [chunk_begin, chunk_end).
using ParallelChunkFn = std::function<void(std::int64_t, std::int64_t)>;

// Number of threads the pool is configured to use (>= 1).
int parallel_threads();

// Sanity cap on any configured thread count. Far above any real machine
// this code targets, but low enough that an overflowed or fat-fingered
// HOTSPOT_NUM_THREADS can never ask the pool to spawn millions of workers.
inline constexpr int kMaxThreadCount = 1024;

// Strict parse of a thread count (the HOTSPOT_NUM_THREADS format, shared
// by the serve CLI's --threads flag): a plain base-10 integer in
// [1, kMaxThreadCount] with no trailing junk. Returns false — without
// writing *out — on garbage, overflow (ERANGE or > INT_MAX; the strtol
// result is range-checked, never truncated), zero/negative values, or
// anything over the cap. `out` may be null to validate only.
bool parse_thread_count_strict(const char* text, int* out);

// Resolves HOTSPOT_NUM_THREADS the way the pool's first use does: unset or
// empty falls back to the hardware concurrency; anything else must satisfy
// parse_thread_count_strict or the process prints the offending value and
// exits 2, matching the other strict env validations (HOTSPOT_SIMD,
// HOTSPOT_BENCH_SCALE). Exposed so tests can probe the exit path without
// constructing a pool.
int resolve_threads_from_env();

// Reconfigures the pool to `threads` (clamped to >= 1). Must not be called
// from inside a parallel region. Overrides HOTSPOT_NUM_THREADS.
void set_parallel_threads(int threads);

// Splits [begin, end) into chunks of at least `grain` indices and runs
// `fn(chunk_begin, chunk_end)` over every chunk, using the calling thread
// plus the pool workers. Runs inline when the range is small, the pool has
// one thread, or the caller is already inside a parallel region. Exceptions
// thrown by `fn` are rethrown (first one wins) on the calling thread after
// the loop completes.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ParallelChunkFn& fn);

}  // namespace hotspot::util
