// Persistent thread pool with a deterministic parallel_for.
//
// Partitioning is a pure function of (range, grain) — never of the thread
// count — so a loop body that writes disjoint outputs per index (or reduces
// entirely within one index) produces bit-identical results at any thread
// count. Chunks are handed to threads dynamically for load balance; only the
// *assignment* varies between runs, never the chunk boundaries or the
// iteration order inside a chunk.
//
// The pool is process-global and lazy: no threads are spawned until the
// first parallel_for that could use more than one, so single-threaded
// configurations pay nothing. The worker count defaults to the hardware
// concurrency and can be overridden with the HOTSPOT_NUM_THREADS environment
// variable or set_parallel_threads() at runtime (benches sweep it).
//
// Nested parallel_for calls (a loop body calling a parallel kernel) execute
// the inner loop inline on the calling worker, so composition is safe and
// still deterministic.
#pragma once

#include <cstdint>
#include <functional>

namespace hotspot::util {

// Loop body: processes the half-open index range [chunk_begin, chunk_end).
using ParallelChunkFn = std::function<void(std::int64_t, std::int64_t)>;

// Number of threads the pool is configured to use (>= 1).
int parallel_threads();

// Parses a thread-count override (the HOTSPOT_NUM_THREADS format): a plain
// base-10 positive integer. Returns `fallback` — with a logged warning —
// for zero, negative, overflowing, or non-numeric input, so a typo in the
// environment can never misconfigure the pool. nullptr/empty input returns
// `fallback` silently (the variable is simply unset).
int parse_thread_count(const char* text, int fallback);

// Reconfigures the pool to `threads` (clamped to >= 1). Must not be called
// from inside a parallel region. Overrides HOTSPOT_NUM_THREADS.
void set_parallel_threads(int threads);

// Splits [begin, end) into chunks of at least `grain` indices and runs
// `fn(chunk_begin, chunk_end)` over every chunk, using the calling thread
// plus the pool workers. Runs inline when the range is small, the pool has
// one thread, or the caller is already inside a parallel region. Exceptions
// thrown by `fn` are rethrown (first one wins) on the calling thread after
// the loop completes.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ParallelChunkFn& fn);

}  // namespace hotspot::util
