// Minimal leveled logging to stderr.
//
// The library is quiet by default (kWarning); trainers and benches raise the
// level explicitly when progress reporting is wanted.
#pragma once

#include <sstream>
#include <string>

namespace hotspot::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits one formatted line; used via the HOTSPOT_LOG macro.
void log_line(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace hotspot::util

#define HOTSPOT_LOG(level) \
  ::hotspot::util::LogMessage(::hotspot::util::LogLevel::level)
