// Plain-text table rendering for benchmark harnesses.
//
// Every bench prints paper-style rows; this keeps the formatting in one
// place so EXPERIMENTS.md and bench output stay readable and consistent.
#pragma once

#include <string>
#include <vector>

namespace hotspot::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends one row; the cell count must match the header.
  void add_row(std::vector<std::string> cells);

  // Renders with aligned columns and a separator under the header.
  std::string to_string() const;

  // Renders as CSV (no alignment padding).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hotspot::util
