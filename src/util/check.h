// Invariant and precondition checking.
//
// HOTSPOT_CHECK fires on programmer misuse (shape mismatches, out-of-range
// indices, protocol violations). These are not recoverable conditions, so the
// failure path prints full context and aborts; it is enabled in all build
// types because the cost is a predictable branch on cold paths.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace hotspot::util {

[[noreturn]] inline void check_failed(std::string_view condition,
                                      std::string_view file, int line,
                                      std::string_view message) {
  std::cerr << "\n[HOTSPOT_CHECK failed] " << condition << "\n  at " << file
            << ":" << line;
  if (!message.empty()) {
    std::cerr << "\n  " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

// Builds the failure message lazily: operator<< chains are only evaluated on
// the failing path.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    check_failed(condition_, file_, line_, stream_.str());
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace hotspot::util

#define HOTSPOT_CHECK(condition)                                            \
  if (condition) {                                                          \
  } else                                                                    \
    ::hotspot::util::CheckMessageBuilder(#condition, __FILE__, __LINE__)

#define HOTSPOT_CHECK_EQ(a, b) \
  HOTSPOT_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define HOTSPOT_CHECK_NE(a, b) \
  HOTSPOT_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define HOTSPOT_CHECK_LT(a, b) \
  HOTSPOT_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define HOTSPOT_CHECK_LE(a, b) \
  HOTSPOT_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define HOTSPOT_CHECK_GT(a, b) \
  HOTSPOT_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define HOTSPOT_CHECK_GE(a, b) \
  HOTSPOT_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
