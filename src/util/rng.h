// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (dataset synthesis, weight
// initialization, mini-batch shuffling, augmentation) draws from an explicit
// Rng instance so experiments are reproducible bit-for-bit at a fixed seed.
// The generator is xoshiro256**, seeded through splitmix64 per the reference
// recommendation; it is small, fast, and has no global state.
#pragma once

#include <cstdint>
#include <vector>

namespace hotspot::util {

// Full generator state, exposed so checkpoints can freeze and resume a
// stream mid-run bit-for-bit (xoshiro words plus the cached Box-Muller
// spare). Treat as opaque outside (de)serialization code.
struct RngState {
  std::uint64_t words[4] = {0, 0, 0, 0};
  double spare_normal = 0.0;
  bool has_spare_normal = false;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform random 64-bit word.
  std::uint64_t next_u64();

  // Uniform real in [0, 1).
  double uniform();

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (cached spare value).
  double normal();

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  // True with probability p.
  bool bernoulli(double p);

  // Derives an independent child generator; children with distinct tags do
  // not share streams with the parent or each other.
  Rng fork(std::uint64_t tag);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  // Snapshot / restore of the complete stream position. A generator whose
  // state was restored produces exactly the sequence the snapshotted one
  // would have; load_state rejects the all-zero word state (invalid for
  // xoshiro, and the marker of a corrupt checkpoint).
  RngState save_state() const;
  void load_state(const RngState& state);

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace hotspot::util
