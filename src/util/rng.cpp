#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace hotspot::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HOTSPOT_CHECK(lo <= hi) << "invalid range [" << lo << ", " << hi << ")";
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HOTSPOT_CHECK(lo <= hi) << "invalid range [" << lo << ", " << hi << "]";
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling removes modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  HOTSPOT_CHECK_GE(stddev, 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  HOTSPOT_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the tag with fresh output so forks are decorrelated from the parent
  // stream and from forks with other tags.
  const std::uint64_t base = next_u64();
  return Rng(base ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
}

RngState Rng::save_state() const {
  RngState state;
  for (int i = 0; i < 4; ++i) {
    state.words[i] = state_[i];
  }
  state.spare_normal = spare_normal_;
  state.has_spare_normal = has_spare_normal_;
  return state;
}

void Rng::load_state(const RngState& state) {
  HOTSPOT_CHECK(state.words[0] != 0 || state.words[1] != 0 ||
                state.words[2] != 0 || state.words[3] != 0)
      << "all-zero RNG state is invalid for xoshiro256**";
  for (int i = 0; i < 4; ++i) {
    state_[i] = state.words[i];
  }
  spare_normal_ = state.spare_normal;
  has_spare_normal_ = state.has_spare_normal;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  shuffle(order);
  return order;
}

}  // namespace hotspot::util
