#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace hotspot::util {
namespace {

// Set while a thread executes chunks, so nested parallel_for calls run
// inline instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

// Upper bound on chunks per loop. A constant (not a multiple of the thread
// count) keeps the partition thread-count-independent while bounding
// per-chunk scheduling overhead on large ranges.
constexpr std::int64_t kMaxChunks = 256;

struct Job {
  const ParallelChunkFn* fn = nullptr;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t chunk = 1;
  std::int64_t chunk_count = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

int default_thread_count() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware >= 1 ? static_cast<int>(hardware) : 1;
}

int env_thread_count() { return resolve_threads_from_env(); }

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int num_threads() {
    std::lock_guard<std::mutex> lock(mutex_);
    return num_threads_;
  }

  void set_num_threads(int threads) {
    HOTSPOT_CHECK(!t_in_parallel_region)
        << "set_parallel_threads inside a parallel region";
    threads = std::max(threads, 1);
    stop_workers();
    std::lock_guard<std::mutex> lock(mutex_);
    num_threads_ = threads;
    // Workers are respawned lazily by the next run().
  }

  void run(const std::shared_ptr<Job>& job) {
    ensure_workers();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++generation_;
    }
    work_cv_.notify_all();
    execute_chunks(*job);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) ==
             job->chunk_count;
    });
    job_.reset();
  }

  ~ThreadPool() { stop_workers(); }

 private:
  ThreadPool() : num_threads_(env_thread_count()) {}

  static void execute_chunks(Job& job) {
    t_in_parallel_region = true;
    for (;;) {
      const std::int64_t index =
          job.next.fetch_add(1, std::memory_order_relaxed);
      if (index >= job.chunk_count) {
        break;
      }
      const std::int64_t lo = job.begin + index * job.chunk;
      const std::int64_t hi = std::min(job.end, lo + job.chunk);
      try {
        (*job.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) {
          job.error = std::current_exception();
        }
      }
      job.completed.fetch_add(1, std::memory_order_acq_rel);
    }
    t_in_parallel_region = false;
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;  // keeps the job alive past run()'s return
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) {
          return;
        }
        seen_generation = generation_;
        job = job_;
      }
      if (job != nullptr) {
        execute_chunks(*job);
        // Take the lock so a completion cannot slip between the main
        // thread's predicate check and its wait.
        { std::lock_guard<std::mutex> lock(mutex_); }
        done_cv_.notify_all();
      }
    }
  }

  void ensure_workers() {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto wanted = static_cast<std::size_t>(num_threads_ - 1);
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
      to_join.swap(workers_);
    }
    work_cv_.notify_all();
    for (std::thread& worker : to_join) {
      worker.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int num_threads_;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;
  bool stopping_ = false;
};

}  // namespace

bool parse_thread_count_strict(const char* text, int* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  const bool overflow = errno == ERANGE ||
                        parsed > static_cast<long>(
                                     std::numeric_limits<int>::max());
  if (end == text || *end != '\0' || overflow || parsed < 1 ||
      parsed > static_cast<long>(kMaxThreadCount)) {
    return false;
  }
  if (out != nullptr) {
    *out = static_cast<int>(parsed);
  }
  return true;
}

int resolve_threads_from_env() {
  const char* text = std::getenv("HOTSPOT_NUM_THREADS");
  if (text == nullptr || *text == '\0') {
    return default_thread_count();
  }
  int threads = 0;
  if (!parse_thread_count_strict(text, &threads)) {
    // Exit 2 like the other strict env validations (HOTSPOT_SIMD,
    // HOTSPOT_BENCH_SCALE): an overflowed value silently truncated by
    // strtol, or a typo'd one silently defaulted, would run the whole
    // workload at an unintended width.
    std::fprintf(stderr,
                 "invalid HOTSPOT_NUM_THREADS='%s': expected an integer in "
                 "[1, %d]\n",
                 text, kMaxThreadCount);
    std::exit(2);
  }
  return threads;
}

int parallel_threads() { return ThreadPool::instance().num_threads(); }

void set_parallel_threads(int threads) {
  ThreadPool::instance().set_num_threads(threads);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ParallelChunkFn& fn) {
  const std::int64_t range = end - begin;
  if (range <= 0) {
    return;
  }
  grain = std::max<std::int64_t>(grain, 1);
  // Partition first: chunk boundaries depend only on (range, grain), so the
  // work decomposition — and therefore any per-chunk arithmetic — is
  // identical at every thread count.
  const std::int64_t chunk =
      std::max(grain, (range + kMaxChunks - 1) / kMaxChunks);
  const std::int64_t chunk_count = (range + chunk - 1) / chunk;
  ThreadPool& pool = ThreadPool::instance();
  if (t_in_parallel_region || chunk_count <= 1 || pool.num_threads() <= 1) {
    fn(begin, end);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->chunk = chunk;
  job->chunk_count = chunk_count;
  pool.run(job);
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

}  // namespace hotspot::util
