// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for checkpoint
// integrity footers. Table-driven, incremental: feed chunks through
// Crc32::update and read the running value at any point, or hash a whole
// buffer with crc32_of. A stored CRC lets the loader distinguish "file is
// structurally plausible but bit-rotted" from "file matches what was
// written", which is the difference between a typed kCorrupt error and
// silently training on flipped weights.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hotspot::util {

class Crc32 {
 public:
  // Folds `size` bytes at `data` into the running checksum.
  void update(const void* data, std::size_t size);

  // Checksum of everything fed so far (final xor applied).
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

// One-shot convenience over a contiguous buffer.
std::uint32_t crc32_of(const void* data, std::size_t size);

}  // namespace hotspot::util
