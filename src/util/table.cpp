#include "util/table.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace hotspot::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HOTSPOT_CHECK(!header_.empty()) << "table needs at least one column";
}

void Table::add_row(std::vector<std::string> cells) {
  HOTSPOT_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (const auto width : widths) {
    rule += std::string(width + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::to_csv() const {
  std::string out = join(header_, ",") + "\n";
  for (const auto& row : rows_) {
    out += join(row, ",") + "\n";
  }
  return out;
}

}  // namespace hotspot::util
