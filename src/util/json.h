// Minimal JSON parser for the repo's own machine-written files (metrics
// exports, BENCH_*.json, Chrome traces).
//
// Full JSON value model (null / bool / number / string / array / object)
// with strict parsing: trailing garbage, unterminated containers, and bad
// escapes are errors. Numbers are held as double, which round-trips every
// value our %.17g-emitting writers produce. Object member order is
// preserved; duplicate keys keep the last value (find returns it).
//
// This is a reader for trusted, repo-generated documents — it favors clear
// errors over speed and does not try to be a general-purpose library.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hotspot::util {

class JsonValue;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

class JsonValue {
 public:
  JsonValue() = default;

  JsonType type() const { return type_; }
  bool is_null() const { return type_ == JsonType::kNull; }
  bool is_bool() const { return type_ == JsonType::kBool; }
  bool is_number() const { return type_ == JsonType::kNumber; }
  bool is_string() const { return type_ == JsonType::kString; }
  bool is_array() const { return type_ == JsonType::kArray; }
  bool is_object() const { return type_ == JsonType::kObject; }

  // Typed accessors; CHECK-fail on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  // Object member lookup; nullptr when absent or not an object. Duplicate
  // keys resolve to the last occurrence.
  const JsonValue* find(const std::string& key) const;

  std::size_t size() const;

  static JsonValue make_null();
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  JsonType type_ = JsonType::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses `text` as one JSON document. Returns true and fills `out` on
// success; returns false and fills `error` (with a character offset) on
// malformed input.
bool parse_json(const std::string& text, JsonValue& out, std::string& error);

// Reads and parses a whole file; false with `error` set when the file is
// unreadable or malformed.
bool parse_json_file(const std::string& path, JsonValue& out,
                     std::string& error);

}  // namespace hotspot::util
