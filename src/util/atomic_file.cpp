#include "util/atomic_file.h"

#include <unistd.h>

namespace hotspot::util {

AtomicFileWriter::AtomicFileWriter(std::string path, FaultPoints points)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), points_(points) {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    error_ = tmp_path_ + ": cannot open for writing";
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

bool AtomicFileWriter::write(const void* data, std::size_t size) {
  if (!ok()) {
    return false;
  }
  if (fault_should_fail(points_.write)) {
    // Simulate a crash mid-write: part of the chunk reaches the file, the
    // rest never does.
    std::fwrite(data, 1, size / 2, file_);
    error_ = tmp_path_ + ": injected write fault";
    return false;
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    error_ = tmp_path_ + ": write failed";
    return false;
  }
  crc_.update(data, size);
  return true;
}

bool AtomicFileWriter::finalize() {
  if (!ok()) {
    return false;
  }
  if (fault_should_fail(points_.flush)) {
    error_ = tmp_path_ + ": injected flush fault";
    return false;
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    error_ = tmp_path_ + ": flush/fsync failed";
    return false;
  }
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;  // destructor must not double-close or remove
  if (!closed) {
    error_ = tmp_path_ + ": close failed";
    std::remove(tmp_path_.c_str());
    return false;
  }
  if (fault_should_fail(points_.rename)) {
    error_ = path_ + ": injected rename fault";
    std::remove(tmp_path_.c_str());
    return false;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    error_ = path_ + ": rename from temp failed";
    std::remove(tmp_path_.c_str());
    return false;
  }
  return true;
}

}  // namespace hotspot::util
