#include "litho/components.h"

#include <queue>

#include "util/check.h"

namespace hotspot::litho {

ComponentLabels label_components(const tensor::Tensor& binary) {
  HOTSPOT_CHECK_EQ(binary.rank(), 2);
  ComponentLabels result;
  result.height = binary.dim(0);
  result.width = binary.dim(1);
  result.labels.assign(
      static_cast<std::size_t>(result.height * result.width), -1);

  auto is_set = [&](std::int64_t y, std::int64_t x) {
    return binary.at2(y, x) >= 0.5f;
  };

  std::queue<std::pair<std::int64_t, std::int64_t>> frontier;
  for (std::int64_t sy = 0; sy < result.height; ++sy) {
    for (std::int64_t sx = 0; sx < result.width; ++sx) {
      if (!is_set(sy, sx) || result.at(sy, sx) != -1) {
        continue;
      }
      const std::int32_t label = result.count++;
      result.labels[static_cast<std::size_t>(sy * result.width + sx)] = label;
      frontier.emplace(sy, sx);
      while (!frontier.empty()) {
        const auto [y, x] = frontier.front();
        frontier.pop();
        constexpr std::int64_t dy[] = {-1, 1, 0, 0};
        constexpr std::int64_t dx[] = {0, 0, -1, 1};
        for (int d = 0; d < 4; ++d) {
          const std::int64_t ny = y + dy[d];
          const std::int64_t nx = x + dx[d];
          if (ny < 0 || ny >= result.height || nx < 0 || nx >= result.width) {
            continue;
          }
          if (!is_set(ny, nx) || result.at(ny, nx) != -1) {
            continue;
          }
          result.labels[static_cast<std::size_t>(ny * result.width + nx)] =
              label;
          frontier.emplace(ny, nx);
        }
      }
    }
  }
  return result;
}

std::vector<std::int64_t> component_sizes(const ComponentLabels& labels) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(labels.count), 0);
  for (const auto label : labels.labels) {
    if (label >= 0) {
      ++sizes[static_cast<std::size_t>(label)];
    }
  }
  return sizes;
}

}  // namespace hotspot::litho
