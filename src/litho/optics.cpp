#include "litho/optics.h"

#include <cmath>

#include "util/check.h"

namespace hotspot::litho {

std::vector<float> gaussian_taps(double sigma_px) {
  HOTSPOT_CHECK_GT(sigma_px, 0.0);
  const auto radius = static_cast<std::int64_t>(std::ceil(3.0 * sigma_px));
  std::vector<float> taps(static_cast<std::size_t>(2 * radius + 1));
  double total = 0.0;
  for (std::int64_t i = -radius; i <= radius; ++i) {
    const double value =
        std::exp(-0.5 * static_cast<double>(i * i) / (sigma_px * sigma_px));
    taps[static_cast<std::size_t>(i + radius)] = static_cast<float>(value);
    total += value;
  }
  for (auto& tap : taps) {
    tap = static_cast<float>(static_cast<double>(tap) / total);
  }
  return taps;
}

tensor::Tensor gaussian_blur(const tensor::Tensor& image, double sigma_px) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  const std::vector<float> taps = gaussian_taps(sigma_px);
  const auto radius = static_cast<std::int64_t>(taps.size() / 2);
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);

  // Horizontal pass.
  tensor::Tensor horizontal({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (std::int64_t t = -radius; t <= radius; ++t) {
        const std::int64_t xx = x + t;
        if (xx < 0 || xx >= w) {
          continue;  // zero boundary: empty field outside the clip
        }
        acc += static_cast<double>(image.at2(y, xx)) *
               static_cast<double>(taps[static_cast<std::size_t>(t + radius)]);
      }
      horizontal.at2(y, x) = static_cast<float>(acc);
    }
  }

  // Vertical pass.
  tensor::Tensor blurred({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (std::int64_t t = -radius; t <= radius; ++t) {
        const std::int64_t yy = y + t;
        if (yy < 0 || yy >= h) {
          continue;
        }
        acc += static_cast<double>(horizontal.at2(yy, x)) *
               static_cast<double>(taps[static_cast<std::size_t>(t + radius)]);
      }
      blurred.at2(y, x) = static_cast<float>(acc);
    }
  }
  return blurred;
}

tensor::Tensor aerial_image(const tensor::Tensor& coverage, double sigma_px) {
  return gaussian_blur(coverage, sigma_px);
}

tensor::Tensor develop(const tensor::Tensor& intensity, float threshold) {
  tensor::Tensor printed(intensity.shape());
  for (std::int64_t i = 0; i < intensity.numel(); ++i) {
    printed[i] = intensity[i] >= threshold ? 1.0f : 0.0f;
  }
  return printed;
}

}  // namespace hotspot::litho
