// Aerial-image optics proxy.
//
// The contest's labels come from a full lithography simulator; we substitute
// a Gaussian point-spread-function model: the aerial intensity is the mask
// coverage convolved with a Gaussian whose sigma models the optical
// resolution limit. Combined with a constant-threshold resist this
// reproduces the failure mechanisms that define hotspots — sub-resolution
// gaps print bridged, narrow lines print pinched — which is all the labels
// need (DESIGN.md, substitution table).
#pragma once

#include "tensor/tensor.h"

namespace hotspot::litho {

// Normalized 1-D Gaussian taps with radius ceil(3*sigma).
std::vector<float> gaussian_taps(double sigma_px);

// Separable Gaussian blur of a [H,W] image with zero (empty-field) boundary.
tensor::Tensor gaussian_blur(const tensor::Tensor& image, double sigma_px);

// Aerial image of a mask coverage raster: Gaussian blur with the process
// sigma. Intensity stays in [0,1] for coverage inputs.
tensor::Tensor aerial_image(const tensor::Tensor& coverage, double sigma_px);

// Constant-threshold resist: printed = intensity >= threshold.
tensor::Tensor develop(const tensor::Tensor& intensity, float threshold);

}  // namespace hotspot::litho
