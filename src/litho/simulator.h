// End-to-end lithography proxy: clip geometry -> aerial image -> resist ->
// defect report. This is the labelling oracle for the synthetic benchmark
// and the "simulation" whose per-instance cost enters the ODST metric
// (Eq. 3).
#pragma once

#include "layout/clip.h"
#include "litho/defects.h"
#include "litho/optics.h"

namespace hotspot::litho {

struct SimulatorConfig {
  std::int64_t grid = 64;        // simulation raster resolution
  double sigma_nm = 28.0;        // optical PSF sigma
  float resist_threshold = 0.45f;
  std::int64_t min_width_nm = 24;   // CD lower limit for necking
  std::int64_t min_feature_px = 4;  // ignore sub-pixel slivers for opens
  // Guard band: defects are analyzed only in the clip core, because the
  // aerial image decays artificially near the window border (the field
  // outside the clip is unknown). -1 derives ~1.5 PSF sigma automatically.
  std::int64_t analysis_margin_px = -1;
};

struct SimulationResult {
  tensor::Tensor drawn;    // binary mask raster [grid, grid]
  tensor::Tensor aerial;   // intensity raster
  tensor::Tensor printed;  // developed resist raster
  DefectReport defects;

  bool is_hotspot() const { return defects.any(); }
};

class Simulator {
 public:
  explicit Simulator(const SimulatorConfig& config);

  // Full simulation of one clip.
  SimulationResult simulate(const layout::Clip& clip) const;

  // Label only (hotspot / not); the benchmark generator's fast path.
  bool is_hotspot(const layout::Clip& clip) const;

  const SimulatorConfig& config() const { return config_; }

  // PSF sigma in raster pixels for the given clip size.
  double sigma_px(std::int64_t clip_size_nm) const;

  // Effective guard band in pixels for the given clip size.
  std::int64_t margin_px(std::int64_t clip_size_nm) const;

 private:
  SimulatorConfig config_;
};

}  // namespace hotspot::litho
