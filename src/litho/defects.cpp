#include "litho/defects.h"

#include <algorithm>
#include <limits>
#include <set>

#include "util/check.h"

namespace hotspot::litho {

const char* to_string(DefectType type) {
  switch (type) {
    case DefectType::kNone:
      return "none";
    case DefectType::kBridge:
      return "bridge";
    case DefectType::kOpen:
      return "open";
    case DefectType::kPinch:
      return "pinch";
    case DefectType::kNecking:
      return "necking";
  }
  return "?";
}

DefectType DefectReport::primary() const {
  if (bridge) {
    return DefectType::kBridge;
  }
  if (open) {
    return DefectType::kOpen;
  }
  if (pinch) {
    return DefectType::kPinch;
  }
  if (necking) {
    return DefectType::kNecking;
  }
  return DefectType::kNone;
}

std::int64_t min_linewidth(const tensor::Tensor& binary,
                           const tensor::Tensor* restrict_to) {
  HOTSPOT_CHECK_EQ(binary.rank(), 2);
  const std::int64_t h = binary.dim(0);
  const std::int64_t w = binary.dim(1);
  auto is_set = [&](std::int64_t y, std::int64_t x) {
    return binary.at2(y, x) >= 0.5f;
  };

  // Horizontal run length through each pixel.
  tensor::Tensor hrun({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    std::int64_t x = 0;
    while (x < w) {
      if (!is_set(y, x)) {
        ++x;
        continue;
      }
      std::int64_t end = x;
      while (end < w && is_set(y, end)) {
        ++end;
      }
      for (std::int64_t i = x; i < end; ++i) {
        hrun.at2(y, i) = static_cast<float>(end - x);
      }
      x = end;
    }
  }
  // Vertical run length.
  tensor::Tensor vrun({h, w});
  for (std::int64_t x = 0; x < w; ++x) {
    std::int64_t y = 0;
    while (y < h) {
      if (!is_set(y, x)) {
        ++y;
        continue;
      }
      std::int64_t end = y;
      while (end < h && is_set(end, x)) {
        ++end;
      }
      for (std::int64_t i = y; i < end; ++i) {
        vrun.at2(i, x) = static_cast<float>(end - y);
      }
      y = end;
    }
  }

  std::int64_t narrowest = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      if (!is_set(y, x)) {
        continue;
      }
      if (restrict_to != nullptr && restrict_to->at2(y, x) < 0.5f) {
        continue;
      }
      const auto width = static_cast<std::int64_t>(
          std::min(hrun.at2(y, x), vrun.at2(y, x)));
      narrowest = std::min(narrowest, width);
    }
  }
  return narrowest;
}

tensor::Tensor erode(const tensor::Tensor& binary, std::int64_t radius) {
  HOTSPOT_CHECK_EQ(binary.rank(), 2);
  HOTSPOT_CHECK_GE(radius, 0);
  const std::int64_t h = binary.dim(0);
  const std::int64_t w = binary.dim(1);
  tensor::Tensor out({h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      bool keep = binary.at2(y, x) >= 0.5f;
      for (std::int64_t dy = -radius; keep && dy <= radius; ++dy) {
        for (std::int64_t dx = -radius; dx <= radius; ++dx) {
          const std::int64_t yy = y + dy;
          const std::int64_t xx = x + dx;
          if (yy < 0 || yy >= h || xx < 0 || xx >= w) {
            continue;  // outside counts as set (window cut, not real edge)
          }
          if (binary.at2(yy, xx) < 0.5f) {
            keep = false;
            break;
          }
        }
      }
      out.at2(y, x) = keep ? 1.0f : 0.0f;
    }
  }
  return out;
}

namespace {

// Shape-fidelity flags of printed vs drawn: opens, pinches, bridges.
struct MappingFlags {
  bool open = false;
  bool pinch = false;
  bool bridge = false;
};

MappingFlags map_components(const tensor::Tensor& drawn,
                            const tensor::Tensor& printed,
                            std::int64_t min_feature_px) {
  const ComponentLabels drawn_labels = label_components(drawn);
  const ComponentLabels printed_labels = label_components(printed);
  const std::vector<std::int64_t> drawn_sizes = component_sizes(drawn_labels);

  std::vector<std::set<std::int32_t>> drawn_to_printed(
      static_cast<std::size_t>(drawn_labels.count));
  std::vector<std::set<std::int32_t>> printed_to_drawn(
      static_cast<std::size_t>(printed_labels.count));
  const std::int64_t h = drawn.dim(0);
  const std::int64_t w = drawn.dim(1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int32_t d = drawn_labels.at(y, x);
      const std::int32_t p = printed_labels.at(y, x);
      if (d >= 0 && p >= 0) {
        drawn_to_printed[static_cast<std::size_t>(d)].insert(p);
        printed_to_drawn[static_cast<std::size_t>(p)].insert(d);
      }
    }
  }

  MappingFlags flags;
  for (std::int32_t d = 0; d < drawn_labels.count; ++d) {
    const auto& prints = drawn_to_printed[static_cast<std::size_t>(d)];
    if (prints.empty()) {
      if (drawn_sizes[static_cast<std::size_t>(d)] >= min_feature_px) {
        flags.open = true;
      }
    } else if (prints.size() >= 2) {
      flags.pinch = true;
    }
  }
  for (std::int32_t p = 0; p < printed_labels.count; ++p) {
    if (printed_to_drawn[static_cast<std::size_t>(p)].size() >= 2) {
      flags.bridge = true;
    }
  }
  return flags;
}

}  // namespace

DefectReport detect_defects(const tensor::Tensor& drawn,
                            const tensor::Tensor& printed,
                            std::int64_t min_width_px,
                            std::int64_t min_feature_px) {
  HOTSPOT_CHECK(drawn.same_shape(printed))
      << "drawn and printed rasters must match";
  DefectReport report;
  const MappingFlags base = map_components(drawn, printed, min_feature_px);
  report.open = base.open;
  report.pinch = base.pinch;
  report.bridge = base.bridge;

  // Necking: a shape that printed fine but fails once the printed image is
  // eroded by the half-CD — i.e. it has a cross-section below the limit.
  const std::int64_t radius = min_width_px / 2;
  if (radius > 0 && !base.open && !base.pinch) {
    const MappingFlags thinned =
        map_components(drawn, erode(printed, radius), min_feature_px);
    report.necking = thinned.open || thinned.pinch;
  }
  return report;
}

}  // namespace hotspot::litho
