// Printability defect detection: compares the drawn mask against the
// simulated printed image and reports the classic hotspot failure modes.
#pragma once

#include "litho/components.h"
#include "tensor/tensor.h"

namespace hotspot::litho {

enum class DefectType { kNone, kBridge, kOpen, kPinch, kNecking };

const char* to_string(DefectType type);

struct DefectReport {
  bool bridge = false;   // two drawn shapes print merged
  bool open = false;     // a drawn shape fails to print at all
  bool pinch = false;    // a drawn shape prints broken into pieces
  bool necking = false;  // printed feature narrower than the CD limit

  bool any() const { return bridge || open || pinch || necking; }
  DefectType primary() const;
};

// Analyzes printed vs drawn geometry.
//   - bridge:  a printed component overlaps >= 2 drawn components
//   - open:    a drawn component (of at least min_feature_px pixels) has no
//              printed pixels
//   - pinch:   a drawn component overlaps >= 2 printed components
//   - necking: after eroding the printed image by min_width_px/2, a drawn
//              shape that printed fine disconnects or vanishes — i.e. some
//              printed cross-section is below the CD limit. (Erosion rather
//              than a raw min-linewidth scan so that ordinary rounded line
//              tips, which only shorten under erosion, do not trigger.)
// Drawn components smaller than min_feature_px pixels are ignored for the
// open check (sub-pixel slivers from window clipping are not real shapes).
DefectReport detect_defects(const tensor::Tensor& drawn,
                            const tensor::Tensor& printed,
                            std::int64_t min_width_px,
                            std::int64_t min_feature_px = 4);

// Binary erosion with a (2r+1)x(2r+1) square structuring element. Pixels
// outside the image are treated as set, so shapes touching the border are
// not eroded from that side (the border is a window cut, not a real edge).
tensor::Tensor erode(const tensor::Tensor& binary, std::int64_t radius);

// Minimum linewidth over the given binary image, measured as the smaller of
// the horizontal and vertical run lengths through each set pixel, optionally
// restricted to pixels also set in `restrict_to` (pass nullptr for no
// restriction). Returns a large sentinel when no pixel qualifies.
std::int64_t min_linewidth(const tensor::Tensor& binary,
                           const tensor::Tensor* restrict_to);

}  // namespace hotspot::litho
