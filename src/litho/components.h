// Connected-component labelling of binary rasters (4-connectivity).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::litho {

struct ComponentLabels {
  // Per-pixel label in row-major order; -1 for background.
  std::vector<std::int32_t> labels;
  std::int32_t count = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;

  std::int32_t at(std::int64_t y, std::int64_t x) const {
    return labels[static_cast<std::size_t>(y * width + x)];
  }
};

// Labels pixels where image >= 0.5 using 4-connectivity BFS.
ComponentLabels label_components(const tensor::Tensor& binary);

// Pixel count per component.
std::vector<std::int64_t> component_sizes(const ComponentLabels& labels);

}  // namespace hotspot::litho
