#include "litho/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hotspot::litho {

Simulator::Simulator(const SimulatorConfig& config) : config_(config) {
  HOTSPOT_CHECK_GT(config.grid, 0);
  HOTSPOT_CHECK_GT(config.sigma_nm, 0.0);
  HOTSPOT_CHECK(config.resist_threshold > 0.0f &&
                config.resist_threshold < 1.0f)
      << "resist threshold " << config.resist_threshold;
}

double Simulator::sigma_px(std::int64_t clip_size_nm) const {
  HOTSPOT_CHECK_GT(clip_size_nm, 0);
  const double nm_per_px = static_cast<double>(clip_size_nm) /
                           static_cast<double>(config_.grid);
  return config_.sigma_nm / nm_per_px;
}

std::int64_t Simulator::margin_px(std::int64_t clip_size_nm) const {
  if (config_.analysis_margin_px >= 0) {
    return config_.analysis_margin_px;
  }
  const auto margin =
      static_cast<std::int64_t>(std::ceil(1.5 * sigma_px(clip_size_nm)));
  // Keep at least half the raster as the analysis core.
  return std::min(margin, config_.grid / 4);
}

namespace {

// Central crop removing `margin` pixels on every side.
tensor::Tensor crop_core(const tensor::Tensor& image, std::int64_t margin) {
  const std::int64_t h = image.dim(0);
  const std::int64_t w = image.dim(1);
  tensor::Tensor core({h - 2 * margin, w - 2 * margin});
  for (std::int64_t y = 0; y < core.dim(0); ++y) {
    for (std::int64_t x = 0; x < core.dim(1); ++x) {
      core.at2(y, x) = image.at2(y + margin, x + margin);
    }
  }
  return core;
}

}  // namespace

SimulationResult Simulator::simulate(const layout::Clip& clip) const {
  SimulationResult result;
  const tensor::Tensor coverage = clip.coverage(config_.grid);
  result.drawn = tensor::Tensor(coverage.shape());
  for (std::int64_t i = 0; i < coverage.numel(); ++i) {
    result.drawn[i] = coverage[i] >= 0.5f ? 1.0f : 0.0f;
  }
  result.aerial = aerial_image(coverage, sigma_px(clip.size_nm));
  result.printed = develop(result.aerial, config_.resist_threshold);

  const double nm_per_px = static_cast<double>(clip.size_nm) /
                           static_cast<double>(config_.grid);
  const auto min_width_px = static_cast<std::int64_t>(
      static_cast<double>(config_.min_width_nm) / nm_per_px);
  const std::int64_t margin = margin_px(clip.size_nm);
  result.defects = detect_defects(crop_core(result.drawn, margin),
                                  crop_core(result.printed, margin),
                                  min_width_px, config_.min_feature_px);
  return result;
}

bool Simulator::is_hotspot(const layout::Clip& clip) const {
  return simulate(clip).is_hotspot();
}

}  // namespace hotspot::litho
