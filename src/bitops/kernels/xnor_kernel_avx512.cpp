// AVX-512 kernel: 512-bit XOR + native per-qword popcount (VPOPCNTDQ).
// Requires AVX512F + AVX512DQ (vcvtqq2ps for weighted_sum) + VPOPCNTDQ;
// kernels/dispatch.cpp checks all three before this kernel is ever called.
// Compiled with -mavx512f -mavx512dq -mavx512vpopcntdq on this file only.
//
// Bit-exactness: integer primitives are exact; weighted_sum realizes the
// canonical 8-lane order of xnor_kernel.h — one 512-bit block is exactly one
// 8-channel canonical block, converted to 8 floats and accumulated with an
// explicit mul + add (-ffp-contract=off) into the same 8 lanes.
#include "bitops/kernels/xnor_kernel.h"

#if defined(HOTSPOT_XNOR_AVX512)

#include <immintrin.h>

#include <bit>

namespace hotspot::bitops {
namespace {

inline __m512i load512(const std::uint64_t* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

std::int64_t avx512_xor_popcount(const std::uint64_t* a,
                                 const std::uint64_t* b, std::int64_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(
        acc,
        _mm512_popcnt_epi64(_mm512_xor_si512(load512(a + w), load512(b + w))));
  }
  std::int64_t mismatches = _mm512_reduce_add_epi64(acc);
  for (; w < words; ++w) {
    mismatches += std::popcount(a[w] ^ b[w]);
  }
  return mismatches;
}

void avx512_xor_popcount_2x4(const std::uint64_t* a0, const std::uint64_t* a1,
                             const std::uint64_t* b0, const std::uint64_t* b1,
                             const std::uint64_t* b2, const std::uint64_t* b3,
                             std::int64_t words, std::int64_t acc[8]) {
  __m512i acc00 = _mm512_setzero_si512(), acc01 = _mm512_setzero_si512();
  __m512i acc02 = _mm512_setzero_si512(), acc03 = _mm512_setzero_si512();
  __m512i acc10 = _mm512_setzero_si512(), acc11 = _mm512_setzero_si512();
  __m512i acc12 = _mm512_setzero_si512(), acc13 = _mm512_setzero_si512();
  std::int64_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i av0 = load512(a0 + w);
    const __m512i av1 = load512(a1 + w);
    const __m512i bv0 = load512(b0 + w);
    const __m512i bv1 = load512(b1 + w);
    const __m512i bv2 = load512(b2 + w);
    const __m512i bv3 = load512(b3 + w);
    acc00 = _mm512_add_epi64(
        acc00, _mm512_popcnt_epi64(_mm512_xor_si512(av0, bv0)));
    acc01 = _mm512_add_epi64(
        acc01, _mm512_popcnt_epi64(_mm512_xor_si512(av0, bv1)));
    acc02 = _mm512_add_epi64(
        acc02, _mm512_popcnt_epi64(_mm512_xor_si512(av0, bv2)));
    acc03 = _mm512_add_epi64(
        acc03, _mm512_popcnt_epi64(_mm512_xor_si512(av0, bv3)));
    acc10 = _mm512_add_epi64(
        acc10, _mm512_popcnt_epi64(_mm512_xor_si512(av1, bv0)));
    acc11 = _mm512_add_epi64(
        acc11, _mm512_popcnt_epi64(_mm512_xor_si512(av1, bv1)));
    acc12 = _mm512_add_epi64(
        acc12, _mm512_popcnt_epi64(_mm512_xor_si512(av1, bv2)));
    acc13 = _mm512_add_epi64(
        acc13, _mm512_popcnt_epi64(_mm512_xor_si512(av1, bv3)));
  }
  acc[0] += _mm512_reduce_add_epi64(acc00);
  acc[1] += _mm512_reduce_add_epi64(acc01);
  acc[2] += _mm512_reduce_add_epi64(acc02);
  acc[3] += _mm512_reduce_add_epi64(acc03);
  acc[4] += _mm512_reduce_add_epi64(acc10);
  acc[5] += _mm512_reduce_add_epi64(acc11);
  acc[6] += _mm512_reduce_add_epi64(acc12);
  acc[7] += _mm512_reduce_add_epi64(acc13);
  for (; w < words; ++w) {
    const std::uint64_t aw0 = a0[w];
    const std::uint64_t aw1 = a1[w];
    acc[0] += std::popcount(aw0 ^ b0[w]);
    acc[1] += std::popcount(aw0 ^ b1[w]);
    acc[2] += std::popcount(aw0 ^ b2[w]);
    acc[3] += std::popcount(aw0 ^ b3[w]);
    acc[4] += std::popcount(aw1 ^ b0[w]);
    acc[5] += std::popcount(aw1 ^ b1[w]);
    acc[6] += std::popcount(aw1 ^ b2[w]);
    acc[7] += std::popcount(aw1 ^ b3[w]);
  }
}

float avx512_weighted_sum(const std::uint64_t* a, const std::uint64_t* b,
                          const float* alpha, std::int64_t channels,
                          float dot_bits) {
  __m256 lanes = _mm256_setzero_ps();
  const __m256 bits = _mm256_set1_ps(dot_bits);
  std::int64_t c = 0;
  for (; c + 8 <= channels; c += 8) {
    const __m512i counts = _mm512_popcnt_epi64(
        _mm512_xor_si512(load512(a + c), load512(b + c)));
    const __m256 mismatches = _mm512_cvtepi64_ps(counts);
    const __m256 dot =
        _mm256_sub_ps(bits, _mm256_add_ps(mismatches, mismatches));
    lanes = _mm256_add_ps(
        lanes, _mm256_mul_ps(_mm256_loadu_ps(alpha + c), dot));
  }
  alignas(32) float lane_values[8];
  _mm256_store_ps(lane_values, lanes);
  for (int lane = 0; c + lane < channels; ++lane) {
    const auto mismatches =
        static_cast<float>(std::popcount(a[c + lane] ^ b[c + lane]));
    lane_values[lane] += alpha[c + lane] * (dot_bits - 2.0f * mismatches);
  }
  return ((lane_values[0] + lane_values[1]) +
          (lane_values[2] + lane_values[3])) +
         ((lane_values[4] + lane_values[5]) +
          (lane_values[6] + lane_values[7]));
}

// Four filters per call: one shared (a XOR-side, alpha) load per 8-channel
// block feeding four independent lane-accumulator chains. Each chain
// realizes the same canonical order as avx512_weighted_sum, so out[f] is
// bit-for-bit what the single-filter form returns.
void avx512_weighted_sum_x4(const std::uint64_t* a, const std::uint64_t* b0,
                            const std::uint64_t* b1, const std::uint64_t* b2,
                            const std::uint64_t* b3, const float* alpha,
                            std::int64_t channels, float dot_bits,
                            float out[4]) {
  __m256 lanes0 = _mm256_setzero_ps(), lanes1 = _mm256_setzero_ps();
  __m256 lanes2 = _mm256_setzero_ps(), lanes3 = _mm256_setzero_ps();
  const __m256 bits = _mm256_set1_ps(dot_bits);
  std::int64_t c = 0;
  for (; c + 8 <= channels; c += 8) {
    const __m512i av = load512(a + c);
    const __m256 alphav = _mm256_loadu_ps(alpha + c);
    const __m256 mm0 = _mm512_cvtepi64_ps(
        _mm512_popcnt_epi64(_mm512_xor_si512(av, load512(b0 + c))));
    const __m256 mm1 = _mm512_cvtepi64_ps(
        _mm512_popcnt_epi64(_mm512_xor_si512(av, load512(b1 + c))));
    const __m256 mm2 = _mm512_cvtepi64_ps(
        _mm512_popcnt_epi64(_mm512_xor_si512(av, load512(b2 + c))));
    const __m256 mm3 = _mm512_cvtepi64_ps(
        _mm512_popcnt_epi64(_mm512_xor_si512(av, load512(b3 + c))));
    lanes0 = _mm256_add_ps(
        lanes0, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm0, mm0))));
    lanes1 = _mm256_add_ps(
        lanes1, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm1, mm1))));
    lanes2 = _mm256_add_ps(
        lanes2, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm2, mm2))));
    lanes3 = _mm256_add_ps(
        lanes3, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm3, mm3))));
  }
  alignas(32) float lv[4][8];
  _mm256_store_ps(lv[0], lanes0);
  _mm256_store_ps(lv[1], lanes1);
  _mm256_store_ps(lv[2], lanes2);
  _mm256_store_ps(lv[3], lanes3);
  const std::uint64_t* const filters[4] = {b0, b1, b2, b3};
  for (int f = 0; f < 4; ++f) {
    for (int lane = 0; c + lane < channels; ++lane) {
      const auto mismatches = static_cast<float>(
          std::popcount(a[c + lane] ^ filters[f][c + lane]));
      lv[f][lane] += alpha[c + lane] * (dot_bits - 2.0f * mismatches);
    }
    out[f] = ((lv[f][0] + lv[f][1]) + (lv[f][2] + lv[f][3])) +
             ((lv[f][4] + lv[f][5]) + (lv[f][6] + lv[f][7]));
  }
}

}  // namespace

const XnorKernel& xnor_kernel_avx512() {
  static const XnorKernel kernel{
      "avx512",          /*simd_bits=*/512,
      /*word_multiple=*/8, avx512_xor_popcount,
      avx512_xor_popcount_2x4, avx512_weighted_sum,
      avx512_weighted_sum_x4,
  };
  return kernel;
}

}  // namespace hotspot::bitops

#endif  // HOTSPOT_XNOR_AVX512
