// XNOR-GEMM kernel family behind a runtime CPU-dispatch table.
//
// Every kernel implements the same three primitives over the same explicit
// data layout, so the rest of the system (BitMatrix, xnor_gemm, the packed
// binary-conv paths) is written once against this interface and the widest
// ISA the running CPU supports is selected at process start:
//
//   layout   Packed rows are arrays of uint64 words, little-endian bit
//            order (bit b of word w covers column 64*w + b), with all tail
//            bits beyond the logical column count zero. `words` may be any
//            non-negative count: kernels vectorize full vector blocks and
//            finish the remainder scalar, so unpadded rows are always
//            correct. Rows padded to a multiple of `word_multiple`
//            (BitMatrix does this by construction) take the tail-free path.
//
//   exactness  xor_popcount / xor_popcount_2x4 accumulate in integers, so
//            every kernel returns the same value on the same input by
//            construction. weighted_sum involves float accumulation, whose
//            result depends on evaluation order — the interface therefore
//            pins a canonical order (below) that every kernel implements
//            exactly, making all kernels bit-identical to scalar. The
//            kernel translation units are compiled with -ffp-contract=off
//            so no kernel silently fuses the multiply-add into an FMA.
//
//   canonical weighted order  Eight float lanes; channel c contributes
//            alpha[c] * (dot_bits - 2*popcount(a[c] ^ b[c])) to lane c % 8,
//            blocks of eight channels in ascending order, one multiply and
//            one add per contribution (two roundings), then the tree
//            reduction ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). Channels with
//            alpha[c] == 0 contribute exactly +0.0f, so padding channels
//            (zero words, zero alpha) never change the result.
//
// This dispatch seam is also the backend plug point for the Graph-IR
// work: a backend provides an XnorKernel (name, layout requirement, the
// three primitives) and everything downstream — packing geometry included —
// follows from the table entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hotspot::bitops {

struct XnorKernel {
  // Stable identifier ("scalar", "avx2", "avx512"); used by the
  // HOTSPOT_SIMD override, log lines, span names, and the run manifest.
  const char* name;
  // SIMD register width in bits; reported by the bitops.kernel gauge.
  std::int64_t simd_bits;
  // Pad packed rows to a multiple of this many 64-bit words for tail-free
  // inner loops (1 for scalar, 4 for AVX2, 8 for AVX-512).
  std::int64_t word_multiple;

  // Sum of popcount(a[w] ^ b[w]) over `words` words.
  std::int64_t (*xor_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words);

  // Dense 2x4 register tile: acc[r*4 + c] += popcount(a_r[w] ^ b_c[w])
  // summed over `words`, for r in {0,1} over {a0,a1} and c in {0..3} over
  // {b0..b3}. The register-blocked heart of xnor_gemm.
  void (*xor_popcount_2x4)(const std::uint64_t* a0, const std::uint64_t* a1,
                           const std::uint64_t* b0, const std::uint64_t* b1,
                           const std::uint64_t* b2, const std::uint64_t* b3,
                           std::int64_t words, std::int64_t acc[8]);

  // Per-channel weighted reduction for the Eq. 14/15 packed path: returns
  //   sum_c alpha[c] * (dot_bits - 2*popcount(a[c] ^ b[c]))
  // over `channels` single-word channels, in the canonical weighted order
  // documented above. dot_bits is kh*kw as float (exact for <= 64).
  float (*weighted_sum)(const std::uint64_t* a, const std::uint64_t* b,
                        const float* alpha, std::int64_t channels,
                        float dot_bits);

  // Four-filter batch of weighted_sum over one patch row: out[f] must equal
  // weighted_sum(a, bf, alpha, channels, dot_bits) bit-for-bit. The batch
  // exists purely for speed — the canonical order is per-filter, so sharing
  // the a/alpha loads across four independent accumulator chains changes
  // nothing about the result but hides the per-block add latency that
  // bounds the single-filter form and amortizes the per-call setup/reduce.
  void (*weighted_sum_x4)(const std::uint64_t* a, const std::uint64_t* b0,
                          const std::uint64_t* b1, const std::uint64_t* b2,
                          const std::uint64_t* b3, const float* alpha,
                          std::int64_t channels, float dot_bits,
                          float out[4]);
};

// The always-available reference kernel every other kernel must match
// bit-for-bit (tests/bitops/kernel_identity_test.cpp sweeps this).
const XnorKernel& xnor_kernel_scalar();

// Every kernel compiled into this binary, scalar first, widest last. An
// entry may still be unsupported by the running CPU.
const std::vector<const XnorKernel*>& compiled_xnor_kernels();

// True when the running CPU (and OS) can execute this kernel.
bool xnor_kernel_cpu_supported(const XnorKernel& kernel);

// Kernel lookup by name among compiled kernels; nullptr when absent.
const XnorKernel* find_xnor_kernel(const char* name);

// Resolves a HOTSPOT_SIMD-style spec ("scalar" | "avx2" | "avx512" |
// "auto"; nullptr/empty mean "auto") against the compiled + CPU-supported
// kernels. Returns nullptr with `error` set for an unknown name or a kernel
// this binary/CPU cannot run — the caller decides whether that is fatal.
const XnorKernel* resolve_xnor_kernel(const char* spec, std::string& error);

// The dispatched kernel. Resolved once per process on first use: reads
// HOTSPOT_SIMD (garbage or an unrunnable kernel prints the error and exits
// 2 — never a silent fallback), logs the resolved kernel, publishes the
// bitops.kernel gauge and the run-manifest "xnor_kernel" note.
const XnorKernel& active_xnor_kernel();

// Replaces the active kernel for the rest of the process (gauge and
// manifest note follow). For tests and benches that sweep kernels; regular
// code must rely on HOTSPOT_SIMD. Matrices packed under the previous
// kernel remain correct — kernels accept any word count — but new packing
// follows the new kernel's padding, so callers that cache packed data keyed
// on the kernel (BinaryConv2d does) re-pack automatically.
void set_active_xnor_kernel(const XnorKernel& kernel);

namespace detail {
// Re-runs the startup resolution (HOTSPOT_SIMD read + strict validation,
// exiting 2 on garbage) regardless of the cached kernel. Only for death
// tests that pin the exit-2 contract.
const XnorKernel& resolve_active_from_env_for_test();
}  // namespace detail

}  // namespace hotspot::bitops
