// Scalar reference kernel: one uint64 word per step, std::popcount.
//
// This is the always-available fallback and the bit-exactness reference for
// the SIMD kernels, so the canonical weighted order (xnor_kernel.h) is
// spelled out here in its plainest form. Compiled with -ffp-contract=off
// (src/bitops/CMakeLists.txt) so the multiply-add stays two rounded
// operations, matching the vector kernels' explicit mul + add.
#include <bit>

#include "bitops/kernels/xnor_kernel.h"

namespace hotspot::bitops {
namespace {

std::int64_t scalar_xor_popcount(const std::uint64_t* a,
                                 const std::uint64_t* b, std::int64_t words) {
  std::int64_t mismatches = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    mismatches += std::popcount(a[w] ^ b[w]);
  }
  return mismatches;
}

void scalar_xor_popcount_2x4(const std::uint64_t* a0, const std::uint64_t* a1,
                             const std::uint64_t* b0, const std::uint64_t* b1,
                             const std::uint64_t* b2, const std::uint64_t* b3,
                             std::int64_t words, std::int64_t acc[8]) {
  std::int64_t acc00 = 0, acc01 = 0, acc02 = 0, acc03 = 0;
  std::int64_t acc10 = 0, acc11 = 0, acc12 = 0, acc13 = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    const std::uint64_t aw0 = a0[w];
    const std::uint64_t aw1 = a1[w];
    const std::uint64_t bw0 = b0[w];
    const std::uint64_t bw1 = b1[w];
    const std::uint64_t bw2 = b2[w];
    const std::uint64_t bw3 = b3[w];
    acc00 += std::popcount(aw0 ^ bw0);
    acc01 += std::popcount(aw0 ^ bw1);
    acc02 += std::popcount(aw0 ^ bw2);
    acc03 += std::popcount(aw0 ^ bw3);
    acc10 += std::popcount(aw1 ^ bw0);
    acc11 += std::popcount(aw1 ^ bw1);
    acc12 += std::popcount(aw1 ^ bw2);
    acc13 += std::popcount(aw1 ^ bw3);
  }
  acc[0] += acc00;
  acc[1] += acc01;
  acc[2] += acc02;
  acc[3] += acc03;
  acc[4] += acc10;
  acc[5] += acc11;
  acc[6] += acc12;
  acc[7] += acc13;
}

float scalar_weighted_sum(const std::uint64_t* a, const std::uint64_t* b,
                          const float* alpha, std::int64_t channels,
                          float dot_bits) {
  // Canonical weighted order: channel c feeds lane c % 8, full blocks of 8
  // first, then the partial tail block, then the fixed reduction tree.
  float lanes[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  std::int64_t c = 0;
  for (; c + 8 <= channels; c += 8) {
    for (int lane = 0; lane < 8; ++lane) {
      const auto mismatches =
          static_cast<float>(std::popcount(a[c + lane] ^ b[c + lane]));
      lanes[lane] += alpha[c + lane] * (dot_bits - 2.0f * mismatches);
    }
  }
  for (int lane = 0; c + lane < channels; ++lane) {
    const auto mismatches =
        static_cast<float>(std::popcount(a[c + lane] ^ b[c + lane]));
    lanes[lane] += alpha[c + lane] * (dot_bits - 2.0f * mismatches);
  }
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

// The reference batch is literally four reference calls, so the x4 contract
// (bit-for-bit equal to four weighted_sum calls) holds by definition.
void scalar_weighted_sum_x4(const std::uint64_t* a, const std::uint64_t* b0,
                            const std::uint64_t* b1, const std::uint64_t* b2,
                            const std::uint64_t* b3, const float* alpha,
                            std::int64_t channels, float dot_bits,
                            float out[4]) {
  out[0] = scalar_weighted_sum(a, b0, alpha, channels, dot_bits);
  out[1] = scalar_weighted_sum(a, b1, alpha, channels, dot_bits);
  out[2] = scalar_weighted_sum(a, b2, alpha, channels, dot_bits);
  out[3] = scalar_weighted_sum(a, b3, alpha, channels, dot_bits);
}

}  // namespace

const XnorKernel& xnor_kernel_scalar() {
  static const XnorKernel kernel{
      "scalar",          /*simd_bits=*/64,
      /*word_multiple=*/1, scalar_xor_popcount,
      scalar_xor_popcount_2x4, scalar_weighted_sum,
      scalar_weighted_sum_x4,
  };
  return kernel;
}

}  // namespace hotspot::bitops
