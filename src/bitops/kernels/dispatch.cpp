// Runtime CPU dispatch for the XNOR kernel family.
//
// Resolution happens once per process, on the first active_xnor_kernel()
// call: HOTSPOT_SIMD is read and strictly validated (an unknown value, a
// kernel not compiled into this binary, or one the running CPU cannot
// execute all print the reason and exit 2 — never a silent fallback), the
// winner is logged, and the bitops.kernel gauge plus the run-manifest
// "xnor_kernel" note are published so every BENCH_*.json and metrics export
// records which kernel produced its numbers.
//
// CPU capability checks go through __builtin_cpu_supports, which also
// accounts for OS XSAVE state (AVX registers saved across context
// switches), not just raw cpuid bits.
#include "bitops/kernels/xnor_kernel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace hotspot::bitops {

#if defined(HOTSPOT_XNOR_AVX2)
const XnorKernel& xnor_kernel_avx2();
#endif
#if defined(HOTSPOT_XNOR_AVX512)
const XnorKernel& xnor_kernel_avx512();
#endif

namespace {

// Names the HOTSPOT_SIMD grammar accepts beyond "auto", whether or not the
// matching kernel was compiled in — distinguishes "unknown value" from
// "known kernel this binary does not carry".
constexpr const char* kKnownKernelNames[] = {"scalar", "avx2", "avx512"};

// __builtin_cpu_supports requires literal feature names, hence one helper
// per check instead of a string-parameterized one.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}
#else
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512() { return false; }
#endif

bool is_known_kernel_name(const char* name) {
  for (const char* known : kKnownKernelNames) {
    if (std::strcmp(name, known) == 0) {
      return true;
    }
  }
  return false;
}

std::atomic<const XnorKernel*> g_active_kernel{nullptr};
std::once_flag g_resolve_once;

void publish_active(const XnorKernel& kernel, const char* origin) {
  obs::MetricsRegistry::global().gauge("bitops.kernel").set(
      static_cast<double>(kernel.simd_bits));
  obs::set_manifest_note("xnor_kernel", kernel.name);
  HOTSPOT_LOG(kInfo) << "bitops: XNOR kernel '" << kernel.name << "' ("
                     << kernel.simd_bits << "-bit, " << origin << ")";
}

// Widest compiled kernel the running CPU supports; compiled_xnor_kernels()
// is ordered scalar first, widest last, and scalar always qualifies.
const XnorKernel& widest_supported_kernel() {
  const XnorKernel* best = &xnor_kernel_scalar();
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    if (xnor_kernel_cpu_supported(*kernel)) {
      best = kernel;
    }
  }
  return *best;
}

const XnorKernel& resolve_from_env_or_exit() {
  const char* spec = std::getenv("HOTSPOT_SIMD");
  std::string error;
  const XnorKernel* kernel = resolve_xnor_kernel(spec, error);
  if (kernel == nullptr) {
    std::fprintf(stderr, "HOTSPOT_SIMD=%s: %s\n", spec == nullptr ? "" : spec,
                 error.c_str());
    std::exit(2);
  }
  return *kernel;
}

}  // namespace

const std::vector<const XnorKernel*>& compiled_xnor_kernels() {
  static const std::vector<const XnorKernel*> kernels = [] {
    std::vector<const XnorKernel*> list;
    list.push_back(&xnor_kernel_scalar());
#if defined(HOTSPOT_XNOR_AVX2)
    list.push_back(&xnor_kernel_avx2());
#endif
#if defined(HOTSPOT_XNOR_AVX512)
    list.push_back(&xnor_kernel_avx512());
#endif
    return list;
  }();
  return kernels;
}

bool xnor_kernel_cpu_supported(const XnorKernel& kernel) {
  if (std::strcmp(kernel.name, "scalar") == 0) {
    return true;
  }
  if (std::strcmp(kernel.name, "avx2") == 0) {
    return cpu_has_avx2();
  }
  if (std::strcmp(kernel.name, "avx512") == 0) {
    // vpopcntq + vcvtqq2ps (dq) + the 512-bit foundation (f).
    return cpu_has_avx512();
  }
  return false;
}

const XnorKernel* find_xnor_kernel(const char* name) {
  if (name == nullptr) {
    return nullptr;
  }
  for (const XnorKernel* kernel : compiled_xnor_kernels()) {
    if (std::strcmp(kernel->name, name) == 0) {
      return kernel;
    }
  }
  return nullptr;
}

const XnorKernel* resolve_xnor_kernel(const char* spec, std::string& error) {
  if (spec == nullptr || *spec == '\0' || std::strcmp(spec, "auto") == 0) {
    return &widest_supported_kernel();
  }
  const XnorKernel* kernel = find_xnor_kernel(spec);
  if (kernel == nullptr) {
    if (is_known_kernel_name(spec)) {
      error = std::string("kernel '") + spec +
              "' is not compiled into this binary (expected one of: scalar";
#if defined(HOTSPOT_XNOR_AVX2)
      error += ", avx2";
#endif
#if defined(HOTSPOT_XNOR_AVX512)
      error += ", avx512";
#endif
      error += ", auto)";
    } else {
      error = std::string("unknown value '") + spec +
              "' (expected scalar|avx2|avx512|auto)";
    }
    return nullptr;
  }
  if (!xnor_kernel_cpu_supported(*kernel)) {
    error = std::string("kernel '") + spec +
            "' is compiled in but this CPU cannot execute it";
    return nullptr;
  }
  return kernel;
}

const XnorKernel& active_xnor_kernel() {
  const XnorKernel* kernel = g_active_kernel.load(std::memory_order_acquire);
  if (kernel != nullptr) {
    return *kernel;
  }
  std::call_once(g_resolve_once, [] {
    // set_active_xnor_kernel may have won the race for the once-flag's
    // store; only resolve if nothing is published yet.
    if (g_active_kernel.load(std::memory_order_acquire) != nullptr) {
      return;
    }
    const XnorKernel& resolved = resolve_from_env_or_exit();
    publish_active(resolved, std::getenv("HOTSPOT_SIMD") != nullptr
                                 ? "HOTSPOT_SIMD"
                                 : "auto-detected");
    g_active_kernel.store(&resolved, std::memory_order_release);
  });
  return *g_active_kernel.load(std::memory_order_acquire);
}

void set_active_xnor_kernel(const XnorKernel& kernel) {
  // Store first, then consume the once-flag: a concurrent
  // active_xnor_kernel() either sees this kernel inside its once-lambda, or
  // its passive call_once return synchronizes with this invocation and the
  // final load observes the store. Either way no env overwrite and no null.
  g_active_kernel.store(&kernel, std::memory_order_release);
  std::call_once(g_resolve_once, [] {});
  publish_active(kernel, "set_active_xnor_kernel");
}

namespace detail {
const XnorKernel& resolve_active_from_env_for_test() {
  return resolve_from_env_or_exit();
}
}  // namespace detail

}  // namespace hotspot::bitops
