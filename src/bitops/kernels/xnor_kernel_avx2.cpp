// AVX2 kernel: 256-bit XOR + vpshufb nibble-LUT popcount (Mula's
// algorithm), accumulated through vpsadbw into four 64-bit lane sums per
// 256-bit block. Compiled with -mavx2 on its own (this file only); never
// executed unless cpuid reports AVX2 (kernels/dispatch.cpp), so the rest of
// the binary stays portable.
//
// Bit-exactness: integer primitives are exact by construction; weighted_sum
// realizes the canonical 8-lane order of xnor_kernel.h with one vector
// multiply + add per 8-channel block (-ffp-contract=off keeps them two
// rounded operations) and the fixed scalar reduction tree.
#include "bitops/kernels/xnor_kernel.h"

#if defined(HOTSPOT_XNOR_AVX2)

#include <immintrin.h>

#include <bit>

namespace hotspot::bitops {
namespace {

// Per-64-bit-lane popcount of a 256-bit register: nibble LUT via vpshufb,
// byte sums horizontally folded by vpsadbw against zero.
inline __m256i popcount_epi64(__m256i x) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline __m256i load256(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline std::int64_t reduce_epi64(__m256i v) {
  const __m128i folded = _mm_add_epi64(_mm256_castsi256_si128(v),
                                       _mm256_extracti128_si256(v, 1));
  return _mm_cvtsi128_si64(folded) + _mm_extract_epi64(folded, 1);
}

std::int64_t avx2_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                               std::int64_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_xor_si256(load256(a + w), load256(b + w))));
  }
  std::int64_t mismatches = reduce_epi64(acc);
  for (; w < words; ++w) {
    mismatches += std::popcount(a[w] ^ b[w]);
  }
  return mismatches;
}

void avx2_xor_popcount_2x4(const std::uint64_t* a0, const std::uint64_t* a1,
                           const std::uint64_t* b0, const std::uint64_t* b1,
                           const std::uint64_t* b2, const std::uint64_t* b3,
                           std::int64_t words, std::int64_t acc[8]) {
  __m256i acc00 = _mm256_setzero_si256(), acc01 = _mm256_setzero_si256();
  __m256i acc02 = _mm256_setzero_si256(), acc03 = _mm256_setzero_si256();
  __m256i acc10 = _mm256_setzero_si256(), acc11 = _mm256_setzero_si256();
  __m256i acc12 = _mm256_setzero_si256(), acc13 = _mm256_setzero_si256();
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i av0 = load256(a0 + w);
    const __m256i av1 = load256(a1 + w);
    const __m256i bv0 = load256(b0 + w);
    const __m256i bv1 = load256(b1 + w);
    const __m256i bv2 = load256(b2 + w);
    const __m256i bv3 = load256(b3 + w);
    acc00 = _mm256_add_epi64(acc00, popcount_epi64(_mm256_xor_si256(av0, bv0)));
    acc01 = _mm256_add_epi64(acc01, popcount_epi64(_mm256_xor_si256(av0, bv1)));
    acc02 = _mm256_add_epi64(acc02, popcount_epi64(_mm256_xor_si256(av0, bv2)));
    acc03 = _mm256_add_epi64(acc03, popcount_epi64(_mm256_xor_si256(av0, bv3)));
    acc10 = _mm256_add_epi64(acc10, popcount_epi64(_mm256_xor_si256(av1, bv0)));
    acc11 = _mm256_add_epi64(acc11, popcount_epi64(_mm256_xor_si256(av1, bv1)));
    acc12 = _mm256_add_epi64(acc12, popcount_epi64(_mm256_xor_si256(av1, bv2)));
    acc13 = _mm256_add_epi64(acc13, popcount_epi64(_mm256_xor_si256(av1, bv3)));
  }
  acc[0] += reduce_epi64(acc00);
  acc[1] += reduce_epi64(acc01);
  acc[2] += reduce_epi64(acc02);
  acc[3] += reduce_epi64(acc03);
  acc[4] += reduce_epi64(acc10);
  acc[5] += reduce_epi64(acc11);
  acc[6] += reduce_epi64(acc12);
  acc[7] += reduce_epi64(acc13);
  for (; w < words; ++w) {
    const std::uint64_t aw0 = a0[w];
    const std::uint64_t aw1 = a1[w];
    acc[0] += std::popcount(aw0 ^ b0[w]);
    acc[1] += std::popcount(aw0 ^ b1[w]);
    acc[2] += std::popcount(aw0 ^ b2[w]);
    acc[3] += std::popcount(aw0 ^ b3[w]);
    acc[4] += std::popcount(aw1 ^ b0[w]);
    acc[5] += std::popcount(aw1 ^ b1[w]);
    acc[6] += std::popcount(aw1 ^ b2[w]);
    acc[7] += std::popcount(aw1 ^ b3[w]);
  }
}

float avx2_weighted_sum(const std::uint64_t* a, const std::uint64_t* b,
                        const float* alpha, std::int64_t channels,
                        float dot_bits) {
  __m256 lanes = _mm256_setzero_ps();
  const __m256 bits = _mm256_set1_ps(dot_bits);
  // Gathers the low 32 bits of each vpsadbw 64-bit count; counts are <= 64
  // so the high halves are zero.
  const __m256i take_low32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  std::int64_t c = 0;
  for (; c + 8 <= channels; c += 8) {
    const __m256i counts_lo =
        popcount_epi64(_mm256_xor_si256(load256(a + c), load256(b + c)));
    const __m256i counts_hi = popcount_epi64(
        _mm256_xor_si256(load256(a + c + 4), load256(b + c + 4)));
    const __m256i low = _mm256_permutevar8x32_epi32(counts_lo, take_low32);
    const __m256i high = _mm256_permutevar8x32_epi32(counts_hi, take_low32);
    const __m256i counts8 = _mm256_blend_epi32(low, high, 0xF0);
    const __m256 mismatches = _mm256_cvtepi32_ps(counts8);
    const __m256 dot =
        _mm256_sub_ps(bits, _mm256_add_ps(mismatches, mismatches));
    lanes = _mm256_add_ps(
        lanes, _mm256_mul_ps(_mm256_loadu_ps(alpha + c), dot));
  }
  alignas(32) float lane_values[8];
  _mm256_store_ps(lane_values, lanes);
  for (int lane = 0; c + lane < channels; ++lane) {
    const auto mismatches =
        static_cast<float>(std::popcount(a[c + lane] ^ b[c + lane]));
    lane_values[lane] += alpha[c + lane] * (dot_bits - 2.0f * mismatches);
  }
  return ((lane_values[0] + lane_values[1]) +
          (lane_values[2] + lane_values[3])) +
         ((lane_values[4] + lane_values[5]) +
          (lane_values[6] + lane_values[7]));
}

// One 8-channel block as two 256-bit halves, gathered to 8 x i32 counts.
inline __m256 counts8_ps(__m256i counts_lo, __m256i counts_hi) {
  const __m256i take_low32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i low = _mm256_permutevar8x32_epi32(counts_lo, take_low32);
  const __m256i high = _mm256_permutevar8x32_epi32(counts_hi, take_low32);
  return _mm256_cvtepi32_ps(_mm256_blend_epi32(low, high, 0xF0));
}

// Four filters per call: shared a/alpha loads, four independent lane
// chains; each chain is the canonical order, so out[f] is bit-for-bit the
// single-filter avx2_weighted_sum result.
void avx2_weighted_sum_x4(const std::uint64_t* a, const std::uint64_t* b0,
                          const std::uint64_t* b1, const std::uint64_t* b2,
                          const std::uint64_t* b3, const float* alpha,
                          std::int64_t channels, float dot_bits,
                          float out[4]) {
  __m256 lanes0 = _mm256_setzero_ps(), lanes1 = _mm256_setzero_ps();
  __m256 lanes2 = _mm256_setzero_ps(), lanes3 = _mm256_setzero_ps();
  const __m256 bits = _mm256_set1_ps(dot_bits);
  std::int64_t c = 0;
  for (; c + 8 <= channels; c += 8) {
    const __m256i av_lo = load256(a + c);
    const __m256i av_hi = load256(a + c + 4);
    const __m256 alphav = _mm256_loadu_ps(alpha + c);
    const __m256 mm0 =
        counts8_ps(popcount_epi64(_mm256_xor_si256(av_lo, load256(b0 + c))),
                   popcount_epi64(_mm256_xor_si256(av_hi, load256(b0 + c + 4))));
    const __m256 mm1 =
        counts8_ps(popcount_epi64(_mm256_xor_si256(av_lo, load256(b1 + c))),
                   popcount_epi64(_mm256_xor_si256(av_hi, load256(b1 + c + 4))));
    const __m256 mm2 =
        counts8_ps(popcount_epi64(_mm256_xor_si256(av_lo, load256(b2 + c))),
                   popcount_epi64(_mm256_xor_si256(av_hi, load256(b2 + c + 4))));
    const __m256 mm3 =
        counts8_ps(popcount_epi64(_mm256_xor_si256(av_lo, load256(b3 + c))),
                   popcount_epi64(_mm256_xor_si256(av_hi, load256(b3 + c + 4))));
    lanes0 = _mm256_add_ps(
        lanes0, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm0, mm0))));
    lanes1 = _mm256_add_ps(
        lanes1, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm1, mm1))));
    lanes2 = _mm256_add_ps(
        lanes2, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm2, mm2))));
    lanes3 = _mm256_add_ps(
        lanes3, _mm256_mul_ps(alphav,
                              _mm256_sub_ps(bits, _mm256_add_ps(mm3, mm3))));
  }
  alignas(32) float lv[4][8];
  _mm256_store_ps(lv[0], lanes0);
  _mm256_store_ps(lv[1], lanes1);
  _mm256_store_ps(lv[2], lanes2);
  _mm256_store_ps(lv[3], lanes3);
  const std::uint64_t* const filters[4] = {b0, b1, b2, b3};
  for (int f = 0; f < 4; ++f) {
    for (int lane = 0; c + lane < channels; ++lane) {
      const auto mismatches = static_cast<float>(
          std::popcount(a[c + lane] ^ filters[f][c + lane]));
      lv[f][lane] += alpha[c + lane] * (dot_bits - 2.0f * mismatches);
    }
    out[f] = ((lv[f][0] + lv[f][1]) + (lv[f][2] + lv[f][3])) +
             ((lv[f][4] + lv[f][5]) + (lv[f][6] + lv[f][7]));
  }
}

}  // namespace

const XnorKernel& xnor_kernel_avx2() {
  static const XnorKernel kernel{
      "avx2",            /*simd_bits=*/256,
      /*word_multiple=*/4, avx2_xor_popcount,
      avx2_xor_popcount_2x4, avx2_weighted_sum,
      avx2_weighted_sum_x4,
  };
  return kernel;
}

}  // namespace hotspot::bitops

#endif  // HOTSPOT_XNOR_AVX2
