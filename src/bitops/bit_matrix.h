// Bit-packed {-1,+1} matrices.
//
// A BitMatrix stores one bit per element (+1 -> 1, -1 -> 0), rows padded to
// 64-bit word boundaries with zero tail bits. The +/-1 inner product of two
// rows is then n - 2*popcount(a XOR b): equal tail bits cancel, so rows can
// be compared word-by-word without masking as long as both tails are zero,
// which the class guarantees.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::bitops {

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::int64_t rows, std::int64_t cols);

  // Packs a rank-2 float tensor: bit = 1 iff value >= 0 (sign(0) = +1,
  // matching tensor::sign).
  static BitMatrix pack_rows(const tensor::Tensor& source);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t words_per_row() const { return words_per_row_; }

  const std::uint64_t* row(std::int64_t r) const {
    return words_.data() + r * words_per_row_;
  }
  std::uint64_t* row(std::int64_t r) {
    return words_.data() + r * words_per_row_;
  }

  void set(std::int64_t r, std::int64_t c, bool bit);
  bool get(std::int64_t r, std::int64_t c) const;

  // Unpacks back to a float tensor of {-1,+1}; inverse of pack_rows.
  tensor::Tensor unpack() const;

  // Storage in bytes (for the Fig.-1 model-size comparison).
  std::int64_t storage_bytes() const {
    return static_cast<std::int64_t>(words_.size() * sizeof(std::uint64_t));
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

// +/-1 inner product of two packed rows of `bits` valid bits spread over
// `words` words (both tails must be zero): bits - 2*popcount(xor).
std::int64_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                      std::int64_t words, std::int64_t bits);

}  // namespace hotspot::bitops
