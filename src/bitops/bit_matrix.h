// Bit-packed {-1,+1} matrices.
//
// A BitMatrix stores one bit per element (+1 -> 1, -1 -> 0), rows padded to
// 64-bit word boundaries with zero tail bits. The +/-1 inner product of two
// rows is then n - 2*popcount(a XOR b): equal tail bits cancel, so rows can
// be compared word-by-word without masking as long as both tails are zero,
// which the class guarantees.
//
// Rows are stored `word_stride()` words apart: `words_per_row()` logical
// words (ceil(cols / 64)) rounded up to the active XNOR kernel's
// word_multiple, with the padding words zero. Inner loops that run over
// word_stride() words therefore hit the SIMD kernels' tail-free path while
// computing the same dot products (zero XOR zero adds nothing). Kernels
// accept any word count, so iterating words_per_row() words of a padded
// matrix is equally correct, just slower.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::bitops {

class BitMatrix {
 public:
  BitMatrix() = default;
  // Pads rows to the active kernel's word_multiple.
  BitMatrix(std::int64_t rows, std::int64_t cols);
  // Pads rows to an explicit word multiple (>= 1); used by tests to build
  // unpadded matrices and by callers packing for a specific kernel.
  BitMatrix(std::int64_t rows, std::int64_t cols, std::int64_t word_multiple);

  // Packs a rank-2 float tensor: bit = 1 iff value >= 0 (sign(0) = +1,
  // matching tensor::sign).
  static BitMatrix pack_rows(const tensor::Tensor& source);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  // Logical words per row: ceil(cols / 64), independent of padding.
  std::int64_t words_per_row() const { return words_per_row_; }
  // Allocated words per row: words_per_row() rounded up to the word
  // multiple this matrix was built with; rows are word_stride() apart.
  std::int64_t word_stride() const { return word_stride_; }

  const std::uint64_t* row(std::int64_t r) const {
    return words_.data() + r * word_stride_;
  }
  std::uint64_t* row(std::int64_t r) {
    return words_.data() + r * word_stride_;
  }

  void set(std::int64_t r, std::int64_t c, bool bit);
  bool get(std::int64_t r, std::int64_t c) const;

  // Unpacks back to a float tensor of {-1,+1}; inverse of pack_rows.
  tensor::Tensor unpack() const;

  // Logical storage in bytes (for the Fig.-1 model-size comparison):
  // rows * ceil(cols/64) words. Excludes kernel-alignment padding, which is
  // a runtime layout choice, not part of the stored model.
  std::int64_t storage_bytes() const {
    return static_cast<std::int64_t>(rows_ * words_per_row_ *
                                     static_cast<std::int64_t>(
                                         sizeof(std::uint64_t)));
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t words_per_row_ = 0;
  std::int64_t word_stride_ = 0;
  std::vector<std::uint64_t> words_;
};

// +/-1 inner product of two packed rows of `bits` valid bits spread over
// `words` words (both tails must be zero): bits - 2*popcount(xor). Routed
// through the active XNOR kernel.
std::int64_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                      std::int64_t words, std::int64_t bits);

}  // namespace hotspot::bitops
