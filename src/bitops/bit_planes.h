// Per-(sample, channel) activation bit planes and binarize thresholds.
//
// A BitPlanes holds one bitmap row per (n*C + c, y) of an NCHW tensor with
// bit x describing input[n,c,y,x]; bits at x >= W are zero. The packers in
// xnor_gemm.h assemble conv patch words from these bitmaps with shifts
// instead of kh*kw float loads per output position, so every input float is
// read exactly once during packing.
//
// Two binarization rules produce the bits:
//   - sign:      bit = (v >= 0), matching tensor::sign (sign(0) = +1);
//   - threshold: bit = (v >= bound) != flip, one BinarizeThreshold per
//     channel. This is how the graph layer's BN->Binarize fold consumes a
//     batch-norm: instead of materializing y = gamma*xhat + beta and taking
//     sign(y), the fold computes a per-channel bound on the *raw* input
//     such that the comparison gives the same bit for every finite float
//     (graph/threshold.h derives the bound by bisection; flip is set for
//     negative-gamma channels, where y is a decreasing function of x).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::bitops {

// bit(v) = (v >= bound) != flip. The default is the sign rule. A constant
// channel is expressed with an infinite bound: bound = -inf always fires,
// bound = +inf never does (for finite v).
struct BinarizeThreshold {
  float bound = 0.0f;
  bool flip = false;
};

inline bool apply(const BinarizeThreshold& t, float v) {
  return (v >= t.bound) != t.flip;
}

class BitPlanes {
 public:
  BitPlanes() = default;

  // Sign rule: bit = (v >= 0).
  explicit BitPlanes(const tensor::Tensor& input);

  // Threshold rule: `thresholds` has one entry per channel (input.dim(1)).
  BitPlanes(const tensor::Tensor& input, const BinarizeThreshold* thresholds);

  // All-zero planes for direct bit emission (the graph executor's
  // integer-threshold popcount-compare path writes conv outputs here
  // without ever producing a float tensor).
  BitPlanes(std::int64_t n, std::int64_t channels, std::int64_t h,
            std::int64_t w);

  std::int64_t batch() const { return n_; }
  std::int64_t channels() const { return c_; }
  std::int64_t height() const { return h_; }
  std::int64_t width() const { return w_; }
  std::int64_t row_words() const { return row_words_; }

  // Bitmap row y of plane (n*channels + c); caller guarantees bounds.
  const std::uint64_t* row(std::int64_t plane, std::int64_t y) const {
    return words_.data() + (plane * h_ + y) * row_words_;
  }
  std::uint64_t* row(std::int64_t plane, std::int64_t y) {
    return words_.data() + (plane * h_ + y) * row_words_;
  }

  bool get(std::int64_t n, std::int64_t c, std::int64_t y,
           std::int64_t x) const {
    return (row(n * c_ + c, y)[x >> 6] >> (x & 63)) & 1u;
  }

  // kw bits of bitmap row `bm` starting at column ix0 (bit i = column
  // ix0 + i); columns outside [0, w) read as zero (padding is -1 -> bit 0).
  // Requires -64 < ix0 < w (the conv window overlaps the image, pad < 64).
  std::uint64_t window_bits(const std::uint64_t* bm, std::int64_t ix0,
                            std::int64_t kw) const {
    std::uint64_t v;
    if (ix0 >= 0) {
      const std::int64_t wi = ix0 >> 6;
      const int off = static_cast<int>(ix0 & 63);
      v = bm[wi] >> off;
      if (off != 0 && wi + 1 < row_words_) {
        v |= bm[wi + 1] << (64 - off);
      }
    } else {
      v = bm[0] << -ix0;  // low -ix0 bits are left-padding zeros
    }
    return kw < 64 ? v & ((std::uint64_t{1} << kw) - 1) : v;
  }

 private:
  std::int64_t n_ = 0;
  std::int64_t c_ = 0;
  std::int64_t h_ = 0;
  std::int64_t w_ = 0;
  std::int64_t row_words_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hotspot::bitops
