#include "bitops/bit_planes.h"

#include "util/parallel.h"

namespace hotspot::bitops {

BitPlanes::BitPlanes(const tensor::Tensor& input)
    : BitPlanes(input, nullptr) {}

BitPlanes::BitPlanes(const tensor::Tensor& input,
                     const BinarizeThreshold* thresholds)
    : n_(input.dim(0)),
      c_(input.dim(1)),
      h_(input.dim(2)),
      w_(input.dim(3)),
      row_words_((input.dim(3) + 63) >> 6),
      words_(static_cast<std::size_t>(n_ * c_ * h_ * row_words_), 0) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t planes = n_ * c_;
  util::parallel_for(0, planes, /*grain=*/1, [&](std::int64_t lo,
                                                 std::int64_t hi) {
    for (std::int64_t plane = lo; plane < hi; ++plane) {
      const float* src = input.data() + plane * h_ * w_;
      std::uint64_t* dst = words_.data() + plane * h_ * row_words_;
      // Hoist the channel's rule out of the pixel loop; the sign rule is
      // the threshold rule at {bound = 0, flip = false} ((v >= 0) != false),
      // so both paths binarize identically when the bound is zero.
      const BinarizeThreshold t =
          thresholds != nullptr ? thresholds[plane % c_] : BinarizeThreshold{};
      const float bound = t.bound;
      const std::uint64_t flip = t.flip ? 1u : 0u;
      for (std::int64_t y = 0; y < h_; ++y, src += w_, dst += row_words_) {
        for (std::int64_t x = 0; x < w_; ++x) {
          dst[x >> 6] |=
              (std::uint64_t{src[x] >= bound} ^ flip) << (x & 63);
        }
      }
    }
  });
}

BitPlanes::BitPlanes(std::int64_t n, std::int64_t channels, std::int64_t h,
                     std::int64_t w)
    : n_(n),
      c_(channels),
      h_(h),
      w_(w),
      row_words_((w + 63) >> 6),
      words_(static_cast<std::size_t>(n * channels * h * row_words_), 0) {
  HOTSPOT_CHECK_GT(n, 0);
  HOTSPOT_CHECK_GT(channels, 0);
  HOTSPOT_CHECK_GT(h, 0);
  HOTSPOT_CHECK_GT(w, 0);
}

}  // namespace hotspot::bitops
