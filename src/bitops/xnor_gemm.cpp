#include "bitops/xnor_gemm.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bitops/kernels/xnor_kernel.h"
#include "util/parallel.h"

namespace hotspot::bitops {
namespace {

// Register-blocked tile shape: kRowTile rows of A against kColTile rows of B
// keeps kRowTile*kColTile popcount accumulators plus the A words live across
// the shared inner word loop (the kernel's xor_popcount_2x4 primitive), so
// each loaded word feeds several XNOR dots instead of one. All accumulation
// is integer, so the result is exact and independent of how the output is
// tiled or partitioned across threads.
constexpr std::int64_t kRowTile = 2;
constexpr std::int64_t kColTile = 4;

// Words to iterate per row pair: when both matrices carry the same padding,
// run over the full padded stride (zero pad words cancel in XOR) so the
// kernels take their tail-free vector path; otherwise fall back to the
// logical word count, which every kernel also handles.
std::int64_t common_words(const BitMatrix& a, const BitMatrix& b) {
  return a.word_stride() == b.word_stride() ? a.word_stride()
                                            : a.words_per_row();
}

// One full-width strip: out[i][0..n) for a single row of A, itself blocked
// kColTile columns at a time.
void gemm_row_strip(const XnorKernel& kern, const BitMatrix& a,
                    const BitMatrix& b, std::int64_t words, std::int64_t i,
                    float* crow) {
  const std::int64_t n = b.rows();
  const std::int64_t bits = a.cols();
  const std::uint64_t* arow = a.row(i);
  for (std::int64_t j = 0; j < n; ++j) {
    crow[j] = static_cast<float>(
        bits - 2 * kern.xor_popcount(arow, b.row(j), words));
  }
}

}  // namespace

tensor::Tensor xnor_gemm(const BitMatrix& a, const BitMatrix& b) {
  HOTSPOT_CHECK_EQ(a.cols(), b.cols()) << "xnor_gemm inner dimension";
  const XnorKernel& kern = active_xnor_kernel();
  const std::int64_t m = a.rows();
  const std::int64_t n = b.rows();
  const std::int64_t words = common_words(a, b);
  const std::int64_t bits = a.cols();
  tensor::Tensor out({m, n});
  float* c = out.data();
  util::parallel_for(0, m, /*grain=*/kRowTile * 4, [&](std::int64_t i_lo,
                                                       std::int64_t i_hi) {
    std::int64_t i = i_lo;
    for (; i + kRowTile <= i_hi; i += kRowTile) {
      const std::uint64_t* a0 = a.row(i);
      const std::uint64_t* a1 = a.row(i + 1);
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      std::int64_t j = 0;
      for (; j + kColTile <= n; j += kColTile) {
        std::int64_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        kern.xor_popcount_2x4(a0, a1, b.row(j), b.row(j + 1), b.row(j + 2),
                              b.row(j + 3), words, acc);
        c0[j] = static_cast<float>(bits - 2 * acc[0]);
        c0[j + 1] = static_cast<float>(bits - 2 * acc[1]);
        c0[j + 2] = static_cast<float>(bits - 2 * acc[2]);
        c0[j + 3] = static_cast<float>(bits - 2 * acc[3]);
        c1[j] = static_cast<float>(bits - 2 * acc[4]);
        c1[j + 1] = static_cast<float>(bits - 2 * acc[5]);
        c1[j + 2] = static_cast<float>(bits - 2 * acc[6]);
        c1[j + 3] = static_cast<float>(bits - 2 * acc[7]);
      }
      for (; j < n; ++j) {
        const std::uint64_t* brow = b.row(j);
        c0[j] = static_cast<float>(
            bits - 2 * kern.xor_popcount(a0, brow, words));
        c1[j] = static_cast<float>(
            bits - 2 * kern.xor_popcount(a1, brow, words));
      }
    }
    for (; i < i_hi; ++i) {
      gemm_row_strip(kern, a, b, words, i, c + i * n);
    }
  });
  return out;
}

BitMatrix pack_patches(const tensor::Tensor& input,
                       const tensor::ConvSpec& spec) {
  // Packs sign bits straight from the input tensor — equivalent to
  // pack_rows(im2col(input, spec, -1)) but without materializing the float
  // patch matrix, which would dominate the packed path's runtime. Padding
  // is -1 (bit 0) so padded positions stay in the +/-1 alphabet.
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  return pack_patches(BitPlanes(input), spec);
}

BitMatrix pack_patches(const BitPlanes& planes, const tensor::ConvSpec& spec) {
  const std::int64_t n = planes.batch();
  const std::int64_t cin = planes.channels();
  const std::int64_t h = planes.height();
  const std::int64_t w = planes.width();
  const std::int64_t out_h =
      tensor::conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      tensor::conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  const std::int64_t patch = cin * spec.kernel_h * spec.kernel_w;
  const std::int64_t positions = out_h * out_w;
  const std::int64_t kw = spec.kernel_w;
  HOTSPOT_CHECK_LT(spec.pad, 64) << "bit-plane packing window shift";
  BitMatrix packed(n * positions, patch);
  util::parallel_for(0, n * positions, /*grain=*/32, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row_index = lo; row_index < hi; ++row_index) {
      const std::int64_t ni = row_index / positions;
      const std::int64_t p = row_index % positions;
      const std::int64_t oy = p / out_w;
      const std::int64_t ox = p % out_w;
      std::uint64_t* words = packed.row(row_index);
      const std::int64_t iy0 = oy * spec.stride - spec.pad;
      const std::int64_t ix0 = ox * spec.stride - spec.pad;
      std::int64_t bit = 0;
      std::uint64_t word = 0;  // register accumulator, flushed per word
      for (std::int64_t ci = 0; ci < cin; ++ci) {
        const std::int64_t plane = ni * cin + ci;
        for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
          const std::int64_t iy = iy0 + ky;
          // Row outside the image: kw zero bits (padding is -1 -> bit 0).
          const std::uint64_t group =
              (iy >= 0 && iy < h)
                  ? planes.window_bits(planes.row(plane, iy), ix0, kw)
                  : 0;
          // Append the kw-bit group at `bit`, spilling across the word
          // boundary when it straddles one.
          const int shift = static_cast<int>(bit & 63);
          word |= group << shift;
          if (shift + kw >= 64) {
            words[bit >> 6] = word;
            word = shift == 0 ? 0 : group >> (64 - shift);
          }
          bit += kw;
        }
      }
      if ((bit & 63) != 0) {
        words[bit >> 6] = word;
      }
    }
  });
  return packed;
}

BitMatrix pack_filters(const tensor::Tensor& weight) {
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  const std::int64_t cout = weight.dim(0);
  return BitMatrix::pack_rows(weight.reshaped({cout, weight.numel() / cout}));
}

BitMatrix pack_patches_channel_blocked(const tensor::Tensor& input,
                                       const tensor::ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  return pack_patches_channel_blocked(BitPlanes(input), spec);
}

BitMatrix pack_patches_channel_blocked(const BitPlanes& planes,
                                       const tensor::ConvSpec& spec) {
  const std::int64_t patch_bits = spec.kernel_h * spec.kernel_w;
  HOTSPOT_CHECK_LE(patch_bits, 64)
      << "channel-blocked packing needs kh*kw <= 64";
  const std::int64_t n = planes.batch();
  const std::int64_t cin = planes.channels();
  const std::int64_t h = planes.height();
  const std::int64_t w = planes.width();
  const std::int64_t out_h =
      tensor::conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      tensor::conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  const std::int64_t positions = out_h * out_w;
  const std::int64_t kw = spec.kernel_w;
  HOTSPOT_CHECK_LT(spec.pad, 64) << "bit-plane packing window shift";
  // One 64-bit word per channel: cols = cin * 64 keeps words_per_row = cin.
  BitMatrix packed(n * positions, cin * 64);
  util::parallel_for(0, n * positions, /*grain=*/32, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row_index = lo; row_index < hi; ++row_index) {
      const std::int64_t ni = row_index / positions;
      const std::int64_t p = row_index % positions;
      const std::int64_t oy = p / out_w;
      const std::int64_t ox = p % out_w;
      std::uint64_t* words = packed.row(row_index);
      const std::int64_t iy0 = oy * spec.stride - spec.pad;
      const std::int64_t ix0 = ox * spec.stride - spec.pad;
      for (std::int64_t ci = 0; ci < cin; ++ci) {
        const std::int64_t plane = ni * cin + ci;
        std::uint64_t word = 0;
        for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
          const std::int64_t iy = iy0 + ky;
          // Rows outside the image stay zero (padding is -1 -> bit 0);
          // kh*kw <= 64 so the groups never straddle the channel word.
          if (iy >= 0 && iy < h) {
            word |= planes.window_bits(planes.row(plane, iy), ix0, kw)
                    << (ky * kw);
          }
        }
        words[ci] = word;
      }
    }
  });
  return packed;
}

BitMatrix pack_filters_channel_blocked(const tensor::Tensor& weight) {
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t cin = weight.dim(1);
  const std::int64_t patch_bits = weight.dim(2) * weight.dim(3);
  HOTSPOT_CHECK_LE(patch_bits, 64)
      << "channel-blocked packing needs kh*kw <= 64";
  BitMatrix packed(cout, cin * 64);
  for (std::int64_t co = 0; co < cout; ++co) {
    std::uint64_t* words = packed.row(co);
    for (std::int64_t ci = 0; ci < cin; ++ci) {
      std::uint64_t word = 0;
      std::int64_t bit = 0;
      for (std::int64_t ky = 0; ky < weight.dim(2); ++ky) {
        for (std::int64_t kx = 0; kx < weight.dim(3); ++kx, ++bit) {
          if (weight.at4(co, ci, ky, kx) >= 0.0f) {
            word |= std::uint64_t{1} << bit;
          }
        }
      }
      words[ci] = word;
    }
  }
  return packed;
}

tensor::Tensor binary_conv_counts(const tensor::Tensor& input,
                                  const tensor::Tensor& weight,
                                  const tensor::ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  HOTSPOT_CHECK_EQ(weight.dim(1), input.dim(1));
  const std::int64_t n = input.dim(0);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t out_h = tensor::conv_out_extent(
      input.dim(2), spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w = tensor::conv_out_extent(
      input.dim(3), spec.kernel_w, spec.stride, spec.pad);

  const BitMatrix patches = pack_patches(input, spec);
  const BitMatrix filters = pack_filters(weight);
  const tensor::Tensor counts = xnor_gemm(patches, filters);  // [n*oh*ow, cout]

  tensor::Tensor out({n, cout, out_h, out_w});
  const std::int64_t positions = out_h * out_w;
  // Transpose [n*positions, cout] rows into NCHW planes; rows are disjoint
  // per chunk so the scatter is safe and order-independent.
  util::parallel_for(0, n * positions, /*grain=*/64, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const float* src = counts.data() + row * cout;
      float* dst = out.data() + ni * cout * positions + p;
      for (std::int64_t co = 0; co < cout; ++co) {
        dst[co * positions] = src[co];
      }
    }
  });
  return out;
}

}  // namespace hotspot::bitops
