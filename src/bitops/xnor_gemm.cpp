#include "bitops/xnor_gemm.h"

namespace hotspot::bitops {

tensor::Tensor xnor_gemm(const BitMatrix& a, const BitMatrix& b) {
  HOTSPOT_CHECK_EQ(a.cols(), b.cols()) << "xnor_gemm inner dimension";
  const std::int64_t m = a.rows();
  const std::int64_t n = b.rows();
  const std::int64_t words = a.words_per_row();
  const std::int64_t bits = a.cols();
  tensor::Tensor out({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint64_t* arow = a.row(i);
    for (std::int64_t j = 0; j < n; ++j) {
      out.at2(i, j) =
          static_cast<float>(xnor_dot(arow, b.row(j), words, bits));
    }
  }
  return out;
}

BitMatrix pack_patches(const tensor::Tensor& input,
                       const tensor::ConvSpec& spec) {
  // Packs sign bits straight from the input tensor — equivalent to
  // pack_rows(im2col(input, spec, -1)) but without materializing the float
  // patch matrix, which would dominate the packed path's runtime. Padding
  // is -1 (bit 0) so padded positions stay in the +/-1 alphabet.
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t cin = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h =
      tensor::conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      tensor::conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  const std::int64_t patch = cin * spec.kernel_h * spec.kernel_w;
  BitMatrix packed(n * out_h * out_w, patch);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        const std::int64_t row_index = (ni * out_h + oy) * out_w + ox;
        std::uint64_t* words = packed.row(row_index);
        const std::int64_t iy0 = oy * spec.stride - spec.pad;
        const std::int64_t ix0 = ox * spec.stride - spec.pad;
        std::int64_t bit = 0;
        std::uint64_t word = 0;  // register accumulator, flushed per word
        for (std::int64_t ci = 0; ci < cin; ++ci) {
          const float* plane = input.data() + (ni * cin + ci) * h * w;
          for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
            const std::int64_t iy = iy0 + ky;
            const bool row_inside = iy >= 0 && iy < h;
            const float* line = plane + iy * w;
            for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx, ++bit) {
              const std::int64_t ix = ix0 + kx;
              if (row_inside && ix >= 0 && ix < w && line[ix] >= 0.0f) {
                word |= std::uint64_t{1} << (bit & 63);
              }
              if ((bit & 63) == 63) {
                words[bit >> 6] = word;
                word = 0;
              }
            }
          }
        }
        if ((bit & 63) != 0) {
          words[bit >> 6] = word;
        }
      }
    }
  }
  return packed;
}

BitMatrix pack_filters(const tensor::Tensor& weight) {
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  const std::int64_t cout = weight.dim(0);
  return BitMatrix::pack_rows(weight.reshaped({cout, weight.numel() / cout}));
}

BitMatrix pack_patches_channel_blocked(const tensor::Tensor& input,
                                       const tensor::ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t patch_bits = spec.kernel_h * spec.kernel_w;
  HOTSPOT_CHECK_LE(patch_bits, 64)
      << "channel-blocked packing needs kh*kw <= 64";
  const std::int64_t n = input.dim(0);
  const std::int64_t cin = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h =
      tensor::conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      tensor::conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  // One 64-bit word per channel: cols = cin * 64 keeps words_per_row = cin.
  BitMatrix packed(n * out_h * out_w, cin * 64);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        const std::int64_t row_index = (ni * out_h + oy) * out_w + ox;
        std::uint64_t* words = packed.row(row_index);
        const std::int64_t iy0 = oy * spec.stride - spec.pad;
        const std::int64_t ix0 = ox * spec.stride - spec.pad;
        for (std::int64_t ci = 0; ci < cin; ++ci) {
          std::uint64_t word = 0;
          std::int64_t bit = 0;
          for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
            const std::int64_t iy = iy0 + ky;
            for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx, ++bit) {
              const std::int64_t ix = ix0 + kx;
              const bool inside = iy >= 0 && iy < h && ix >= 0 && ix < w;
              // Padding is -1 (bit 0); inside bits follow sign(value).
              if (inside && input.at4(ni, ci, iy, ix) >= 0.0f) {
                word |= std::uint64_t{1} << bit;
              }
            }
          }
          words[ci] = word;
        }
      }
    }
  }
  return packed;
}

BitMatrix pack_filters_channel_blocked(const tensor::Tensor& weight) {
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t cin = weight.dim(1);
  const std::int64_t patch_bits = weight.dim(2) * weight.dim(3);
  HOTSPOT_CHECK_LE(patch_bits, 64)
      << "channel-blocked packing needs kh*kw <= 64";
  BitMatrix packed(cout, cin * 64);
  for (std::int64_t co = 0; co < cout; ++co) {
    std::uint64_t* words = packed.row(co);
    for (std::int64_t ci = 0; ci < cin; ++ci) {
      std::uint64_t word = 0;
      std::int64_t bit = 0;
      for (std::int64_t ky = 0; ky < weight.dim(2); ++ky) {
        for (std::int64_t kx = 0; kx < weight.dim(3); ++kx, ++bit) {
          if (weight.at4(co, ci, ky, kx) >= 0.0f) {
            word |= std::uint64_t{1} << bit;
          }
        }
      }
      words[ci] = word;
    }
  }
  return packed;
}

tensor::Tensor binary_conv_counts(const tensor::Tensor& input,
                                  const tensor::Tensor& weight,
                                  const tensor::ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  HOTSPOT_CHECK_EQ(weight.dim(1), input.dim(1));
  const std::int64_t n = input.dim(0);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t out_h = tensor::conv_out_extent(
      input.dim(2), spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w = tensor::conv_out_extent(
      input.dim(3), spec.kernel_w, spec.stride, spec.pad);

  const BitMatrix patches = pack_patches(input, spec);
  const BitMatrix filters = pack_filters(weight);
  const tensor::Tensor counts = xnor_gemm(patches, filters);  // [n*oh*ow, cout]

  tensor::Tensor out({n, cout, out_h, out_w});
  const std::int64_t positions = out_h * out_w;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t p = 0; p < positions; ++p) {
      for (std::int64_t co = 0; co < cout; ++co) {
        out.at4(ni, co, p / out_w, p % out_w) =
            counts.at2(ni * positions + p, co);
      }
    }
  }
  return out;
}

}  // namespace hotspot::bitops
