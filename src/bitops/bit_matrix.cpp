#include "bitops/bit_matrix.h"

#include <algorithm>

#include "bitops/kernels/xnor_kernel.h"
#include "util/check.h"

namespace hotspot::bitops {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : BitMatrix(rows, cols, active_xnor_kernel().word_multiple) {}

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols,
                     std::int64_t word_multiple)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  HOTSPOT_CHECK_GE(rows, 0);
  HOTSPOT_CHECK_GE(cols, 0);
  HOTSPOT_CHECK_GE(word_multiple, 1);
  word_stride_ =
      (words_per_row_ + word_multiple - 1) / word_multiple * word_multiple;
  words_.assign(static_cast<std::size_t>(rows * word_stride_), 0);
}

BitMatrix BitMatrix::pack_rows(const tensor::Tensor& source) {
  HOTSPOT_CHECK_EQ(source.rank(), 2);
  BitMatrix packed(source.dim(0), source.dim(1));
  const std::int64_t cols = packed.cols_;
  for (std::int64_t r = 0; r < packed.rows_; ++r) {
    std::uint64_t* words = packed.row(r);
    const float* values = source.data() + r * cols;
    // Accumulate each word in a register; per-bit |= to memory would cost a
    // store-load dependency per element.
    for (std::int64_t base = 0; base < cols; base += 64) {
      const std::int64_t chunk = std::min<std::int64_t>(64, cols - base);
      std::uint64_t word = 0;
      for (std::int64_t b = 0; b < chunk; ++b) {
        word |= static_cast<std::uint64_t>(values[base + b] >= 0.0f) << b;
      }
      words[base >> 6] = word;
    }
  }
  return packed;
}

void BitMatrix::set(std::int64_t r, std::int64_t c, bool bit) {
  HOTSPOT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
      << "bit index (" << r << ", " << c << ") out of range";
  std::uint64_t& word = row(r)[c >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (c & 63);
  word = bit ? (word | mask) : (word & ~mask);
}

bool BitMatrix::get(std::int64_t r, std::int64_t c) const {
  HOTSPOT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
      << "bit index (" << r << ", " << c << ") out of range";
  return (row(r)[c >> 6] >> (c & 63)) & 1;
}

tensor::Tensor BitMatrix::unpack() const {
  tensor::Tensor out({rows_, cols_});
  for (std::int64_t r = 0; r < rows_; ++r) {
    const std::uint64_t* words = row(r);
    for (std::int64_t c = 0; c < cols_; ++c) {
      out.at2(r, c) = ((words[c >> 6] >> (c & 63)) & 1) ? 1.0f : -1.0f;
    }
  }
  return out;
}

std::int64_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                      std::int64_t words, std::int64_t bits) {
  return bits - 2 * active_xnor_kernel().xor_popcount(a, b, words);
}

}  // namespace hotspot::bitops
