#include "bitops/scaling.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"

namespace hotspot::bitops {

const char* to_string(InputScaling mode) {
  switch (mode) {
    case InputScaling::kPerChannel:
      return "per-channel";
    case InputScaling::kScalar:
      return "scalar";
    case InputScaling::kNone:
      return "none";
  }
  return "?";
}

tensor::Tensor weight_scales(const tensor::Tensor& weight) {
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t n = weight.numel() / cout;
  tensor::Tensor scales({cout});
  for (std::int64_t co = 0; co < cout; ++co) {
    double total = 0.0;
    const float* filter = weight.data() + co * n;
    for (std::int64_t i = 0; i < n; ++i) {
      total += std::fabs(static_cast<double>(filter[i]));
    }
    scales[co] = static_cast<float>(total / static_cast<double>(n));
  }
  return scales;
}

namespace {

// Integral-image box filter over |transform(v, c)|. transform is inlined
// per call site; the public entry points instantiate it with the identity
// (plain |v|) and with the batch-norm affine, so both accumulate the same
// double sums in the same order over their respective float values.
template <typename TransformFn>
tensor::Tensor box_filter_abs_mean_impl(const tensor::Tensor& input,
                                        const tensor::ConvSpec& spec,
                                        TransformFn&& transform) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h =
      tensor::conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      tensor::conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  const float inv_area =
      1.0f / static_cast<float>(spec.kernel_h * spec.kernel_w);

  tensor::Tensor out({n, c, out_h, out_w});
  // Integral image S[y][x] = sum of |input| over [0,y) x [0,x); window sums
  // become four lookups.
  std::vector<double> integral(
      static_cast<std::size_t>((h + 1) * (w + 1)), 0.0);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* plane = input.data() + (ni * c + ci) * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        double row_sum = 0.0;
        for (std::int64_t x = 0; x < w; ++x) {
          row_sum += std::fabs(
              static_cast<double>(transform(plane[y * w + x], ci)));
          integral[static_cast<std::size_t>((y + 1) * (w + 1) + x + 1)] =
              integral[static_cast<std::size_t>(y * (w + 1) + x + 1)] +
              row_sum;
        }
      }
      float* dst = out.data() + (ni * c + ci) * out_h * out_w;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        // Window rows clamped to the image (zero padding contributes 0).
        const std::int64_t y0 = std::max<std::int64_t>(
            0, oy * spec.stride - spec.pad);
        const std::int64_t y1 = std::min(
            h, oy * spec.stride - spec.pad + spec.kernel_h);
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::int64_t x0 = std::max<std::int64_t>(
              0, ox * spec.stride - spec.pad);
          const std::int64_t x1 = std::min(
              w, ox * spec.stride - spec.pad + spec.kernel_w);
          const double total =
              integral[static_cast<std::size_t>(y1 * (w + 1) + x1)] -
              integral[static_cast<std::size_t>(y0 * (w + 1) + x1)] -
              integral[static_cast<std::size_t>(y1 * (w + 1) + x0)] +
              integral[static_cast<std::size_t>(y0 * (w + 1) + x0)];
          dst[oy * out_w + ox] = static_cast<float>(total) * inv_area;
        }
      }
    }
  }
  return out;
}

// BatchNorm2d's inference expression, float op for float op.
inline float affine_eval(const ChannelAffine& a, float v, std::int64_t c) {
  const float xhat = (v - a.mean[c]) * a.inv_std[c];
  return a.gamma[c] * xhat + a.beta[c];
}

}  // namespace

tensor::Tensor box_filter_abs_mean(const tensor::Tensor& input,
                                   const tensor::ConvSpec& spec) {
  return box_filter_abs_mean_impl(
      input, spec, [](float v, std::int64_t) { return v; });
}

tensor::Tensor input_scales_per_channel_affine(const tensor::Tensor& input,
                                               const tensor::ConvSpec& spec,
                                               const ChannelAffine& affine) {
  return box_filter_abs_mean_impl(
      input, spec,
      [&affine](float v, std::int64_t c) { return affine_eval(affine, v, c); });
}

tensor::Tensor input_scales_scalar_affine(const tensor::Tensor& input,
                                          const tensor::ConvSpec& spec,
                                          const ChannelAffine& affine) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  // Channel mean of |bn(x)| -> [N,1,H,W], same double accumulation as
  // input_scales_scalar over the materialized BN output.
  tensor::Tensor mean_abs({n, 1, h, w});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double total = 0.0;
        for (std::int64_t ci = 0; ci < c; ++ci) {
          total += std::fabs(static_cast<double>(
              affine_eval(affine, input.at4(ni, ci, y, x), ci)));
        }
        mean_abs.at4(ni, 0, y, x) =
            static_cast<float>(total / static_cast<double>(c));
      }
    }
  }
  return box_filter_abs_mean(mean_abs, spec);
}

tensor::Tensor input_scales_per_channel(const tensor::Tensor& input,
                                        const tensor::ConvSpec& spec) {
  return box_filter_abs_mean(input, spec);
}

tensor::Tensor input_scales_scalar(const tensor::Tensor& input,
                                   const tensor::ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  // A = mean over channels of |T_in| -> [N,1,H,W].
  tensor::Tensor mean_abs({n, 1, h, w});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double total = 0.0;
        for (std::int64_t ci = 0; ci < c; ++ci) {
          total += std::fabs(static_cast<double>(input.at4(ni, ci, y, x)));
        }
        mean_abs.at4(ni, 0, y, x) =
            static_cast<float>(total / static_cast<double>(c));
      }
    }
  }
  return box_filter_abs_mean(mean_abs, spec);
}

}  // namespace hotspot::bitops
