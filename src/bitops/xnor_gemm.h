// Binarized GEMM and the packed binary convolution primitive.
#pragma once

#include "bitops/bit_matrix.h"
#include "bitops/bit_planes.h"
#include "tensor/conv.h"

namespace hotspot::bitops {

// C[i][j] = +/-1 inner product of a.row(i) and b.row(j); a is [m,k] bits,
// b is [n,k] bits, result is [m,n] float (integer-valued).
tensor::Tensor xnor_gemm(const BitMatrix& a, const BitMatrix& b);

// Packs the im2col patches of sign(input) (padding = -1) for the given conv
// spec. Rows are output positions (n*outH*outW), columns are Cin*kh*kw bits.
BitMatrix pack_patches(const tensor::Tensor& input,
                       const tensor::ConvSpec& spec);

// Same patch assembly from pre-binarized planes. The tensor overload above
// is pack_patches(BitPlanes(input), spec); the graph executor passes planes
// it binarized with per-channel thresholds (or emitted directly as bits)
// instead, skipping the float sign pass entirely.
BitMatrix pack_patches(const BitPlanes& planes, const tensor::ConvSpec& spec);

// Packs conv weights [Cout,Cin,kh,kw] into rows of Cin*kh*kw bits.
BitMatrix pack_filters(const tensor::Tensor& weight);

// Channel-blocked packing used by the per-channel scaling mode (Eq. 14):
// each input channel's kh*kw patch bits occupy their own 64-bit word, so a
// per-channel +/-1 dot is one XOR + popcount. Requires kh*kw <= 64.
// Rows are output positions, and row r holds Cin words.
BitMatrix pack_patches_channel_blocked(const tensor::Tensor& input,
                                       const tensor::ConvSpec& spec);
BitMatrix pack_patches_channel_blocked(const BitPlanes& planes,
                                       const tensor::ConvSpec& spec);
BitMatrix pack_filters_channel_blocked(const tensor::Tensor& weight);

// Dense binary convolution: counts[n, Cout, outH, outW] of +/-1 products
// over the whole patch (no scaling applied). Equivalent to
// conv2d(sign(input), sign(weight)) with -1 padding.
tensor::Tensor binary_conv_counts(const tensor::Tensor& input,
                                  const tensor::Tensor& weight,
                                  const tensor::ConvSpec& spec);

}  // namespace hotspot::bitops
