// Scaling factors for the binarized convolution (paper Sec. 3.2 / 3.4.3).
//
// Weight side (Eq. 8):  alpha_W(filter) = ||W_filter||_1 / n.
// Input side (Eq. 14):  alpha_T(c,:,:) = |T_in(c,:,:)| convolved with the
// kh x kw box filter K (every element 1/(kh*kw)); computed once per input
// tensor instead of per sliding window, which is the paper's redundancy
// optimization.
#pragma once

#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace hotspot::bitops {

// Which input scaling the binary convolution applies. kPerChannel is the
// paper's contribution; kScalar is XNOR-Net's single shared factor (channel
// mean of |T_in| before the box filter); kNone disables input scaling.
enum class InputScaling { kPerChannel, kScalar, kNone };

const char* to_string(InputScaling mode);

// Per-filter alpha_W for weight [Cout, Cin, kh, kw] -> [Cout].
tensor::Tensor weight_scales(const tensor::Tensor& weight);

// Per-channel, per-output-position alpha_T for input [N,Cin,H,W] ->
// [N,Cin,outH,outW] (Eq. 14, zero padding on |T_in|).
tensor::Tensor input_scales_per_channel(const tensor::Tensor& input,
                                        const tensor::ConvSpec& spec);

// XNOR-Net scalar variant: channel-mean of |T_in| box-filtered ->
// [N,1,outH,outW].
tensor::Tensor input_scales_scalar(const tensor::Tensor& input,
                                   const tensor::ConvSpec& spec);

// Per-channel inference-mode batch-norm affine, evaluated in exactly
// BatchNorm2d's forward op order: y = gamma[c] * ((x - mean[c]) *
// inv_std[c]) + beta[c], all float. The *_affine scale variants below
// compute alpha_T of the BN *output* directly from the BN *input* without
// materializing the normalized tensor — the graph layer's BN->BinaryConv
// fusion needs those scales to match the unfused path bit-for-bit, which
// they do because the same float expression feeds the same double
// accumulation. Pointers must stay valid for the call; arrays are sized to
// input.dim(1).
struct ChannelAffine {
  const float* mean = nullptr;
  const float* inv_std = nullptr;
  const float* gamma = nullptr;
  const float* beta = nullptr;
};

// alpha_T of the affine-transformed input: equals
// input_scales_per_channel(bn(input), spec) with bn evaluated in inference
// mode, without the intermediate tensor.
tensor::Tensor input_scales_per_channel_affine(const tensor::Tensor& input,
                                               const tensor::ConvSpec& spec,
                                               const ChannelAffine& affine);

// Scalar-mode counterpart of the above (channel mean of |bn(input)| box
// filtered): equals input_scales_scalar(bn(input), spec).
tensor::Tensor input_scales_scalar_affine(const tensor::Tensor& input,
                                          const tensor::ConvSpec& spec,
                                          const ChannelAffine& affine);

// Box-filtered channel means via integral images: O(1) per output pixel
// regardless of kernel size. Each output position averages |input| over the
// kernel window (zero padding). Exactly equals
// depthwise_conv2d_shared(|input|, K, spec) for the box kernel K; used as
// the fast path inside the scale computations and validated against the
// reference in tests.
tensor::Tensor box_filter_abs_mean(const tensor::Tensor& input,
                                   const tensor::ConvSpec& spec);

}  // namespace hotspot::bitops
