// Benchmark generation: fills per-split hotspot / non-hotspot quotas by
// sampling pattern families and labelling each candidate clip with the
// lithography oracle. Reproduces the ICCAD-2012 merged-benchmark structure
// of Table 2 (class counts, heavy imbalance, train/test distribution shift).
#pragma once

#include "dataset/dataset.h"
#include "dataset/patterns.h"
#include "litho/simulator.h"

namespace hotspot::dataset {

struct SplitSpec {
  std::int64_t hotspots = 0;
  std::int64_t non_hotspots = 0;
  // Sampling weight per Family (size kFamilyCount); zero excludes a family
  // from the split.
  std::vector<double> family_weights;
};

struct BenchmarkConfig {
  PatternParams pattern;
  litho::SimulatorConfig litho;
  std::int64_t image_size = 32;  // stored clip resolution l_s
  std::uint64_t seed = 2012;
  SplitSpec train;
  SplitSpec test;
  // Abort-guard: at most this many candidates per requested sample.
  std::int64_t max_attempts_per_sample = 400;
};

struct Benchmark {
  HotspotDataset train;
  HotspotDataset test;
};

// Default configuration mirroring the ICCAD-2012 merged benchmark of
// Table 2, scaled by `scale` (1.0 = the paper's 1204/17096 train and
// 2524/13503 test counts; CI runs use ~0.01-0.05). The test split enables
// the T-junction family the training split never sees and shifts family
// weights, mimicking the contest's unseen-pattern structure.
BenchmarkConfig iccad2012_config(double scale, std::int64_t image_size);

// Generates both splits. Aborts (HOTSPOT_CHECK) if a quota cannot be filled
// within the attempt budget — that indicates an inconsistent config, not a
// runtime condition to recover from.
Benchmark generate_benchmark(const BenchmarkConfig& config);

// Generates one split (exposed for tests and streaming statistics).
HotspotDataset generate_split(const BenchmarkConfig& config,
                              const SplitSpec& split, util::Rng& rng);

}  // namespace hotspot::dataset
