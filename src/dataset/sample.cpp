#include "dataset/sample.h"

#include <algorithm>

#include "util/check.h"

namespace hotspot::dataset {

const char* to_string(Family family) {
  switch (family) {
    case Family::kDenseLines:
      return "dense-lines";
    case Family::kTipToTip:
      return "tip-to-tip";
    case Family::kJog:
      return "jog";
    case Family::kContacts:
      return "contacts";
    case Family::kComb:
      return "comb";
    case Family::kTJunction:
      return "t-junction";
  }
  return "?";
}

tensor::Tensor ClipSample::to_image() const {
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(pixels.size()),
                   static_cast<std::int64_t>(size) * size);
  tensor::Tensor image({size, size});
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    image[static_cast<std::int64_t>(i)] = pixels[i] ? 1.0f : 0.0f;
  }
  return image;
}

ClipSample ClipSample::from_image(const tensor::Tensor& image, int label,
                                  Family family) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_EQ(image.dim(0), image.dim(1));
  ClipSample sample;
  sample.size = static_cast<std::int32_t>(image.dim(0));
  sample.label = static_cast<std::int8_t>(label);
  sample.family = family;
  sample.pixels.resize(static_cast<std::size_t>(image.numel()));
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    sample.pixels[static_cast<std::size_t>(i)] = image[i] >= 0.5f ? 1 : 0;
  }
  return sample;
}

void ClipSample::flip_horizontal() {
  for (std::int32_t y = 0; y < size; ++y) {
    std::uint8_t* row = pixels.data() + static_cast<std::size_t>(y) * size;
    std::reverse(row, row + size);
  }
}

void ClipSample::flip_vertical() {
  for (std::int32_t y = 0; y < size / 2; ++y) {
    std::uint8_t* top = pixels.data() + static_cast<std::size_t>(y) * size;
    std::uint8_t* bottom =
        pixels.data() + static_cast<std::size_t>(size - 1 - y) * size;
    std::swap_ranges(top, top + size, bottom);
  }
}

}  // namespace hotspot::dataset
