// One labelled clip image: the unit the detectors consume.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::dataset {

// Pattern family ids; test-only families exercise generalization to unseen
// pattern classes the way the contest's merged benchmarks do.
enum class Family : std::uint8_t {
  kDenseLines = 0,
  kTipToTip = 1,
  kJog = 2,
  kContacts = 3,
  kComb = 4,
  kTJunction = 5,  // test split only
};

const char* to_string(Family family);
inline constexpr int kFamilyCount = 6;

struct ClipSample {
  std::vector<std::uint8_t> pixels;  // row-major 0/1, size x size
  std::int32_t size = 0;             // image edge length (l_s)
  std::int8_t label = 0;             // 1 = hotspot
  Family family = Family::kDenseLines;

  // Image as a [size, size] float tensor of {0,1}.
  tensor::Tensor to_image() const;

  // Builds a sample from a binary raster.
  static ClipSample from_image(const tensor::Tensor& image, int label,
                               Family family);

  // In-place mirror augmentations.
  void flip_horizontal();
  void flip_vertical();
};

}  // namespace hotspot::dataset
