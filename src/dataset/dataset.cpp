#include "dataset/dataset.h"

#include <fstream>

#include "util/check.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace hotspot::dataset {

void HotspotDataset::add(ClipSample sample) {
  HOTSPOT_CHECK_GT(sample.size, 0);
  if (!samples_.empty()) {
    HOTSPOT_CHECK_EQ(sample.size, samples_.front().size)
        << "all samples in a dataset share one image size";
  }
  samples_.push_back(std::move(sample));
}

const ClipSample& HotspotDataset::sample(std::size_t index) const {
  HOTSPOT_CHECK_LT(index, samples_.size());
  return samples_[index];
}

std::int64_t HotspotDataset::image_size() const {
  return samples_.empty() ? 0 : samples_.front().size;
}

DatasetStats HotspotDataset::stats() const {
  DatasetStats stats;
  for (const auto& sample : samples_) {
    if (sample.label == 1) {
      ++stats.hotspots;
    } else {
      ++stats.non_hotspots;
    }
  }
  return stats;
}

std::vector<DatasetStats> HotspotDataset::stats_by_family() const {
  std::vector<DatasetStats> stats(kFamilyCount);
  for (const auto& sample : samples_) {
    auto& bucket = stats[static_cast<std::size_t>(sample.family)];
    if (sample.label == 1) {
      ++bucket.hotspots;
    } else {
      ++bucket.non_hotspots;
    }
  }
  return stats;
}

tensor::Tensor HotspotDataset::batch_images(
    const std::vector<std::size_t>& indices, util::Rng* augment_rng) const {
  HOTSPOT_CHECK(!indices.empty());
  const std::int64_t ls = image_size();
  tensor::Tensor batch(
      {static_cast<std::int64_t>(indices.size()), 1, ls, ls});
  // Augmentation decisions come from a shared sequential RNG stream, so draw
  // them up front in index order; the per-sample flip + rasterized copy is
  // then data-parallel (each sample owns one batch plane).
  std::vector<std::uint8_t> flip_h(indices.size(), 0);
  std::vector<std::uint8_t> flip_v(indices.size(), 0);
  for (std::size_t b = 0; b < indices.size(); ++b) {
    HOTSPOT_CHECK_LT(indices[b], samples_.size());
    if (augment_rng != nullptr) {
      flip_h[b] = augment_rng->bernoulli(0.5) ? 1 : 0;
      flip_v[b] = augment_rng->bernoulli(0.5) ? 1 : 0;
    }
  }
  util::parallel_for(
      0, static_cast<std::int64_t>(indices.size()), /*grain=*/4,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t b = lo; b < hi; ++b) {
          const auto bu = static_cast<std::size_t>(b);
          ClipSample view = samples_[indices[bu]];  // copy: flips mutate
          if (flip_h[bu] != 0) {
            view.flip_horizontal();
          }
          if (flip_v[bu] != 0) {
            view.flip_vertical();
          }
          float* dst = batch.data() + b * ls * ls;
          for (std::size_t i = 0; i < view.pixels.size(); ++i) {
            dst[i] = view.pixels[i] ? 1.0f : 0.0f;
          }
        }
      });
  return batch;
}

std::vector<int> HotspotDataset::batch_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<int> labels;
  labels.reserve(indices.size());
  for (const auto index : indices) {
    HOTSPOT_CHECK_LT(index, samples_.size());
    labels.push_back(samples_[index].label);
  }
  return labels;
}

std::vector<std::size_t> HotspotDataset::all_indices(util::Rng* rng) const {
  std::vector<std::size_t> indices(samples_.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  if (rng != nullptr) {
    rng->shuffle(indices);
  }
  return indices;
}

namespace {
constexpr std::uint32_t kMagic = 0x48534453;  // "HSDS"
}  // namespace

bool HotspotDataset::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  const std::uint32_t magic = kMagic;
  const auto count = static_cast<std::uint64_t>(samples_.size());
  const auto size = static_cast<std::uint32_t>(image_size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  for (const auto& sample : samples_) {
    const auto label = static_cast<std::uint8_t>(sample.label);
    const auto family = static_cast<std::uint8_t>(sample.family);
    out.write(reinterpret_cast<const char*>(&label), 1);
    out.write(reinterpret_cast<const char*>(&family), 1);
    out.write(reinterpret_cast<const char*>(sample.pixels.data()),
              static_cast<std::streamsize>(sample.pixels.size()));
  }
  return out.good();
}

std::optional<HotspotDataset> HotspotDataset::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for reading";
    return std::nullopt;
  }
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  std::uint32_t size = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in.good() || magic != kMagic || size == 0) {
    HOTSPOT_LOG(kError) << path << ": not a dataset file";
    return std::nullopt;
  }
  HotspotDataset dataset;
  dataset.reserve(count);
  const std::size_t pixel_count = static_cast<std::size_t>(size) * size;
  for (std::uint64_t i = 0; i < count; ++i) {
    ClipSample sample;
    sample.size = static_cast<std::int32_t>(size);
    std::uint8_t label = 0;
    std::uint8_t family = 0;
    in.read(reinterpret_cast<char*>(&label), 1);
    in.read(reinterpret_cast<char*>(&family), 1);
    if (family >= kFamilyCount || label > 1) {
      HOTSPOT_LOG(kError) << path << ": corrupt sample header";
      return std::nullopt;
    }
    sample.label = static_cast<std::int8_t>(label);
    sample.family = static_cast<Family>(family);
    sample.pixels.resize(pixel_count);
    in.read(reinterpret_cast<char*>(sample.pixels.data()),
            static_cast<std::streamsize>(pixel_count));
    if (!in.good()) {
      HOTSPOT_LOG(kError) << path << ": truncated dataset";
      return std::nullopt;
    }
    dataset.add(std::move(sample));
  }
  return dataset;
}

}  // namespace hotspot::dataset
