#include "dataset/generator.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace hotspot::dataset {
namespace {

Family sample_family(const std::vector<double>& weights, util::Rng& rng) {
  HOTSPOT_CHECK_EQ(weights.size(), static_cast<std::size_t>(kFamilyCount));
  double total = 0.0;
  for (const double w : weights) {
    HOTSPOT_CHECK_GE(w, 0.0);
    total += w;
  }
  HOTSPOT_CHECK_GT(total, 0.0) << "all family weights are zero";
  double draw = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return static_cast<Family>(i);
    }
  }
  return static_cast<Family>(kFamilyCount - 1);
}

}  // namespace

BenchmarkConfig iccad2012_config(double scale, std::int64_t image_size) {
  HOTSPOT_CHECK_GT(scale, 0.0);
  BenchmarkConfig config;
  config.image_size = image_size;
  // Process scale chosen so the decision-relevant dimensions span 2-4
  // pixels of a 32px clip image (32 nm/px on a 1024 nm clip): lines below
  // ~95 nm fail to print, gaps below ~120 nm bridge.
  config.pattern.min_width = 80;
  config.pattern.max_width = 288;
  config.pattern.min_space = 96;
  config.pattern.max_space = 448;
  config.litho.grid = 64;
  config.litho.sigma_nm = 80.0;
  config.litho.resist_threshold = 0.45f;
  config.litho.min_width_nm = 64;

  auto scaled = [scale](std::int64_t count) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               static_cast<double>(count) * scale)));
  };
  // Table 2 of the paper: merged ICCAD-2012 contest statistics.
  config.train.hotspots = scaled(1204);
  config.train.non_hotspots = scaled(17096);
  config.test.hotspots = scaled(2524);
  config.test.non_hotspots = scaled(13503);

  // Training never sees T-junctions; the test split enables them and
  // re-weights the rest, standing in for the contest's unseen test
  // patterns.
  config.train.family_weights = {0.30, 0.25, 0.15, 0.15, 0.15, 0.0};
  config.test.family_weights = {0.22, 0.22, 0.14, 0.14, 0.14, 0.14};
  return config;
}

HotspotDataset generate_split(const BenchmarkConfig& config,
                              const SplitSpec& split, util::Rng& rng) {
  const litho::Simulator simulator(config.litho);
  HotspotDataset dataset;
  dataset.reserve(
      static_cast<std::size_t>(split.hotspots + split.non_hotspots));
  std::int64_t need_hs = split.hotspots;
  std::int64_t need_nhs = split.non_hotspots;
  const std::int64_t budget =
      (split.hotspots + split.non_hotspots) * config.max_attempts_per_sample;
  std::int64_t attempts = 0;
  while (need_hs > 0 || need_nhs > 0) {
    HOTSPOT_CHECK_LT(attempts, budget)
        << "quota not fillable: still need " << need_hs << " hotspots and "
        << need_nhs << " non-hotspots after " << attempts << " attempts";
    ++attempts;
    const Family family = sample_family(split.family_weights, rng);
    layout::Clip clip{generate_pattern(family, config.pattern, rng),
                      config.pattern.clip_nm};
    if (clip.pattern.empty()) {
      continue;
    }
    const bool hotspot = simulator.is_hotspot(clip);
    if (hotspot && need_hs <= 0) {
      continue;
    }
    if (!hotspot && need_nhs <= 0) {
      continue;
    }
    const tensor::Tensor image = clip.binary(config.image_size);
    dataset.add(
        ClipSample::from_image(image, hotspot ? 1 : 0, family));
    (hotspot ? need_hs : need_nhs) -= 1;
  }
  HOTSPOT_LOG(kInfo) << "split generated: " << dataset.size()
                     << " samples in " << attempts << " attempts";
  return dataset;
}

Benchmark generate_benchmark(const BenchmarkConfig& config) {
  util::Rng rng(config.seed);
  util::Rng train_rng = rng.fork(0x7472);
  util::Rng test_rng = rng.fork(0x7465);
  Benchmark benchmark;
  benchmark.train = generate_split(config, config.train, train_rng);
  benchmark.test = generate_split(config, config.test, test_rng);
  return benchmark;
}

}  // namespace hotspot::dataset
