// Synthetic Manhattan pattern families.
//
// These stand in for the ICCAD-2012 contest layouts (DESIGN.md substitution
// table). Parameter ranges straddle the printability limits of the litho
// proxy (features of 32-180 nm against a 40 nm PSF), so each family yields a
// mix of hotspot and non-hotspot instances and the labels are geometrically
// meaningful: tight tip-to-tip gaps bridge, narrow lines pinch or vanish,
// small contacts fail to print.
#pragma once

#include "dataset/sample.h"
#include "layout/geometry.h"
#include "util/rng.h"

namespace hotspot::dataset {

// Parameter envelope shared by the family generators. All lengths in nm.
struct PatternParams {
  std::int64_t clip_nm = 1024;
  std::int64_t grid_nm = 8;         // manufacturing grid; coords snap to it
  std::int64_t min_width = 32;      // drawn linewidth range
  std::int64_t max_width = 136;
  std::int64_t min_space = 32;      // drawn spacing/gap range
  std::int64_t max_space = 200;
};

// Draws one random pattern of the given family.
layout::Pattern generate_pattern(Family family, const PatternParams& params,
                                 util::Rng& rng);

// Individual families (exposed for tests and the full-chip example).
layout::Pattern dense_lines(const PatternParams& params, util::Rng& rng);
layout::Pattern tip_to_tip(const PatternParams& params, util::Rng& rng);
layout::Pattern jog(const PatternParams& params, util::Rng& rng);
layout::Pattern contacts(const PatternParams& params, util::Rng& rng);
layout::Pattern comb(const PatternParams& params, util::Rng& rng);
layout::Pattern t_junction(const PatternParams& params, util::Rng& rng);

}  // namespace hotspot::dataset
