// Container for labelled clip samples, batch assembly, and (de)serialization.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataset/sample.h"
#include "util/rng.h"

namespace hotspot::dataset {

struct DatasetStats {
  std::int64_t hotspots = 0;
  std::int64_t non_hotspots = 0;
  std::int64_t total() const { return hotspots + non_hotspots; }
  double hotspot_ratio() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(hotspots) /
                              static_cast<double>(total());
  }
};

class HotspotDataset {
 public:
  HotspotDataset() = default;

  void add(ClipSample sample);
  void reserve(std::size_t capacity) { samples_.reserve(capacity); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const ClipSample& sample(std::size_t index) const;

  // Image edge length; 0 for an empty dataset. All samples share it.
  std::int64_t image_size() const;

  DatasetStats stats() const;
  // Hotspot/non-hotspot counts per pattern family.
  std::vector<DatasetStats> stats_by_family() const;

  // Assembles images [n, 1, ls, ls] (values {0,1}) and labels for the given
  // sample indices. When `augment_rng` is non-null each image is mirrored
  // horizontally/vertically with probability 1/2 each (Sec. 3.4.1).
  tensor::Tensor batch_images(const std::vector<std::size_t>& indices,
                              util::Rng* augment_rng = nullptr) const;
  std::vector<int> batch_labels(const std::vector<std::size_t>& indices) const;

  // Indices of all samples, shuffled when an rng is supplied.
  std::vector<std::size_t> all_indices(util::Rng* rng = nullptr) const;

  // Binary file round trip. Returns false on I/O failure or corrupt data.
  bool save(const std::string& path) const;
  static std::optional<HotspotDataset> load(const std::string& path);

 private:
  std::vector<ClipSample> samples_;
};

}  // namespace hotspot::dataset
