#include "dataset/patterns.h"

#include <algorithm>

#include "util/check.h"

namespace hotspot::dataset {
namespace {

using layout::Pattern;
using layout::Rect;

// Snaps a length to the manufacturing grid (at least one grid unit).
std::int64_t snap(std::int64_t value, std::int64_t grid) {
  const std::int64_t snapped = (value / grid) * grid;
  return std::max(snapped, grid);
}

std::int64_t draw_length(util::Rng& rng, std::int64_t lo, std::int64_t hi,
                         std::int64_t grid) {
  return snap(rng.uniform_int(lo, hi), grid);
}

// Clamps a rect into the clip area; returns an empty rect when fully
// outside.
Rect clamp_rect(Rect rect, std::int64_t clip_nm) {
  rect.x0 = std::clamp<std::int64_t>(rect.x0, 0, clip_nm);
  rect.x1 = std::clamp<std::int64_t>(rect.x1, 0, clip_nm);
  rect.y0 = std::clamp<std::int64_t>(rect.y0, 0, clip_nm);
  rect.y1 = std::clamp<std::int64_t>(rect.y1, 0, clip_nm);
  return rect;
}

void add_clamped(Pattern& pattern, Rect rect, std::int64_t clip_nm) {
  const Rect clamped = clamp_rect(rect, clip_nm);
  if (!clamped.empty()) {
    pattern.add(clamped);
  }
}

// Mirrors x/y so families are orientation balanced without biasing the
// horizontal-flip augmentation study.
Pattern maybe_transpose(Pattern pattern, util::Rng& rng) {
  if (!rng.bernoulli(0.5)) {
    return pattern;
  }
  Pattern transposed;
  for (const Rect& rect : pattern.rects()) {
    transposed.add(Rect{rect.y0, rect.x0, rect.y1, rect.x1});
  }
  return transposed;
}

}  // namespace

Pattern dense_lines(const PatternParams& params, util::Rng& rng) {
  Pattern pattern;
  const std::int64_t clip = params.clip_nm;
  const std::int64_t width =
      draw_length(rng, params.min_width, params.max_width, params.grid_nm);
  const std::int64_t space =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t pitch = width + space;
  std::int64_t x = draw_length(rng, 0, pitch, params.grid_nm);
  while (x + width <= clip) {
    // Most lines run the full clip; some are segmented, leaving a
    // line-end gap in a dense neighbourhood (a classic hotspot context).
    if (rng.bernoulli(0.25)) {
      const std::int64_t gap = draw_length(rng, params.min_space,
                                           params.max_space, params.grid_nm);
      const std::int64_t break_at =
          draw_length(rng, clip / 4, 3 * clip / 4, params.grid_nm);
      add_clamped(pattern, Rect{x, 0, x + width, break_at}, clip);
      add_clamped(pattern, Rect{x, break_at + gap, x + width, clip}, clip);
    } else {
      add_clamped(pattern, Rect{x, 0, x + width, clip}, clip);
    }
    x += pitch;
  }
  return maybe_transpose(std::move(pattern), rng);
}

Pattern tip_to_tip(const PatternParams& params, util::Rng& rng) {
  Pattern pattern;
  const std::int64_t clip = params.clip_nm;
  const std::int64_t width =
      draw_length(rng, params.min_width, params.max_width, params.grid_nm);
  const std::int64_t space =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t pitch = width + space;
  const std::int64_t gap =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t lines = 2 + rng.uniform_int(0, 3);
  const std::int64_t gap_line = rng.uniform_int(0, lines - 1);
  std::int64_t x = draw_length(rng, params.grid_nm, pitch, params.grid_nm);
  for (std::int64_t i = 0; i < lines && x + width <= clip; ++i) {
    if (i == gap_line) {
      const std::int64_t mid =
          draw_length(rng, clip / 3, 2 * clip / 3, params.grid_nm);
      // Split the gap into two grid-aligned halves so every coordinate
      // stays on the manufacturing grid.
      const std::int64_t low_half = (gap / 2 / params.grid_nm) * params.grid_nm;
      add_clamped(pattern, Rect{x, 0, x + width, mid - low_half}, clip);
      add_clamped(pattern,
                  Rect{x, mid - low_half + gap, x + width, clip}, clip);
    } else {
      add_clamped(pattern, Rect{x, 0, x + width, clip}, clip);
    }
    x += pitch;
  }
  return maybe_transpose(std::move(pattern), rng);
}

Pattern jog(const PatternParams& params, util::Rng& rng) {
  Pattern pattern;
  const std::int64_t clip = params.clip_nm;
  const std::int64_t width =
      draw_length(rng, params.min_width, params.max_width, params.grid_nm);
  const std::int64_t space =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t pitch = width + space;
  const std::int64_t jog_offset =
      draw_length(rng, width + params.min_space, pitch + params.max_space,
                  params.grid_nm);
  std::int64_t x = draw_length(rng, params.grid_nm, pitch, params.grid_nm);
  while (x + width <= clip) {
    const std::int64_t jog_y =
        draw_length(rng, clip / 4, 3 * clip / 4, params.grid_nm);
    // Lower vertical leg, horizontal bridge piece, upper vertical leg
    // shifted by jog_offset: a Z-shaped wire (overlapping rects = union, so
    // the wire stays connected).
    add_clamped(pattern, Rect{x, 0, x + width, jog_y + width}, clip);
    add_clamped(pattern,
                Rect{x, jog_y, x + jog_offset + width, jog_y + width}, clip);
    add_clamped(pattern,
                Rect{x + jog_offset, jog_y, x + jog_offset + width, clip},
                clip);
    x += pitch + jog_offset;
  }
  return maybe_transpose(std::move(pattern), rng);
}

Pattern contacts(const PatternParams& params, util::Rng& rng) {
  Pattern pattern;
  const std::int64_t clip = params.clip_nm;
  const std::int64_t side =
      draw_length(rng, params.min_width, params.max_width, params.grid_nm);
  const std::int64_t space =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t pitch = side + space;
  const std::int64_t x0 = draw_length(rng, params.grid_nm, pitch, params.grid_nm);
  const std::int64_t y0 = draw_length(rng, params.grid_nm, pitch, params.grid_nm);
  for (std::int64_t y = y0; y + side <= clip; y += pitch) {
    for (std::int64_t x = x0; x + side <= clip; x += pitch) {
      // Sparse dropouts keep the array from being perfectly periodic.
      if (rng.bernoulli(0.85)) {
        add_clamped(pattern, Rect{x, y, x + side, y + side}, clip);
      }
    }
  }
  return pattern;
}

Pattern comb(const PatternParams& params, util::Rng& rng) {
  Pattern pattern;
  const std::int64_t clip = params.clip_nm;
  const std::int64_t width =
      draw_length(rng, params.min_width, params.max_width, params.grid_nm);
  const std::int64_t space =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t tip_gap =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t pitch = 2 * (width + space);
  // Two spines on opposite edges with interdigitated fingers.
  add_clamped(pattern, Rect{0, 0, width, clip}, clip);
  add_clamped(pattern, Rect{clip - width, 0, clip, clip}, clip);
  std::int64_t y = draw_length(rng, params.grid_nm, pitch, params.grid_nm);
  bool from_left = true;
  while (y + width <= clip) {
    if (from_left) {
      add_clamped(pattern,
                  Rect{width, y, clip - width - tip_gap, y + width}, clip);
    } else {
      add_clamped(pattern,
                  Rect{width + tip_gap, y, clip - width, y + width}, clip);
    }
    from_left = !from_left;
    y += width + space;
  }
  return maybe_transpose(std::move(pattern), rng);
}

Pattern t_junction(const PatternParams& params, util::Rng& rng) {
  Pattern pattern;
  const std::int64_t clip = params.clip_nm;
  const std::int64_t width =
      draw_length(rng, params.min_width, params.max_width, params.grid_nm);
  const std::int64_t space =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  // Horizontal bar.
  const std::int64_t bar_y =
      draw_length(rng, clip / 3, 2 * clip / 3, params.grid_nm);
  add_clamped(pattern, Rect{0, bar_y, clip, bar_y + width}, clip);
  // Stems dropping from the bar, with a parallel runner line below their
  // tips (the runner-to-stem spacing is the critical dimension).
  const std::int64_t stem_len =
      draw_length(rng, clip / 8, clip / 3, params.grid_nm);
  const std::int64_t pitch = 2 * width + 2 * space;
  std::int64_t x = draw_length(rng, params.grid_nm, pitch, params.grid_nm);
  while (x + width <= clip) {
    add_clamped(pattern,
                Rect{x, bar_y - stem_len, x + width, bar_y}, clip);
    x += pitch;
  }
  const std::int64_t runner_gap =
      draw_length(rng, params.min_space, params.max_space, params.grid_nm);
  const std::int64_t runner_y = bar_y - stem_len - runner_gap - width;
  add_clamped(pattern, Rect{0, runner_y, clip, runner_y + width}, clip);
  return maybe_transpose(std::move(pattern), rng);
}

Pattern generate_pattern(Family family, const PatternParams& params,
                         util::Rng& rng) {
  switch (family) {
    case Family::kDenseLines:
      return dense_lines(params, rng);
    case Family::kTipToTip:
      return tip_to_tip(params, rng);
    case Family::kJog:
      return jog(params, rng);
    case Family::kContacts:
      return contacts(params, rng);
    case Family::kComb:
      return comb(params, rng);
    case Family::kTJunction:
      return t_junction(params, rng);
  }
  HOTSPOT_CHECK(false) << "unknown family";
}

}  // namespace hotspot::dataset
