#include "tensor/dct.h"

#include <cmath>
#include <numbers>

#include "tensor/tensor_ops.h"

namespace hotspot::tensor {
namespace {

// Orthonormal DCT-II basis matrix B with B[k][i] = s(k) cos(pi (i+0.5) k / n),
// so dct(x) = B x and idct(y) = B^T y.
Tensor dct_basis(std::int64_t n) {
  Tensor basis({n, n});
  const double scale0 = std::sqrt(1.0 / static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t i = 0; i < n; ++i) {
      const double angle = std::numbers::pi *
                           (static_cast<double>(i) + 0.5) *
                           static_cast<double>(k) / static_cast<double>(n);
      basis.at2(k, i) =
          static_cast<float>((k == 0 ? scale0 : scale) * std::cos(angle));
    }
  }
  return basis;
}

}  // namespace

Tensor dct2_rows(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 2);
  const Tensor basis = dct_basis(input.dim(1));
  return matmul(input, transpose2d(basis));
}

Tensor dct2(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 2);
  const Tensor row_basis = dct_basis(input.dim(1));
  const Tensor col_basis = dct_basis(input.dim(0));
  // B_rows applied along rows, B_cols along columns: C = B_c X B_r^T.
  return matmul(col_basis, matmul(input, transpose2d(row_basis)));
}

Tensor idct2(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 2);
  const Tensor row_basis = dct_basis(input.dim(1));
  const Tensor col_basis = dct_basis(input.dim(0));
  return matmul(transpose2d(col_basis), matmul(input, row_basis));
}

std::vector<std::pair<std::int64_t, std::int64_t>> zigzag_order(
    std::int64_t block) {
  HOTSPOT_CHECK_GT(block, 0);
  std::vector<std::pair<std::int64_t, std::int64_t>> order;
  order.reserve(static_cast<std::size_t>(block * block));
  for (std::int64_t diag = 0; diag <= 2 * (block - 1); ++diag) {
    if (diag % 2 == 0) {
      // Walk up-right.
      for (std::int64_t r = std::min(diag, block - 1);
           r >= std::max<std::int64_t>(0, diag - block + 1); --r) {
        order.emplace_back(r, diag - r);
      }
    } else {
      // Walk down-left.
      for (std::int64_t r = std::max<std::int64_t>(0, diag - block + 1);
           r <= std::min(diag, block - 1); ++r) {
        order.emplace_back(r, diag - r);
      }
    }
  }
  return order;
}

Tensor block_dct_features(const Tensor& image, std::int64_t block,
                          std::int64_t coefficients) {
  HOTSPOT_CHECK_EQ(image.rank(), 2);
  HOTSPOT_CHECK_GT(block, 0);
  HOTSPOT_CHECK(coefficients > 0 && coefficients <= block * block)
      << "coefficients=" << coefficients << " block=" << block;
  HOTSPOT_CHECK_EQ(image.dim(0) % block, 0);
  HOTSPOT_CHECK_EQ(image.dim(1) % block, 0);
  const std::int64_t tiles_y = image.dim(0) / block;
  const std::int64_t tiles_x = image.dim(1) / block;
  const auto order = zigzag_order(block);

  Tensor features({coefficients, tiles_y, tiles_x});
  Tensor tile({block, block});
  for (std::int64_t ty = 0; ty < tiles_y; ++ty) {
    for (std::int64_t tx = 0; tx < tiles_x; ++tx) {
      for (std::int64_t y = 0; y < block; ++y) {
        for (std::int64_t x = 0; x < block; ++x) {
          tile.at2(y, x) = image.at2(ty * block + y, tx * block + x);
        }
      }
      const Tensor spectrum = dct2(tile);
      for (std::int64_t k = 0; k < coefficients; ++k) {
        const auto [r, c] = order[static_cast<std::size_t>(k)];
        features.at({k, ty, tx}) = spectrum.at2(r, c);
      }
    }
  }
  return features;
}

}  // namespace hotspot::tensor
