#include "tensor/conv.h"

#include "tensor/tensor_ops.h"
#include "util/parallel.h"

namespace hotspot::tensor {

std::int64_t conv_out_extent(std::int64_t in, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad) {
  HOTSPOT_CHECK_GT(stride, 0);
  const std::int64_t padded = in + 2 * pad - kernel;
  HOTSPOT_CHECK_GE(padded, 0)
      << "kernel " << kernel << " larger than padded input " << in + 2 * pad;
  return padded / stride + 1;
}

Tensor im2col(const Tensor& input, const ConvSpec& spec, float pad_value) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h = conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w = conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  const std::int64_t patch = c * spec.kernel_h * spec.kernel_w;
  const std::int64_t positions = out_h * out_w;
  Tensor cols({n * positions, patch});
  // Each patch row is written by exactly one chunk, so rows can be filled in
  // parallel without synchronization.
  util::parallel_for(0, n * positions, /*grain=*/16, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const std::int64_t oy = p / out_w;
      const std::int64_t ox = p % out_w;
      const std::int64_t iy0 = oy * spec.stride - spec.pad;
      const std::int64_t ix0 = ox * spec.stride - spec.pad;
      float* dst = cols.data() + row * patch;
      for (std::int64_t ci = 0; ci < c; ++ci) {
        for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
          const std::int64_t iy = iy0 + ky;
          for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
            const std::int64_t ix = ix0 + kx;
            const bool inside = iy >= 0 && iy < h && ix >= 0 && ix < w;
            *dst++ = inside ? input.at4(ni, ci, iy, ix) : pad_value;
          }
        }
      }
    }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape,
              const ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(cols.rank(), 2);
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(input_shape.size()), 4);
  const std::int64_t n = input_shape[0];
  const std::int64_t c = input_shape[1];
  const std::int64_t h = input_shape[2];
  const std::int64_t w = input_shape[3];
  const std::int64_t out_h = conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w = conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  HOTSPOT_CHECK_EQ(cols.dim(0), n * out_h * out_w);
  HOTSPOT_CHECK_EQ(cols.dim(1), c * spec.kernel_h * spec.kernel_w);
  Tensor image(input_shape);
  const std::int64_t positions = out_h * out_w;
  const std::int64_t patch = c * spec.kernel_h * spec.kernel_w;
  // Overlapping patches of one sample accumulate into the same pixels, so
  // parallelism is over samples: each sample's plane is touched by exactly
  // one chunk, and the accumulation order within a sample is fixed.
  util::parallel_for(0, n, /*grain=*/1, [&](std::int64_t n_lo,
                                            std::int64_t n_hi) {
    for (std::int64_t ni = n_lo; ni < n_hi; ++ni) {
      const float* src = cols.data() + ni * positions * patch;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::int64_t iy0 = oy * spec.stride - spec.pad;
          const std::int64_t ix0 = ox * spec.stride - spec.pad;
          for (std::int64_t ci = 0; ci < c; ++ci) {
            for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
              const std::int64_t iy = iy0 + ky;
              for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
                const std::int64_t ix = ix0 + kx;
                const float value = *src++;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                  image.at4(ni, ci, iy, ix) += value;
                }
              }
            }
          }
        }
      }
    }
  });
  return image;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(weight.rank(), 4);
  HOTSPOT_CHECK_EQ(weight.dim(1), input.dim(1))
      << "weight input channels vs input channels";
  HOTSPOT_CHECK_EQ(weight.dim(2), spec.kernel_h);
  HOTSPOT_CHECK_EQ(weight.dim(3), spec.kernel_w);
  const std::int64_t n = input.dim(0);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t out_h =
      conv_out_extent(input.dim(2), spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w =
      conv_out_extent(input.dim(3), spec.kernel_w, spec.stride, spec.pad);
  const std::int64_t patch = weight.dim(1) * spec.kernel_h * spec.kernel_w;

  const Tensor cols = im2col(input, spec);          // [n*oh*ow, patch]
  const Tensor wmat = weight.reshaped({cout, patch});
  const Tensor prod = matmul(cols, transpose2d(wmat));  // [n*oh*ow, cout]

  Tensor out({n, cout, out_h, out_w});
  const std::int64_t positions = out_h * out_w;
  util::parallel_for(0, n * positions, /*grain=*/64, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const float* src = prod.data() + row * cout;
      float* dst = out.data() + ni * cout * positions + p;
      for (std::int64_t co = 0; co < cout; ++co) {
        dst[co * positions] =
            bias != nullptr ? src[co] + (*bias)[co] : src[co];
      }
    }
  });
  return out;
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const ConvSpec& spec,
                     Tensor* grad_input, Tensor* grad_weight,
                     Tensor* grad_bias) {
  HOTSPOT_CHECK_EQ(grad_output.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t out_h = grad_output.dim(2);
  const std::int64_t out_w = grad_output.dim(3);
  HOTSPOT_CHECK_EQ(grad_output.dim(0), n);
  HOTSPOT_CHECK_EQ(grad_output.dim(1), cout);
  const std::int64_t patch = weight.dim(1) * spec.kernel_h * spec.kernel_w;
  const std::int64_t positions = out_h * out_w;

  // Rearrange grad_output to the im2col row layout [n*oh*ow, cout].
  Tensor grad_rows({n * positions, cout});
  util::parallel_for(0, n * positions, /*grain=*/64, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const float* src = grad_output.data() + ni * cout * positions + p;
      float* dst = grad_rows.data() + row * cout;
      for (std::int64_t co = 0; co < cout; ++co) {
        dst[co] = src[co * positions];
      }
    }
  });

  if (grad_weight != nullptr) {
    const Tensor cols = im2col(input, spec);  // [n*oh*ow, patch]
    // dW = grad_rows^T @ cols, reshaped to weight shape.
    const Tensor gw = matmul(transpose2d(grad_rows), cols);  // [cout, patch]
    *grad_weight = gw.reshaped(weight.shape());
  }

  if (grad_bias != nullptr) {
    *grad_bias = Tensor({cout});
    // Parallel over output channels: each channel's reduction runs start to
    // finish inside one chunk, keeping the summation order fixed.
    util::parallel_for(0, cout, /*grain=*/1, [&](std::int64_t co_lo,
                                                 std::int64_t co_hi) {
      for (std::int64_t co = co_lo; co < co_hi; ++co) {
        double total = 0.0;
        for (std::int64_t r = 0; r < n * positions; ++r) {
          total += static_cast<double>(grad_rows.at2(r, co));
        }
        (*grad_bias)[co] = static_cast<float>(total);
      }
    });
  }

  if (grad_input != nullptr) {
    const Tensor wmat = weight.reshaped({cout, patch});
    const Tensor grad_cols = matmul(grad_rows, wmat);  // [n*oh*ow, patch]
    *grad_input = col2im(grad_cols, input.shape(), spec);
  }
}

Tensor depthwise_conv2d_shared(const Tensor& input, const Tensor& kernel2d,
                               const ConvSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(kernel2d.rank(), 2);
  HOTSPOT_CHECK_EQ(kernel2d.dim(0), spec.kernel_h);
  HOTSPOT_CHECK_EQ(kernel2d.dim(1), spec.kernel_w);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h = conv_out_extent(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t out_w = conv_out_extent(w, spec.kernel_w, spec.stride, spec.pad);
  Tensor out({n, c, out_h, out_w});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::int64_t iy0 = oy * spec.stride - spec.pad;
          const std::int64_t ix0 = ox * spec.stride - spec.pad;
          double acc = 0.0;
          for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) {
              continue;
            }
            for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
              const std::int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) {
                continue;
              }
              acc += static_cast<double>(input.at4(ni, ci, iy, ix)) *
                     static_cast<double>(kernel2d.at2(ky, kx));
            }
          }
          out.at4(ni, ci, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

}  // namespace hotspot::tensor
