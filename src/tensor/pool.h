// Pooling operations (NCHW) with backward passes.
#pragma once

#include "tensor/tensor.h"

namespace hotspot::tensor {

struct PoolSpec {
  std::int64_t window = 2;
  std::int64_t stride = 2;
};

// Average pooling [N,C,H,W] -> [N,C,outH,outW]. H and W need not be
// divisible by the window; partial windows average over their actual extent.
Tensor avg_pool2d(const Tensor& input, const PoolSpec& spec);
Tensor avg_pool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                           const PoolSpec& spec);

// Max pooling. `argmax` (same shape as the output) records the flat H*W
// index of each selected element for the backward pass.
Tensor max_pool2d(const Tensor& input, const PoolSpec& spec, Tensor* argmax);
Tensor max_pool2d_backward(const Tensor& grad_output, const Tensor& argmax,
                           const Shape& input_shape, const PoolSpec& spec);

// Global average pooling [N,C,H,W] -> [N,C].
Tensor global_avg_pool(const Tensor& input);
Tensor global_avg_pool_backward(const Tensor& grad_output,
                                const Shape& input_shape);

}  // namespace hotspot::tensor
