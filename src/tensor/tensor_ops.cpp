#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace hotspot::tensor {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  HOTSPOT_CHECK(a.same_shape(b))
      << op << ": shape mismatch " << shape_to_string(a.shape()) << " vs "
      << shape_to_string(b.shape());
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] + b[i];
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] * b[i];
  }
  return out;
}

Tensor scale(const Tensor& a, float factor) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] * factor;
  }
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    pa[i] += pb[i];
  }
}

void axpy_inplace(Tensor& a, const Tensor& b, float factor) {
  check_same_shape(a, b, "axpy_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    pa[i] += pb[i] * factor;
  }
}

void scale_inplace(Tensor& a, float factor) {
  float* pa = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    pa[i] *= factor;
  }
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = f(a[i]);
  }
  return out;
}

Tensor abs(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = std::fabs(a[i]);
  }
  return out;
}

Tensor sign(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] < 0.0f ? -1.0f : 1.0f;
  }
  return out;
}

double l1_norm(const Tensor& a) {
  double total = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    total += std::fabs(static_cast<double>(a[i]));
  }
  return total;
}

double l2_norm(const Tensor& a) {
  double total = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const auto v = static_cast<double>(a[i]);
    total += v * v;
  }
  return std::sqrt(total);
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst,
                     std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, double tolerance) {
  return a.same_shape(b) && max_abs_diff(a, b) <= tolerance;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  HOTSPOT_CHECK_EQ(a.rank(), 2);
  HOTSPOT_CHECK_EQ(b.rank(), 2);
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  HOTSPOT_CHECK_EQ(k, b.dim(0)) << "matmul inner dimensions";
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // ikj loop order keeps the innermost access contiguous for b and c.
  // Parallel over rows of the output: each row's k-loop runs in its fixed
  // order inside one chunk, so results are bit-identical at any thread
  // count.
  util::parallel_for(0, m, /*grain=*/8, [&](std::int64_t i_lo,
                                            std::int64_t i_hi) {
    for (std::int64_t i = i_lo; i < i_hi; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aval = pa[i * k + kk];
        if (aval == 0.0f) {
          continue;
        }
        const float* brow = pb + kk * n;
        float* crow = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] += aval * brow[j];
        }
      }
    }
  });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  HOTSPOT_CHECK_EQ(a.rank(), 2);
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor out({cols, rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out.at2(c, r) = a.at2(r, c);
    }
  }
  return out;
}

Tensor channel_mean(const Tensor& nchw) {
  HOTSPOT_CHECK_EQ(nchw.rank(), 4);
  const std::int64_t n = nchw.dim(0);
  const std::int64_t c = nchw.dim(1);
  const std::int64_t hw = nchw.dim(2) * nchw.dim(3);
  Tensor mean({c});
  for (std::int64_t ci = 0; ci < c; ++ci) {
    double total = 0.0;
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const float* plane = nchw.data() + (ni * c + ci) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        total += static_cast<double>(plane[i]);
      }
    }
    mean[ci] = static_cast<float>(total / static_cast<double>(n * hw));
  }
  return mean;
}

Tensor channel_variance(const Tensor& nchw, const Tensor& mean) {
  HOTSPOT_CHECK_EQ(nchw.rank(), 4);
  HOTSPOT_CHECK_EQ(mean.rank(), 1);
  HOTSPOT_CHECK_EQ(mean.dim(0), nchw.dim(1));
  const std::int64_t n = nchw.dim(0);
  const std::int64_t c = nchw.dim(1);
  const std::int64_t hw = nchw.dim(2) * nchw.dim(3);
  Tensor var({c});
  for (std::int64_t ci = 0; ci < c; ++ci) {
    const double mu = static_cast<double>(mean[ci]);
    double total = 0.0;
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const float* plane = nchw.data() + (ni * c + ci) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d = static_cast<double>(plane[i]) - mu;
        total += d * d;
      }
    }
    var[ci] = static_cast<float>(total / static_cast<double>(n * hw));
  }
  return var;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  HOTSPOT_CHECK_EQ(logits.rank(), 2);
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  HOTSPOT_CHECK_GT(cols, 0);
  std::vector<std::int64_t> result(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (logits.at2(r, c) > logits.at2(r, best)) {
        best = c;
      }
    }
    result[static_cast<std::size_t>(r)] = best;
  }
  return result;
}

Tensor softmax_rows(const Tensor& logits) {
  HOTSPOT_CHECK_EQ(logits.rank(), 2);
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    float row_max = logits.at2(r, 0);
    for (std::int64_t c = 1; c < cols; ++c) {
      row_max = std::max(row_max, logits.at2(r, c));
    }
    double denom = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const double e = std::exp(static_cast<double>(logits.at2(r, c) - row_max));
      out.at2(r, c) = static_cast<float>(e);
      denom += e;
    }
    for (std::int64_t c = 0; c < cols; ++c) {
      out.at2(r, c) = static_cast<float>(static_cast<double>(out.at2(r, c)) / denom);
    }
  }
  return out;
}

double softmax_cross_entropy(const Tensor& logits, const Tensor& targets,
                             Tensor* grad) {
  HOTSPOT_CHECK(logits.same_shape(targets))
      << "cross entropy needs matching shapes";
  HOTSPOT_CHECK_EQ(logits.rank(), 2);
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  HOTSPOT_CHECK_GT(rows, 0);
  const Tensor probs = softmax_rows(logits);
  double loss = 0.0;
  constexpr double kEps = 1e-12;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const double t = static_cast<double>(targets.at2(r, c));
      if (t != 0.0) {
        loss -= t * std::log(static_cast<double>(probs.at2(r, c)) + kEps);
      }
    }
  }
  loss /= static_cast<double>(rows);
  if (grad != nullptr) {
    *grad = Tensor(logits.shape());
    const float inv_rows = 1.0f / static_cast<float>(rows);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        grad->at2(r, c) = (probs.at2(r, c) - targets.at2(r, c)) * inv_rows;
      }
    }
  }
  return loss;
}

}  // namespace hotspot::tensor
