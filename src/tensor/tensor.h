// Dense row-major float tensor.
//
// The whole stack (training layers, baselines, feature extraction) works on
// this one value type. Layout convention for images/activations is NCHW.
// The class owns its storage; copies are deep, moves are cheap.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace hotspot::tensor {

using Shape = std::vector<std::int64_t>;

// Number of elements described by a shape (1 for the empty shape).
std::int64_t shape_numel(const Shape& shape);

// Human-readable "[2, 3, 4]" form for diagnostics.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  // Empty 0-d tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  // Tensor with explicit contents; `values.size()` must equal the shape's
  // element count.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  // I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, util::Rng& rng, float lo, float hi);
  // I.i.d. normal entries.
  static Tensor normal(Shape shape, util::Rng& rng, float mean, float stddev);

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t numel() const {
    return static_cast<std::int64_t>(data_.size());
  }
  std::int64_t dim(std::int64_t axis) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Flat element access.
  float& operator[](std::int64_t index) {
    HOTSPOT_CHECK(index >= 0 && index < numel())
        << "flat index " << index << " out of range for " << numel();
    return data_[static_cast<std::size_t>(index)];
  }
  float operator[](std::int64_t index) const {
    HOTSPOT_CHECK(index >= 0 && index < numel())
        << "flat index " << index << " out of range for " << numel();
    return data_[static_cast<std::size_t>(index)];
  }

  // Multi-dimensional access; the argument count must match the rank.
  float& at(std::initializer_list<std::int64_t> indices) {
    return data_[flat_index(indices)];
  }
  float at(std::initializer_list<std::int64_t> indices) const {
    return data_[flat_index(indices)];
  }

  // Fast unchecked NCHW access for rank-4 tensors (hot loops).
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const {
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  // Unchecked rank-2 access.
  float& at2(std::int64_t row, std::int64_t col) {
    return data_[static_cast<std::size_t>(row * shape_[1] + col)];
  }
  float at2(std::int64_t row, std::int64_t col) const {
    return data_[static_cast<std::size_t>(row * shape_[1] + col)];
  }

  // Returns a tensor with the same data and a new shape; element counts must
  // match.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  // Sum / mean / min / max over all elements.
  double sum() const;
  double mean() const;
  float min() const;
  float max() const;

  std::string to_string(int max_elements = 32) const;

 private:
  std::size_t flat_index(std::initializer_list<std::int64_t> indices) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace hotspot::tensor
