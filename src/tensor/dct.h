// Type-II discrete cosine transform.
//
// Used by the DAC'17 baseline's feature-tensor extraction: the layout clip is
// divided into blocks, each block is 2-D DCT'd, and the leading (low
// frequency) coefficients form the feature tensor.
#pragma once

#include "tensor/tensor.h"

namespace hotspot::tensor {

// Orthonormal 1-D DCT-II of each row of a rank-2 tensor.
Tensor dct2_rows(const Tensor& input);

// Orthonormal 2-D DCT-II of a rank-2 tensor (rows then columns).
Tensor dct2(const Tensor& input);

// Inverse of dct2 (orthonormal DCT-III applied both ways).
Tensor idct2(const Tensor& input);

// Splits `image` [H,W] into non-overlapping `block`-sized tiles, DCTs each,
// and keeps the zig-zag-first `coefficients` per tile. Output is
// [coefficients, H/block, W/block] — channel-major like the DAC'17 feature
// tensor. H and W must be divisible by `block`.
Tensor block_dct_features(const Tensor& image, std::int64_t block,
                          std::int64_t coefficients);

// Zig-zag scan order of a block x block matrix (JPEG order); exposed for
// tests.
std::vector<std::pair<std::int64_t, std::int64_t>> zigzag_order(
    std::int64_t block);

}  // namespace hotspot::tensor
