#include "tensor/pool.h"

#include <algorithm>

namespace hotspot::tensor {
namespace {

std::int64_t pool_out_extent(std::int64_t in, const PoolSpec& spec) {
  HOTSPOT_CHECK_GT(spec.stride, 0);
  HOTSPOT_CHECK_GT(spec.window, 0);
  if (in < spec.window) {
    return in > 0 ? 1 : 0;
  }
  return (in - spec.window) / spec.stride + 1;
}

}  // namespace

Tensor avg_pool2d(const Tensor& input, const PoolSpec& spec) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h = pool_out_extent(h, spec);
  const std::int64_t out_w = pool_out_extent(w, spec);
  Tensor out({n, c, out_h, out_w});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::int64_t y0 = oy * spec.stride;
          const std::int64_t x0 = ox * spec.stride;
          const std::int64_t y1 = std::min(y0 + spec.window, h);
          const std::int64_t x1 = std::min(x0 + spec.window, w);
          double acc = 0.0;
          for (std::int64_t y = y0; y < y1; ++y) {
            for (std::int64_t x = x0; x < x1; ++x) {
              acc += static_cast<double>(input.at4(ni, ci, y, x));
            }
          }
          const auto count = static_cast<double>((y1 - y0) * (x1 - x0));
          out.at4(ni, ci, oy, ox) = static_cast<float>(acc / count);
        }
      }
    }
  }
  return out;
}

Tensor avg_pool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                           const PoolSpec& spec) {
  HOTSPOT_CHECK_EQ(grad_output.rank(), 4);
  Tensor grad_input(input_shape);
  const std::int64_t n = input_shape[0];
  const std::int64_t c = input_shape[1];
  const std::int64_t h = input_shape[2];
  const std::int64_t w = input_shape[3];
  const std::int64_t out_h = grad_output.dim(2);
  const std::int64_t out_w = grad_output.dim(3);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::int64_t y0 = oy * spec.stride;
          const std::int64_t x0 = ox * spec.stride;
          const std::int64_t y1 = std::min(y0 + spec.window, h);
          const std::int64_t x1 = std::min(x0 + spec.window, w);
          const float share =
              grad_output.at4(ni, ci, oy, ox) /
              static_cast<float>((y1 - y0) * (x1 - x0));
          for (std::int64_t y = y0; y < y1; ++y) {
            for (std::int64_t x = x0; x < x1; ++x) {
              grad_input.at4(ni, ci, y, x) += share;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor max_pool2d(const Tensor& input, const PoolSpec& spec, Tensor* argmax) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t out_h = pool_out_extent(h, spec);
  const std::int64_t out_w = pool_out_extent(w, spec);
  Tensor out({n, c, out_h, out_w});
  if (argmax != nullptr) {
    *argmax = Tensor({n, c, out_h, out_w});
  }
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::int64_t y0 = oy * spec.stride;
          const std::int64_t x0 = ox * spec.stride;
          const std::int64_t y1 = std::min(y0 + spec.window, h);
          const std::int64_t x1 = std::min(x0 + spec.window, w);
          float best = input.at4(ni, ci, y0, x0);
          std::int64_t best_index = y0 * w + x0;
          for (std::int64_t y = y0; y < y1; ++y) {
            for (std::int64_t x = x0; x < x1; ++x) {
              const float value = input.at4(ni, ci, y, x);
              if (value > best) {
                best = value;
                best_index = y * w + x;
              }
            }
          }
          out.at4(ni, ci, oy, ox) = best;
          if (argmax != nullptr) {
            argmax->at4(ni, ci, oy, ox) = static_cast<float>(best_index);
          }
        }
      }
    }
  }
  return out;
}

Tensor max_pool2d_backward(const Tensor& grad_output, const Tensor& argmax,
                           const Shape& input_shape, const PoolSpec&) {
  HOTSPOT_CHECK(grad_output.same_shape(argmax))
      << "argmax must come from the matching forward call";
  Tensor grad_input(input_shape);
  const std::int64_t n = grad_output.dim(0);
  const std::int64_t c = grad_output.dim(1);
  const std::int64_t out_h = grad_output.dim(2);
  const std::int64_t out_w = grad_output.dim(3);
  const std::int64_t w = input_shape[3];
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const auto flat =
              static_cast<std::int64_t>(argmax.at4(ni, ci, oy, ox));
          grad_input.at4(ni, ci, flat / w, flat % w) +=
              grad_output.at4(ni, ci, oy, ox);
        }
      }
    }
  }
  return grad_input;
}

Tensor global_avg_pool(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t hw = input.dim(2) * input.dim(3);
  HOTSPOT_CHECK_GT(hw, 0);
  Tensor out({n, c});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* plane = input.data() + (ni * c + ci) * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        acc += static_cast<double>(plane[i]);
      }
      out.at2(ni, ci) = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_output,
                                const Shape& input_shape) {
  HOTSPOT_CHECK_EQ(grad_output.rank(), 2);
  Tensor grad_input(input_shape);
  const std::int64_t n = input_shape[0];
  const std::int64_t c = input_shape[1];
  const std::int64_t hw = input_shape[2] * input_shape[3];
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float share =
          grad_output.at2(ni, ci) / static_cast<float>(hw);
      float* plane = grad_input.data() + (ni * c + ci) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        plane[i] = share;
      }
    }
  }
  return grad_input;
}

}  // namespace hotspot::tensor
