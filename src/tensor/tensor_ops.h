// Elementwise, linear-algebra, and reduction operations on Tensor.
//
// These are the reference (full-precision) kernels. The binarized fast path
// lives in src/bitops and is validated against these in tests.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace hotspot::tensor {

// ---- elementwise ----------------------------------------------------------

// c = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
// c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
// c = a * b (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
// c = a * scalar.
Tensor scale(const Tensor& a, float factor);
// In-place a += b.
void add_inplace(Tensor& a, const Tensor& b);
// In-place a += b * factor (axpy).
void axpy_inplace(Tensor& a, const Tensor& b, float factor);
// In-place a *= factor.
void scale_inplace(Tensor& a, float factor);
// c[i] = f(a[i]).
Tensor map(const Tensor& a, const std::function<float(float)>& f);
// |a| elementwise.
Tensor abs(const Tensor& a);
// sign(a) in {-1, +1}; sign(0) is +1 so outputs stay binary (XNOR-Net
// convention).
Tensor sign(const Tensor& a);

// ---- norms and comparisons -------------------------------------------------

// L1 norm of all elements.
double l1_norm(const Tensor& a);
// L2 norm of all elements.
double l2_norm(const Tensor& a);
// max_i |a[i] - b[i]|; shapes must match.
double max_abs_diff(const Tensor& a, const Tensor& b);
// True when all |a[i]-b[i]| <= tolerance.
bool allclose(const Tensor& a, const Tensor& b, double tolerance);

// ---- matmul ----------------------------------------------------------------

// [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);
// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

// ---- reductions over axes ---------------------------------------------------

// Per-channel mean of an NCHW tensor -> [C].
Tensor channel_mean(const Tensor& nchw);
// Per-channel (biased) variance of an NCHW tensor given its mean -> [C].
Tensor channel_variance(const Tensor& nchw, const Tensor& mean);
// argmax along the last axis of a rank-2 tensor -> vector of column indices.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

// ---- softmax / losses -------------------------------------------------------

// Row-wise softmax of a rank-2 tensor.
Tensor softmax_rows(const Tensor& logits);
// Mean softmax cross entropy between logits [n, k] and target distributions
// [n, k]; also returns d(loss)/d(logits) in `grad` when non-null.
double softmax_cross_entropy(const Tensor& logits, const Tensor& targets,
                             Tensor* grad);

}  // namespace hotspot::tensor
