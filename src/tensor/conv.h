// Reference 2-D convolution (cross-correlation, NCHW) with stride/padding,
// plus the im2col/col2im transforms that both the float and binarized
// convolution paths are built on.
#pragma once

#include "tensor/tensor.h"

namespace hotspot::tensor {

struct ConvSpec {
  std::int64_t kernel_h = 3;
  std::int64_t kernel_w = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
};

// Output spatial extent for one axis: (in + 2*pad - kernel)/stride + 1.
std::int64_t conv_out_extent(std::int64_t in, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad);

// Unfolds input [N,C,H,W] into patches [N * out_h * out_w, C*kh*kw].
// Out-of-bounds (padding) positions contribute `pad_value` — the float path
// uses 0, the binarized path uses -1 so padding stays in {-1,+1}.
Tensor im2col(const Tensor& input, const ConvSpec& spec,
              float pad_value = 0.0f);

// Folds patch gradients [N*out_h*out_w, C*kh*kw] back into an input-shaped
// gradient [N,C,H,W]; the adjoint of im2col (padding contributions are
// dropped).
Tensor col2im(const Tensor& cols, const Shape& input_shape,
              const ConvSpec& spec);

// Forward convolution: input [N,Cin,H,W], weight [Cout,Cin,kh,kw],
// optional bias [Cout] -> [N,Cout,outH,outW].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const ConvSpec& spec);

// Gradients of conv2d. `grad_output` is [N,Cout,outH,outW].
// Any of the outputs may be null to skip its computation.
void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const ConvSpec& spec,
                     Tensor* grad_input, Tensor* grad_weight,
                     Tensor* grad_bias);

// Convolves each channel of [N,C,H,W] with one shared 2-D kernel [kh,kw]
// (depthwise with a broadcast kernel). Used for the Eq.-14 box filter that
// spreads |T_in| into the per-position input scaling factor.
Tensor depthwise_conv2d_shared(const Tensor& input, const Tensor& kernel2d,
                               const ConvSpec& spec);

}  // namespace hotspot::tensor
