#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hotspot::tensor {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t count = 1;
  for (const auto extent : shape) {
    HOTSPOT_CHECK_GE(extent, 0);
    count *= extent;
  }
  return count;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill_value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill_value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(data_.size()),
                   shape_numel(shape_))
      << "value count does not match shape " << shape_to_string(shape_);
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor result(std::move(shape));
  for (std::int64_t i = 0; i < result.numel(); ++i) {
    result[i] = static_cast<float>(
        rng.uniform(static_cast<double>(lo), static_cast<double>(hi)));
  }
  return result;
}

Tensor Tensor::normal(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor result(std::move(shape));
  for (std::int64_t i = 0; i < result.numel(); ++i) {
    result[i] = static_cast<float>(
        rng.normal(static_cast<double>(mean), static_cast<double>(stddev)));
  }
  return result;
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  HOTSPOT_CHECK(axis >= 0 && axis < rank())
      << "axis " << axis << " out of range for rank " << rank();
  return shape_[static_cast<std::size_t>(axis)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  HOTSPOT_CHECK_EQ(shape_numel(new_shape), numel())
      << "cannot reshape " << shape_to_string(shape_) << " to "
      << shape_to_string(new_shape);
  Tensor result;
  result.shape_ = std::move(new_shape);
  result.data_ = data_;
  return result;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Tensor::sum() const {
  double total = 0.0;
  for (const auto value : data_) {
    total += static_cast<double>(value);
  }
  return total;
}

double Tensor::mean() const {
  HOTSPOT_CHECK_GT(numel(), 0) << "mean of empty tensor";
  return sum() / static_cast<double>(numel());
}

float Tensor::min() const {
  HOTSPOT_CHECK_GT(numel(), 0) << "min of empty tensor";
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  HOTSPOT_CHECK_GT(numel(), 0) << "max of empty tensor";
  return *std::max_element(data_.begin(), data_.end());
}

std::string Tensor::to_string(int max_elements) const {
  std::ostringstream out;
  out << "Tensor" << shape_to_string(shape_) << " {";
  const auto shown =
      std::min<std::int64_t>(numel(), static_cast<std::int64_t>(max_elements));
  for (std::int64_t i = 0; i < shown; ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << data_[static_cast<std::size_t>(i)];
  }
  if (shown < numel()) {
    out << ", ... (" << numel() - shown << " more)";
  }
  out << "}";
  return out.str();
}

std::size_t Tensor::flat_index(
    std::initializer_list<std::int64_t> indices) const {
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(indices.size()), rank())
      << "index rank mismatch for shape " << shape_to_string(shape_);
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const auto index : indices) {
    const auto extent = shape_[axis];
    HOTSPOT_CHECK(index >= 0 && index < extent)
        << "index " << index << " out of range for axis " << axis
        << " with extent " << extent;
    flat = flat * static_cast<std::size_t>(extent) +
           static_cast<std::size_t>(index);
    ++axis;
  }
  return flat;
}

}  // namespace hotspot::tensor
