// Request-scoped tracing for the serve path (DESIGN.md §16).
//
// A RequestTrace follows one predict request end to end and records where
// its wall time went: decode (frame payload -> unpacked tensor), queue
// (admission queue wait), batch (batch formation after the worker popped
// it), inference (the fused classifier call), and encode (response frame
// build + send). The server allocates the trace at frame decode, the
// MicroBatcher fills in the queue/batch/infer phases plus the model version
// the fused batch resolved, and the server closes it out with the outcome.
// Phases are additive views of one request's latency, not of the batch: a
// request fused with seven others still reports its own submit->pop wait.
//
// The FlightRecorder is the serve-path analogue of the scan journal's
// crash story (§13): a bounded ring of the last N *completed* request
// summaries kept in memory at all times, so a server killed under load
// leaves evidence of what it was doing. record() is lock-light — one atomic
// slot claim plus a per-slot spinlock held only for a struct copy — so the
// hot path never serializes requests behind a global mutex. dump() writes
// the ring as strict JSON with the same tmp+fsync+rename discipline (and
// the same injectable fault points) as the journal's snapshots, which is
// what the fatal-signal handler in hotspot_serve and /tracez?dump=1 call.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hotspot::obs {

// How a traced request ended. Everything except kOk counts against the SLO
// error budget (slo.h).
enum class RequestOutcome : std::uint8_t {
  kOk = 0,
  kShed = 1,      // admission queue full — load was shed
  kRejected = 2,  // typed reject (bad request, grid mismatch, no model...)
  kError = 3,     // classifier threw; client saw Reject(kBadRequest)
};

const char* request_outcome_name(RequestOutcome outcome);

struct RequestTrace {
  std::uint64_t request_id = 0;         // server-allocated, monotonic
  std::uint32_t client_request_id = 0;  // echoed from the predict payload
  std::string tenant;
  std::uint32_t clips = 0;
  std::uint64_t start_ns = 0;  // since the flight recorder's epoch
  // Latency breakdown, seconds. Phases a request never reached stay 0.
  double decode_seconds = 0.0;
  double queue_seconds = 0.0;
  double batch_seconds = 0.0;
  double infer_seconds = 0.0;
  double encode_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t model_version = 0;  // version the fused batch resolved
  std::uint32_t hotspots = 0;       // clips labeled 1
  RequestOutcome outcome = RequestOutcome::kOk;
};

// One trace as a strict-JSON object (util/json-parseable; non-finite
// seconds clamp to 0 the way export.cpp's format_double does).
std::string request_trace_json(const RequestTrace& trace);

class FlightRecorder {
 public:
  // `capacity` is clamped to >= 1. The epoch for start_ns is captured here.
  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Steady-clock nanoseconds since this recorder was constructed; the
  // timebase every recorded start_ns (and the Chrome flow export) shares.
  std::uint64_t relative_now_ns() const;

  // Records a completed request. Thread-safe and lock-light: an atomic
  // fetch_add claims a slot, a per-slot spinlock covers the copy. Two
  // writers contend only when they land on the same slot (a full ring lap
  // apart), never globally.
  void record(const RequestTrace& trace);

  // The surviving entries, oldest first. `bounded_spin` limits how long a
  // locked slot is waited for before it is skipped — the fatal-signal dump
  // path sets it so a crash mid-record can never deadlock the handler.
  std::vector<RequestTrace> snapshot(bool bounded_spin = false) const;

  std::size_t capacity() const { return capacity_; }
  // Total requests ever recorded (recorded() - size of snapshot = dropped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_acquire);
  }

  // The ring as one strict-JSON object: {"capacity", "recorded",
  // "dropped", "entries": [...]}. `max_entries` 0 keeps every survivor;
  // otherwise only the newest max_entries are emitted.
  std::string to_json(std::size_t max_entries = 0,
                      bool bounded_spin = false) const;

  // Atomically publishes to_json() to `path` (tmp+fsync+rename, journal
  // fault points). Bounded spins: safe from the fatal-signal handler.
  // False with `error` set (when non-null) on any write failure.
  bool dump(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Slot {
    mutable std::atomic<bool> locked{false};
    std::uint64_t sequence = 0;  // 1-based claim number; 0 = never written
    RequestTrace trace;
  };

  std::size_t capacity_;
  std::int64_t epoch_ns_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace hotspot::obs
