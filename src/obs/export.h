// Exporters for metrics snapshots and span reports (DESIGN.md §10).
//
// Two text formats:
//   to_json        - one JSON object with "counters" / "gauges" /
//                    "histograms" / "spans" sections; the format the bench
//                    emitters embed and --metrics-out writes.
//   to_prometheus  - Prometheus text exposition (metric names sanitized to
//                    [a-zA-Z0-9_], histogram buckets cumulated with "le"
//                    labels, spans as hotspot_span_* families).
//
// Output is deterministic: instruments are emitted in name order and
// doubles are formatted with "%.9g", so golden tests can compare strings.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hotspot::obs {

std::string to_json(const MetricsSnapshot& snapshot, const SpanReport& spans);

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const SpanReport& spans);

// Writes to_json() plus a trailing newline to `path`; logs and returns
// false on any stream failure (open, write, or close).
bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const SpanReport& spans);

}  // namespace hotspot::obs
