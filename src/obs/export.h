// Exporters for metrics snapshots, span reports, and timelines
// (DESIGN.md §10).
//
// Three text formats:
//   to_json          - one JSON object with "counters" / "gauges" /
//                      "histograms" / "spans" sections (histograms carry
//                      interpolated p50/p95/p99), optionally prefixed by a
//                      "manifest" block; the format the bench emitters embed
//                      and --metrics-out writes.
//   to_prometheus    - Prometheus text exposition: metric names sanitized
//                      to [a-zA-Z0-9_:] with collision-free renaming (two
//                      distinct source names never merge into one family),
//                      histogram buckets cumulated with "le" labels plus
//                      <name>_p50/_p95/_p99 quantile gauges, spans as
//                      hotspot_span_* families.
//   to_chrome_trace  - Chrome trace-event JSON ("X" complete events, µs
//                      timestamps) loadable by chrome://tracing and
//                      Perfetto; renders a TimelineReport as a cross-thread
//                      timeline.
//
// Output is deterministic: instruments are emitted in name order and
// doubles are formatted with "%.9g", so golden tests can compare strings.
#pragma once

#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace hotspot::obs {

std::string to_json(const MetricsSnapshot& snapshot, const SpanReport& spans);

// As above with a leading "manifest" section.
std::string to_json(const MetricsSnapshot& snapshot, const SpanReport& spans,
                    const RunManifest& manifest);

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const SpanReport& spans);

std::string to_chrome_trace(const TimelineReport& report);

// As above, additionally rendering `requests` (flight-recorder traces) as a
// second process: one "X" slice per latency phase on a per-request track,
// chained by "s"/"f" flow arrows keyed on the request id, so a request's
// path through decode -> queue -> batch -> inference -> encode reads as one
// connected lane next to the span timeline. Traces and timeline must share
// a timebase (the server records both against the same steady clock).
std::string to_chrome_trace(const TimelineReport& report,
                            const std::vector<RequestTrace>& requests);

// Writes to_json() plus a trailing newline to `path`; logs and returns
// false on any stream failure (open, write, or close). A non-null manifest
// is embedded as the "manifest" section.
bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const SpanReport& spans,
                        const RunManifest* manifest = nullptr);

// Writes to_chrome_trace() plus a trailing newline to `path`; logs and
// returns false on any stream failure.
bool write_chrome_trace(const std::string& path,
                        const TimelineReport& report);

}  // namespace hotspot::obs
