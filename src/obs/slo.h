// Rolling-window SLO monitor for the serve path (DESIGN.md §16).
//
// Two objectives, both optional:
//   * availability: at most (1 - availability_objective) of requests in the
//     window may be bad (shed, typed-rejected, or errored);
//   * latency: a request slower than p99_objective_seconds is bad even when
//     it succeeded (0 disables the latency criterion).
//
// The window is a ring of 1-second buckets — O(window) memory, O(1)
// record(), no per-request allocation — the same structure SRE burn-rate
// alerting assumes. status() reports:
//   * error_budget_remaining in [0, 1]: the fraction of the window's
//     allowed bad requests not yet spent (1 = untouched budget, 0 =
//     exhausted). With no traffic the budget reads full.
//   * burn rate = bad_fraction / allowed_fraction over a window: 1.0 burns
//     the budget exactly as fast as the objective allows; 14.4 is the
//     classic "page now" threshold. The fast rate uses the most recent
//     min(fast_window, window) seconds, the slow rate the full window, so a
//     fresh spike shows in the fast rate long before the slow one moves.
//
// Time is injectable (record_at / status_at / publish_at take steady-clock
// nanoseconds relative to construction) so tests drive the window
// deterministically; the wall-clock variants are one steady_clock read.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace hotspot::obs {

struct SloConfig {
  // Target fraction of good requests, in [0, 1). 0.999 allows one bad
  // request per thousand before the budget is spent.
  double availability_objective = 0.999;
  // A successful request slower than this still counts bad. 0 disables.
  double p99_objective_seconds = 0.0;
  // Rolling window (and slow burn-rate horizon), seconds.
  std::size_t window_seconds = 300;
  // Fast burn-rate horizon; clamped to the window.
  std::size_t fast_window_seconds = 60;
};

class SloMonitor {
 public:
  explicit SloMonitor(const SloConfig& config);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  const SloConfig& config() const { return config_; }

  // Records one finished request (success = the client got labels back).
  void record(double latency_seconds, bool success);
  // Deterministic variant: `now_ns` is steady-clock time relative to
  // construction (monotone non-decreasing across calls).
  void record_at(std::int64_t now_ns, double latency_seconds, bool success);

  struct Status {
    std::uint64_t window_total = 0;
    std::uint64_t window_bad = 0;
    double availability = 1.0;             // good / total; 1 when idle
    double error_budget_remaining = 1.0;   // clamped to [0, 1]
    double fast_burn_rate = 0.0;
    double slow_burn_rate = 0.0;
  };

  Status status() const;
  Status status_at(std::int64_t now_ns) const;

  // Publishes serve.slo.* gauges into the global metrics registry so every
  // scrape and stats snapshot carries the current budget.
  void publish();
  void publish_at(std::int64_t now_ns);

 private:
  struct Bucket {
    std::int64_t second = -1;  // absolute second index; -1 = never used
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };

  std::uint64_t now_ns_since_epoch() const;

  SloConfig config_;
  std::int64_t epoch_ns_;
  mutable std::mutex mutex_;
  std::vector<Bucket> buckets_;
};

}  // namespace hotspot::obs
