// Run manifest: the build/runtime provenance block every metrics export and
// BENCH_*.json carries (DESIGN.md §10), so a recorded number can always be
// traced back to the commit, compiler, build type, thread count, and
// HOTSPOT_* knobs that produced it. bench_compare refuses to gate files
// without one.
//
// The git sha and build type are baked in at CMake configure time (stale
// until the next reconfigure — that is recorded, not inferred at runtime).
// The wall-clock timestamp is caller-provided: collect_manifest() itself
// never reads the system clock, so hot paths and deterministic tests can
// build manifests freely.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace hotspot::obs {

struct RunManifest {
  int schema_version = 1;
  std::string git_sha;     // "unknown" when built outside a git checkout
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  int threads = 1;         // util::parallel_threads() at collection time
  // std::thread::hardware_concurrency() at collection time: the physical
  // core budget behind `threads`, so a flat parallel-scaling curve on a
  // 1-core box reads as expected rather than as a regression.
  int hardware_concurrency = 1;
  // Every HOTSPOT_* environment knob set when the manifest was collected,
  // name-sorted.
  std::vector<std::pair<std::string, std::string>> env;
  // Free-form runtime facts published by subsystems via set_manifest_note()
  // (e.g. "xnor_kernel" from the bitops dispatcher), name-sorted.
  std::vector<std::pair<std::string, std::string>> notes;
  std::string timestamp;  // caller-provided wall clock; empty = not recorded
};

// Publishes (or overwrites) one key in the process-wide note set that
// collect_manifest() snapshots into RunManifest::notes. Thread-safe; meant
// for subsystems that learn a runtime fact (resolved kernel, detected
// feature) the provenance block should carry.
void set_manifest_note(const std::string& key, const std::string& value);

// Gathers the manifest for this process. `timestamp` is passed through
// verbatim (callers format it once at startup, outside any hot path).
RunManifest collect_manifest(const std::string& timestamp = "");

// The manifest as one JSON object, deterministic field order.
std::string manifest_json(const RunManifest& manifest);

}  // namespace hotspot::obs
