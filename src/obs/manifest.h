// Run manifest: the build/runtime provenance block every metrics export and
// BENCH_*.json carries (DESIGN.md §10), so a recorded number can always be
// traced back to the commit, compiler, build type, thread count, and
// HOTSPOT_* knobs that produced it. bench_compare refuses to gate files
// without one.
//
// The git sha and build type are baked in at CMake configure time (stale
// until the next reconfigure — that is recorded, not inferred at runtime).
// The wall-clock timestamp is caller-provided: collect_manifest() itself
// never reads the system clock, so hot paths and deterministic tests can
// build manifests freely.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace hotspot::obs {

struct RunManifest {
  int schema_version = 1;
  std::string git_sha;     // "unknown" when built outside a git checkout
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  int threads = 1;         // util::parallel_threads() at collection time
  // Every HOTSPOT_* environment knob set when the manifest was collected,
  // name-sorted.
  std::vector<std::pair<std::string, std::string>> env;
  std::string timestamp;  // caller-provided wall clock; empty = not recorded
};

// Gathers the manifest for this process. `timestamp` is passed through
// verbatim (callers format it once at startup, outside any hot path).
RunManifest collect_manifest(const std::string& timestamp = "");

// The manifest as one JSON object, deterministic field order.
std::string manifest_json(const RunManifest& manifest);

}  // namespace hotspot::obs
