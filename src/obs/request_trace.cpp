#include "obs/request_trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/atomic_file.h"
#include "util/fault_injection.h"

namespace hotspot::obs {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Same contract as export.cpp's format_double: deterministic "%.9g", and a
// non-finite value becomes "0" so the dump stays strict-JSON-parseable.
std::string format_double(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

}  // namespace

const char* request_outcome_name(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kError:
      return "error";
  }
  return "unknown";
}

std::string request_trace_json(const RequestTrace& trace) {
  std::string out;
  out.reserve(320);
  out += "{\"request_id\": " + std::to_string(trace.request_id);
  out += ", \"client_request_id\": " + std::to_string(trace.client_request_id);
  out += ", \"tenant\": \"" + json_escape(trace.tenant) + "\"";
  out += ", \"clips\": " + std::to_string(trace.clips);
  out += ", \"outcome\": \"";
  out += request_outcome_name(trace.outcome);
  out += "\", \"model_version\": " + std::to_string(trace.model_version);
  out += ", \"hotspots\": " + std::to_string(trace.hotspots);
  out += ", \"start_ns\": " + std::to_string(trace.start_ns);
  out += ", \"decode_seconds\": " + format_double(trace.decode_seconds);
  out += ", \"queue_seconds\": " + format_double(trace.queue_seconds);
  out += ", \"batch_seconds\": " + format_double(trace.batch_seconds);
  out += ", \"infer_seconds\": " + format_double(trace.infer_seconds);
  out += ", \"encode_seconds\": " + format_double(trace.encode_seconds);
  out += ", \"total_seconds\": " + format_double(trace.total_seconds);
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      epoch_ns_(steady_now_ns()),
      slots_(new Slot[capacity_]) {}

std::uint64_t FlightRecorder::relative_now_ns() const {
  const std::int64_t now = steady_now_ns();
  return now > epoch_ns_ ? static_cast<std::uint64_t>(now - epoch_ns_) : 0;
}

void FlightRecorder::record(const RequestTrace& trace) {
  const std::uint64_t sequence =
      next_.fetch_add(1, std::memory_order_acq_rel) + 1;
  Slot& slot = slots_[(sequence - 1) % capacity_];
  // Unbounded spin: the holder is another record() copy or a snapshot copy,
  // both a few hundred nanoseconds. Writers never block behind the whole
  // ring, only behind this one slot.
  while (slot.locked.exchange(true, std::memory_order_acquire)) {
  }
  slot.sequence = sequence;
  slot.trace = trace;
  slot.locked.store(false, std::memory_order_release);
}

std::vector<RequestTrace> FlightRecorder::snapshot(bool bounded_spin) const {
  std::vector<std::pair<std::uint64_t, RequestTrace>> entries;
  entries.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    bool locked = false;
    // In the fatal-dump path a slot may be held by the very thread the
    // signal interrupted; skip it after a bounded spin instead of hanging.
    for (int spin = 0; spin < (bounded_spin ? 10000 : 1 << 28); ++spin) {
      if (!slot.locked.exchange(true, std::memory_order_acquire)) {
        locked = true;
        break;
      }
    }
    if (!locked) {
      continue;
    }
    if (slot.sequence != 0) {
      entries.emplace_back(slot.sequence, slot.trace);
    }
    slot.locked.store(false, std::memory_order_release);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RequestTrace> traces;
  traces.reserve(entries.size());
  for (auto& [sequence, trace] : entries) {
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::string FlightRecorder::to_json(std::size_t max_entries,
                                    bool bounded_spin) const {
  std::vector<RequestTrace> traces = snapshot(bounded_spin);
  if (max_entries > 0 && traces.size() > max_entries) {
    traces.erase(traces.begin(),
                 traces.end() - static_cast<std::ptrdiff_t>(max_entries));
  }
  const std::uint64_t total = recorded();
  std::string out = "{\"capacity\": " + std::to_string(capacity_);
  out += ", \"recorded\": " + std::to_string(total);
  out += ", \"dropped\": " +
         std::to_string(total > capacity_ ? total - capacity_ : 0);
  out += ", \"entries\": [";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += request_trace_json(traces[i]);
  }
  out += "]}";
  return out;
}

bool FlightRecorder::dump(const std::string& path, std::string* error) const {
  // Journal fault points on purpose: the flight recorder extends the scan
  // journal's crash story to the server, and the chaos tests injure both
  // through one set of switches.
  util::AtomicFileWriter writer(path, {util::FaultPoint::kJournalWrite,
                                       util::FaultPoint::kJournalFlush,
                                       util::FaultPoint::kJournalRename});
  const std::string text = to_json(0, /*bounded_spin=*/true) + "\n";
  if (!writer.ok() || !writer.write(text.data(), text.size()) ||
      !writer.finalize()) {
    if (error != nullptr) {
      *error = writer.error();
    }
    return false;
  }
  return true;
}

}  // namespace hotspot::obs
