#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace hotspot::obs {
namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; dots and dashes in our
// registry names map to underscores.
std::string prometheus_name(const std::string& name) {
  std::string sanitized = name;
  for (char& c : sanitized) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  return sanitized;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot, const SpanReport& spans) {
  std::ostringstream out;
  out << "{\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& sample = snapshot.counters[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(sample.name)
        << "\": " << sample.value;
  }
  out << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& sample = snapshot.gauges[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(sample.name)
        << "\": " << format_double(sample.value);
  }
  out << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& sample = snapshot.histograms[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(sample.name)
        << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < sample.bounds.size(); ++b) {
      out << (b > 0 ? ", " : "") << format_double(sample.bounds[b]);
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      out << (b > 0 ? ", " : "") << sample.buckets[b];
    }
    out << "], \"count\": " << sample.count
        << ", \"sum\": " << format_double(sample.sum) << "}";
  }
  out << "}, \"spans\": {";
  for (std::size_t i = 0; i < spans.spans.size(); ++i) {
    const auto& [name, stat] = spans.spans[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(name)
        << "\": {\"count\": " << stat.count
        << ", \"total_seconds\": " << format_double(stat.total_seconds)
        << ", \"self_seconds\": " << format_double(stat.self_seconds) << "}";
  }
  out << "}}";
  return out.str();
}

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const SpanReport& spans) {
  std::ostringstream out;
  for (const CounterSample& sample : snapshot.counters) {
    const std::string name = prometheus_name(sample.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << sample.value << "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    const std::string name = prometheus_name(sample.name);
    out << "# TYPE " << name << " gauge\n"
        << name << " " << format_double(sample.value) << "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string name = prometheus_name(sample.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < sample.bounds.size(); ++b) {
      cumulative += sample.buckets[b];
      out << name << "_bucket{le=\"" << format_double(sample.bounds[b])
          << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << sample.count << "\n"
        << name << "_sum " << format_double(sample.sum) << "\n"
        << name << "_count " << sample.count << "\n";
  }
  if (!spans.spans.empty()) {
    out << "# TYPE hotspot_span_seconds gauge\n";
    for (const auto& [name, stat] : spans.spans) {
      out << "hotspot_span_seconds{span=\"" << name << "\"} "
          << format_double(stat.total_seconds) << "\n";
    }
    out << "# TYPE hotspot_span_self_seconds gauge\n";
    for (const auto& [name, stat] : spans.spans) {
      out << "hotspot_span_self_seconds{span=\"" << name << "\"} "
          << format_double(stat.self_seconds) << "\n";
    }
    out << "# TYPE hotspot_span_count gauge\n";
    for (const auto& [name, stat] : spans.spans) {
      out << "hotspot_span_count{span=\"" << name << "\"} " << stat.count
          << "\n";
    }
  }
  return out.str();
}

bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const SpanReport& spans) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for metrics export";
    return false;
  }
  out << to_json(snapshot, spans) << "\n";
  out.flush();
  if (!out.good()) {
    HOTSPOT_LOG(kError) << "short write exporting metrics to " << path;
    return false;
  }
  return true;
}

}  // namespace hotspot::obs
