#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace hotspot::obs {
namespace {

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan literals; the strict util/json parser (and thus
    // bench_compare) rejects them. Instrument values are kept finite at the
    // source (finite histogram bounds, clamped quantiles, guarded sums) —
    // this is the last line of defense for a gauge someone set to inf.
    return "0";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// Microseconds with nanosecond resolution for Chrome trace "ts"/"dur".
std::string format_micros(std::uint64_t nanos) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(nanos) / 1e3);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

// Prometheus label values allow anything, but `\`, `"`, and newlines must
// be escaped in the exposition format.
std::string prometheus_label_value(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '\\' || c == '"') {
      escaped += '\\';
      escaped += c;
    } else if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped += c;
    }
  }
  return escaped;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; dots and dashes in our
// registry names map to underscores. Sanitization alone can merge distinct
// source names ("scan.batch_seconds" vs "scan-batch_seconds"), so families
// are allocated through PrometheusNames, which appends "_2", "_3", ... to
// later claimants. Allocation order is the (deterministic) name-sorted
// export order, so the renaming is stable run over run.
std::string prometheus_sanitize(const std::string& name) {
  std::string sanitized = name;
  for (char& c : sanitized) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  if (sanitized.empty() || (sanitized[0] >= '0' && sanitized[0] <= '9')) {
    sanitized.insert(sanitized.begin(), '_');
  }
  return sanitized;
}

class PrometheusNames {
 public:
  // Claims a family name for `source`. `derived` are suffixes the family
  // will emit as separate series names (histogram "_bucket"/"_sum"/...);
  // they are reserved too so e.g. a counter named "x_sum" and a histogram
  // named "x" never collide.
  std::string allocate(const std::string& source,
                       const std::vector<std::string>& derived = {}) {
    const std::string base = prometheus_sanitize(source);
    std::string candidate = base;
    for (int suffix = 2;; ++suffix) {
      if (claim(candidate, derived)) {
        return candidate;
      }
      candidate = base + "_" + std::to_string(suffix);
    }
  }

 private:
  bool claim(const std::string& candidate,
             const std::vector<std::string>& derived) {
    if (used_.count(candidate) > 0) {
      return false;
    }
    for (const std::string& suffix : derived) {
      if (used_.count(candidate + suffix) > 0) {
        return false;
      }
    }
    used_.insert(candidate);
    for (const std::string& suffix : derived) {
      used_.insert(candidate + suffix);
    }
    return true;
  }

  std::set<std::string> used_;
};

const std::vector<std::string>& histogram_suffixes() {
  static const std::vector<std::string> suffixes = {
      "_bucket", "_sum", "_count", "_p50", "_p95", "_p99"};
  return suffixes;
}

void append_json_body(std::ostringstream& out,
                      const MetricsSnapshot& snapshot,
                      const SpanReport& spans) {
  out << "\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& sample = snapshot.counters[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(sample.name)
        << "\": " << sample.value;
  }
  out << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& sample = snapshot.gauges[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(sample.name)
        << "\": " << format_double(sample.value);
  }
  out << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& sample = snapshot.histograms[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(sample.name)
        << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < sample.bounds.size(); ++b) {
      out << (b > 0 ? ", " : "") << format_double(sample.bounds[b]);
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      out << (b > 0 ? ", " : "") << sample.buckets[b];
    }
    out << "], \"count\": " << sample.count
        << ", \"sum\": " << format_double(sample.sum)
        << ", \"p50\": " << format_double(sample.quantile(0.50))
        << ", \"p95\": " << format_double(sample.quantile(0.95))
        << ", \"p99\": " << format_double(sample.quantile(0.99)) << "}";
  }
  out << "}, \"spans\": {";
  for (std::size_t i = 0; i < spans.spans.size(); ++i) {
    const auto& [name, stat] = spans.spans[i];
    out << (i > 0 ? ", " : "") << "\"" << json_escape(name)
        << "\": {\"count\": " << stat.count
        << ", \"total_seconds\": " << format_double(stat.total_seconds)
        << ", \"self_seconds\": " << format_double(stat.self_seconds) << "}";
  }
  out << "}";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot, const SpanReport& spans) {
  std::ostringstream out;
  out << "{";
  append_json_body(out, snapshot, spans);
  out << "}";
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot, const SpanReport& spans,
                    const RunManifest& manifest) {
  std::ostringstream out;
  out << "{\"manifest\": " << manifest_json(manifest) << ", ";
  append_json_body(out, snapshot, spans);
  out << "}";
  return out.str();
}

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const SpanReport& spans) {
  std::ostringstream out;
  PrometheusNames names;
  for (const CounterSample& sample : snapshot.counters) {
    const std::string name = names.allocate(sample.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << sample.value << "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    const std::string name = names.allocate(sample.name);
    out << "# TYPE " << name << " gauge\n"
        << name << " " << format_double(sample.value) << "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string name = names.allocate(sample.name, histogram_suffixes());
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < sample.bounds.size(); ++b) {
      cumulative += sample.buckets[b];
      out << name << "_bucket{le=\"" << format_double(sample.bounds[b])
          << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << sample.count << "\n"
        << name << "_sum " << format_double(sample.sum) << "\n"
        << name << "_count " << sample.count << "\n";
    out << "# TYPE " << name << "_p50 gauge\n"
        << name << "_p50 " << format_double(sample.quantile(0.50)) << "\n"
        << "# TYPE " << name << "_p95 gauge\n"
        << name << "_p95 " << format_double(sample.quantile(0.95)) << "\n"
        << "# TYPE " << name << "_p99 gauge\n"
        << name << "_p99 " << format_double(sample.quantile(0.99)) << "\n";
  }
  if (!spans.spans.empty()) {
    out << "# TYPE hotspot_span_seconds gauge\n";
    for (const auto& [name, stat] : spans.spans) {
      out << "hotspot_span_seconds{span=\"" << prometheus_label_value(name)
          << "\"} " << format_double(stat.total_seconds) << "\n";
    }
    out << "# TYPE hotspot_span_self_seconds gauge\n";
    for (const auto& [name, stat] : spans.spans) {
      out << "hotspot_span_self_seconds{span=\""
          << prometheus_label_value(name) << "\"} "
          << format_double(stat.self_seconds) << "\n";
    }
    out << "# TYPE hotspot_span_count gauge\n";
    for (const auto& [name, stat] : spans.spans) {
      out << "hotspot_span_count{span=\"" << prometheus_label_value(name)
          << "\"} " << stat.count << "\n";
    }
  }
  return out.str();
}

namespace {

// Emits the span-timeline rows shared by both to_chrome_trace overloads.
// Returns whether the next emitter still writes the first array element.
bool append_timeline_rows(std::ostringstream& out,
                          const TimelineReport& report, bool first) {
  // Thread-name metadata rows so the viewer labels each track.
  for (std::size_t t = 0; t < report.thread_count; ++t) {
    out << (first ? "" : ", ")
        << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
        << t << ", \"args\": {\"name\": \"hotspot thread " << t << "\"}}";
    first = false;
  }
  for (const TimelineEvent& event : report.events) {
    out << (first ? "" : ", ") << "{\"name\": \"" << json_escape(event.name)
        << "\", \"cat\": \"hotspot\", \"ph\": \"X\", \"ts\": "
        << format_micros(event.start_ns)
        << ", \"dur\": " << format_micros(event.duration_ns)
        << ", \"pid\": 1, \"tid\": " << event.thread_index << "}";
    first = false;
  }
  return first;
}

}  // namespace

std::string to_chrome_trace(const TimelineReport& report) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_events\": "
      << report.dropped << "}, \"traceEvents\": [";
  append_timeline_rows(out, report, true);
  out << "]}";
  return out.str();
}

std::string to_chrome_trace(const TimelineReport& report,
                            const std::vector<RequestTrace>& requests) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_events\": "
      << report.dropped << "}, \"traceEvents\": [";
  bool first = append_timeline_rows(out, report, true);
  if (!requests.empty()) {
    out << (first ? "" : ", ")
        << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
           "\"args\": {\"name\": \"serve requests\"}}";
    first = false;
  }
  for (const RequestTrace& request : requests) {
    // Bounded lane count: many concurrent requests share 32 tracks instead
    // of opening one per request id; the flow arrows keep each request's
    // phases connected regardless of which lane they render on.
    const std::uint64_t lane = request.request_id % 32;
    struct Phase {
      const char* name;
      double seconds;
    };
    const Phase phases[] = {{"req.decode", request.decode_seconds},
                            {"req.queue", request.queue_seconds},
                            {"req.batch", request.batch_seconds},
                            {"req.infer", request.infer_seconds},
                            {"req.encode", request.encode_seconds}};
    std::uint64_t cursor_ns = request.start_ns;
    for (std::size_t p = 0; p < 5; ++p) {
      const double seconds =
          std::isfinite(phases[p].seconds) && phases[p].seconds > 0.0
              ? phases[p].seconds
              : 0.0;
      const auto duration_ns = static_cast<std::uint64_t>(seconds * 1e9);
      out << (first ? "" : ", ") << "{\"name\": \"" << phases[p].name
          << "\", \"cat\": \"serve\", \"ph\": \"X\", \"ts\": "
          << format_micros(cursor_ns)
          << ", \"dur\": " << format_micros(duration_ns)
          << ", \"pid\": 2, \"tid\": " << lane;
      if (p == 0) {
        out << ", \"args\": {\"request_id\": " << request.request_id
            << ", \"tenant\": \"" << json_escape(request.tenant)
            << "\", \"clips\": " << request.clips << ", \"outcome\": \""
            << request_outcome_name(request.outcome)
            << "\", \"model_version\": " << request.model_version << "}";
      }
      out << "}";
      first = false;
      // Flow arrows chain the phases: start on decode, finish on encode.
      const char* flow_ph = p == 0 ? "s" : (p == 4 ? "f" : "t");
      out << ", {\"name\": \"req\", \"cat\": \"serve\", \"ph\": \"" << flow_ph
          << "\", \"id\": " << request.request_id
          << ", \"ts\": " << format_micros(cursor_ns)
          << ", \"pid\": 2, \"tid\": " << lane;
      if (p == 4) {
        out << ", \"bp\": \"e\"";
      }
      out << "}";
      cursor_ns += duration_ns;
    }
  }
  out << "]}";
  return out.str();
}

namespace {

bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    HOTSPOT_LOG(kError) << "cannot open " << path << " for " << what
                        << " export";
    return false;
  }
  out << text << "\n";
  out.flush();
  if (!out.good()) {
    HOTSPOT_LOG(kError) << "short write exporting " << what << " to " << path;
    return false;
  }
  return true;
}

}  // namespace

bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const SpanReport& spans, const RunManifest* manifest) {
  const std::string text = manifest != nullptr
                               ? to_json(snapshot, spans, *manifest)
                               : to_json(snapshot, spans);
  return write_text_file(path, text, "metrics");
}

bool write_chrome_trace(const std::string& path,
                        const TimelineReport& report) {
  return write_text_file(path, to_chrome_trace(report), "trace");
}

}  // namespace hotspot::obs
