#include "obs/slo.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "util/check.h"

namespace hotspot::obs {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::int64_t kNsPerSecond = 1'000'000'000;

}  // namespace

SloMonitor::SloMonitor(const SloConfig& config)
    : config_(config), epoch_ns_(steady_now_ns()) {
  HOTSPOT_CHECK_GE(config_.availability_objective, 0.0);
  HOTSPOT_CHECK_LT(config_.availability_objective, 1.0)
      << "an objective of 1.0 leaves no error budget to measure against";
  HOTSPOT_CHECK_GE(config_.p99_objective_seconds, 0.0);
  config_.window_seconds = std::max<std::size_t>(1, config_.window_seconds);
  config_.fast_window_seconds =
      std::min(std::max<std::size_t>(1, config_.fast_window_seconds),
               config_.window_seconds);
  buckets_.assign(config_.window_seconds, Bucket{});
}

void SloMonitor::record(double latency_seconds, bool success) {
  record_at(steady_now_ns() - epoch_ns_, latency_seconds, success);
}

void SloMonitor::record_at(std::int64_t now_ns, double latency_seconds,
                           bool success) {
  const bool good = success && (config_.p99_objective_seconds <= 0.0 ||
                                latency_seconds <= config_.p99_objective_seconds);
  const std::int64_t second = std::max<std::int64_t>(0, now_ns) / kNsPerSecond;
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[static_cast<std::size_t>(second) %
                            config_.window_seconds];
  if (bucket.second != second) {
    // The ring lapped: this slot held a second that just aged out.
    bucket.second = second;
    bucket.total = 0;
    bucket.bad = 0;
  }
  bucket.total += 1;
  bucket.bad += good ? 0 : 1;
}

SloMonitor::Status SloMonitor::status() const {
  return status_at(steady_now_ns() - epoch_ns_);
}

SloMonitor::Status SloMonitor::status_at(std::int64_t now_ns) const {
  const std::int64_t now_second =
      std::max<std::int64_t>(0, now_ns) / kNsPerSecond;
  const std::int64_t slow_cutoff =
      now_second - static_cast<std::int64_t>(config_.window_seconds) + 1;
  const std::int64_t fast_cutoff =
      now_second - static_cast<std::int64_t>(config_.fast_window_seconds) + 1;
  std::uint64_t total = 0;
  std::uint64_t bad = 0;
  std::uint64_t fast_total = 0;
  std::uint64_t fast_bad = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Bucket& bucket : buckets_) {
      if (bucket.second < slow_cutoff || bucket.second > now_second) {
        continue;  // aged out (or a stale slot not yet lapped)
      }
      total += bucket.total;
      bad += bucket.bad;
      if (bucket.second >= fast_cutoff) {
        fast_total += bucket.total;
        fast_bad += bucket.bad;
      }
    }
  }
  Status result;
  result.window_total = total;
  result.window_bad = bad;
  const double allowed = 1.0 - config_.availability_objective;
  if (total > 0) {
    const double bad_fraction =
        static_cast<double>(bad) / static_cast<double>(total);
    result.availability = 1.0 - bad_fraction;
    if (allowed > 0.0) {
      result.slow_burn_rate = bad_fraction / allowed;
      result.error_budget_remaining =
          std::clamp(1.0 - result.slow_burn_rate, 0.0, 1.0);
    } else {
      result.slow_burn_rate = bad > 0 ? 1e9 : 0.0;
      result.error_budget_remaining = bad > 0 ? 0.0 : 1.0;
    }
  }
  if (fast_total > 0 && allowed > 0.0) {
    result.fast_burn_rate = (static_cast<double>(fast_bad) /
                             static_cast<double>(fast_total)) /
                            allowed;
  } else if (fast_total > 0 && fast_bad > 0) {
    result.fast_burn_rate = 1e9;
  }
  return result;
}

void SloMonitor::publish() { publish_at(steady_now_ns() - epoch_ns_); }

void SloMonitor::publish_at(std::int64_t now_ns) {
  const Status status = status_at(now_ns);
  // Resolved once; publish is a handful of relaxed stores afterwards.
  static Gauge& budget =
      MetricsRegistry::global().gauge("serve.slo.error_budget_remaining");
  static Gauge& availability =
      MetricsRegistry::global().gauge("serve.slo.availability");
  static Gauge& fast_burn =
      MetricsRegistry::global().gauge("serve.slo.burn_rate_fast");
  static Gauge& slow_burn =
      MetricsRegistry::global().gauge("serve.slo.burn_rate_slow");
  static Gauge& window_total =
      MetricsRegistry::global().gauge("serve.slo.window_total");
  static Gauge& window_bad =
      MetricsRegistry::global().gauge("serve.slo.window_bad");
  budget.set(status.error_budget_remaining);
  availability.set(status.availability);
  fast_burn.set(status.fast_burn_rate);
  slow_burn.set(status.slow_burn_rate);
  window_total.set(static_cast<double>(status.window_total));
  window_bad.set(static_cast<double>(status.window_bad));
}

}  // namespace hotspot::obs
