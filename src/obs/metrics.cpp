#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hotspot::obs {

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& buckets,
                          double q) {
  HOTSPOT_CHECK_EQ(buckets.size(), bounds.size() + 1);
  std::uint64_t total = 0;
  for (const std::uint64_t count : buckets) {
    total += count;
  }
  if (total == 0 || bounds.empty()) {
    return 0.0;
  }
  // The result must always be finite: the estimate flows through
  // format_double into JSON exports, and the strict util/json parser (and
  // therefore bench_compare) rejects inf/nan literals. Bounds sampled from
  // the registry are finite by construction (the Histogram constructor
  // enforces it), but this free function also serves hand-built samples —
  // Prometheus-style bounds legally end in +Inf — so ranks landing in or
  // above a non-finite bound clamp to the last finite one (0 when there is
  // none).
  double last_finite = 0.0;
  for (std::size_t i = bounds.size(); i-- > 0;) {
    if (std::isfinite(bounds[i])) {
      last_finite = bounds[i];
      break;
    }
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket > 0.0 && cumulative + in_bucket >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      if (!std::isfinite(hi) || !std::isfinite(lo)) {
        // No finite width to interpolate across: lo + (hi - lo) * fraction
        // used to emit inf (or nan at fraction == 0) here.
        return last_finite;
      }
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lo + (hi - lo) * fraction;
    }
    cumulative += in_bucket;
  }
  // Rank falls in the overflow bucket, which has no upper bound to
  // interpolate toward.
  return last_finite;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  HOTSPOT_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    // Finite bounds keep every exported value (bucket bounds and the
    // interpolated quantiles) representable in strict JSON; the overflow
    // bucket already plays the +Inf role.
    HOTSPOT_CHECK(std::isfinite(bounds_[i]))
        << "histogram bounds must be finite";
  }
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    HOTSPOT_CHECK_LT(bounds_[i], bounds_[i + 1])
        << "histogram bounds must be strictly increasing";
  }
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  if (!std::isfinite(value)) {
    // A non-finite duration is instrumentation failure, not data: make it
    // visible in the overflow bucket, but keep it out of sum_ so a single
    // poisoned observation cannot turn the JSON export into inf/nan.
    buckets_[bounds_.size()].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
}

std::uint64_t Histogram::bucket(std::size_t index) const {
  HOTSPOT_CHECK_LT(index, bounds_.size() + 1);
  return buckets_[index].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return histogram_quantile(bounds_, counts, q);
}

void Histogram::reset() {
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_duration_buckets() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0,
          10.0, 30.0, 100.0, 300.0};
}

std::vector<double> default_latency_buckets() {
  // 10^(-6 + i/4) for i = 0..30: 1 µs to ~31.6 s, ratio ~1.78 per bucket.
  std::vector<double> bounds;
  bounds.reserve(31);
  for (int i = 0; i <= 30; ++i) {
    bounds.push_back(std::pow(10.0, -6.0 + static_cast<double>(i) / 4.0));
  }
  return bounds;
}

double HistogramSample::quantile(double q) const {
  return histogram_quantile(bounds, buckets, q);
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (CounterSample& sample : delta.counters) {
    if (const CounterSample* base = earlier.find_counter(sample.name)) {
      sample.value -= std::min(base->value, sample.value);
    }
  }
  for (HistogramSample& sample : delta.histograms) {
    const HistogramSample* base = earlier.find_histogram(sample.name);
    if (base == nullptr || base->buckets.size() != sample.buckets.size()) {
      continue;
    }
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      sample.buckets[i] -= std::min(base->buckets[i], sample.buckets[i]);
    }
    sample.count -= std::min(base->count, sample.count);
    sample.sum -= base->sum;
  }
  return delta;
}

namespace {

template <typename SampleT>
const SampleT* find_sample(const std::vector<SampleT>& samples,
                           const std::string& name) {
  for (const SampleT& sample : samples) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  return find_sample(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(const std::string& name) const {
  return find_sample(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  return find_sample(histograms, name);
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked so instrumentation in static-destruction paths (pool workers,
  // atexit handlers) never races registry teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds);
  } else {
    HOTSPOT_CHECK(slot->bounds() == bounds)
        << "histogram '" << name << "' re-registered with different bounds";
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.buckets.resize(histogram->bucket_count());
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      sample.buckets[i] = histogram->bucket(i);
    }
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (const auto& [name, gauge] : gauges_) {
    gauge->reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

}  // namespace hotspot::obs
