#include "obs/manifest.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/parallel.h"

// Baked in by src/obs/CMakeLists.txt; fall back cleanly when built by hand.
#ifndef HOTSPOT_GIT_SHA
#define HOTSPOT_GIT_SHA "unknown"
#endif
#ifndef HOTSPOT_BUILD_TYPE
#define HOTSPOT_BUILD_TYPE "unknown"
#endif

extern char** environ;

namespace hotspot::obs {
namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

std::mutex& notes_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::string>& notes_store() {
  static std::map<std::string, std::string> notes;
  return notes;
}

}  // namespace

void set_manifest_note(const std::string& key, const std::string& value) {
  const std::lock_guard<std::mutex> lock(notes_mutex());
  notes_store()[key] = value;
}

RunManifest collect_manifest(const std::string& timestamp) {
  RunManifest manifest;
  manifest.git_sha = HOTSPOT_GIT_SHA;
  manifest.compiler = compiler_string();
  manifest.build_type = HOTSPOT_BUILD_TYPE;
  manifest.threads = util::parallel_threads();
  manifest.hardware_concurrency =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  manifest.timestamp = timestamp;
  {
    const std::lock_guard<std::mutex> lock(notes_mutex());
    manifest.notes.assign(notes_store().begin(), notes_store().end());
  }
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const char* text = *entry;
    if (std::strncmp(text, "HOTSPOT_", 8) != 0) {
      continue;
    }
    const char* equals = std::strchr(text, '=');
    if (equals == nullptr) {
      continue;
    }
    manifest.env.emplace_back(std::string(text, equals),
                              std::string(equals + 1));
  }
  std::sort(manifest.env.begin(), manifest.env.end());
  return manifest;
}

std::string manifest_json(const RunManifest& manifest) {
  std::ostringstream out;
  out << "{\"schema_version\": " << manifest.schema_version
      << ", \"git_sha\": \"" << json_escape(manifest.git_sha)
      << "\", \"compiler\": \"" << json_escape(manifest.compiler)
      << "\", \"build_type\": \"" << json_escape(manifest.build_type)
      << "\", \"threads\": " << manifest.threads
      << ", \"hardware_concurrency\": " << manifest.hardware_concurrency
      << ", \"env\": {";
  for (std::size_t i = 0; i < manifest.env.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << json_escape(manifest.env[i].first)
        << "\": \"" << json_escape(manifest.env[i].second) << "\"";
  }
  out << "}, \"notes\": {";
  for (std::size_t i = 0; i < manifest.notes.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << json_escape(manifest.notes[i].first)
        << "\": \"" << json_escape(manifest.notes[i].second) << "\"";
  }
  out << "}";
  if (!manifest.timestamp.empty()) {
    out << ", \"timestamp\": \"" << json_escape(manifest.timestamp) << "\"";
  }
  out << "}";
  return out.str();
}

}  // namespace hotspot::obs
