#include "obs/bench_gate.h"

#include <sstream>

namespace hotspot::obs {
namespace {

bool contains(const std::string& text, const char* needle) {
  return text.find(needle) != std::string::npos;
}

enum class MetricKind { kThroughput, kTime, kUngated };

// Rate keys are classified first so "windows_per_sec" never matches the
// "seconds" substring rule.
MetricKind classify(const std::string& key) {
  if (contains(key, "per_sec") || contains(key, "speedup")) {
    return MetricKind::kThroughput;
  }
  if (contains(key, "seconds")) {
    return MetricKind::kTime;
  }
  return MetricKind::kUngated;
}

const util::JsonValue* lookup(const util::JsonValue* node,
                              const std::string& key) {
  return node == nullptr ? nullptr : node->find(key);
}

void walk(const util::JsonValue& base, const util::JsonValue* fresh,
          const std::string& path, const std::string& leaf_key,
          const GateConfig& config, GateResult& result) {
  if (base.is_object()) {
    for (const auto& [key, value] : base.as_object()) {
      if (key == "manifest" || key == "metrics") {
        continue;
      }
      const std::string child_path = path.empty() ? key : path + "." + key;
      walk(value, lookup(fresh, key), child_path, key, config, result);
    }
    return;
  }
  if (base.is_array()) {
    const std::vector<util::JsonValue>& items = base.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      std::ostringstream child_path;
      child_path << path << "[" << i << "]";
      const util::JsonValue* fresh_item =
          fresh != nullptr && fresh->is_array() && i < fresh->size()
              ? &fresh->as_array()[i]
              : nullptr;
      walk(items[i], fresh_item, child_path.str(), leaf_key, config, result);
    }
    return;
  }
  if (!base.is_number()) {
    return;
  }
  const MetricKind kind = classify(leaf_key);
  if (kind == MetricKind::kUngated) {
    return;
  }
  if (fresh == nullptr || !fresh->is_number()) {
    GateFinding finding;
    finding.path = path;
    finding.baseline = base.as_number();
    finding.message = "present in baseline but missing from fresh run";
    result.regressions.push_back(std::move(finding));
    return;
  }
  ++result.compared;
  const double base_value = base.as_number();
  const double fresh_value = fresh->as_number();
  if (kind == MetricKind::kTime) {
    const double limit =
        base_value * config.time_tolerance + config.time_floor_seconds;
    if (fresh_value > limit) {
      GateFinding finding;
      finding.path = path;
      finding.baseline = base_value;
      finding.fresh = fresh_value;
      std::ostringstream message;
      message << "time regressed: " << fresh_value << "s > limit " << limit
              << "s (baseline " << base_value << "s x"
              << config.time_tolerance << " + " << config.time_floor_seconds
              << "s)";
      finding.message = message.str();
      result.regressions.push_back(std::move(finding));
    }
  } else {
    const double limit = base_value / config.throughput_tolerance;
    if (fresh_value < limit) {
      GateFinding finding;
      finding.path = path;
      finding.baseline = base_value;
      finding.fresh = fresh_value;
      std::ostringstream message;
      message << "throughput regressed: " << fresh_value << " < limit "
              << limit << " (baseline " << base_value << " / "
              << config.throughput_tolerance << ")";
      finding.message = message.str();
      result.regressions.push_back(std::move(finding));
    }
  }
}

}  // namespace

bool check_bench_schema(const util::JsonValue& doc, std::string& error) {
  if (!doc.is_object()) {
    error = "bench emission is not a JSON object";
    return false;
  }
  const util::JsonValue* manifest = doc.find("manifest");
  if (manifest == nullptr || !manifest->is_object()) {
    error = "missing \"manifest\" section (re-emit with a current build)";
    return false;
  }
  const util::JsonValue* version = manifest->find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() < 1.0) {
    error = "manifest has no usable \"schema_version\"";
    return false;
  }
  for (const char* field : {"git_sha", "compiler", "build_type"}) {
    const util::JsonValue* value = manifest->find(field);
    if (value == nullptr || !value->is_string()) {
      error = std::string("manifest is missing \"") + field + "\"";
      return false;
    }
  }
  const util::JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    error = "missing \"metrics\" section";
    return false;
  }
  return true;
}

GateResult compare_bench(const util::JsonValue& baseline,
                         const util::JsonValue& fresh,
                         const GateConfig& config) {
  GateResult result;
  std::string error;
  if (!check_bench_schema(baseline, error)) {
    result.schema_error = "baseline: " + error;
    return result;
  }
  if (!check_bench_schema(fresh, error)) {
    result.schema_error = "fresh: " + error;
    return result;
  }
  result.schema_ok = true;
  walk(baseline, &fresh, "", "", config, result);
  return result;
}

std::string gate_report(const GateResult& result) {
  std::ostringstream out;
  if (!result.schema_ok) {
    out << "SCHEMA FAIL: " << result.schema_error << "\n";
    return out.str();
  }
  out << "compared " << result.compared << " gated metric(s), "
      << result.regressions.size() << " regression(s)\n";
  for (const GateFinding& finding : result.regressions) {
    out << "  REGRESSION " << finding.path << ": " << finding.message << "\n";
  }
  if (result.ok()) {
    out << "OK\n";
  }
  return out.str();
}

}  // namespace hotspot::obs
