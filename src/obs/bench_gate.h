// Bench regression gate (DESIGN.md §10): compares a freshly emitted
// BENCH_*.json against a committed baseline and reports per-metric
// regressions, so a perf change shows up in CI as a diff against recorded
// numbers instead of silently drifting.
//
// Rules, applied to every numeric leaf reachable from the baseline's
// headline fields (the "manifest" and "metrics" subtrees are provenance and
// raw instrumentation, never gated):
//   - keys containing "per_sec" or "speedup" are throughputs: the fresh
//     value must not fall below baseline / throughput_tolerance;
//   - keys containing "seconds" are times: the fresh value must not exceed
//     baseline * time_tolerance + time_floor_seconds (the floor keeps
//     micro-benchmarks measured in milliseconds from tripping on noise);
//   - everything else (counts, accuracies, configuration echoes) is
//     informational and not gated.
// A baseline key missing from the fresh file is itself a regression: the
// bench stopped reporting a number it used to.
//
// check_schema() is the structural half: every gateable file must be a JSON
// object carrying a "manifest" object (schema_version >= 1) and a "metrics"
// object, which write_json_result() emits unconditionally. Files without a
// manifest cannot be attributed to a commit/compiler/knob set and are
// rejected outright.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"

namespace hotspot::obs {

struct GateConfig {
  double time_tolerance = 1.5;      // multiplicative slack on "seconds" keys
  double time_floor_seconds = 0.05;  // additive slack (absorbs timer noise)
  double throughput_tolerance = 1.5;  // divisor slack on rate keys
};

struct GateFinding {
  std::string path;  // dotted key path, e.g. "measured[1].eval_seconds"
  double baseline = 0.0;
  double fresh = 0.0;
  std::string message;
};

struct GateResult {
  bool schema_ok = false;
  std::string schema_error;  // set when !schema_ok
  std::vector<GateFinding> regressions;
  int compared = 0;  // gated numeric leaves that were actually checked

  bool ok() const { return schema_ok && regressions.empty(); }
};

// Structural validation of one bench emission. Returns false with `error`
// set when the document is not gateable.
bool check_bench_schema(const util::JsonValue& doc, std::string& error);

// Validates both documents, then walks the baseline's gated leaves and
// checks each against the fresh file per the rules above.
GateResult compare_bench(const util::JsonValue& baseline,
                         const util::JsonValue& fresh,
                         const GateConfig& config = {});

// Human-readable multi-line summary of a gate run.
std::string gate_report(const GateResult& result);

}  // namespace hotspot::obs
