#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace hotspot::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_trace_enabled{false};

struct ActiveSpan {
  std::string name;
  Clock::time_point start;
  double child_seconds = 0.0;
};

// One buffer per thread. The open-span stack is touched only by the owning
// thread; the aggregated stats map is shared with collect_span_report() /
// reset_spans() and guarded by the buffer mutex (locked only when a span
// closes, never on the disabled path).
struct ThreadBuffer {
  std::mutex mutex;
  std::map<std::string, SpanStat> stats;
  std::vector<ActiveSpan> stack;
};

struct BufferDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferDirectory& directory() {
  // Leaked: pool workers may close spans during static destruction.
  static BufferDirectory* dir = new BufferDirectory();
  return *dir;
}

ThreadBuffer& local_buffer() {
  // The directory keeps a shared_ptr too, so a thread's recorded spans
  // survive the thread itself.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    BufferDirectory& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    dir.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

}  // namespace

void set_trace_enabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

const SpanStat* SpanReport::find(const std::string& name) const {
  for (const auto& [span_name, stat] : spans) {
    if (span_name == name) {
      return &stat;
    }
  }
  return nullptr;
}

double SpanReport::total_self_seconds() const {
  double total = 0.0;
  for (const auto& [name, stat] : spans) {
    total += stat.self_seconds;
  }
  return total;
}

SpanReport collect_span_report() {
  std::map<std::string, SpanStat> merged;
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const auto& [name, stat] : buffer->stats) {
      SpanStat& into = merged[name];
      into.count += stat.count;
      into.total_seconds += stat.total_seconds;
      into.self_seconds += stat.self_seconds;
    }
  }
  SpanReport report;
  report.spans.assign(merged.begin(), merged.end());
  return report;
}

void reset_spans() {
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->stats.clear();
  }
}

TraceSpan::TraceSpan(const char* name) { open(name); }

TraceSpan::TraceSpan(const std::string& name) { open(name.c_str()); }

void TraceSpan::open(const char* name) {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  ThreadBuffer& buffer = local_buffer();
  buffer.stack.push_back({name, Clock::now(), 0.0});
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  const Clock::time_point end = Clock::now();
  ThreadBuffer& buffer = local_buffer();
  ActiveSpan span = std::move(buffer.stack.back());
  buffer.stack.pop_back();
  const double elapsed =
      std::chrono::duration<double>(end - span.start).count();
  if (!buffer.stack.empty()) {
    buffer.stack.back().child_seconds += elapsed;
  }
  std::lock_guard<std::mutex> lock(buffer.mutex);
  SpanStat& stat = buffer.stats[span.name];
  stat.count += 1;
  stat.total_seconds += elapsed;
  stat.self_seconds += std::max(0.0, elapsed - span.child_seconds);
}

}  // namespace hotspot::obs
