#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace hotspot::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_timeline_enabled{false};
// steady_clock nanoseconds captured when timeline mode was last enabled;
// every event's start_ns is relative to this.
std::atomic<std::int64_t> g_timeline_epoch_ns{0};
std::atomic<std::size_t> g_timeline_capacity{std::size_t{1} << 16};

struct ActiveSpan {
  std::string name;
  Clock::time_point start;
  double child_seconds = 0.0;
};

// One buffer per thread. The open-span stack is touched only by the owning
// thread; the aggregated stats map and event ring are shared with the
// collect/reset functions and guarded by the buffer mutex (locked only when
// a span closes, never on the disabled path).
struct ThreadBuffer {
  std::mutex mutex;
  std::map<std::string, SpanStat> stats;
  std::vector<ActiveSpan> stack;
  // Timeline ring, allocated lazily on the first recorded event so threads
  // that never trace in timeline mode pay nothing. Slot of event k is
  // k % ring_capacity; once ring_total exceeds the capacity the oldest
  // events are overwritten (ring_total - ring.size() = dropped).
  std::vector<TimelineEvent> ring;
  std::size_t ring_capacity = 0;
  std::uint64_t ring_total = 0;
  std::uint32_t thread_index = 0;
};

struct BufferDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferDirectory& directory() {
  // Leaked: pool workers may close spans during static destruction.
  static BufferDirectory* dir = new BufferDirectory();
  return *dir;
}

ThreadBuffer& local_buffer() {
  // The directory keeps a shared_ptr too, so a thread's recorded spans
  // survive the thread itself.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    BufferDirectory& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    fresh->thread_index = static_cast<std::uint32_t>(dir.buffers.size());
    dir.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// Caller holds buffer.mutex.
void record_timeline_event(ThreadBuffer& buffer, std::string name,
                           Clock::time_point start, Clock::time_point end) {
  if (buffer.ring_capacity == 0) {
    buffer.ring_capacity =
        std::max<std::size_t>(1, g_timeline_capacity.load(
                                     std::memory_order_relaxed));
    buffer.ring.reserve(buffer.ring_capacity);
  }
  const std::int64_t epoch =
      g_timeline_epoch_ns.load(std::memory_order_relaxed);
  const std::int64_t start_raw =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start.time_since_epoch())
          .count();
  TimelineEvent event;
  event.name = std::move(name);
  // Spans opened before the epoch (enable raced an open span) clamp to 0.
  event.start_ns =
      start_raw > epoch ? static_cast<std::uint64_t>(start_raw - epoch) : 0;
  event.duration_ns = static_cast<std::uint64_t>(
      std::max<std::int64_t>(
          0, std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()));
  event.thread_index = buffer.thread_index;
  if (buffer.ring.size() < buffer.ring_capacity) {
    buffer.ring.push_back(std::move(event));
  } else {
    buffer.ring[buffer.ring_total % buffer.ring_capacity] = std::move(event);
  }
  ++buffer.ring_total;
}

}  // namespace

void set_trace_enabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_timeline_enabled(bool enabled) {
  if (enabled) {
    g_timeline_epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
  }
  g_timeline_enabled.store(enabled, std::memory_order_relaxed);
}

bool timeline_enabled() {
  return g_timeline_enabled.load(std::memory_order_relaxed);
}

void set_timeline_capacity(std::size_t events_per_thread) {
  g_timeline_capacity.store(std::max<std::size_t>(1, events_per_thread),
                            std::memory_order_relaxed);
}

std::size_t timeline_capacity() {
  return g_timeline_capacity.load(std::memory_order_relaxed);
}

TimelineReport collect_timeline() {
  TimelineReport report;
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  report.thread_count = buffers.size();
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    const std::size_t size = buffer->ring.size();
    report.dropped += buffer->ring_total - size;
    if (size == 0) {
      continue;
    }
    // Oldest surviving event first: once the ring has wrapped, slot
    // ring_total % size holds the oldest entry.
    const std::size_t oldest =
        buffer->ring_total > size
            ? static_cast<std::size_t>(buffer->ring_total % size)
            : 0;
    for (std::size_t i = 0; i < size; ++i) {
      report.events.push_back(buffer->ring[(oldest + i) % size]);
    }
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return report;
}

void reset_timeline() {
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->ring.clear();
    buffer->ring.shrink_to_fit();
    buffer->ring_capacity = 0;
    buffer->ring_total = 0;
  }
}

TimelineStats timeline_stats() {
  TimelineStats stats;
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  stats.threads = buffers.size();
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    stats.buffered += buffer->ring.size();
    stats.dropped += buffer->ring_total - buffer->ring.size();
  }
  return stats;
}

void publish_timeline_metrics() {
  const TimelineStats stats = timeline_stats();
  static Gauge& events_gauge =
      MetricsRegistry::global().gauge("obs.timeline.events");
  static Gauge& dropped_gauge =
      MetricsRegistry::global().gauge("obs.timeline.dropped");
  static Gauge& threads_gauge =
      MetricsRegistry::global().gauge("obs.timeline.threads");
  events_gauge.set(static_cast<double>(stats.buffered));
  dropped_gauge.set(static_cast<double>(stats.dropped));
  threads_gauge.set(static_cast<double>(stats.threads));
}

const SpanStat* SpanReport::find(const std::string& name) const {
  for (const auto& [span_name, stat] : spans) {
    if (span_name == name) {
      return &stat;
    }
  }
  return nullptr;
}

double SpanReport::total_self_seconds() const {
  double total = 0.0;
  for (const auto& [name, stat] : spans) {
    total += stat.self_seconds;
  }
  return total;
}

SpanReport collect_span_report() {
  std::map<std::string, SpanStat> merged;
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const auto& [name, stat] : buffer->stats) {
      SpanStat& into = merged[name];
      into.count += stat.count;
      into.total_seconds += stat.total_seconds;
      into.self_seconds += stat.self_seconds;
    }
  }
  SpanReport report;
  report.spans.assign(merged.begin(), merged.end());
  return report;
}

void reset_spans() {
  BufferDirectory& dir = directory();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->stats.clear();
  }
}

TraceSpan::TraceSpan(const char* name) { open(name); }

TraceSpan::TraceSpan(const std::string& name) { open(name.c_str()); }

void TraceSpan::open(const char* name) {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  ThreadBuffer& buffer = local_buffer();
  buffer.stack.push_back({name, Clock::now(), 0.0});
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  const Clock::time_point end = Clock::now();
  ThreadBuffer& buffer = local_buffer();
  ActiveSpan span = std::move(buffer.stack.back());
  buffer.stack.pop_back();
  const double elapsed =
      std::chrono::duration<double>(end - span.start).count();
  if (!buffer.stack.empty()) {
    buffer.stack.back().child_seconds += elapsed;
  }
  std::lock_guard<std::mutex> lock(buffer.mutex);
  SpanStat& stat = buffer.stats[span.name];
  stat.count += 1;
  stat.total_seconds += elapsed;
  stat.self_seconds += std::max(0.0, elapsed - span.child_seconds);
  if (g_timeline_enabled.load(std::memory_order_relaxed)) {
    record_timeline_event(buffer, std::move(span.name), span.start, end);
  }
}

}  // namespace hotspot::obs
