// Process-wide metrics registry (DESIGN.md §10).
//
// Three instrument kinds, all safe to update concurrently from pool workers:
//   Counter   - monotonically increasing uint64 (events, cache hits).
//   Gauge     - last-written double (losses, learning rate, ODST terms).
//   Histogram - fixed upper-bound buckets + count + sum (durations).
//
// The update fast path is lock-free: one relaxed atomic RMW per
// Counter::increment / Histogram::observe and a relaxed store per
// Gauge::set. The registry mutex is taken only when an instrument is first
// resolved by name or when a snapshot is cut, so hot code resolves its
// instruments once (function-local static reference) and then never touches
// a lock. Instrument references stay valid for the process lifetime;
// reset() zeroes values without invalidating them.
//
// MetricsSnapshot is a point-in-time copy; delta_since() subtracts an
// earlier snapshot (counters and histograms diff, gauges keep the newer
// value), which is how per-epoch and per-inference windows are reported
// without resetting the registry under concurrent writers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hotspot::obs {

namespace detail {
// fetch_add for atomic<double> via CAS; C++20's native floating fetch_add
// is not guaranteed lock-free everywhere, and this loop is exact either way.
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

class Counter {
 public:
  void increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Streaming quantile estimate from bucketed counts (Prometheus
// histogram_quantile style): finds the bucket containing rank q * count and
// interpolates linearly between its bounds (the first bucket interpolates
// from 0). Accuracy is bounded by bucket width, so latency histograms use
// log-spaced bounds (default_latency_buckets). The result is always
// finite — it flows into strict-JSON exports: an empty histogram (or empty
// bounds) yields 0, and ranks falling in the overflow bucket or a
// non-finite (+Inf-terminated, Prometheus-style) bound clamp to the last
// finite bound. `buckets` is non-cumulative with bounds.size() + 1 entries.
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& buckets,
                          double q);

// Histogram with Prometheus "le" semantics: bucket i counts observations
// <= bounds[i]; one extra overflow bucket catches everything above the last
// bound. Bucket counts are stored non-cumulative; exporters cumulate.
class Histogram {
 public:
  // `bounds` must be non-empty, finite, and strictly increasing (the
  // overflow bucket plays the +Inf role).
  explicit Histogram(std::vector<double> bounds);

  // Non-finite values land in the overflow bucket but are excluded from
  // sum(), so one poisoned observation cannot make the export unparseable.
  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t bucket(std::size_t index) const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Estimated q-quantile (q in [0, 1]) of everything observed so far; see
  // histogram_quantile. Safe to call under concurrent observe().
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Wall-time bucket boundaries (seconds) shared by duration histograms.
std::vector<double> default_duration_buckets();

// Log-spaced latency bounds (seconds), four per decade from 1 µs to ~30 s,
// sized so interpolated p50/p95/p99 land within one ~1.78x bucket ratio of
// the exact quantile.
std::vector<double> default_latency_buckets();

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1, non-cumulative
  std::uint64_t count = 0;
  double sum = 0.0;

  // Estimated q-quantile of this sample; see histogram_quantile.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name

  // This snapshot minus `earlier`: counters and histogram buckets/count/sum
  // subtract (instruments absent from `earlier` diff against zero); gauges
  // keep this snapshot's value. Instruments only in `earlier` are dropped.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  const CounterSample* find_counter(const std::string& name) const;
  const GaugeSample* find_gauge(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& global();

  // Resolve-or-create by name; the returned reference is valid for the
  // registry's lifetime. Re-registering a histogram name must use the same
  // bounds.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds);

  MetricsSnapshot snapshot() const;

  // Zeroes every instrument's value; references stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hotspot::obs
