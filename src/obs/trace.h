// RAII wall-time trace spans (DESIGN.md §10).
//
// A TraceSpan times the scope it lives in and records (count, total wall
// time, self time = total minus nested spans) into a per-thread buffer keyed
// by span name. collect_span_report() merges every thread's buffer into one
// aggregated report — there is no per-event log, so span cost and memory are
// O(distinct names), not O(events).
//
// Tracing is compiled in but off by default: when disabled, constructing a
// span reads one relaxed atomic and does nothing else, so instrumented hot
// paths (per-layer forward, packing, GEMM) stay effectively free until an
// exporter flips set_trace_enabled(true). Spans never touch model state,
// RNG, or arithmetic, so deterministic results are unaffected either way
// (pinned by parallel_determinism_test).
//
// Usage:
//   void forward() {
//     HOTSPOT_TRACE_SPAN("brnn.forward");   // whole function
//     {
//       HOTSPOT_TRACE_SPAN("binary_conv.pack");  // nested phase
//       pack();
//     }
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hotspot::obs {

// Global switch; safe to flip from any thread. Spans already open keep the
// enablement they saw at construction.
void set_trace_enabled(bool enabled);
bool trace_enabled();

struct SpanStat {
  std::uint64_t count = 0;
  double total_seconds = 0.0;  // inclusive of nested spans
  double self_seconds = 0.0;   // exclusive: total minus direct children
};

struct SpanReport {
  std::vector<std::pair<std::string, SpanStat>> spans;  // sorted by name

  const SpanStat* find(const std::string& name) const;
  // Sum of self times = total traced wall time without double counting.
  double total_self_seconds() const;
};

// Merges every thread's span buffer (open spans are not included).
SpanReport collect_span_report();

// Clears all recorded spans on every thread; open spans still record when
// they close.
void reset_spans();

class TraceSpan {
 public:
  // The name is copied when the span opens; any lifetime works.
  explicit TraceSpan(const char* name);
  explicit TraceSpan(const std::string& name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* name);
  bool active_ = false;
};

}  // namespace hotspot::obs

#define HOTSPOT_TRACE_CONCAT_INNER(a, b) a##b
#define HOTSPOT_TRACE_CONCAT(a, b) HOTSPOT_TRACE_CONCAT_INNER(a, b)
// Times the enclosing scope under `name` (string literal or std::string).
#define HOTSPOT_TRACE_SPAN(name)                                     \
  ::hotspot::obs::TraceSpan HOTSPOT_TRACE_CONCAT(hotspot_trace_span_, \
                                                 __LINE__)(name)
