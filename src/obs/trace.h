// RAII wall-time trace spans (DESIGN.md §10).
//
// A TraceSpan times the scope it lives in and records (count, total wall
// time, self time = total minus nested spans) into a per-thread buffer keyed
// by span name. collect_span_report() merges every thread's buffer into one
// aggregated report — aggregate span cost and memory are O(distinct names),
// not O(events).
//
// On top of the aggregates, *timeline mode* additionally records one
// TimelineEvent (begin/end timestamps + thread index) per closed span into a
// bounded per-thread ring buffer. When a ring fills up the oldest events are
// overwritten and a drop counter increments, so a long run keeps the most
// recent window of activity at fixed memory. collect_timeline() merges the
// rings into one start-ordered report; export.h renders it as Chrome
// trace-event JSON (chrome://tracing / Perfetto).
//
// Tracing is compiled in but off by default: when disabled, constructing a
// span reads one relaxed atomic and does nothing else — no clock read, no
// allocation (pinned by tests/obs/timeline_test.cpp) — so instrumented hot
// paths (per-layer forward, packing, GEMM) stay effectively free until an
// exporter flips set_trace_enabled(true). Timeline mode only records while
// tracing itself is enabled. Spans never touch model state, RNG, or
// arithmetic, so deterministic results are unaffected either way (pinned by
// parallel_determinism_test).
//
// Usage:
//   void forward() {
//     HOTSPOT_TRACE_SPAN("brnn.forward");   // whole function
//     {
//       HOTSPOT_TRACE_SPAN("binary_conv.pack");  // nested phase
//       pack();
//     }
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hotspot::obs {

// Global switch; safe to flip from any thread. Spans already open keep the
// enablement they saw at construction.
void set_trace_enabled(bool enabled);
bool trace_enabled();

// Timeline mode: record per-event begin/end timestamps in addition to the
// aggregates. Only takes effect while tracing is enabled. Enabling captures
// the timestamp epoch all events are reported relative to.
void set_timeline_enabled(bool enabled);
bool timeline_enabled();

// Per-thread event ring capacity (default 65536 events/thread). Applies to
// rings allocated after the call; call reset_timeline() afterwards to force
// existing threads to re-allocate at the new capacity. Clamped to >= 1.
void set_timeline_capacity(std::size_t events_per_thread);
std::size_t timeline_capacity();

struct TimelineEvent {
  std::string name;
  std::uint64_t start_ns = 0;     // since the set_timeline_enabled epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t thread_index = 0;  // stable small id, one per thread buffer
};

struct TimelineReport {
  std::vector<TimelineEvent> events;  // ordered by start_ns
  std::uint64_t dropped = 0;  // events overwritten across all ring buffers
  std::size_t thread_count = 0;
};

// Merges every thread's ring (oldest surviving event first per thread) into
// one start-ordered report. Open spans are not included.
TimelineReport collect_timeline();

// Clears all recorded events and drop counters. Rings re-allocate lazily at
// the current timeline_capacity() on the next recorded event.
void reset_timeline();

// Ring occupancy without copying events: how many events are currently
// buffered across all threads, how many were overwritten, and how many
// thread rings exist. O(threads), not O(events).
struct TimelineStats {
  std::uint64_t buffered = 0;  // events a collect_timeline() would return
  std::uint64_t dropped = 0;   // events overwritten across all rings
  std::size_t threads = 0;     // thread buffers ever created
};

TimelineStats timeline_stats();

// Publishes timeline_stats() as obs.timeline.events / obs.timeline.dropped /
// obs.timeline.threads gauges in the global metrics registry, so trace
// truncation is visible in every scrape — not just in the export footer.
void publish_timeline_metrics();

struct SpanStat {
  std::uint64_t count = 0;
  double total_seconds = 0.0;  // inclusive of nested spans
  double self_seconds = 0.0;   // exclusive: total minus direct children
};

struct SpanReport {
  std::vector<std::pair<std::string, SpanStat>> spans;  // sorted by name

  const SpanStat* find(const std::string& name) const;
  // Sum of self times = total traced wall time without double counting.
  double total_self_seconds() const;
};

// Merges every thread's span buffer (open spans are not included).
SpanReport collect_span_report();

// Clears all recorded spans on every thread; open spans still record when
// they close.
void reset_spans();

class TraceSpan {
 public:
  // The name is copied when the span opens; any lifetime works.
  explicit TraceSpan(const char* name);
  explicit TraceSpan(const std::string& name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* name);
  bool active_ = false;
};

}  // namespace hotspot::obs

#define HOTSPOT_TRACE_CONCAT_INNER(a, b) a##b
#define HOTSPOT_TRACE_CONCAT(a, b) HOTSPOT_TRACE_CONCAT_INNER(a, b)
// Times the enclosing scope under `name` (string literal or std::string).
#define HOTSPOT_TRACE_SPAN(name)                                     \
  ::hotspot::obs::TraceSpan HOTSPOT_TRACE_CONCAT(hotspot_trace_span_, \
                                                 __LINE__)(name)
