// Weighted axis-aligned decision trees: the weak learner for the SPIE'15
// AdaBoost baseline [11].
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hotspot::baselines {

// Binary tree over feature-threshold splits; labels are {-1,+1}.
class DecisionTree {
 public:
  // Fits a tree of at most `max_depth` levels to weighted samples.
  // `features` is [n, d]; `labels` in {-1,+1}; `weights` non-negative and
  // not all zero. `thresholds_per_feature` candidate cuts are taken at
  // value quantiles.
  void fit(const tensor::Tensor& features, const std::vector<int>& labels,
           const std::vector<double>& weights, int max_depth,
           int thresholds_per_feature = 16);

  // Predicted label in {-1,+1} for one row of a feature matrix.
  int predict_row(const tensor::Tensor& features, std::int64_t row) const;

  // Weighted training error of the fitted tree.
  double weighted_error(const tensor::Tensor& features,
                        const std::vector<int>& labels,
                        const std::vector<double>& weights) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    bool leaf = true;
    int label = 1;              // leaf payload
    std::int64_t feature = -1;  // split payload
    float threshold = 0.0f;
    std::int32_t left = -1;   // feature < threshold
    std::int32_t right = -1;  // feature >= threshold
  };

  std::int32_t build(const tensor::Tensor& features,
                     const std::vector<int>& labels,
                     const std::vector<double>& weights,
                     const std::vector<std::int64_t>& rows, int depth,
                     int thresholds_per_feature);

  std::vector<Node> nodes_;
};

}  // namespace hotspot::baselines
