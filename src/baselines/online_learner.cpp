#include "baselines/online_learner.h"

#include <cmath>

#include "features/mutual_information.h"
#include "util/check.h"

namespace hotspot::baselines {

void OnlineLearnerDetector::fit(const dataset::HotspotDataset& train,
                                util::Rng& rng) {
  const tensor::Tensor all_features =
      features::ccs_matrix(train, config_.ccs);
  const std::vector<int> labels = train.batch_labels(train.all_indices());

  // Information-theoretic feature optimization.
  const std::int64_t keep =
      std::min<std::int64_t>(config_.selected_features, all_features.dim(1));
  selected_ = features::select_top_features(all_features, labels, keep,
                                            config_.mi_bins);
  const tensor::Tensor matrix =
      features::project_columns(all_features, selected_);

  // Standardization statistics.
  const std::int64_t dims = matrix.dim(1);
  const std::int64_t n = matrix.dim(0);
  mean_.assign(static_cast<std::size_t>(dims), 0.0);
  stddev_.assign(static_cast<std::size_t>(dims), 0.0);
  for (std::int64_t c = 0; c < dims; ++c) {
    double total = 0.0;
    for (std::int64_t r = 0; r < n; ++r) {
      total += static_cast<double>(matrix.at2(r, c));
    }
    mean_[static_cast<std::size_t>(c)] = total / static_cast<double>(n);
    double variance = 0.0;
    for (std::int64_t r = 0; r < n; ++r) {
      const double d = static_cast<double>(matrix.at2(r, c)) -
                       mean_[static_cast<std::size_t>(c)];
      variance += d * d;
    }
    stddev_[static_cast<std::size_t>(c)] =
        std::sqrt(variance / static_cast<double>(n)) + 1e-9;
  }

  weights_.assign(static_cast<std::size_t>(dims) + 1, 0.0);

  // Online learning: stream samples in random order, several passes, with a
  // decaying rate.
  std::vector<std::size_t> order(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (int pass = 0; pass < config_.passes; ++pass) {
    rng.shuffle(order);
    const double rate =
        config_.learning_rate / (1.0 + 0.3 * static_cast<double>(pass));
    for (const auto row : order) {
      std::vector<double> x(static_cast<std::size_t>(dims));
      for (std::int64_t c = 0; c < dims; ++c) {
        x[static_cast<std::size_t>(c)] =
            (static_cast<double>(
                 matrix.at2(static_cast<std::int64_t>(row), c)) -
             mean_[static_cast<std::size_t>(c)]) /
            stddev_[static_cast<std::size_t>(c)];
      }
      update(x, labels[row], rate);
    }
  }
}

void OnlineLearnerDetector::update(const std::vector<double>& features,
                                   int label, double learning_rate) {
  HOTSPOT_CHECK_EQ(features.size() + 1, weights_.size());
  HOTSPOT_CHECK(label == 0 || label == 1) << "label " << label;
  const double probability = 1.0 / (1.0 + std::exp(-logit(features)));
  const double class_weight =
      label == 1 ? config_.hotspot_class_weight : 1.0;
  const double error =
      class_weight * (static_cast<double>(label) - probability);
  for (std::size_t i = 0; i < features.size(); ++i) {
    weights_[i] += learning_rate *
                   (error * features[i] - config_.l2 * weights_[i]);
  }
  weights_.back() += learning_rate * error;  // bias (no decay)
}

double OnlineLearnerDetector::logit(const std::vector<double>& features) const {
  double value = weights_.back();
  for (std::size_t i = 0; i < features.size(); ++i) {
    value += weights_[i] * features[i];
  }
  return value;
}

std::vector<double> OnlineLearnerDetector::transform_row(
    const tensor::Tensor& matrix, std::int64_t row) const {
  std::vector<double> x(mean_.size());
  for (std::size_t c = 0; c < mean_.size(); ++c) {
    x[c] = (static_cast<double>(
                matrix.at2(row, static_cast<std::int64_t>(c))) -
            mean_[c]) /
           stddev_[c];
  }
  return x;
}

std::vector<int> OnlineLearnerDetector::predict(
    const dataset::HotspotDataset& data) {
  HOTSPOT_CHECK(!weights_.empty()) << "predict() before fit()";
  const tensor::Tensor all_features = features::ccs_matrix(data, config_.ccs);
  const tensor::Tensor matrix =
      features::project_columns(all_features, selected_);
  std::vector<int> predictions;
  predictions.reserve(data.size());
  for (std::int64_t row = 0; row < matrix.dim(0); ++row) {
    predictions.push_back(logit(transform_row(matrix, row)) >= 0.0 ? 1 : 0);
  }
  return predictions;
}

}  // namespace hotspot::baselines
