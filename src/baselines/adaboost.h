// AdaBoost over weighted decision trees (Freund & Schapire; the SPIE'15
// hotspot detector's classifier [11]).
#pragma once

#include "baselines/decision_tree.h"

namespace hotspot::baselines {

struct AdaBoostConfig {
  int rounds = 40;
  int tree_depth = 2;
  int thresholds_per_feature = 16;
  // Decision bias added to the weighted vote before taking its sign;
  // positive values favour hotspot recall over false alarms.
  double decision_bias = 0.0;
};

class AdaBoost {
 public:
  explicit AdaBoost(const AdaBoostConfig& config) : config_(config) {}

  // labels in {-1,+1} (+1 = hotspot).
  void fit(const tensor::Tensor& features, const std::vector<int>& labels);

  // Real-valued ensemble margin for one row.
  double decision_value(const tensor::Tensor& features,
                        std::int64_t row) const;

  // {-1,+1} prediction: sign(margin + decision_bias).
  int predict_row(const tensor::Tensor& features, std::int64_t row) const;

  std::size_t round_count() const { return trees_.size(); }

 private:
  AdaBoostConfig config_;
  std::vector<DecisionTree> trees_;
  std::vector<double> stage_weights_;
};

}  // namespace hotspot::baselines
