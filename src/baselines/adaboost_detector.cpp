#include "baselines/adaboost_detector.h"

#include "features/density.h"

namespace hotspot::baselines {

void AdaBoostDetector::fit(const dataset::HotspotDataset& train,
                           util::Rng& /*rng*/) {
  const tensor::Tensor features =
      features::density_matrix(train, config_.density_grid);
  std::vector<int> labels;  // {0,1} -> {-1,+1}
  labels.reserve(train.size());
  for (const int label : train.batch_labels(train.all_indices())) {
    labels.push_back(label == 1 ? 1 : -1);
  }
  model_ = AdaBoost(config_.boost);
  model_.fit(features, labels);
}

std::vector<int> AdaBoostDetector::predict(
    const dataset::HotspotDataset& data) {
  const tensor::Tensor features =
      features::density_matrix(data, config_.density_grid);
  std::vector<int> predictions;
  predictions.reserve(data.size());
  for (std::int64_t row = 0; row < features.dim(0); ++row) {
    predictions.push_back(model_.predict_row(features, row) == 1 ? 1 : 0);
  }
  return predictions;
}

}  // namespace hotspot::baselines
