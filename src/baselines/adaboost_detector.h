// SPIE'15 baseline [11]: AdaBoost over decision trees on simplified
// (local-density) features.
#pragma once

#include "baselines/adaboost.h"
#include "eval/detector.h"

namespace hotspot::baselines {

struct AdaBoostDetectorConfig {
  std::int64_t density_grid = 8;  // g x g density cells
  AdaBoostConfig boost;
};

class AdaBoostDetector : public eval::Detector {
 public:
  explicit AdaBoostDetector(const AdaBoostDetectorConfig& config)
      : config_(config), model_(config.boost) {}

  std::string name() const override { return "SPIE'15 (AdaBoost)"; }
  void fit(const dataset::HotspotDataset& train, util::Rng& rng) override;
  std::vector<int> predict(const dataset::HotspotDataset& data) override;

 private:
  AdaBoostDetectorConfig config_;
  AdaBoost model_;
};

}  // namespace hotspot::baselines
