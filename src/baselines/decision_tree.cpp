#include "baselines/decision_tree.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace hotspot::baselines {
namespace {

// Weighted majority label over the given rows.
int majority(const std::vector<int>& labels,
             const std::vector<double>& weights,
             const std::vector<std::int64_t>& rows) {
  double balance = 0.0;
  for (const auto row : rows) {
    balance += weights[static_cast<std::size_t>(row)] *
               static_cast<double>(labels[static_cast<std::size_t>(row)]);
  }
  return balance >= 0.0 ? 1 : -1;
}

}  // namespace

void DecisionTree::fit(const tensor::Tensor& features,
                       const std::vector<int>& labels,
                       const std::vector<double>& weights, int max_depth,
                       int thresholds_per_feature) {
  HOTSPOT_CHECK_EQ(features.rank(), 2);
  HOTSPOT_CHECK_EQ(static_cast<std::int64_t>(labels.size()), features.dim(0));
  HOTSPOT_CHECK_EQ(labels.size(), weights.size());
  HOTSPOT_CHECK_GT(max_depth, 0);
  HOTSPOT_CHECK_GT(thresholds_per_feature, 0);
  for (const int label : labels) {
    HOTSPOT_CHECK(label == -1 || label == 1) << "label " << label;
  }
  nodes_.clear();
  std::vector<std::int64_t> rows(static_cast<std::size_t>(features.dim(0)));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<std::int64_t>(i);
  }
  build(features, labels, weights, rows, max_depth, thresholds_per_feature);
}

std::int32_t DecisionTree::build(const tensor::Tensor& features,
                                 const std::vector<int>& labels,
                                 const std::vector<double>& weights,
                                 const std::vector<std::int64_t>& rows,
                                 int depth, int thresholds_per_feature) {
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(index)].label =
      majority(labels, weights, rows);

  if (depth == 0 || rows.size() < 2) {
    return index;
  }

  // Exhaustive search over (feature, quantile threshold) for the split
  // minimizing weighted misclassification of two majority-labelled halves.
  const std::int64_t dims = features.dim(1);
  double best_error = std::numeric_limits<double>::infinity();
  std::int64_t best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<float> values(rows.size());
  for (std::int64_t f = 0; f < dims; ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      values[i] = features.at2(rows[i], f);
    }
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) {
      continue;  // constant on these rows
    }
    for (int t = 1; t <= thresholds_per_feature; ++t) {
      const auto pick = static_cast<std::size_t>(
          static_cast<double>(values.size()) * t /
          (thresholds_per_feature + 1));
      const float threshold = values[std::min(pick, values.size() - 1)];
      // Weighted label balance on each side.
      double left_pos = 0.0, left_neg = 0.0, right_pos = 0.0, right_neg = 0.0;
      for (const auto row : rows) {
        const double w = weights[static_cast<std::size_t>(row)];
        const bool positive = labels[static_cast<std::size_t>(row)] == 1;
        if (features.at2(row, f) < threshold) {
          (positive ? left_pos : left_neg) += w;
        } else {
          (positive ? right_pos : right_neg) += w;
        }
      }
      if (left_pos + left_neg == 0.0 || right_pos + right_neg == 0.0) {
        continue;
      }
      const double error = std::min(left_pos, left_neg) +
                           std::min(right_pos, right_neg);
      if (error < best_error) {
        best_error = error;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) {
    return index;  // no useful split found; stay a leaf
  }

  std::vector<std::int64_t> left_rows;
  std::vector<std::int64_t> right_rows;
  for (const auto row : rows) {
    (features.at2(row, best_feature) < best_threshold ? left_rows
                                                      : right_rows)
        .push_back(row);
  }
  if (left_rows.empty() || right_rows.empty()) {
    return index;
  }

  const std::int32_t left = build(features, labels, weights, left_rows,
                                  depth - 1, thresholds_per_feature);
  const std::int32_t right = build(features, labels, weights, right_rows,
                                   depth - 1, thresholds_per_feature);
  Node& node = nodes_[static_cast<std::size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

int DecisionTree::predict_row(const tensor::Tensor& features,
                              std::int64_t row) const {
  HOTSPOT_CHECK(fitted()) << "predict on an unfitted tree";
  std::int32_t at = 0;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(at)];
    if (node.leaf) {
      return node.label;
    }
    at = features.at2(row, node.feature) < node.threshold ? node.left
                                                          : node.right;
  }
}

double DecisionTree::weighted_error(const tensor::Tensor& features,
                                    const std::vector<int>& labels,
                                    const std::vector<double>& weights) const {
  double error = 0.0;
  for (std::int64_t row = 0; row < features.dim(0); ++row) {
    if (predict_row(features, row) !=
        labels[static_cast<std::size_t>(row)]) {
      error += weights[static_cast<std::size_t>(row)];
    }
  }
  return error;
}

}  // namespace hotspot::baselines
