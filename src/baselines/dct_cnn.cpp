#include "baselines/dct_cnn.h"

#include "nn/activation_layers.h"
#include "nn/batchnorm_layer.h"
#include "nn/conv_layer.h"
#include "nn/linear_layer.h"
#include "nn/pool_layers.h"
#include "util/check.h"

namespace hotspot::baselines {

DctCnnConfig DctCnnConfig::compact(std::int64_t image_size) {
  DctCnnConfig config;
  // Keep the DCT tile grid at image_size/block tiles; block 4 on 32px clips
  // mirrors DAC'17's 12x12x32 tensor proportions at CI scale.
  config.dct.block = 4;
  config.dct.coefficients = 8;
  config.trainer.epochs = 10;
  config.trainer.finetune_epochs = 2;  // deep biased learning
  config.trainer.learning_rate = 0.002f;
  config.trainer.hotspot_oversample = 4;
  config.trainer.augment = false;  // DCT tensors are not flip-covariant
  (void)image_size;
  return config;
}

core::BatchBuilder DctCnnDetector::dct_builder() const {
  const features::DctTensorSpec spec = config_.dct;
  return [spec](const dataset::HotspotDataset& data,
                const std::vector<std::size_t>& indices,
                util::Rng* /*augment_rng*/) {
    return features::dct_feature_batch(data, indices, spec);
  };
}

void DctCnnDetector::fit(const dataset::HotspotDataset& train,
                         util::Rng& rng) {
  HOTSPOT_CHECK_EQ(train.image_size() % config_.dct.block, 0)
      << "image size must tile by the DCT block";
  const std::int64_t tiles = train.image_size() / config_.dct.block;
  HOTSPOT_CHECK_GE(tiles, 4) << "DCT tile grid too small for two pool stages";

  util::Rng init_rng = rng.fork(0x444354);
  net_.emplace();
  // Stage 1: two 3x3 convs + pool (DAC'17's paired-conv stage).
  net_->emplace<nn::Conv2d>(config_.dct.coefficients, config_.stage1_channels,
                            3, 1, 1, /*with_bias=*/false, init_rng);
  net_->emplace<nn::BatchNorm2d>(config_.stage1_channels);
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Conv2d>(config_.stage1_channels, config_.stage1_channels,
                            3, 1, 1, /*with_bias=*/false, init_rng);
  net_->emplace<nn::BatchNorm2d>(config_.stage1_channels);
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::MaxPool2d>(2);
  // Stage 2.
  net_->emplace<nn::Conv2d>(config_.stage1_channels, config_.stage2_channels,
                            3, 1, 1, /*with_bias=*/false, init_rng);
  net_->emplace<nn::BatchNorm2d>(config_.stage2_channels);
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Conv2d>(config_.stage2_channels, config_.stage2_channels,
                            3, 1, 1, /*with_bias=*/false, init_rng);
  net_->emplace<nn::BatchNorm2d>(config_.stage2_channels);
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::MaxPool2d>(2);
  // Head.
  const std::int64_t flat =
      config_.stage2_channels * (tiles / 4) * (tiles / 4);
  net_->emplace<nn::Flatten>();
  net_->emplace<nn::Linear>(flat, config_.fc_hidden, /*with_bias=*/true,
                            init_rng);
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Linear>(config_.fc_hidden, 2, /*with_bias=*/true,
                            init_rng);

  core::TrainerConfig trainer_config = config_.trainer;
  trainer_config.seed = rng.next_u64();
  core::Trainer trainer(*net_, trainer_config, dct_builder());
  trainer.train(train);
}

std::vector<int> DctCnnDetector::predict(const dataset::HotspotDataset& data) {
  HOTSPOT_CHECK(net_.has_value()) << "predict() before fit()";
  const int batch = config_.inference_batch_size > 0
                        ? config_.inference_batch_size
                        : config_.trainer.batch_size;
  return core::predict_labels(*net_, data, batch, dct_builder());
}

nn::Sequential& DctCnnDetector::network() {
  HOTSPOT_CHECK(net_.has_value()) << "network() before fit()";
  return *net_;
}

}  // namespace hotspot::baselines
