#include "baselines/adaboost.h"

#include <cmath>

#include "util/check.h"

namespace hotspot::baselines {

void AdaBoost::fit(const tensor::Tensor& features,
                   const std::vector<int>& labels) {
  HOTSPOT_CHECK_EQ(features.rank(), 2);
  const auto n = static_cast<std::size_t>(features.dim(0));
  HOTSPOT_CHECK_EQ(labels.size(), n);
  HOTSPOT_CHECK_GT(n, 0u);
  trees_.clear();
  stage_weights_.clear();

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  for (int round = 0; round < config_.rounds; ++round) {
    DecisionTree tree;
    tree.fit(features, labels, weights, config_.tree_depth,
             config_.thresholds_per_feature);
    const double error = tree.weighted_error(features, labels, weights);
    if (error >= 0.5) {
      break;  // weak learner no better than chance; boosting is done
    }
    constexpr double kFloor = 1e-10;
    const double alpha =
        0.5 * std::log((1.0 - error + kFloor) / (error + kFloor));
    // Re-weight: mistakes up, hits down, renormalize.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const int predicted =
          tree.predict_row(features, static_cast<std::int64_t>(i));
      weights[i] *= std::exp(-alpha * labels[i] * predicted);
      total += weights[i];
    }
    HOTSPOT_CHECK_GT(total, 0.0);
    for (auto& w : weights) {
      w /= total;
    }
    trees_.push_back(std::move(tree));
    stage_weights_.push_back(alpha);
    if (error <= kFloor) {
      break;  // perfect weak learner; further rounds add nothing
    }
  }
  HOTSPOT_CHECK(!trees_.empty()) << "no usable weak learner found";
}

double AdaBoost::decision_value(const tensor::Tensor& features,
                                std::int64_t row) const {
  HOTSPOT_CHECK(!trees_.empty()) << "decision_value on an unfitted model";
  double margin = 0.0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    margin += stage_weights_[t] *
              static_cast<double>(trees_[t].predict_row(features, row));
  }
  return margin;
}

int AdaBoost::predict_row(const tensor::Tensor& features,
                          std::int64_t row) const {
  return decision_value(features, row) + config_.decision_bias >= 0.0 ? 1
                                                                      : -1;
}

}  // namespace hotspot::baselines
