// DAC'17 baseline [16]: a full-precision CNN over DCT feature tensors with
// deep biased learning. This is the "best deep learning-based solution" the
// paper claims an 8x inference speedup over; its convolutions run in float
// arithmetic on the same substrate as the BNN's float-sim path.
#pragma once

#include <optional>

#include "core/trainer.h"
#include "eval/detector.h"
#include "features/dct_tensor.h"
#include "nn/sequential.h"

namespace hotspot::baselines {

struct DctCnnConfig {
  features::DctTensorSpec dct;
  // Channel widths of the two conv stages (DAC'17 uses paired 3x3 conv
  // layers per stage).
  std::int64_t stage1_channels = 32;
  std::int64_t stage2_channels = 64;
  std::int64_t fc_hidden = 64;
  core::TrainerConfig trainer;
  // Batch size used by predict(). Mirrors BnnDetectorConfig: inference
  // batches are larger than training batches so the Table-3 runtime
  // comparison measures both detectors under the same batching policy;
  // 0 falls back to trainer.batch_size.
  int inference_batch_size = 64;

  static DctCnnConfig compact(std::int64_t image_size);
};

class DctCnnDetector : public eval::Detector {
 public:
  explicit DctCnnDetector(const DctCnnConfig& config) : config_(config) {}

  std::string name() const override { return "DAC'17 (DCT+CNN)"; }
  void fit(const dataset::HotspotDataset& train, util::Rng& rng) override;
  std::vector<int> predict(const dataset::HotspotDataset& data) override;

  // Available after fit().
  nn::Sequential& network();

 private:
  core::BatchBuilder dct_builder() const;

  DctCnnConfig config_;
  std::optional<nn::Sequential> net_;
};

}  // namespace hotspot::baselines
