// ICCAD'16 baseline [14]: concentric-circle-sampling features optimized by
// mutual information, classified by an online (streaming SGD) logistic
// learner with class-weighted updates.
#pragma once

#include "eval/detector.h"
#include "features/ccs.h"

namespace hotspot::baselines {

struct OnlineLearnerConfig {
  features::CcsSpec ccs;
  std::int64_t selected_features = 32;  // MI-selected subset size
  int mi_bins = 16;
  int passes = 12;            // streaming passes over the training set
  double learning_rate = 0.05;
  double l2 = 1e-4;
  double hotspot_class_weight = 4.0;  // imbalance compensation
};

class OnlineLearnerDetector : public eval::Detector {
 public:
  explicit OnlineLearnerDetector(const OnlineLearnerConfig& config)
      : config_(config) {}

  std::string name() const override { return "ICCAD'16 (CCS+online)"; }
  void fit(const dataset::HotspotDataset& train, util::Rng& rng) override;
  std::vector<int> predict(const dataset::HotspotDataset& data) override;

  // Streaming update on one (already selected/standardized) feature vector;
  // exposed so tests can drive the online protocol directly.
  void update(const std::vector<double>& features, int label,
              double learning_rate);

  const std::vector<std::int64_t>& selected_columns() const {
    return selected_;
  }

 private:
  // Applies MI selection + standardization fitted during fit().
  std::vector<double> transform_row(const tensor::Tensor& matrix,
                                    std::int64_t row) const;
  double logit(const std::vector<double>& features) const;

  OnlineLearnerConfig config_;
  std::vector<std::int64_t> selected_;
  std::vector<double> mean_;
  std::vector<double> stddev_;
  std::vector<double> weights_;  // selected dims + bias at the back
};

}  // namespace hotspot::baselines
