#include "optim/adam.h"

#include <cmath>

#include "util/check.h"

namespace hotspot::optim {

Adam::Adam(std::vector<nn::Parameter*> params, float learning_rate,
           float beta1, float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(params), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  HOTSPOT_CHECK(beta1 >= 0.0f && beta1 < 1.0f) << "beta1=" << beta1;
  HOTSPOT_CHECK(beta2 >= 0.0f && beta2 < 1.0f) << "beta2=" << beta2;
  HOTSPOT_CHECK_GT(epsilon, 0.0f);
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const nn::Parameter* param : params_) {
    first_moment_.emplace_back(param->value.shape());
    second_moment_.emplace_back(param->value.shape());
  }
}

OptimizerState Adam::state() {
  OptimizerState snapshot = Optimizer::state();
  snapshot.slots.reserve(2 * params_.size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    snapshot.slots.push_back({"adam.m." + std::to_string(p), &first_moment_[p]});
    snapshot.slots.push_back(
        {"adam.v." + std::to_string(p), &second_moment_[p]});
  }
  return snapshot;
}

void Adam::step() {
  const auto t = static_cast<double>(step_count_ + 1);
  const double bias1 = 1.0 - std::pow(static_cast<double>(beta1_), t);
  const double bias2 = 1.0 - std::pow(static_cast<double>(beta2_), t);
  for (std::size_t p = 0; p < params_.size(); ++p) {
    nn::Parameter& param = *params_[p];
    tensor::Tensor& m = first_moment_[p];
    tensor::Tensor& v = second_moment_[p];
    for (std::int64_t i = 0; i < param.value.numel(); ++i) {
      const float grad = param.grad[i] + weight_decay_ * param.value[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const double m_hat = static_cast<double>(m[i]) / bias1;
      const double v_hat = static_cast<double>(v[i]) / bias2;
      param.value[i] -= static_cast<float>(
          static_cast<double>(learning_rate_) * m_hat /
          (std::sqrt(v_hat) + static_cast<double>(epsilon_)));
    }
  }
  finish_step();
}

}  // namespace hotspot::optim
