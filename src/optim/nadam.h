// NAdam: Adam with Nesterov momentum (Dozat, 2016). This is the optimizer
// the paper trains with (Sec. 3.4.2).
#pragma once

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hotspot::optim {

class NAdam : public Optimizer {
 public:
  NAdam(std::vector<nn::Parameter*> params, float learning_rate,
        float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
        float weight_decay = 0.0f);

  void step() override;

  // Appends the first/second moment estimates as "nadam.m.<i>" /
  // "nadam.v.<i>" slots so checkpoints can freeze and resume the update
  // rule bit-for-bit.
  OptimizerState state() override;

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  std::vector<tensor::Tensor> first_moment_;
  std::vector<tensor::Tensor> second_moment_;
};

}  // namespace hotspot::optim
