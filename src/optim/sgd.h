// Stochastic gradient descent with optional (Nesterov) momentum and weight
// decay.
#pragma once

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hotspot::optim {

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter*> params, float learning_rate,
      float momentum = 0.0f, bool nesterov = false, float weight_decay = 0.0f);

  void step() override;

  // Momentum velocities as "sgd.v.<i>" checkpoint slots (empty when
  // momentum is disabled).
  OptimizerState state() override;

 private:
  float momentum_;
  bool nesterov_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

}  // namespace hotspot::optim
