#include "optim/lr_scheduler.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace hotspot::optim {

PlateauDecay::PlateauDecay(Optimizer& optimizer, float factor, int patience,
                           double min_delta, float min_lr)
    : optimizer_(optimizer),
      factor_(factor),
      patience_(patience),
      min_delta_(min_delta),
      min_lr_(min_lr),
      best_metric_(std::numeric_limits<double>::infinity()) {
  HOTSPOT_CHECK(factor > 0.0f && factor < 1.0f) << "factor=" << factor;
  HOTSPOT_CHECK_GE(patience, 0);
}

bool PlateauDecay::observe(double validation_metric) {
  if (validation_metric < best_metric_ - min_delta_) {
    best_metric_ = validation_metric;
    stall_count_ = 0;
    return false;
  }
  ++stall_count_;
  if (stall_count_ <= patience_) {
    return false;
  }
  stall_count_ = 0;
  const float decayed = optimizer_.learning_rate() * factor_;
  optimizer_.set_learning_rate(decayed < min_lr_ ? min_lr_ : decayed);
  return true;
}

void PlateauDecay::load_state(const State& state) {
  HOTSPOT_CHECK_GE(state.stall_count, 0);
  best_metric_ = state.best_metric;
  stall_count_ = state.stall_count;
}

StepDecay::StepDecay(Optimizer& optimizer, int step_epochs, float gamma)
    : optimizer_(optimizer),
      initial_lr_(optimizer.learning_rate()),
      step_epochs_(step_epochs),
      gamma_(gamma) {
  HOTSPOT_CHECK_GT(step_epochs, 0);
  HOTSPOT_CHECK(gamma > 0.0f && gamma <= 1.0f) << "gamma=" << gamma;
}

void StepDecay::observe_epoch(int epoch) {
  HOTSPOT_CHECK_GE(epoch, 0);
  const auto exponent = static_cast<float>(epoch / step_epochs_);
  optimizer_.set_learning_rate(initial_lr_ *
                               std::pow(gamma_, exponent));
}

}  // namespace hotspot::optim
