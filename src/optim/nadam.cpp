#include "optim/nadam.h"

#include <cmath>

#include "util/check.h"

namespace hotspot::optim {

NAdam::NAdam(std::vector<nn::Parameter*> params, float learning_rate,
             float beta1, float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(params), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  HOTSPOT_CHECK(beta1 >= 0.0f && beta1 < 1.0f) << "beta1=" << beta1;
  HOTSPOT_CHECK(beta2 >= 0.0f && beta2 < 1.0f) << "beta2=" << beta2;
  HOTSPOT_CHECK_GT(epsilon, 0.0f);
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const nn::Parameter* param : params_) {
    first_moment_.emplace_back(param->value.shape());
    second_moment_.emplace_back(param->value.shape());
  }
}

OptimizerState NAdam::state() {
  OptimizerState snapshot = Optimizer::state();
  snapshot.slots.reserve(2 * params_.size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    snapshot.slots.push_back(
        {"nadam.m." + std::to_string(p), &first_moment_[p]});
    snapshot.slots.push_back(
        {"nadam.v." + std::to_string(p), &second_moment_[p]});
  }
  return snapshot;
}

void NAdam::step() {
  const auto t = static_cast<double>(step_count_ + 1);
  const double b1 = static_cast<double>(beta1_);
  const double b2 = static_cast<double>(beta2_);
  const double bias1 = 1.0 - std::pow(b1, t);
  const double bias1_next = 1.0 - std::pow(b1, t + 1.0);
  const double bias2 = 1.0 - std::pow(b2, t);
  for (std::size_t p = 0; p < params_.size(); ++p) {
    nn::Parameter& param = *params_[p];
    tensor::Tensor& m = first_moment_[p];
    tensor::Tensor& v = second_moment_[p];
    for (std::int64_t i = 0; i < param.value.numel(); ++i) {
      const double grad =
          static_cast<double>(param.grad[i]) +
          static_cast<double>(weight_decay_) * static_cast<double>(param.value[i]);
      m[i] = static_cast<float>(b1 * static_cast<double>(m[i]) + (1.0 - b1) * grad);
      v[i] = static_cast<float>(b2 * static_cast<double>(v[i]) +
                                (1.0 - b2) * grad * grad);
      // Nesterov look-ahead: blend the bias-corrected next-step momentum
      // with the current gradient (Dozat Eq. 7).
      const double m_hat = static_cast<double>(m[i]) / bias1_next;
      const double g_hat = grad / bias1;
      const double m_bar = b1 * m_hat + (1.0 - b1) * g_hat;
      const double v_hat = static_cast<double>(v[i]) / bias2;
      param.value[i] -= static_cast<float>(
          static_cast<double>(learning_rate_) * m_bar /
          (std::sqrt(v_hat) + static_cast<double>(epsilon_)));
    }
  }
  finish_step();
}

}  // namespace hotspot::optim
