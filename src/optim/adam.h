// Adam optimizer (Kingma & Ba).
#pragma once

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hotspot::optim {

class Adam : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter*> params, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void step() override;

  // Moment estimates as "adam.m.<i>" / "adam.v.<i>" checkpoint slots.
  OptimizerState state() override;

 protected:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  std::vector<tensor::Tensor> first_moment_;
  std::vector<tensor::Tensor> second_moment_;
};

}  // namespace hotspot::optim
