#include "optim/sgd.h"

#include "util/check.h"

namespace hotspot::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, float learning_rate,
         float momentum, bool nesterov, float weight_decay)
    : Optimizer(std::move(params), learning_rate),
      momentum_(momentum),
      nesterov_(nesterov),
      weight_decay_(weight_decay) {
  HOTSPOT_CHECK_GE(momentum, 0.0f);
  HOTSPOT_CHECK(!nesterov || momentum > 0.0f)
      << "Nesterov momentum needs momentum > 0";
  velocity_.reserve(params_.size());
  for (const nn::Parameter* param : params_) {
    velocity_.emplace_back(param->value.shape());
  }
}

OptimizerState Sgd::state() {
  OptimizerState snapshot = Optimizer::state();
  if (momentum_ > 0.0f) {
    snapshot.slots.reserve(params_.size());
    for (std::size_t p = 0; p < params_.size(); ++p) {
      snapshot.slots.push_back({"sgd.v." + std::to_string(p), &velocity_[p]});
    }
  }
  return snapshot;
}

void Sgd::step() {
  for (std::size_t p = 0; p < params_.size(); ++p) {
    nn::Parameter& param = *params_[p];
    tensor::Tensor& vel = velocity_[p];
    for (std::int64_t i = 0; i < param.value.numel(); ++i) {
      float grad = param.grad[i] + weight_decay_ * param.value[i];
      if (momentum_ > 0.0f) {
        vel[i] = momentum_ * vel[i] + grad;
        grad = nesterov_ ? grad + momentum_ * vel[i] : vel[i];
      }
      param.value[i] -= learning_rate_ * grad;
    }
  }
  finish_step();
}

}  // namespace hotspot::optim
