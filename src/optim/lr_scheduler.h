// Learning-rate schedules.
//
// The paper (Sec. 3.4.2, following Inception-v3 practice) decays the rate
// exponentially each time the validation loss plateaus after an epoch;
// PlateauDecay implements exactly that. Step and exponential schedules are
// provided for the baselines.
#pragma once

#include "optim/optimizer.h"

namespace hotspot::optim {

// Multiplies the LR by `factor` whenever the monitored metric has not
// improved by at least `min_delta` for `patience` consecutive epochs.
class PlateauDecay {
 public:
  PlateauDecay(Optimizer& optimizer, float factor, int patience,
               double min_delta = 1e-4, float min_lr = 1e-6f);

  // Reports one epoch's validation metric (lower is better). Returns true
  // when a decay was applied this call.
  bool observe(double validation_metric);

  int epochs_since_improvement() const { return stall_count_; }
  double best_metric() const { return best_metric_; }

  // Checkpointable progress (the LR itself lives in the optimizer state).
  struct State {
    double best_metric = 0.0;
    int stall_count = 0;
  };
  State state() const { return {best_metric_, stall_count_}; }
  void load_state(const State& state);

 private:
  Optimizer& optimizer_;
  float factor_;
  int patience_;
  double min_delta_;
  float min_lr_;
  double best_metric_;
  int stall_count_ = 0;
};

// lr(epoch) = lr0 * gamma^floor(epoch / step).
class StepDecay {
 public:
  StepDecay(Optimizer& optimizer, int step_epochs, float gamma);

  void observe_epoch(int epoch);

 private:
  Optimizer& optimizer_;
  float initial_lr_;
  int step_epochs_;
  float gamma_;
};

}  // namespace hotspot::optim
