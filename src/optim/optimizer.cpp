#include "optim/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace hotspot::optim {

Optimizer::Optimizer(std::vector<nn::Parameter*> params, float learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {
  HOTSPOT_CHECK(!params_.empty()) << "optimizer needs parameters";
  HOTSPOT_CHECK_GT(learning_rate, 0.0f);
}

void Optimizer::finish_step() {
  for (nn::Parameter* param : params_) {
    param->bump_version();
  }
  ++step_count_;
}

void Optimizer::zero_grad() {
  for (nn::Parameter* param : params_) {
    param->zero_grad();
  }
}

double Optimizer::grad_norm() const {
  double total = 0.0;
  for (const nn::Parameter* param : params_) {
    for (std::int64_t i = 0; i < param->grad.numel(); ++i) {
      const auto g = static_cast<double>(param->grad[i]);
      total += g * g;
    }
  }
  return std::sqrt(total);
}

void Optimizer::scale_gradients(float scale) {
  for (nn::Parameter* param : params_) {
    for (std::int64_t i = 0; i < param->grad.numel(); ++i) {
      param->grad[i] *= scale;
    }
  }
}

void Optimizer::clip_grad_norm(double max_norm) {
  HOTSPOT_CHECK_GT(max_norm, 0.0);
  const double norm = grad_norm();
  if (norm <= max_norm) {
    return;
  }
  scale_gradients(static_cast<float>(max_norm / norm));
}

OptimizerState Optimizer::state() {
  OptimizerState snapshot;
  snapshot.step_count = step_count_;
  snapshot.learning_rate = learning_rate_;
  return snapshot;
}

void Optimizer::load_state(const OptimizerState& snapshot) {
  HOTSPOT_CHECK_GE(snapshot.step_count, 0);
  HOTSPOT_CHECK_GT(snapshot.learning_rate, 0.0f);
  step_count_ = snapshot.step_count;
  learning_rate_ = snapshot.learning_rate;
}

}  // namespace hotspot::optim
