// Optimizer interface: updates a fixed set of parameters from their
// accumulated gradients. The paper trains with mini-batch gradient descent
// driven by NAdam (Sec. 3.3 / 3.4.2); SGD and Adam are provided for the
// baselines and ablations.
#pragma once

#include <vector>

#include "nn/module.h"

namespace hotspot::optim {

// Checkpointable optimizer state. `slots` are named views into the
// optimizer's live auxiliary tensors (moment estimates, velocities, ...):
// serializing a snapshot writes through the views, and loading an archive
// into the same views restores the tensors in place. The scalar counters
// travel separately (in the checkpoint's metadata blob) and are applied via
// load_state().
struct OptimizerState {
  std::int64_t step_count = 0;
  float learning_rate = 0.0f;
  std::vector<nn::NamedTensor> slots;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params, float learning_rate);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the current .grad fields, then increments the
  // step counter. Does not zero gradients; the trainer owns that.
  virtual void step() = 0;

  void zero_grad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  std::int64_t step_count() const { return step_count_; }

  // L2 norm over all parameter gradients. NaN/Inf gradients propagate into
  // the result, which is what the trainer's numeric-health guard keys on.
  double grad_norm() const;

  // Multiplies every gradient by `scale` (norm clipping, loss scaling).
  void scale_gradients(float scale);

  // Global L2 gradient-norm clipping; no-op when the norm is under
  // `max_norm`.
  void clip_grad_norm(double max_norm);

  // Snapshot of counters plus views of the auxiliary tensors, for
  // checkpointing. Subclasses with per-parameter buffers override state()
  // to append their slots in a stable order.
  virtual OptimizerState state();

  // Restores the counters from a snapshot. Slot tensors are restored in
  // place by deserializing through the views returned by state(), so this
  // only applies the scalars.
  virtual void load_state(const OptimizerState& snapshot);

 protected:
  // Called by step() implementations after applying the update: advances the
  // step counter and bumps every parameter's version so weight-derived
  // caches (e.g. packed binary filters) know to refresh.
  void finish_step();

  std::vector<nn::Parameter*> params_;
  float learning_rate_;
  std::int64_t step_count_ = 0;
};

}  // namespace hotspot::optim
