// Optimizer interface: updates a fixed set of parameters from their
// accumulated gradients. The paper trains with mini-batch gradient descent
// driven by NAdam (Sec. 3.3 / 3.4.2); SGD and Adam are provided for the
// baselines and ablations.
#pragma once

#include <vector>

#include "nn/module.h"

namespace hotspot::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params, float learning_rate);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the current .grad fields, then increments the
  // step counter. Does not zero gradients; the trainer owns that.
  virtual void step() = 0;

  void zero_grad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  std::int64_t step_count() const { return step_count_; }

  // Global L2 gradient-norm clipping; no-op when the norm is under
  // `max_norm`.
  void clip_grad_norm(double max_norm);

 protected:
  // Called by step() implementations after applying the update: advances the
  // step counter and bumps every parameter's version so weight-derived
  // caches (e.g. packed binary filters) know to refresh.
  void finish_step();

  std::vector<nn::Parameter*> params_;
  float learning_rate_;
  std::int64_t step_count_ = 0;
};

}  // namespace hotspot::optim
