// Analytic cost model of a BRNN configuration.
//
// Computes, per binary convolution and for the whole network, the work and
// storage of the two execution strategies:
//   float:  32-bit MACs and 4-byte weights (what a conventional framework
//           executes, and what the DAC'17 baseline pays),
//   packed: XNOR+popcount word operations, float epilogue ops (alpha
//           scaling), and 1-bit weights.
// This is the arithmetic behind Fig. 1's "32 bit vs 1 bit" contrast,
// independent of any machine: the measured counterpart is
// bench_fig1_binarization_speed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/brnn.h"

namespace hotspot::core {

struct LayerCost {
  std::string name;
  std::int64_t output_positions = 0;  // outH * outW
  std::int64_t float_macs = 0;        // Cout * positions * Cin * k * k
  std::int64_t packed_word_ops = 0;   // XOR+popcount words
  std::int64_t packed_float_ops = 0;  // alpha epilogue + scale gathers
  std::int64_t float_weight_bytes = 0;
  std::int64_t packed_weight_bytes = 0;
};

struct NetworkCost {
  std::vector<LayerCost> layers;
  std::int64_t float_macs = 0;
  std::int64_t packed_word_ops = 0;
  std::int64_t packed_float_ops = 0;
  std::int64_t float_weight_bytes = 0;
  std::int64_t packed_weight_bytes = 0;

  // MACs per word-op: the ideal arithmetic reduction of binarization
  // (64 binary MACs per XOR+popcount pair).
  double arithmetic_reduction() const;
  // Weight storage ratio (the Fig. 1 "32 bit float -> 1 bit" axis).
  double storage_reduction() const;
};

// Costs of a single binary convolution at the given input resolution.
LayerCost binary_conv_cost(std::int64_t in_channels, std::int64_t out_channels,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, std::int64_t in_h,
                           std::int64_t in_w, bitops::InputScaling scaling);

// Whole-network cost for a configuration (stem + blocks + shortcuts),
// following the same construction as BrnnModel.
NetworkCost network_cost(const BrnnConfig& config);

}  // namespace hotspot::core
