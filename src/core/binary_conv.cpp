#include "core/binary_conv.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "core/packed_conv.h"
#include "nn/init.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"

namespace hotspot::core {

using tensor::Tensor;

BinaryConv2d::BinaryConv2d(std::int64_t in_channels, std::int64_t out_channels,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, bitops::InputScaling scaling,
                           util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      spec_{kernel, kernel, stride, pad},
      scaling_(scaling) {
  HOTSPOT_CHECK_GT(in_channels, 0);
  HOTSPOT_CHECK_GT(out_channels, 0);
  HOTSPOT_CHECK_LE(kernel * kernel, 64)
      << "packed per-channel path needs kh*kw <= 64";
  const tensor::Shape weight_shape{out_channels, in_channels, kernel, kernel};
  const auto [fan_in, fan_out] = nn::compute_fans(weight_shape);
  weight_ = nn::Parameter(
      "weight", nn::xavier_uniform(weight_shape, fan_in, fan_out, rng));
}

Tensor BinaryConv2d::forward(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(input.dim(1), in_channels_);
  if (!span_label_.empty() && obs::trace_enabled()) {
    obs::TraceSpan span(span_label_);
    profile_samples_.fetch_add(static_cast<std::uint64_t>(input.dim(0)),
                               std::memory_order_relaxed);
    return forward_dispatch(input);
  }
  return forward_dispatch(input);
}

Tensor BinaryConv2d::forward_dispatch(const Tensor& input) {
  if (!training_ && backend_ == Backend::kPacked) {
    return forward_packed(input);
  }
  return forward_float_sim(input);
}

Tensor BinaryConv2d::forward_float_sim(const Tensor& input) {
  cached_input_ = input;
  const std::int64_t n = input.dim(0);
  const std::int64_t out_h = tensor::conv_out_extent(
      input.dim(2), spec_.kernel_h, spec_.stride, spec_.pad);
  const std::int64_t out_w = tensor::conv_out_extent(
      input.dim(3), spec_.kernel_w, spec_.stride, spec_.pad);
  const std::int64_t positions = out_h * out_w;
  const std::int64_t patch = in_channels_ * spec_.kernel_h * spec_.kernel_w;

  // W~ rows: alpha_W(co) * sign(W row).
  cached_alpha_w_ = bitops::weight_scales(weight_.value);
  const Tensor wmat = weight_.value.reshaped({out_channels_, patch});
  cached_weight_tilde_ = Tensor({out_channels_, patch});
  util::parallel_for(0, out_channels_, /*grain=*/1, [&](std::int64_t co_lo,
                                                        std::int64_t co_hi) {
    for (std::int64_t co = co_lo; co < co_hi; ++co) {
      const float alpha = cached_alpha_w_[co];
      for (std::int64_t i = 0; i < patch; ++i) {
        cached_weight_tilde_.at2(co, i) =
            wmat.at2(co, i) >= 0.0f ? alpha : -alpha;
      }
    }
  });

  // Binarized input patches; padding is -1 so it stays in the alphabet.
  Tensor cols = tensor::im2col(tensor::sign(input), spec_, -1.0f);

  const std::int64_t kk = spec_.kernel_h * spec_.kernel_w;
  switch (scaling_) {
    case bitops::InputScaling::kPerChannel: {
      // Fold alpha_T(c, position) into the patch matrix: equivalent to the
      // per-channel Eq.-15 sum but expressible as one GEMM.
      cached_alpha_ = bitops::input_scales_per_channel(input, spec_);
      util::parallel_for(
          0, n * positions, /*grain=*/32,
          [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t row = lo; row < hi; ++row) {
              const std::int64_t ni = row / positions;
              const std::int64_t p = row % positions;
              for (std::int64_t ci = 0; ci < in_channels_; ++ci) {
                const float alpha =
                    cached_alpha_.at4(ni, ci, p / out_w, p % out_w);
                for (std::int64_t k = 0; k < kk; ++k) {
                  cols.at2(row, ci * kk + k) *= alpha;
                }
              }
            }
          });
      break;
    }
    case bitops::InputScaling::kScalar:
      cached_alpha_ = bitops::input_scales_scalar(input, spec_);
      break;
    case bitops::InputScaling::kNone:
      cached_alpha_ = Tensor();
      break;
  }
  cached_cols_ = std::move(cols);

  const Tensor out_rows =
      tensor::matmul(cached_cols_, tensor::transpose2d(cached_weight_tilde_));

  Tensor output({n, out_channels_, out_h, out_w});
  util::parallel_for(0, n * positions, /*grain=*/64, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const float post =
          scaling_ == bitops::InputScaling::kScalar
              ? cached_alpha_.at4(ni, 0, p / out_w, p % out_w)
              : 1.0f;
      const float* src = out_rows.data() + row * out_channels_;
      float* dst = output.data() + ni * out_channels_ * positions + p;
      for (std::int64_t co = 0; co < out_channels_; ++co) {
        dst[co * positions] = src[co] * post;
      }
    }
  });
  return output;
}

Tensor BinaryConv2d::backward(const Tensor& grad_output) {
  // No cache invalidation here: the packed-filter cache is keyed on the
  // weight Parameter's version, which the optimizer bumps when it actually
  // applies the update.
  HOTSPOT_CHECK_EQ(grad_output.rank(), 4);
  HOTSPOT_CHECK_EQ(grad_output.dim(1), out_channels_);
  HOTSPOT_CHECK(cached_input_.numel() > 0)
      << "backward without a float-sim forward";
  const std::int64_t n = cached_input_.dim(0);
  const std::int64_t out_h = grad_output.dim(2);
  const std::int64_t out_w = grad_output.dim(3);
  const std::int64_t positions = out_h * out_w;
  const std::int64_t patch = cached_cols_.dim(1);
  const std::int64_t kk = spec_.kernel_h * spec_.kernel_w;

  // Gradient w.r.t. the GEMM output rows; the scalar-mode position factor
  // distributes onto them.
  Tensor grad_rows({n * positions, out_channels_});
  util::parallel_for(0, n * positions, /*grain=*/64, [&](std::int64_t lo,
                                                         std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t ni = row / positions;
      const std::int64_t p = row % positions;
      const float post =
          scaling_ == bitops::InputScaling::kScalar
              ? cached_alpha_.at4(ni, 0, p / out_w, p % out_w)
              : 1.0f;
      const float* src = grad_output.data() + ni * out_channels_ * positions + p;
      float* dst = grad_rows.data() + row * out_channels_;
      for (std::int64_t co = 0; co < out_channels_; ++co) {
        dst[co] = src[co * positions] * post;
      }
    }
  });

  // dl/dW~ = grad_rows^T @ cols, then Eq. 13 maps it to the real weights.
  const Tensor grad_wtilde =
      tensor::matmul(tensor::transpose2d(grad_rows), cached_cols_);
  const Tensor wmat = weight_.value.reshaped({out_channels_, patch});
  const auto inv_n = 1.0f / static_cast<float>(patch);
  util::parallel_for(0, out_channels_, /*grain=*/1, [&](std::int64_t co_lo,
                                                        std::int64_t co_hi) {
    for (std::int64_t co = co_lo; co < co_hi; ++co) {
      const float alpha = cached_alpha_w_[co];
      for (std::int64_t i = 0; i < patch; ++i) {
        const float w = wmat.at2(co, i);
        const float ste = std::fabs(w) < 1.0f ? alpha : 0.0f;
        weight_.grad[co * patch + i] += grad_wtilde.at2(co, i) * (inv_n + ste);
      }
    }
  });

  // dl/dcols; per-channel mode removes the folded alpha_T factor.
  Tensor grad_cols = tensor::matmul(grad_rows, cached_weight_tilde_);
  if (scaling_ == bitops::InputScaling::kPerChannel) {
    util::parallel_for(
        0, n * positions, /*grain=*/32, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t row = lo; row < hi; ++row) {
            const std::int64_t ni = row / positions;
            const std::int64_t p = row % positions;
            for (std::int64_t ci = 0; ci < in_channels_; ++ci) {
              const float alpha =
                  cached_alpha_.at4(ni, ci, p / out_w, p % out_w);
              for (std::int64_t k = 0; k < kk; ++k) {
                grad_cols.at2(row, ci * kk + k) *= alpha;
              }
            }
          }
        });
  }

  // Through im2col, then the input STE (Eq. 10-11).
  const Tensor grad_sign =
      tensor::col2im(grad_cols, cached_input_.shape(), spec_);
  Tensor grad_input(cached_input_.shape());
  util::parallel_for(0, grad_input.numel(), /*grain=*/4096,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         grad_input[i] = std::fabs(cached_input_[i]) < 1.0f
                                             ? grad_sign[i]
                                             : 0.0f;
                       }
                     });
  return grad_input;
}

const BinaryConv2d::PackedCache& BinaryConv2d::refresh_packed_cache() {
  // Resolved once: the registry lookup takes a lock, the increments do not.
  static obs::Counter& cache_hits =
      obs::MetricsRegistry::global().counter("binary_conv.pack_cache.hit");
  static obs::Counter& cache_misses =
      obs::MetricsRegistry::global().counter("binary_conv.pack_cache.miss");
  const bitops::XnorKernel& kern = bitops::active_xnor_kernel();
  // Hot path: one acquire load, no lock shared between concurrent forwards.
  const PackedCache* cache = packed_cache_.load(std::memory_order_acquire);
  if (cache != nullptr && cache->weight_version == weight_.version &&
      cache->kernel == &kern) {
    cache_hits.increment();
    return *cache;
  }
  const std::lock_guard<std::mutex> lock(packed_cache_mutex_);
  // Double-check: another forward may have built the snapshot while this
  // one waited on the mutex.
  cache = packed_cache_.load(std::memory_order_acquire);
  if (cache != nullptr && cache->weight_version == weight_.version &&
      cache->kernel == &kern) {
    cache_hits.increment();
    return *cache;
  }
  cache_misses.increment();
  HOTSPOT_TRACE_SPAN("binary_conv.pack_filters");
  auto fresh = std::make_unique<PackedCache>();
  fresh->weight_version = weight_.version;
  fresh->kernel = &kern;
  fresh->alpha_w = bitops::weight_scales(weight_.value);
  fresh->filters =
      scaling_ == bitops::InputScaling::kPerChannel
          ? bitops::pack_filters_channel_blocked(weight_.value)
          : bitops::pack_filters(weight_.value);
  const PackedCache* published = fresh.get();
  packed_cache_storage_.push_back(std::move(fresh));
  packed_cache_.store(published, std::memory_order_release);
  return *published;
}

Tensor BinaryConv2d::forward_packed(const Tensor& input) {
  const PackedCache& cache = refresh_packed_cache();
  const bitops::XnorKernel& kern = *cache.kernel;
  // Per-kernel span name ("binary_conv.gemm.avx2", ...): trace timelines
  // and span reports say which kernel ran the XNOR inner loops.
  const std::string gemm_span = std::string("binary_conv.gemm.") + kern.name;
  const std::int64_t n = input.dim(0);
  const std::int64_t out_h = tensor::conv_out_extent(
      input.dim(2), spec_.kernel_h, spec_.stride, spec_.pad);
  const std::int64_t out_w = tensor::conv_out_extent(
      input.dim(3), spec_.kernel_w, spec_.stride, spec_.pad);
  const std::int64_t positions = out_h * out_w;
  const Tensor& alpha_w = cache.alpha_w;
  Tensor output({n, out_channels_, out_h, out_w});

  if (scaling_ == bitops::InputScaling::kPerChannel) {
    // Channel-blocked lanes: one word per channel so each per-channel dot is
    // a single XOR + popcount, scaled by alpha_T(c, position) (Eq. 14-15).
    bitops::BitMatrix patches;
    Tensor alpha_t;
    {
      HOTSPOT_TRACE_SPAN("binary_conv.pack");
      patches = bitops::pack_patches_channel_blocked(input, spec_);
      alpha_t = bitops::input_scales_per_channel(input, spec_);
    }
    HOTSPOT_TRACE_SPAN(gemm_span);
    packed_conv_per_channel(kern, patches, cache.filters, alpha_t, alpha_w,
                            in_channels_, out_channels_,
                            spec_.kernel_h * spec_.kernel_w, output);
    return output;
  }

  // Dense lanes: the whole patch packed contiguously, one popcount chain per
  // (position, filter) pair.
  bitops::BitMatrix patches;
  {
    HOTSPOT_TRACE_SPAN("binary_conv.pack");
    patches = bitops::pack_patches(input, spec_);
  }
  Tensor counts;
  {
    HOTSPOT_TRACE_SPAN(gemm_span);
    counts = bitops::xnor_gemm(patches, cache.filters);
  }
  HOTSPOT_TRACE_SPAN("binary_conv.unpack");
  const Tensor alpha = scaling_ == bitops::InputScaling::kScalar
                           ? bitops::input_scales_scalar(input, spec_)
                           : Tensor();
  packed_conv_epilogue(counts, alpha_w, alpha.numel() > 0 ? &alpha : nullptr,
                       out_channels_, output);
  return output;
}

std::vector<nn::Parameter*> BinaryConv2d::parameters() { return {&weight_}; }

std::string BinaryConv2d::name() const {
  std::ostringstream out;
  out << "BinaryConv2d(" << in_channels_ << "->" << out_channels_ << ", k"
      << spec_.kernel_h << ", s" << spec_.stride << ", p" << spec_.pad
      << ", " << bitops::to_string(scaling_) << ")";
  return out.str();
}

}  // namespace hotspot::core
