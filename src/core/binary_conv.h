// Binarized convolution layer (paper Sec. 3.2-3.4).
//
// Holds real-valued weights W; the forward pass uses their binarization
//   W~ = alpha_W * sign(W),              alpha_W = ||W||_1 / n   (Eq. 8-9)
// and binarizes its input
//   X~ = alpha_T (x) sign(X),            alpha_T per Eq. 14,
// computing T_out = alpha_W * (sign(X) (*) sign(W)) (.) alpha_T  (Eq. 15).
//
// Backward uses the straight-through estimator for the input (Eq. 10-11)
// and the paper's weight gradient (Eq. 13):
//   dl/dW = dl/dW~ * (1/n + alpha_W * 1_{|W|<1}).
// Scaling factors are treated as constants in the backward pass, following
// XNOR-Net practice and Algorithm 1.
//
// Two execution paths produce the same outputs (validated in tests):
//   kFloatSim - float arithmetic emulating binarization; used in training
//               and as the "full-precision framework running a BNN" cost
//               reference.
//   kPacked   - weights and activations packed into uint64 lanes, the
//               convolution reduced to XNOR + popcount; the deployment
//               path whose speedup Fig. 1 / Table 3 report.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "bitops/kernels/xnor_kernel.h"
#include "bitops/scaling.h"
#include "bitops/xnor_gemm.h"
#include "nn/module.h"
#include "tensor/conv.h"
#include "util/rng.h"

namespace hotspot::core {

enum class Backend { kFloatSim, kPacked };

class BinaryConv2d : public nn::Module {
 public:
  BinaryConv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bitops::InputScaling scaling, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;

  // Execution path used when not training (training always runs kFloatSim).
  void set_backend(Backend backend) { backend_ = backend; }
  Backend backend() const { return backend_; }

  // Drops the cached packed weights. Optimizer updates are tracked
  // automatically through the weight Parameter's version counter; this is
  // only needed by code that mutates the weight tensor directly without
  // bumping it (e.g. checkpoint loading).
  void invalidate_packed_cache() {
    packed_cache_.store(nullptr, std::memory_order_release);
  }
  // Invalidate only on an actual mode transition. The scan path calls
  // set_training(false) defensively before every batch; dropping the cache
  // unconditionally there forced a full filter re-pack (under the cache
  // mutex) per batch and grew the retired-snapshot list without bound over
  // a long scan. A no-op call must stay a no-op: the cache is already keyed
  // on the weight version for real weight changes, and training itself
  // never reads it (training forwards run float-sim).
  void set_training(bool training) override {
    if (training != training_) {
      invalidate_packed_cache();
    }
    nn::Module::set_training(training);
  }

  bitops::InputScaling scaling() const { return scaling_; }
  const tensor::ConvSpec& spec() const { return spec_; }
  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  nn::Parameter& weight() { return weight_; }

  // Roofline profiling (src/core/roofline.h). The model builder assigns a
  // stable per-instance span label ("brnn.conv.block1a", ...); while tracing
  // is enabled, every forward() opens a span under that label and counts the
  // samples it processed, so build_roofline() can join measured per-layer
  // time with the analytic cost model. With tracing disabled neither the
  // span nor the counter is touched.
  void set_span_label(std::string label) { span_label_ = std::move(label); }
  const std::string& span_label() const { return span_label_; }
  std::uint64_t profile_samples() const {
    return profile_samples_.load(std::memory_order_relaxed);
  }
  void reset_profile() {
    profile_samples_.store(0, std::memory_order_relaxed);
  }

 private:
  // Immutable snapshot of the packed filters, keyed on the weight version
  // and the XNOR kernel they were packed for. Published via an atomic
  // pointer (double-checked versioned publish): concurrent forward() calls
  // take one acquire load on the hot path and never contend on a lock;
  // the mutex is taken only to build a missing snapshot. Superseded
  // snapshots are retired, not freed, so a reader that loaded the old
  // pointer stays valid for the layer's lifetime (bounded by the number of
  // weight updates seen by packed inference, which is ~zero in practice —
  // training runs float-sim).
  struct PackedCache {
    std::uint64_t weight_version = 0;
    const bitops::XnorKernel* kernel = nullptr;
    bitops::BitMatrix filters;
    Tensor alpha_w;
  };

  Tensor forward_dispatch(const Tensor& input);
  Tensor forward_float_sim(const Tensor& input);
  Tensor forward_packed(const Tensor& input);
  const PackedCache& refresh_packed_cache();

  std::int64_t in_channels_;
  std::int64_t out_channels_;
  tensor::ConvSpec spec_;
  bitops::InputScaling scaling_;
  Backend backend_ = Backend::kPacked;
  nn::Parameter weight_;
  std::string span_label_;
  std::atomic<std::uint64_t> profile_samples_{0};

  // Forward caches for backward (float-sim path only).
  Tensor cached_input_;
  Tensor cached_cols_;        // im2col(sign(X)), alpha-scaled in per-channel mode
  Tensor cached_alpha_;       // alpha_T map ([N,Cin,oh,ow] or [N,1,oh,ow])
  Tensor cached_weight_tilde_;  // [Cout, n] rows of alpha_W * sign(W)
  Tensor cached_alpha_w_;     // [Cout]

  // Packed-inference weight cache: filters are re-packed only after the
  // weights actually change (optimizer step or explicit invalidation) or
  // the active XNOR kernel changes (different row padding), not on every
  // forward call. See PackedCache for the publication protocol.
  std::atomic<const PackedCache*> packed_cache_{nullptr};
  std::mutex packed_cache_mutex_;
  std::vector<std::unique_ptr<const PackedCache>> packed_cache_storage_;
};

}  // namespace hotspot::core
