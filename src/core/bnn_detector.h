// The paper's detector packaged behind the common eval::Detector interface
// used by the Table-3 comparison harness.
#pragma once

#include <functional>
#include <mutex>
#include <optional>

#include "core/brnn.h"
#include "core/trainer.h"
#include "eval/detector.h"

namespace hotspot::core {

struct BnnDetectorConfig {
  BrnnConfig model;
  TrainerConfig trainer;
  Backend inference_backend = Backend::kPacked;
  // Batch size used by predict(). Larger inference batches amortize patch
  // packing and feed the XNOR-GEMM bigger tiles than the training batch
  // size; 0 falls back to trainer.batch_size.
  int inference_batch_size = 64;

  // Sized for CI-scale benchmarks on `image_size` clips.
  static BnnDetectorConfig compact(std::int64_t image_size);
};

class BnnHotspotDetector : public eval::Detector {
 public:
  explicit BnnHotspotDetector(const BnnDetectorConfig& config);

  std::string name() const override { return "Ours (BNN)"; }
  void fit(const dataset::HotspotDataset& train, util::Rng& rng) override;
  std::vector<int> predict(const dataset::HotspotDataset& data) override;

  // Batch-feed API: classifies a prepared [n, 1, ls, ls] {0,1} image batch
  // directly, without materializing a HotspotDataset. This is what the
  // streaming scan pipeline feeds — the caller owns batching, so dedup and
  // double buffering happen upstream. Per-sample outputs are independent of
  // batch composition (scaling, BN eval stats, and the packed GEMM are all
  // per-sample), so any batching of the same images yields identical labels.
  //
  // Safe to call from multiple threads: the module chain caches activations
  // during forward even in eval mode, so concurrent forwards would race on
  // that scratch state. An internal mutex serializes predict_batch (and
  // predict) — callers get thread safety, not parallel speedup; the
  // parallelism lives inside the packed GEMM.
  std::vector<int> predict_batch(const tensor::Tensor& images);

  // The batch-feed API packaged as a scan::ScanPipeline-compatible
  // callable. Valid as long as the detector outlives the callable.
  std::function<std::vector<int>(const tensor::Tensor&)> classifier();

  // Available after fit().
  BrnnModel& model();
  const std::vector<EpochStats>& history() const { return history_; }

 private:
  BnnDetectorConfig config_;
  std::optional<BrnnModel> model_;
  std::vector<EpochStats> history_;
  // Serializes inference: forward() scribbles on per-layer activation
  // caches, which are not per-thread.
  std::mutex predict_mutex_;
};

}  // namespace hotspot::core
