// The paper's detector packaged behind the common eval::Detector interface
// used by the Table-3 comparison harness.
#pragma once

#include <optional>

#include "core/brnn.h"
#include "core/trainer.h"
#include "eval/detector.h"

namespace hotspot::core {

struct BnnDetectorConfig {
  BrnnConfig model;
  TrainerConfig trainer;
  Backend inference_backend = Backend::kPacked;
  // Batch size used by predict(). Larger inference batches amortize patch
  // packing and feed the XNOR-GEMM bigger tiles than the training batch
  // size; 0 falls back to trainer.batch_size.
  int inference_batch_size = 64;

  // Sized for CI-scale benchmarks on `image_size` clips.
  static BnnDetectorConfig compact(std::int64_t image_size);
};

class BnnHotspotDetector : public eval::Detector {
 public:
  explicit BnnHotspotDetector(const BnnDetectorConfig& config);

  std::string name() const override { return "Ours (BNN)"; }
  void fit(const dataset::HotspotDataset& train, util::Rng& rng) override;
  std::vector<int> predict(const dataset::HotspotDataset& data) override;

  // Available after fit().
  BrnnModel& model();
  const std::vector<EpochStats>& history() const { return history_; }

 private:
  BnnDetectorConfig config_;
  std::optional<BrnnModel> model_;
  std::vector<EpochStats> history_;
};

}  // namespace hotspot::core
