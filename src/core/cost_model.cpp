#include "core/cost_model.h"

#include <sstream>

#include "tensor/conv.h"
#include "util/check.h"

namespace hotspot::core {

double NetworkCost::arithmetic_reduction() const {
  const double heavy_ops =
      static_cast<double>(packed_word_ops) +
      static_cast<double>(packed_float_ops);
  return heavy_ops == 0.0 ? 0.0 : static_cast<double>(float_macs) / heavy_ops;
}

double NetworkCost::storage_reduction() const {
  return packed_weight_bytes == 0
             ? 0.0
             : static_cast<double>(float_weight_bytes) /
                   static_cast<double>(packed_weight_bytes);
}

LayerCost binary_conv_cost(std::int64_t in_channels, std::int64_t out_channels,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, std::int64_t in_h,
                           std::int64_t in_w, bitops::InputScaling scaling) {
  HOTSPOT_CHECK_GT(in_channels, 0);
  HOTSPOT_CHECK_GT(out_channels, 0);
  LayerCost cost;
  const std::int64_t out_h = tensor::conv_out_extent(in_h, kernel, stride, pad);
  const std::int64_t out_w = tensor::conv_out_extent(in_w, kernel, stride, pad);
  cost.output_positions = out_h * out_w;
  const std::int64_t patch = in_channels * kernel * kernel;

  std::ostringstream name;
  name << in_channels << "->" << out_channels << " k" << kernel << " s"
       << stride << " @" << in_h << "x" << in_w;
  cost.name = name.str();

  cost.float_macs = cost.output_positions * out_channels * patch;
  cost.float_weight_bytes =
      out_channels * patch * static_cast<std::int64_t>(sizeof(float));

  if (scaling == bitops::InputScaling::kPerChannel) {
    // Channel-blocked lanes: one word per input channel per (position,
    // filter) pair, plus a float multiply-accumulate per channel for the
    // alpha_T application, plus the alpha map itself (O(1)/pixel via the
    // integral image -> ~4 ops per (channel, position)).
    cost.packed_word_ops =
        cost.output_positions * out_channels * in_channels;
    cost.packed_float_ops =
        cost.output_positions * out_channels * in_channels +  // alpha FMA
        cost.output_positions * in_channels * 4;              // alpha map
    cost.packed_weight_bytes =
        out_channels * in_channels * static_cast<std::int64_t>(sizeof(std::uint64_t));
  } else {
    // Dense lanes: ceil(patch/64) words per pair; scalar mode adds one
    // epilogue multiply per output plus the alpha map.
    const std::int64_t words = (patch + 63) / 64;
    cost.packed_word_ops = cost.output_positions * out_channels * words;
    cost.packed_float_ops =
        scaling == bitops::InputScaling::kScalar
            ? cost.output_positions * (out_channels + 4)
            : cost.output_positions * out_channels;
    cost.packed_weight_bytes =
        out_channels * words * static_cast<std::int64_t>(sizeof(std::uint64_t));
  }
  return cost;
}

NetworkCost network_cost(const BrnnConfig& config) {
  HOTSPOT_CHECK_EQ(config.block_filters.size(), config.block_strides.size());
  NetworkCost total;
  auto push = [&total](LayerCost cost) {
    total.float_macs += cost.float_macs;
    total.packed_word_ops += cost.packed_word_ops;
    total.packed_float_ops += cost.packed_float_ops;
    total.float_weight_bytes += cost.float_weight_bytes;
    total.packed_weight_bytes += cost.packed_weight_bytes;
    total.layers.push_back(std::move(cost));
  };

  std::int64_t resolution = config.image_size;
  push(binary_conv_cost(config.input_channels, config.stem_filters, 3,
                        config.stem_stride, 1, resolution, resolution,
                        config.scaling));
  resolution = tensor::conv_out_extent(resolution, 3, config.stem_stride, 1);
  if (config.stem_pool) {
    resolution /= 2;
  }

  std::int64_t channels = config.stem_filters;
  for (std::size_t stage = 0; stage < config.block_filters.size(); ++stage) {
    const std::int64_t filters = config.block_filters[stage];
    const std::int64_t stride = config.block_strides[stage];
    push(binary_conv_cost(channels, filters, 3, stride, 1, resolution,
                          resolution, config.scaling));
    const std::int64_t out_resolution =
        tensor::conv_out_extent(resolution, 3, stride, 1);
    push(binary_conv_cost(filters, filters, 3, 1, 1, out_resolution,
                          out_resolution, config.scaling));
    if (channels != filters || stride != 1) {
      push(binary_conv_cost(channels, filters, 1, stride, 0, resolution,
                            resolution, config.scaling));
    }
    resolution = out_resolution;
    channels = filters;
  }
  return total;
}

}  // namespace hotspot::core
