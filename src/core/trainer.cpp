#include "core/trainer.h"

#include <algorithm>

#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace hotspot::core {

BatchBuilder image_batch_builder() {
  return [](const dataset::HotspotDataset& data,
            const std::vector<std::size_t>& indices,
            util::Rng* augment_rng) {
    return data.batch_images(indices, augment_rng);
  };
}

Trainer::Trainer(nn::Module& model, const TrainerConfig& config,
                 BatchBuilder batch_builder)
    : model_(model),
      config_(config),
      batch_builder_(std::move(batch_builder)),
      optimizer_(model.parameters(), config.learning_rate),
      rng_(config.seed) {
  HOTSPOT_CHECK_GT(config.batch_size, 0);
  HOTSPOT_CHECK_GE(config.epochs, 0);
  HOTSPOT_CHECK_GE(config.finetune_epochs, 0);
  HOTSPOT_CHECK(config.validation_fraction >= 0.0 &&
                config.validation_fraction < 1.0)
      << "validation fraction " << config.validation_fraction;
}

double Trainer::run_epoch(const dataset::HotspotDataset& data,
                          const std::vector<std::size_t>& indices,
                          float bias_epsilon, util::Rng& rng) {
  model_.set_training(true);
  std::vector<std::size_t> order = indices;
  rng.shuffle(order);
  double total_loss = 0.0;
  std::int64_t batches = 0;
  for (std::size_t begin = 0; begin < order.size();
       begin += static_cast<std::size_t>(config_.batch_size)) {
    const std::size_t end = std::min(
        order.size(), begin + static_cast<std::size_t>(config_.batch_size));
    const std::vector<std::size_t> batch(order.begin() + begin,
                                         order.begin() + end);
    util::Rng* augment = config_.augment ? &rng : nullptr;
    const tensor::Tensor images = batch_builder_(data, batch, augment);
    const tensor::Tensor targets =
        nn::make_targets(data.batch_labels(batch), bias_epsilon);

    const tensor::Tensor logits = model_.forward(images);
    total_loss += loss_.forward(logits, targets);
    ++batches;

    model_.zero_grad();
    model_.backward(loss_.gradient());
    if (config_.grad_clip > 0.0) {
      optimizer_.clip_grad_norm(config_.grad_clip);
    }
    optimizer_.step();
  }
  return batches == 0 ? 0.0 : total_loss / static_cast<double>(batches);
}

double Trainer::evaluate_loss(const dataset::HotspotDataset& data,
                              const std::vector<std::size_t>& indices) {
  if (indices.empty()) {
    return 0.0;
  }
  model_.set_training(false);
  double total_loss = 0.0;
  std::int64_t batches = 0;
  for (std::size_t begin = 0; begin < indices.size();
       begin += static_cast<std::size_t>(config_.batch_size)) {
    const std::size_t end = std::min(
        indices.size(), begin + static_cast<std::size_t>(config_.batch_size));
    const std::vector<std::size_t> batch(indices.begin() + begin,
                                         indices.begin() + end);
    const tensor::Tensor images = batch_builder_(data, batch, nullptr);
    const tensor::Tensor targets =
        nn::make_targets(data.batch_labels(batch), 0.0f);
    const tensor::Tensor logits = model_.forward(images);
    total_loss += tensor::softmax_cross_entropy(logits, targets, nullptr);
    ++batches;
  }
  model_.set_training(true);
  return total_loss / static_cast<double>(batches);
}

std::vector<EpochStats> Trainer::train(const dataset::HotspotDataset& data) {
  HOTSPOT_CHECK(!data.empty()) << "cannot train on an empty dataset";
  // Split off a validation slice for the plateau scheduler.
  std::vector<std::size_t> all = data.all_indices(&rng_);
  const auto validation_count = static_cast<std::size_t>(
      static_cast<double>(all.size()) * config_.validation_fraction);
  const std::vector<std::size_t> validation(all.begin(),
                                            all.begin() + validation_count);
  std::vector<std::size_t> training(all.begin() + validation_count,
                                    all.end());
  HOTSPOT_CHECK(!training.empty()) << "validation split consumed all data";
  HOTSPOT_CHECK_GE(config_.hotspot_oversample, 1);
  if (config_.hotspot_oversample > 1) {
    const std::size_t base_count = training.size();
    for (std::size_t i = 0; i < base_count; ++i) {
      if (data.sample(training[i]).label == 1) {
        for (int copy = 1; copy < config_.hotspot_oversample; ++copy) {
          training.push_back(training[i]);
        }
      }
    }
  }

  optim::PlateauDecay scheduler(optimizer_, config_.plateau_factor,
                                config_.plateau_patience);
  std::vector<EpochStats> history;
  auto run_phase = [&](int epochs, float bias, bool finetune) {
    for (int epoch = 0; epoch < epochs; ++epoch) {
      EpochStats stats;
      stats.epoch = static_cast<int>(history.size());
      stats.finetune = finetune;
      stats.train_loss = run_epoch(data, training, bias, rng_);
      stats.validation_loss = validation.empty()
                                  ? stats.train_loss
                                  : evaluate_loss(data, validation);
      scheduler.observe(stats.validation_loss);
      stats.learning_rate = optimizer_.learning_rate();
      if (config_.verbose) {
        HOTSPOT_LOG(kInfo) << (finetune ? "finetune" : "train") << " epoch "
                           << stats.epoch << ": loss=" << stats.train_loss
                           << " val=" << stats.validation_loss
                           << " lr=" << stats.learning_rate;
      }
      history.push_back(stats);
    }
  };

  // Main phase with hard labels (Algorithm 1), then the biased finetune
  // (Sec. 3.4.3).
  run_phase(config_.epochs, 0.0f, /*finetune=*/false);
  run_phase(config_.finetune_epochs, config_.bias_epsilon, /*finetune=*/true);
  model_.set_training(false);
  return history;
}

std::vector<int> predict_labels(nn::Module& model,
                                const dataset::HotspotDataset& data,
                                int batch_size,
                                const BatchBuilder& batch_builder) {
  HOTSPOT_CHECK_GT(batch_size, 0);
  model.set_training(false);
  const std::vector<std::size_t> all = data.all_indices();
  std::vector<int> labels(all.size());
  for (std::size_t begin = 0; begin < all.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(all.size(), begin + static_cast<std::size_t>(batch_size));
    const std::vector<std::size_t> batch(all.begin() + begin,
                                         all.begin() + end);
    const tensor::Tensor logits =
        model.forward(batch_builder(data, batch, nullptr));
    // Per-sample argmax; each chunk writes its own slice of `labels`.
    const std::int64_t classes = logits.dim(1);
    util::parallel_for(
        0, logits.dim(0), /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t row = lo; row < hi; ++row) {
            const float* logit_row = logits.data() + row * classes;
            std::int64_t best = 0;
            for (std::int64_t c = 1; c < classes; ++c) {
              if (logit_row[c] > logit_row[best]) {
                best = c;
              }
            }
            labels[begin + static_cast<std::size_t>(row)] =
                static_cast<int>(best);
          }
        });
  }
  return labels;
}

}  // namespace hotspot::core
