#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace hotspot::core {
namespace {

constexpr char kTrainerStateBlob[] = "trainer_state";
constexpr std::uint32_t kTrainerStateVersion = 1;
constexpr std::uint64_t kMaxHistoryEntries = 1u << 20;

// Raw little-endian (host-order) scalar packing for the checkpoint metadata
// blob. memcpy round trips preserve every bit, which the resume-determinism
// guarantee depends on.
class BlobWriter {
 public:
  template <typename T>
  void scalar(T value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), bytes, bytes + sizeof(T));
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class BlobReader {
 public:
  explicit BlobReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  template <typename T>
  bool scalar(T& value) {
    if (bytes_.size() - pos_ < sizeof(T)) {
      return false;
    }
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

// Length-prefixed index list; the count is validated against the bytes that
// actually follow before any allocation.
void encode_indices(BlobWriter& writer, const std::vector<std::size_t>& list) {
  writer.scalar(static_cast<std::uint64_t>(list.size()));
  for (const std::size_t index : list) {
    writer.scalar(static_cast<std::uint64_t>(index));
  }
}

bool decode_indices(BlobReader& reader, std::vector<std::size_t>& list) {
  std::uint64_t count = 0;
  if (!reader.scalar(count) ||
      count > reader.remaining() / sizeof(std::uint64_t)) {
    return false;
  }
  list.resize(static_cast<std::size_t>(count));
  for (std::size_t& index : list) {
    std::uint64_t value = 0;
    if (!reader.scalar(value)) {
      return false;
    }
    index = static_cast<std::size_t>(value);
  }
  return true;
}

// Everything the metadata blob carries besides the tensors. The split index
// lists travel with the checkpoint because the original split consumed
// training-stream draws: storing the result (instead of replaying the
// draws) is what lets a resumed run continue the restored RNG stream
// bit-for-bit.
struct TrainerStateBlob {
  util::RngState rng;
  std::int64_t optimizer_step = 0;
  float learning_rate = 0.0f;
  optim::PlateauDecay::State scheduler;
  double best_validation_loss = 0.0;
  std::vector<std::size_t> validation_indices;
  std::vector<std::size_t> training_indices;  // pre-oversample base list
  std::vector<EpochStats> history;
};

std::vector<std::uint8_t> encode_trainer_state(const TrainerStateBlob& state) {
  BlobWriter writer;
  writer.scalar(kTrainerStateVersion);
  for (const std::uint64_t word : state.rng.words) {
    writer.scalar(word);
  }
  writer.scalar(state.rng.spare_normal);
  writer.scalar(static_cast<std::uint8_t>(state.rng.has_spare_normal));
  writer.scalar(state.optimizer_step);
  writer.scalar(state.learning_rate);
  writer.scalar(state.scheduler.best_metric);
  writer.scalar(static_cast<std::int32_t>(state.scheduler.stall_count));
  writer.scalar(state.best_validation_loss);
  encode_indices(writer, state.validation_indices);
  encode_indices(writer, state.training_indices);
  writer.scalar(static_cast<std::uint64_t>(state.history.size()));
  for (const EpochStats& stats : state.history) {
    writer.scalar(static_cast<std::int32_t>(stats.epoch));
    writer.scalar(static_cast<std::uint8_t>(stats.finetune));
    writer.scalar(stats.train_loss);
    writer.scalar(stats.validation_loss);
    writer.scalar(stats.learning_rate);
    writer.scalar(static_cast<std::int32_t>(stats.numeric_events));
    writer.scalar(static_cast<std::int32_t>(stats.skipped_batches));
  }
  return writer.take();
}

bool decode_trainer_state(const std::vector<std::uint8_t>& bytes,
                          TrainerStateBlob& state) {
  BlobReader reader(bytes);
  std::uint32_t version = 0;
  if (!reader.scalar(version) || version != kTrainerStateVersion) {
    return false;
  }
  std::uint8_t has_spare = 0;
  for (std::uint64_t& word : state.rng.words) {
    if (!reader.scalar(word)) {
      return false;
    }
  }
  if (!reader.scalar(state.rng.spare_normal) || !reader.scalar(has_spare)) {
    return false;
  }
  state.rng.has_spare_normal = has_spare != 0;
  std::int32_t stall_count = 0;
  if (!reader.scalar(state.optimizer_step) ||
      !reader.scalar(state.learning_rate) ||
      !reader.scalar(state.scheduler.best_metric) ||
      !reader.scalar(stall_count) ||
      !reader.scalar(state.best_validation_loss)) {
    return false;
  }
  state.scheduler.stall_count = stall_count;
  if (!decode_indices(reader, state.validation_indices) ||
      !decode_indices(reader, state.training_indices)) {
    return false;
  }
  std::uint64_t count = 0;
  if (!reader.scalar(count) || count > kMaxHistoryEntries) {
    return false;
  }
  state.history.resize(static_cast<std::size_t>(count));
  for (EpochStats& stats : state.history) {
    std::int32_t epoch = 0, numeric_events = 0, skipped = 0;
    std::uint8_t finetune = 0;
    if (!reader.scalar(epoch) || !reader.scalar(finetune) ||
        !reader.scalar(stats.train_loss) ||
        !reader.scalar(stats.validation_loss) ||
        !reader.scalar(stats.learning_rate) || !reader.scalar(numeric_events) ||
        !reader.scalar(skipped)) {
      return false;
    }
    stats.epoch = epoch;
    stats.finetune = finetune != 0;
    stats.numeric_events = numeric_events;
    stats.skipped_batches = skipped;
  }
  return reader.exhausted();
}

}  // namespace

namespace {

// Per-epoch training health, readable by any attached exporter. Gauges hold
// the latest epoch; the counters in run_epoch accumulate across epochs.
void publish_epoch_metrics(const EpochStats& stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("trainer.epochs").increment();
  registry.gauge("trainer.epoch").set(stats.epoch);
  registry.gauge("trainer.train_loss").set(stats.train_loss);
  registry.gauge("trainer.validation_loss").set(stats.validation_loss);
  registry.gauge("trainer.learning_rate").set(stats.learning_rate);
  registry.gauge("trainer.finetune_phase").set(stats.finetune ? 1.0 : 0.0);
  registry
      .histogram("trainer.epoch_seconds", obs::default_duration_buckets())
      .observe(stats.epoch_seconds);
}

}  // namespace

BatchBuilder image_batch_builder() {
  return [](const dataset::HotspotDataset& data,
            const std::vector<std::size_t>& indices,
            util::Rng* augment_rng) {
    return data.batch_images(indices, augment_rng);
  };
}

Trainer::Trainer(nn::Module& model, const TrainerConfig& config,
                 BatchBuilder batch_builder)
    : model_(model),
      config_(config),
      batch_builder_(std::move(batch_builder)),
      optimizer_(model.parameters(), config.learning_rate),
      rng_(config.seed) {
  HOTSPOT_CHECK_GT(config.batch_size, 0);
  HOTSPOT_CHECK_GE(config.epochs, 0);
  HOTSPOT_CHECK_GE(config.finetune_epochs, 0);
  HOTSPOT_CHECK(config.validation_fraction >= 0.0 &&
                config.validation_fraction < 1.0)
      << "validation fraction " << config.validation_fraction;
  if (!config.checkpoint_path.empty()) {
    HOTSPOT_CHECK_GE(config.checkpoint_every, 1);
  }
}

void Trainer::run_epoch(const dataset::HotspotDataset& data,
                        const std::vector<std::size_t>& indices,
                        float bias_epsilon, util::Rng& rng,
                        EpochStats& stats) {
  static obs::Counter& step_counter =
      obs::MetricsRegistry::global().counter("trainer.steps");
  static obs::Counter& numeric_event_counter =
      obs::MetricsRegistry::global().counter("trainer.numeric_events");
  static obs::Counter& skipped_batch_counter =
      obs::MetricsRegistry::global().counter("trainer.skipped_batches");
  static obs::Histogram& batch_histogram =
      obs::MetricsRegistry::global().histogram(
          "trainer.batch_seconds", obs::default_latency_buckets());
  HOTSPOT_TRACE_SPAN("trainer.epoch");
  model_.set_training(true);
  std::vector<std::size_t> order = indices;
  rng.shuffle(order);
  double total_loss = 0.0;
  std::int64_t batches = 0;
  for (std::size_t begin = 0; begin < order.size();
       begin += static_cast<std::size_t>(config_.batch_size)) {
    const std::size_t end = std::min(
        order.size(), begin + static_cast<std::size_t>(config_.batch_size));
    const std::vector<std::size_t> batch(order.begin() + begin,
                                         order.begin() + end);
    HOTSPOT_TRACE_SPAN("trainer.batch");
    util::Stopwatch batch_timer;
    util::Rng* augment = config_.augment ? &rng : nullptr;
    const tensor::Tensor images = batch_builder_(data, batch, augment);
    const tensor::Tensor targets =
        nn::make_targets(data.batch_labels(batch), bias_epsilon);

    const tensor::Tensor logits = model_.forward(images);
    const double batch_loss = loss_.forward(logits, targets);

    const bool guard = config_.numeric_policy != NumericPolicy::kOff;
    bool healthy = !guard || std::isfinite(batch_loss);
    double norm = 0.0;
    if (healthy) {
      model_.zero_grad();
      model_.backward(loss_.gradient());
      if (guard || config_.grad_clip > 0.0) {
        norm = optimizer_.grad_norm();
        healthy = !guard || std::isfinite(norm);
      }
    }
    if (!healthy) {
      // Poisoned batch: never apply the update; contain per policy.
      ++stats.numeric_events;
      ++stats.skipped_batches;
      numeric_event_counter.increment();
      skipped_batch_counter.increment();
      if (config_.numeric_policy == NumericPolicy::kHalveLr) {
        optimizer_.set_learning_rate(optimizer_.learning_rate() * 0.5f);
      } else if (config_.numeric_policy == NumericPolicy::kRollback) {
        rollback_to_last_checkpoint();
      }
      if (config_.verbose) {
        HOTSPOT_LOG(kWarning)
            << "non-finite " << (std::isfinite(batch_loss) ? "gradients" : "loss")
            << " in epoch " << stats.epoch << "; update dropped";
      }
      batch_histogram.observe(batch_timer.seconds());
      continue;
    }

    total_loss += batch_loss;
    ++batches;
    if (config_.grad_clip > 0.0 && norm > config_.grad_clip) {
      optimizer_.scale_gradients(
          static_cast<float>(config_.grad_clip / norm));
    }
    optimizer_.step();
    ++stats.steps;
    step_counter.increment();
    batch_histogram.observe(batch_timer.seconds());
  }
  stats.train_loss =
      batches == 0 ? 0.0 : total_loss / static_cast<double>(batches);
}

double Trainer::evaluate_loss(const dataset::HotspotDataset& data,
                              const std::vector<std::size_t>& indices) {
  if (indices.empty()) {
    return 0.0;
  }
  HOTSPOT_TRACE_SPAN("trainer.validation");
  model_.set_training(false);
  double total_loss = 0.0;
  std::int64_t batches = 0;
  for (std::size_t begin = 0; begin < indices.size();
       begin += static_cast<std::size_t>(config_.batch_size)) {
    const std::size_t end = std::min(
        indices.size(), begin + static_cast<std::size_t>(config_.batch_size));
    const std::vector<std::size_t> batch(indices.begin() + begin,
                                         indices.begin() + end);
    const tensor::Tensor images = batch_builder_(data, batch, nullptr);
    const tensor::Tensor targets =
        nn::make_targets(data.batch_labels(batch), 0.0f);
    const tensor::Tensor logits = model_.forward(images);
    total_loss += tensor::softmax_cross_entropy(logits, targets, nullptr);
    ++batches;
  }
  model_.set_training(true);
  return total_loss / static_cast<double>(batches);
}

nn::SaveResult Trainer::save_training_checkpoint(
    const std::string& path, const optim::PlateauDecay& scheduler,
    const std::vector<EpochStats>& history) {
  std::vector<nn::NamedTensor> tensors;
  model_.collect_state("", tensors);
  optim::OptimizerState optimizer_state = optimizer_.state();
  for (const nn::NamedTensor& slot : optimizer_state.slots) {
    tensors.push_back(slot);
  }

  TrainerStateBlob state;
  state.rng = rng_.save_state();
  state.optimizer_step = optimizer_state.step_count;
  state.learning_rate = optimizer_state.learning_rate;
  state.scheduler = scheduler.state();
  state.best_validation_loss = best_validation_loss_;
  state.validation_indices = split_validation_;
  state.training_indices = split_training_;
  state.history = history;

  std::vector<nn::NamedBlob> blobs(1);
  blobs[0].name = kTrainerStateBlob;
  blobs[0].bytes = encode_trainer_state(state);
  return nn::save_archive(path, tensors, blobs);
}

nn::LoadResult Trainer::resume_from(const std::string& path) {
  std::vector<nn::NamedTensor> tensors;
  model_.collect_state("", tensors);
  optim::OptimizerState optimizer_state = optimizer_.state();
  for (const nn::NamedTensor& slot : optimizer_state.slots) {
    tensors.push_back(slot);
  }
  std::vector<nn::NamedBlob> blobs(1);
  blobs[0].name = kTrainerStateBlob;
  const nn::LoadResult result = nn::load_archive(path, tensors, &blobs);
  if (!result.ok()) {
    return result;
  }
  TrainerStateBlob state;
  if (!decode_trainer_state(blobs[0].bytes, state)) {
    return nn::LoadResult::failure(
        nn::IoStatus::kCorrupt, path + ": undecodable trainer state blob");
  }
  if (state.history.size() >
      static_cast<std::size_t>(config_.epochs + config_.finetune_epochs)) {
    return nn::LoadResult::failure(
        nn::IoStatus::kShapeMismatch,
        path + ": checkpoint has more epochs than the configured schedule");
  }

  rng_.load_state(state.rng);
  optimizer_state.step_count = state.optimizer_step;
  optimizer_state.learning_rate = state.learning_rate;
  optimizer_.load_state(optimizer_state);
  scheduler_state_ = state.scheduler;
  have_scheduler_state_ = true;
  best_validation_loss_ = state.best_validation_loss;
  split_validation_ = std::move(state.validation_indices);
  split_training_ = std::move(state.training_indices);
  resume_history_ = std::move(state.history);
  resumed_ = true;
  last_checkpoint_ = path;
  // The tensors were written in place; weight-derived caches must refresh.
  for (nn::Parameter* param : model_.parameters()) {
    param->bump_version();
  }
  return result;
}

void Trainer::rollback_to_last_checkpoint() {
  if (last_checkpoint_.empty()) {
    return;  // nothing saved yet: containment degrades to skip-batch
  }
  std::vector<nn::NamedTensor> tensors;
  model_.collect_state("", tensors);
  optim::OptimizerState optimizer_state = optimizer_.state();
  for (const nn::NamedTensor& slot : optimizer_state.slots) {
    tensors.push_back(slot);
  }
  std::vector<nn::NamedBlob> blobs(1);
  blobs[0].name = kTrainerStateBlob;
  const nn::LoadResult result =
      nn::load_archive(last_checkpoint_, tensors, &blobs);
  TrainerStateBlob state;
  if (!result.ok() || !decode_trainer_state(blobs[0].bytes, state)) {
    HOTSPOT_LOG(kWarning) << "rollback to " << last_checkpoint_
                          << " failed: " << result.message;
    return;
  }
  // Weights and moments are restored; the RNG stream and history keep
  // running so the epoch loop's bookkeeping stays consistent.
  optimizer_state.step_count = state.optimizer_step;
  optimizer_state.learning_rate = state.learning_rate;
  optimizer_.load_state(optimizer_state);
  for (nn::Parameter* param : model_.parameters()) {
    param->bump_version();
  }
}

std::vector<EpochStats> Trainer::train(const dataset::HotspotDataset& data) {
  HOTSPOT_CHECK(!data.empty()) << "cannot train on an empty dataset";
  // Split off a validation slice for the plateau scheduler. A resumed run
  // reuses the checkpointed split instead of re-drawing it: the original
  // draw already advanced the training stream, and replaying it against the
  // restored stream would desynchronize every epoch after the checkpoint.
  if (resumed_) {
    for (const std::size_t index : split_validation_) {
      HOTSPOT_CHECK(index < data.size())
          << "checkpoint split index " << index
          << " out of range; resumed against a different dataset?";
    }
    for (const std::size_t index : split_training_) {
      HOTSPOT_CHECK(index < data.size())
          << "checkpoint split index " << index
          << " out of range; resumed against a different dataset?";
    }
  } else {
    std::vector<std::size_t> all = data.all_indices(&rng_);
    const auto validation_count = static_cast<std::size_t>(
        static_cast<double>(all.size()) * config_.validation_fraction);
    split_validation_.assign(all.begin(), all.begin() + validation_count);
    split_training_.assign(all.begin() + validation_count, all.end());
  }
  const std::vector<std::size_t>& validation = split_validation_;
  std::vector<std::size_t> training = split_training_;
  HOTSPOT_CHECK(!training.empty()) << "validation split consumed all data";
  HOTSPOT_CHECK_GE(config_.hotspot_oversample, 1);
  if (config_.hotspot_oversample > 1) {
    const std::size_t base_count = training.size();
    for (std::size_t i = 0; i < base_count; ++i) {
      if (data.sample(training[i]).label == 1) {
        for (int copy = 1; copy < config_.hotspot_oversample; ++copy) {
          training.push_back(training[i]);
        }
      }
    }
  }

  optim::PlateauDecay scheduler(optimizer_, config_.plateau_factor,
                                config_.plateau_patience);
  if (have_scheduler_state_) {
    scheduler.load_state(scheduler_state_);
  }
  std::vector<EpochStats> history =
      resumed_ ? std::move(resume_history_) : std::vector<EpochStats>{};
  resume_history_.clear();
  const std::size_t total_epochs =
      static_cast<std::size_t>(config_.epochs + config_.finetune_epochs);

  auto run_phase = [&](int phase_start, int epochs, float bias,
                       bool finetune) {
    for (int epoch = 0; epoch < epochs; ++epoch) {
      const int global_epoch = phase_start + epoch;
      if (static_cast<int>(history.size()) > global_epoch) {
        continue;  // completed before the checkpoint we resumed from
      }
      EpochStats stats;
      stats.epoch = global_epoch;
      stats.finetune = finetune;
      util::Stopwatch epoch_timer;
      run_epoch(data, training, bias, rng_, stats);
      stats.validation_loss = validation.empty()
                                  ? stats.train_loss
                                  : evaluate_loss(data, validation);
      stats.epoch_seconds = epoch_timer.seconds();
      scheduler.observe(stats.validation_loss);
      stats.learning_rate = optimizer_.learning_rate();
      publish_epoch_metrics(stats);
      if (config_.verbose) {
        HOTSPOT_LOG(kInfo) << (finetune ? "finetune" : "train") << " epoch "
                           << stats.epoch << ": loss=" << stats.train_loss
                           << " val=" << stats.validation_loss
                           << " lr=" << stats.learning_rate;
      }
      history.push_back(stats);

      if (stats.validation_loss < best_validation_loss_) {
        best_validation_loss_ = stats.validation_loss;
        if (!config_.checkpoint_path.empty()) {
          const nn::SaveResult saved = nn::save_checkpoint(
              config_.checkpoint_path + ".best", model_);
          if (!saved.ok()) {
            HOTSPOT_LOG(kWarning)
                << "best-model snapshot failed: " << saved.message;
          }
        }
      }
      if (!config_.checkpoint_path.empty() &&
          (history.size() % static_cast<std::size_t>(config_.checkpoint_every) ==
               0 ||
           history.size() == total_epochs)) {
        const nn::SaveResult saved = save_training_checkpoint(
            config_.checkpoint_path, scheduler, history);
        if (saved.ok()) {
          last_checkpoint_ = config_.checkpoint_path;
        } else {
          // Training is healthier than the disk: keep going; the previous
          // snapshot (if any) is still intact thanks to the atomic write.
          HOTSPOT_LOG(kWarning) << "checkpoint failed: " << saved.message;
        }
      }
    }
  };

  // Main phase with hard labels (Algorithm 1), then the biased finetune
  // (Sec. 3.4.3).
  run_phase(0, config_.epochs, 0.0f, /*finetune=*/false);
  run_phase(config_.epochs, config_.finetune_epochs, config_.bias_epsilon,
            /*finetune=*/true);
  model_.set_training(false);
  return history;
}

std::vector<int> predict_labels(nn::Module& model,
                                const dataset::HotspotDataset& data,
                                int batch_size,
                                const BatchBuilder& batch_builder) {
  HOTSPOT_CHECK_GT(batch_size, 0);
  model.set_training(false);
  const std::vector<std::size_t> all = data.all_indices();
  std::vector<int> labels(all.size());
  for (std::size_t begin = 0; begin < all.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(all.size(), begin + static_cast<std::size_t>(batch_size));
    const std::vector<std::size_t> batch(all.begin() + begin,
                                         all.begin() + end);
    const tensor::Tensor logits =
        model.forward(batch_builder(data, batch, nullptr));
    // Per-sample argmax; each chunk writes its own slice of `labels`.
    const std::int64_t classes = logits.dim(1);
    util::parallel_for(
        0, logits.dim(0), /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t row = lo; row < hi; ++row) {
            const float* logit_row = logits.data() + row * classes;
            std::int64_t best = 0;
            for (std::int64_t c = 1; c < classes; ++c) {
              if (logit_row[c] > logit_row[best]) {
                best = c;
              }
            }
            labels[begin + static_cast<std::size_t>(row)] =
                static_cast<int>(best);
          }
        });
  }
  return labels;
}

}  // namespace hotspot::core
