// Per-layer roofline profiler (DESIGN.md §10).
//
// Joins two things the repo already produces separately:
//   - measured per-layer wall time, from the "brnn.conv.*" /
//     "brnn.layer.head_fc" trace spans (obs/trace.h), together with the
//     per-conv sample counters BinaryConv2d keeps while tracing is enabled;
//   - analytic per-layer work, from core/cost_model.h (XNOR+popcount word
//     ops and float epilogue ops for binary convolutions, dense MACs for
//     the classifier head).
//
// The result is one row per weight layer: time, operations executed
// (bitops = 64 binary MACs per packed word op), achieved Gops/s, and the
// share of total profiled time — the numbers needed to see which layer is
// compute-bound and how far each sits from the kernel's peak.
//
// Profiling protocol: enable tracing, reset both windows
// (obs::reset_spans() + model.reset_profile()), run the forwards to
// profile, then call build_roofline(model, obs::collect_span_report()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/brnn.h"
#include "obs/trace.h"

namespace hotspot::core {

struct RooflineLayer {
  std::string label;     // span label, e.g. "brnn.conv.block1a"
  std::string geometry;  // cost-model description, e.g. "16->32 k3 s2 @32x32"
  bool main_path = true;  // false for projection shortcuts (not in the
                          // paper's 12-layer count)
  std::uint64_t samples = 0;  // forward samples profiled through this layer
  double seconds = 0.0;       // total span wall time
  double bitops = 0.0;        // binary MACs executed (64 per word op)
  double float_ops = 0.0;     // float epilogue ops (convs) or MACs*2 (fc)
  double gops_per_second = 0.0;  // (bitops + float_ops) / seconds / 1e9
  double time_fraction = 0.0;    // seconds / report total_seconds
};

struct RooflineReport {
  std::vector<RooflineLayer> layers;  // model order: convs, then head fc
  double total_seconds = 0.0;         // sum of per-layer seconds
  std::uint64_t samples = 0;          // samples seen by the stem conv
  // Active XNOR kernel when the report was built ("scalar"/"avx2"/...):
  // achieved Gops/s is only comparable between reports with equal kernels.
  std::string kernel;

  const RooflineLayer* find(const std::string& label) const;
  // Layers on the paper's main path (stem + block convs + fc); with the
  // paper() config this is 12.
  std::int64_t main_path_layer_count() const;
};

// Joins the model's profile counters and cost model with a span report
// collected over the same window. Layers whose span is absent from
// `spans` (never executed while tracing) get zero time.
RooflineReport build_roofline(const BrnnModel& model,
                              const obs::SpanReport& spans);

// Aligned plain-text table (one row per layer plus a totals row).
std::string to_table(const RooflineReport& report);

// One JSON object: {"layers": [...], "total_seconds": ..., "samples": ...}.
std::string to_json(const RooflineReport& report);

}  // namespace hotspot::core
