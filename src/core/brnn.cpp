#include "core/brnn.h"

#include <sstream>

#include "nn/pool_layers.h"
#include "nn/residual.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace hotspot::core {

BrnnConfig BrnnConfig::paper() { return BrnnConfig{}; }

BrnnConfig BrnnConfig::compact(std::int64_t image_size) {
  BrnnConfig config;
  config.image_size = image_size;
  config.stem_filters = 8;
  config.stem_stride = 1;
  config.stem_pool = image_size >= 64;
  config.block_filters = {8, 16, 32};
  config.block_strides = {1, 2, 2};
  return config;
}

BrnnModel::BrnnModel(const BrnnConfig& config, util::Rng& rng)
    : config_(config) {
  HOTSPOT_CHECK_EQ(config.block_filters.size(), config.block_strides.size());
  HOTSPOT_CHECK(!config.block_filters.empty());

  // Stem.
  net_.add(conv_block(config.input_channels, config.stem_filters, 3,
                      config.stem_stride, 1, "brnn.conv.stem", rng));
  layer_labels_.push_back("brnn.layer.stem");
  if (config.stem_pool) {
    net_.emplace<nn::MaxPool2d>(2);
    layer_labels_.push_back("brnn.layer.stem_pool");
  }

  // Residual stages.
  std::int64_t channels = config.stem_filters;
  for (std::size_t stage = 0; stage < config.block_filters.size(); ++stage) {
    const std::int64_t filters = config.block_filters[stage];
    const std::int64_t stride = config.block_strides[stage];
    const std::string stage_label =
        "brnn.conv.block" + std::to_string(stage + 1);
    auto main_path = std::make_unique<nn::Sequential>();
    main_path->add(
        conv_block(channels, filters, 3, stride, 1, stage_label + "a", rng));
    main_path->add(
        conv_block(filters, filters, 3, 1, 1, stage_label + "b", rng));
    nn::ModulePtr shortcut;
    if (channels != filters || stride != 1) {
      // 1x1 binary conv block aligns the shortcut tensor shape (Fig. 2).
      shortcut = conv_block(channels, filters, 1, stride, 0,
                            stage_label + "sc", rng);
    }
    net_.add(std::make_unique<nn::ResidualBlock>(std::move(main_path),
                                                 std::move(shortcut)));
    layer_labels_.push_back("brnn.layer.block" + std::to_string(stage + 1));
    channels = filters;
  }

  // Head: calibrate, pool, classify.
  net_.emplace<nn::BatchNorm2d>(channels);
  layer_labels_.push_back("brnn.layer.head_bn");
  net_.emplace<nn::GlobalAvgPool>();
  layer_labels_.push_back("brnn.layer.head_pool");
  net_.add(std::make_unique<nn::Linear>(channels, 2, /*with_bias=*/true, rng));
  layer_labels_.push_back("brnn.layer.head_fc");
  HOTSPOT_CHECK_EQ(layer_labels_.size(), net_.size());
}

nn::ModulePtr BrnnModel::conv_block(std::int64_t in, std::int64_t out,
                                    std::int64_t kernel, std::int64_t stride,
                                    std::int64_t pad, const std::string& label,
                                    util::Rng& rng) {
  auto block = std::make_unique<nn::Sequential>();
  block->emplace<nn::BatchNorm2d>(in);
  auto conv = std::make_unique<BinaryConv2d>(in, out, kernel, stride, pad,
                                             config_.scaling, rng);
  conv->set_span_label(label);
  binary_convs_.push_back(conv.get());
  block->add(std::move(conv));
  return block;
}

void BrnnModel::reset_profile() {
  for (BinaryConv2d* conv : binary_convs_) {
    conv->reset_profile();
  }
}

tensor::Tensor BrnnModel::forward(const Tensor& input) {
  HOTSPOT_CHECK_EQ(input.rank(), 4);
  HOTSPOT_CHECK_EQ(input.dim(1), config_.input_channels);
  HOTSPOT_CHECK_EQ(input.dim(2), config_.image_size);
  HOTSPOT_CHECK_EQ(input.dim(3), config_.image_size);
  // Unrolled net_.forward() with one trace span per top-level layer;
  // backward still runs through net_.backward(), which is equivalent
  // because each module caches its own forward state.
  HOTSPOT_TRACE_SPAN("brnn.forward");
  if (!training_ && forward_override_) {
    return forward_override_(input);
  }
  Tensor current = input;
  for (std::size_t i = 0; i < net_.size(); ++i) {
    obs::TraceSpan span(layer_labels_[i]);
    current = net_.at(i).forward(current);
  }
  return current;
}

tensor::Tensor BrnnModel::backward(const Tensor& grad_output) {
  return net_.backward(grad_output);
}

std::vector<nn::Parameter*> BrnnModel::parameters() {
  return net_.parameters();
}

std::string BrnnModel::name() const {
  std::ostringstream out;
  out << "BRNN-" << config_.main_path_layer_count() << "("
      << bitops::to_string(config_.scaling) << ")";
  return out.str();
}

void BrnnModel::set_training(bool training) {
  nn::Module::set_training(training);
  net_.set_training(training);
}

void BrnnModel::collect_state(const std::string& prefix,
                              std::vector<nn::NamedTensor>& out) {
  net_.collect_state(prefix + "net.", out);
}

void BrnnModel::set_backend(Backend backend) {
  for (BinaryConv2d* conv : binary_convs_) {
    conv->set_backend(backend);
  }
}

std::vector<int> BrnnModel::predict(const Tensor& images) {
  const Tensor logits = forward(images);
  const auto argmax = tensor::argmax_rows(logits);
  std::vector<int> labels(argmax.size());
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    labels[i] = static_cast<int>(argmax[i]);
  }
  return labels;
}

}  // namespace hotspot::core
