#include "core/bnn_detector.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"

namespace hotspot::core {

BnnDetectorConfig BnnDetectorConfig::compact(std::int64_t image_size) {
  BnnDetectorConfig config;
  config.model = BrnnConfig::compact(image_size);
  config.trainer.batch_size = 32;
  config.trainer.epochs = 12;
  config.trainer.finetune_epochs = 2;
  config.trainer.learning_rate = 0.05f;
  config.trainer.hotspot_oversample = 4;
  return config;
}

BnnHotspotDetector::BnnHotspotDetector(const BnnDetectorConfig& config)
    : config_(config) {}

void BnnHotspotDetector::fit(const dataset::HotspotDataset& train,
                             util::Rng& rng) {
  HOTSPOT_CHECK_EQ(train.image_size(), config_.model.image_size)
      << "dataset image size does not match the model configuration";
  util::Rng init_rng = rng.fork(0x424e4e);
  model_.emplace(config_.model, init_rng);
  TrainerConfig trainer_config = config_.trainer;
  trainer_config.seed = rng.next_u64();
  Trainer trainer(*model_, trainer_config);
  history_ = trainer.train(train);
  model_->set_backend(config_.inference_backend);
}

std::vector<int> BnnHotspotDetector::predict(
    const dataset::HotspotDataset& data) {
  HOTSPOT_CHECK(model_.has_value()) << "predict() before fit()";
  const int batch = config_.inference_batch_size > 0
                        ? config_.inference_batch_size
                        : config_.trainer.batch_size;
  std::lock_guard<std::mutex> lock(predict_mutex_);
  return predict_labels(*model_, data, batch);
}

std::vector<int> BnnHotspotDetector::predict_batch(
    const tensor::Tensor& images) {
  HOTSPOT_CHECK(model_.has_value()) << "predict_batch() before fit()";
  HOTSPOT_CHECK_EQ(images.rank(), 4)
      << "predict_batch expects [n, 1, ls, ls] images";
  HOTSPOT_CHECK_EQ(images.dim(2), config_.model.image_size)
      << "image size does not match the model configuration";
  // Chaos probes (DESIGN.md §13): an armed stall sleeps here so a scan's
  // per-batch deadline can catch it; an armed compute fault throws the way
  // a real backend failure would, exercising the retry/quarantine path.
  util::fault_maybe_stall(util::FaultPoint::kScanPredictStall);
  if (util::fault_should_fail(util::FaultPoint::kScanPredictCompute)) {
    throw std::runtime_error("injected predict compute fault");
  }
  // Serialize forwards: layer activation caches are shared scratch state,
  // so two concurrent callers would corrupt each other's intermediates.
  std::lock_guard<std::mutex> lock(predict_mutex_);
  model_->set_training(false);
  util::Stopwatch timer;
  std::vector<int> labels = model_->predict(images);
  const double batch_seconds = timer.seconds();
  static obs::Histogram& clip_histogram =
      obs::MetricsRegistry::global().histogram(
          "predict.clip_seconds", obs::default_latency_buckets());
  // Per-clip latency: amortize the batch over the clips it carried.
  if (images.dim(0) > 0) {
    const double per_clip = batch_seconds / static_cast<double>(images.dim(0));
    for (std::int64_t i = 0; i < images.dim(0); ++i) {
      clip_histogram.observe(per_clip);
    }
  }
  return labels;
}

std::function<std::vector<int>(const tensor::Tensor&)>
BnnHotspotDetector::classifier() {
  return [this](const tensor::Tensor& images) {
    return predict_batch(images);
  };
}

BrnnModel& BnnHotspotDetector::model() {
  HOTSPOT_CHECK(model_.has_value()) << "model() before fit()";
  return *model_;
}

}  // namespace hotspot::core
